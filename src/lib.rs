#![warn(missing_docs)]

//! # Tartan — a CPU microarchitecture for robotics
//!
//! A full-system Rust reproduction of *"Tartan: Microarchitecting a Robotic
//! Processor"* (Bakhshalipour & Gibbons, ISCA 2024): an execution-driven
//! timing simulator for the baseline and Tartan processors, the six RoWild
//! robots, and harnesses regenerating every figure and table of the paper's
//! evaluation.
//!
//! This crate re-exports the workspace members:
//!
//! * [`sim`] — machine/cache/DRAM timing model, OVEC, FCP, write-through
//!   regions ([`tartan_sim`]),
//! * [`prefetch`] — ANL, next-line, and Bingo prefetchers,
//! * [`nn`] — from-scratch MLP training (AXAR loss) and PCA,
//! * [`npu`] — the NPU device model and the AXAR supervisor,
//! * [`nns`] — brute-force / k-d tree / LSH / VLN nearest-neighbor search,
//! * [`kernels`] — ray-casting, collision detection, graph search, RRT,
//!   MCL, EKF, ICP, controllers, behavior trees,
//! * [`robots`] — DeliBot, PatrolBot, MoveBot, HomeBot, FlyBot, CarriBot,
//! * [`core`] — the configuration matrix and single-run experiment runner,
//! * [`campaign`] — the unified campaign engine: multi-scenario batches,
//!   cross-campaign job dedupe, store-backed resume/verify, and the
//!   per-figure experiment drivers (see `DESIGN.md` §18),
//! * [`par`] — the deterministic host-parallel worker pool
//!   (order-preserving scoped worker pool; see `DESIGN.md` §12),
//! * [`scenario`] — typed scenario specs, validated JSON serialization, and
//!   sweep expansion into ordered job lists (see `DESIGN.md` §13),
//! * [`store`] — content-addressed on-disk result store with integrity
//!   re-hash and quarantine self-healing (see `DESIGN.md` §14).
//!
//! # Examples
//!
//! ```no_run
//! use tartan::core::{experiments, ExperimentParams};
//!
//! let rows = experiments::fig12_end_to_end(&ExperimentParams::quick());
//! println!("{}", experiments::format_fig12(&rows));
//! ```

/// The configuration matrix and experiment runner ([`tartan_core`]), plus
/// — for continuity with the layout before the campaign engine split —
/// the figure drivers and probe entry point that now live in
/// [`tartan_campaign`].
pub mod core {
    pub use tartan_campaign::{experiments, probe_spec};
    pub use tartan_core::*;
}

pub use tartan_campaign as campaign;
pub use tartan_kernels as kernels;
pub use tartan_nn as nn;
pub use tartan_nns as nns;
pub use tartan_npu as npu;
pub use tartan_par as par;
pub use tartan_prefetch as prefetch;
pub use tartan_robots as robots;
pub use tartan_scenario as scenario;
pub use tartan_sim as sim;
pub use tartan_store as store;
