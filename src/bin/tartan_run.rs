//! `tartan_run`: executes any scenario file (see `SCHEMA.md` and the
//! checked-in examples under `scenarios/`) and writes its results as a
//! validated `stats.json` export plus a flat CSV.
//!
//! ```text
//! tartan_run FILE [--jobs N] [--out DIR] [--scale small|paper]
//! tartan_run --check FILE...
//! ```
//!
//! Run mode expands the scenario into its ordered job list, fans it out
//! across host cores (`--jobs N`, default: all cores; results are
//! collected in submission order, so the outputs are byte-identical for
//! any job count), and writes `<out>/<name>.stats.json` and
//! `<out>/<name>.csv` (default `results/`). `--scale` overrides the
//! scenario's scale preset; the scenario's `params.adjust` list still
//! applies on top.
//!
//! Check mode validates each file and prints one line per problem in the
//! scenario layer's `file: field.path: reason` form — the same errors CI
//! enforces for the checked-in manifests.
//!
//! Exit codes: 0 success, 1 invalid scenario or schema violation, 2 usage.

use std::fs;
use std::path::PathBuf;
use std::time::Instant;

use tartan::core::{run_robot, ExperimentParams, ScenarioSpec};
use tartan::par;
use tartan::robots::Scale;
use tartan::sim::telemetry::{validate_stats_json, StatsExport};

const USAGE: &str = "usage: tartan_run FILE [--jobs N] [--out DIR] [--scale small|paper]\n       tartan_run --check FILE...";

fn usage_error(msg: &str) -> ! {
    eprintln!("tartan_run: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Quotes a CSV field only when it needs it (commas, quotes, newlines).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn check(files: &[String]) -> ! {
    let mut ok = true;
    for file in files {
        let text = match fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: $: {e}");
                ok = false;
                continue;
            }
        };
        match ScenarioSpec::from_json(&text).and_then(|s| s.expand().map(|p| (s, p))) {
            Ok((spec, plan)) => println!(
                "{file}: OK ({} jobs, {} groups, name {})",
                plan.jobs.len(),
                plan.groups.len(),
                spec.name
            ),
            Err(e) => {
                eprintln!("{file}: {e}");
                ok = false;
            }
        }
    }
    std::process::exit(if ok { 0 } else { 1 });
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        if args.len() < 2 {
            usage_error("--check needs at least one file");
        }
        check(&args[1..]);
    }

    let (jobs, rest) = match par::parse_jobs_flag(&args) {
        Ok(v) => v,
        Err(e) => usage_error(&e),
    };
    let mut file: Option<String> = None;
    let mut out_dir = PathBuf::from("results");
    let mut scale_override: Option<Scale> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => usage_error("--out needs a directory"),
            },
            "--scale" => match it.next().map(String::as_str) {
                Some("small") => scale_override = Some(Scale::small()),
                Some("paper") => scale_override = Some(Scale::paper()),
                Some(other) => usage_error(&format!("unknown scale {other:?} (small|paper)")),
                None => usage_error("--scale needs a preset (small|paper)"),
            },
            other if other.starts_with("--") => {
                usage_error(&format!("unrecognized flag {other}"))
            }
            other => {
                if file.replace(other.to_string()).is_some() {
                    usage_error("exactly one scenario file is expected");
                }
            }
        }
    }
    let Some(file) = file else {
        usage_error("a scenario file is required");
    };

    let text = fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("tartan_run: {file}: {e}");
        std::process::exit(1);
    });
    let (spec, plan) = match ScenarioSpec::from_json(&text).and_then(|s| {
        let p = s.expand()?;
        Ok((s, p))
    }) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{file}: {e}");
            std::process::exit(1);
        }
    };

    let mut params: ExperimentParams = spec.base_params().into();
    if let Some(mut scale) = scale_override {
        spec.params.apply_adjusts(&mut scale);
        params.scale = scale;
    }

    if let Some(title) = &spec.title {
        println!("{title}");
    }
    println!(
        "{}: {} jobs in {} group(s), steps {}, seed {}",
        spec.name,
        plan.jobs.len(),
        plan.groups.len(),
        params.steps,
        params.seed
    );

    let campaign = Instant::now();
    let outcomes = par::par_map(jobs, &plan.jobs, |job| {
        run_robot(job.robot, job.machine.clone(), job.software, &params)
    });
    let host_secs = campaign.elapsed().as_secs_f64();

    let mut export = StatsExport {
        generator: "tartan_run".into(),
        runs: Vec::new(),
    };
    let mut csv =
        String::from("robot,config,label,group,wall_cycles,instructions,l2_demand_misses,quality\n");
    for (job, out) in plan.jobs.iter().zip(&outcomes) {
        println!(
            "{:<10} {:<16} {:<14} {:>12} cycles  L2 miss {:>5.1}%  quality {:.4}",
            out.robot,
            job.config.as_str(),
            job.label,
            out.wall_cycles,
            100.0 * out.stats.l2.miss_ratio(),
            out.quality,
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            csv_field(out.robot),
            csv_field(job.config.as_str()),
            csv_field(&job.label),
            csv_field(&plan.groups[job.group].name),
            out.wall_cycles,
            out.instructions,
            out.stats.l2.demand_misses(),
            out.quality,
        ));
        export.runs.push(out.to_run_stats(&job.config));
    }

    let json = export.to_json();
    if let Err(e) = validate_stats_json(&json) {
        eprintln!("tartan_run: stats export violates the schema: {e}");
        std::process::exit(1);
    }
    fs::create_dir_all(&out_dir).expect("create output directory");
    let stats_path = out_dir.join(format!("{}.stats.json", spec.name));
    let csv_path = out_dir.join(format!("{}.csv", spec.name));
    fs::write(&stats_path, &json).expect("write stats export");
    fs::write(&csv_path, &csv).expect("write CSV export");
    println!(
        "wrote {} and {} ({} runs, jobs {jobs}, {host_secs:.2} s host)",
        stats_path.display(),
        csv_path.display(),
        export.runs.len(),
    );
}
