//! `tartan_run`: executes scenario files (see `SCHEMA.md` and the
//! checked-in examples under `scenarios/`) through the unified campaign
//! engine and writes each scenario's results as a validated `stats.json`
//! export plus a flat CSV.
//!
//! ```text
//! tartan_run FILE... [--jobs N] [--out DIR] [--scale small|paper]
//!                    [--store DIR [--resume] [--verify N]] [--retries N]
//!                    [--watchdog MS] [--progress[=human|jsonl]]
//!                    [--batch DIR]
//! tartan_run --check FILE...
//! ```
//!
//! Run mode expands each scenario into its ordered job list, fans the
//! jobs out across host cores (`--jobs N`, default: all cores; results
//! are collected in submission order, so the outputs are byte-identical
//! for any job count), and writes `<out>/<name>.stats.json` and
//! `<out>/<name>.csv` (default `results/`). `--scale` overrides the
//! scenarios' scale presets; each scenario's `params.adjust` list still
//! applies on top.
//!
//! **Batch campaigns** (DESIGN.md §18): more than one `FILE`, or
//! `--batch DIR` (runs every `*.json` in `DIR`, sorted), executes all
//! scenarios as one batch. Jobs with identical cache keys **across
//! scenarios are deduplicated**: each distinct key simulates exactly
//! once and the result fans back to every requesting campaign, so every
//! scenario's exports are byte-identical to running its file alone.
//! Batch mode streams one JSON line per job lifecycle event
//! (started/cached/done/failed, see `SCHEMA.md`) to stdout as units
//! land, in an order that depends only on the job set — never on
//! scheduling — followed by the per-scenario export summaries.
//!
//! Crash-safe campaigns (DESIGN.md §14): `--store DIR` records every
//! completed run in a content-addressed store keyed by the SHA-256 of the
//! job's canonical rendering, committed atomically as each job finishes.
//! `--resume` serves jobs from the store instead of re-simulating them —
//! because runs are byte-deterministic and exports splice the stored
//! record bytes verbatim, a resumed campaign's outputs are byte-identical
//! to an uninterrupted run. `--verify N` re-executes a seeded sample of N
//! cache-served jobs and diffs the records byte-for-byte; a mismatch
//! quarantines and repairs the entry and fails the run. Jobs that panic
//! are isolated per job (`--retries N` attempts each, default 1): the
//! remaining jobs complete, and the export carries a structured
//! `failures` section instead of the campaign aborting.
//!
//! Campaign observability (DESIGN.md §15): `--progress[=human|jsonl]`
//! prints rate-limited heartbeats to stderr (done/total, runs/sec, ETA,
//! cache-hit rate, retries, slow, failures) and writes two additional
//! artifacts next to the stats export — `<name>.campaign_profile.json`
//! (schema-validated host-time attribution: disjoint parse/plan/simulate/
//! store-io/export phases whose nanos sum to the campaign total by
//! construction, one span per job, and the metrics snapshot) and
//! `<name>.campaign_trace.json` (a Perfetto-loadable timeline with one
//! track per worker). In batch mode the two artifacts cover the whole
//! batch as `batch.campaign_profile.json`/`batch.campaign_trace.json`.
//! `--watchdog MS` flags jobs that run longer than the timeout; slow and
//! retried job indices are summarized on stdout either way. All of this
//! is strictly additive: the stats/CSV outputs are byte-identical with
//! the flags on or off.
//!
//! Check mode validates each file and prints one line per problem in the
//! scenario layer's `file: field.path: reason` form — the same errors CI
//! enforces for the checked-in manifests.
//!
//! Exit codes: 0 success, 1 invalid scenario, schema violation, I/O
//! error, job failure, or verification mismatch; 2 usage.
//!
//! Test hooks (used by the kill-resume suite and CI, not part of the UI):
//! `TARTAN_RUN_PANIC_AT=i,j,...` panics those job indices;
//! `TARTAN_RUN_EXIT_AFTER=N` hard-exits (code 3) after N completions,
//! simulating a mid-campaign kill.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::Duration;

use tartan::campaign::{
    cli, render_exports, Campaign, CampaignEvent, CampaignOptions, CampaignReport, CampaignSpec,
    Engine, PhaseClock,
};
use tartan::core::ScenarioSpec;
use tartan::sim::telemetry::{
    campaign_trace_json, push_str, validate_campaign_profile_json, validate_stats_json,
    CampaignProfile, CAMPAIGN_SCHEMA_VERSION,
};

const USAGE: &str = "usage: tartan_run FILE... [--jobs N] [--out DIR] [--scale small|paper]\n\
                     \x20                [--store DIR [--resume] [--verify N]] [--retries N]\n\
                     \x20                [--watchdog MS] [--progress[=human|jsonl]]\n\
                     \x20                [--batch DIR]\n\
                     \x20      tartan_run --check FILE...";

fn usage_error(msg: &str) -> ! {
    cli::usage_error("tartan_run", USAGE, msg)
}

/// Single-line I/O failure in the scenario layer's `path: reason` style.
fn die(path: &Path, reason: impl std::fmt::Display) -> ! {
    cli::die("tartan_run", path, reason)
}

fn check(files: &[String]) -> ! {
    let mut ok = true;
    for file in files {
        let text = match fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: $: {e}");
                ok = false;
                continue;
            }
        };
        match ScenarioSpec::from_json(&text).and_then(|s| s.expand().map(|p| (s, p))) {
            Ok((spec, plan)) => println!(
                "{file}: OK ({} jobs, {} groups, name {})",
                plan.jobs.len(),
                plan.groups.len(),
                spec.name
            ),
            Err(e) => {
                eprintln!("{file}: {e}");
                ok = false;
            }
        }
    }
    std::process::exit(if ok { 0 } else { 1 });
}

/// `"3, 7, 11"` — the summary-line list form for job indices.
fn fmt_indices(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

/// One batch-mode stream line: a `campaign_schema_version` 1 `"job"`
/// document for a per-job lifecycle event (see `SCHEMA.md`).
fn event_json(spec: &CampaignSpec, ev: &CampaignEvent<'_>) -> String {
    let (event, campaign, job) = match ev {
        CampaignEvent::Started { campaign, job } => ("started", *campaign, *job),
        CampaignEvent::Cached { campaign, job, .. } => ("cached", *campaign, *job),
        CampaignEvent::Done { campaign, job, .. } => ("done", *campaign, *job),
        CampaignEvent::Failed { campaign, job, .. } => ("failed", *campaign, *job),
    };
    let c = &spec.campaigns[campaign];
    let j = &c.plan.jobs[job];
    let mut line = format!("{{\"campaign_schema_version\":{CAMPAIGN_SCHEMA_VERSION},\"type\":\"job\",\"event\":");
    push_str(&mut line, event);
    line.push_str(",\"scenario\":");
    push_str(&mut line, &c.spec.name);
    let _ = write!(line, ",\"campaign\":{campaign},\"job\":{job},\"robot\":");
    push_str(&mut line, j.robot.name());
    line.push_str(",\"config\":");
    push_str(&mut line, j.config.as_str());
    line.push_str(",\"label\":");
    push_str(&mut line, &j.label);
    match ev {
        CampaignEvent::Started { .. } => {}
        CampaignEvent::Cached {
            output, deduped, ..
        }
        | CampaignEvent::Done {
            output, deduped, ..
        } => {
            let _ = write!(
                line,
                ",\"wall_cycles\":{},\"quality\":\"{}\",\"cached\":{},\"deduped\":{deduped}",
                output.wall_cycles, output.quality, output.cached
            );
        }
        CampaignEvent::Failed {
            attempts,
            message,
            deduped,
            ..
        } => {
            let _ = write!(line, ",\"attempts\":{attempts},\"message\":");
            push_str(&mut line, message);
            let _ = write!(line, ",\"deduped\":{deduped}");
        }
    }
    line.push('}');
    line
}

/// Renders, validates, and writes one campaign's stats/CSV pair,
/// returning `(stats_path, csv_path, runs)`.
fn write_campaign_exports(
    out_dir: &Path,
    campaign: &Campaign,
    result: &tartan::campaign::CampaignResult,
) -> (std::path::PathBuf, std::path::PathBuf, usize) {
    let (json, csv) = render_exports("tartan_run", campaign, result);
    if let Err(e) = validate_stats_json(&json) {
        eprintln!("tartan_run: stats export violates the schema: {e}");
        std::process::exit(1);
    }
    if let Err(e) = fs::create_dir_all(out_dir) {
        die(out_dir, e);
    }
    let stats_path = out_dir.join(format!("{}.stats.json", campaign.spec.name));
    let csv_path = out_dir.join(format!("{}.csv", campaign.spec.name));
    if let Err(e) = fs::write(&stats_path, &json) {
        die(&stats_path, e);
    }
    if let Err(e) = fs::write(&csv_path, &csv) {
        die(&csv_path, e);
    }
    let runs = result.results.iter().filter(|r| r.is_some()).count();
    (stats_path, csv_path, runs)
}

/// Prints the store/retry/watchdog summary lines shared by both modes.
fn print_execution_summary(report: &CampaignReport) {
    // Store summary (satellite of DESIGN.md §15): campaign-lifetime op
    // counts from this handle, folded into the metrics snapshot.
    if let Some(c) = &report.store_counts {
        println!(
            "store: {} hit(s), {} miss(es), {} put(s), {} quarantine(s)",
            c.hits, c.misses, c.puts, c.quarantines
        );
    }
    if !report.retried_jobs.is_empty() {
        println!(
            "retried jobs ({} extra attempt(s)): {}",
            report.total_retries,
            fmt_indices(&report.retried_jobs)
        );
    }
    if !report.slow_jobs.is_empty() {
        println!("watchdog-slow jobs: {}", fmt_indices(&report.slow_jobs));
    }
}

/// Writes the profile + Perfetto trace pair for `--progress` runs.
fn write_profile(out_dir: &Path, scenario: &str, clock: &PhaseClock, report: &CampaignReport) {
    let profile = CampaignProfile {
        generator: "tartan_run".to_string(),
        scenario: scenario.to_string(),
        jobs: report.workers as u64,
        total_host_nanos: clock.total_nanos(),
        phases: clock.phases().to_vec(),
        spans: report.spans.clone(),
        metrics: report.registry.snapshot(),
    };
    let profile_json = profile.to_json();
    if let Err(e) = validate_campaign_profile_json(&profile_json) {
        eprintln!("tartan_run: campaign profile violates the schema: {e}");
        std::process::exit(1);
    }
    let profile_path = out_dir.join(format!("{scenario}.campaign_profile.json"));
    if let Err(e) = fs::write(&profile_path, &profile_json) {
        die(&profile_path, e);
    }
    let trace = campaign_trace_json(scenario, report.workers, &profile.spans);
    let trace_path = out_dir.join(format!("{scenario}.campaign_trace.json"));
    if let Err(e) = fs::write(&trace_path, &trace) {
        die(&trace_path, e);
    }
    println!(
        "wrote {} and {}",
        profile_path.display(),
        trace_path.display()
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        if args.len() < 2 {
            usage_error("--check needs at least one file");
        }
        check(&args[1..]);
    }

    let flags = cli::FlagSet {
        out: true,
        default_out: "results",
        scale: true,
        store: true,
        resume_verify: true,
        retries: true,
        watchdog: true,
        progress: true,
        batch: true,
        help: false,
        max_files: usize::MAX,
        extras: &[],
    };
    let parsed = cli::parse_args(&args, &flags).unwrap_or_else(|e| usage_error(&e));
    let mut files = parsed.files.clone();
    let batch_flag = parsed.batch.is_some();
    if let Some(dir) = &parsed.batch {
        let entries = fs::read_dir(dir).unwrap_or_else(|e| die(dir, e));
        let mut found: Vec<String> = entries
            .flatten()
            .map(|entry| entry.path())
            .filter(|path| path.extension().is_some_and(|ext| ext == "json"))
            .map(|path| path.display().to_string())
            .collect();
        found.sort();
        files.extend(found);
    }
    if files.is_empty() {
        usage_error("a scenario file is required");
    }
    if (parsed.resume || parsed.verify > 0) && parsed.store.is_none() {
        usage_error("--resume and --verify require --store DIR");
    }

    // Phase attribution starts here: parse → plan → simulate → store-io
    // → export, as disjoint wall-clock segments (DESIGN.md §15).
    let mut clock = PhaseClock::start();
    let mut campaigns: Vec<Campaign> = Vec::with_capacity(files.len());
    for file in &files {
        let text = fs::read_to_string(file).unwrap_or_else(|e| {
            eprintln!("tartan_run: {file}: {e}");
            std::process::exit(1);
        });
        let spec = match ScenarioSpec::from_json(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: {e}");
                std::process::exit(1);
            }
        };
        let mut campaign = match Campaign::from_spec(spec) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{file}: {e}");
                std::process::exit(1);
            }
        };
        if let Some(scale) = parsed.scale {
            campaign.override_scale(scale);
        }
        campaigns.push(campaign);
    }
    clock.mark("parse");

    let batch = batch_flag || campaigns.len() > 1;
    let options = CampaignOptions {
        jobs: parsed.jobs,
        retries: parsed.retries,
        watchdog: parsed.watchdog_ms.map(Duration::from_millis),
        store: parsed.store.clone(),
        resume: parsed.resume,
        verify: parsed.verify,
        progress: parsed.progress,
        keep_outcomes: false,
        tool: "tartan_run",
    };

    if !batch {
        // Classic single-scenario mode: human console lines, byte-identical
        // to the pre-engine binary.
        let campaign = &campaigns[0];
        if let Some(title) = &campaign.spec.title {
            println!("{title}");
        }
        println!(
            "{}: {} jobs in {} group(s), steps {}, seed {}",
            campaign.spec.name,
            campaign.plan.jobs.len(),
            campaign.plan.groups.len(),
            campaign.params.steps,
            campaign.params.seed
        );
        let engine = Engine::new(CampaignSpec { campaigns, options });
        let report = engine
            .run(&mut clock, None)
            .unwrap_or_else(|e| die(&e.path, e.reason));
        let campaign = &engine.spec.campaigns[0];
        let result = &report.campaigns[0];

        for (job, slot) in campaign.plan.jobs.iter().zip(&result.results) {
            let Some(out) = slot else { continue };
            match out.l2_miss_pct {
                Some(pct) => println!(
                    "{:<10} {:<16} {:<14} {:>12} cycles  L2 miss {:>5.1}%  quality {}",
                    out.robot,
                    job.config.as_str(),
                    job.label,
                    out.wall_cycles,
                    pct,
                    out.quality,
                ),
                None => println!(
                    "{:<10} {:<16} {:<14} {:>12} cycles  (cached)",
                    out.robot,
                    job.config.as_str(),
                    job.label,
                    out.wall_cycles,
                ),
            }
        }

        let (stats_path, csv_path, runs) =
            write_campaign_exports(&parsed.out_dir, campaign, result);
        clock.mark("export");
        println!(
            "wrote {} and {} ({} runs, {} cached, {} failed, jobs {}, {:.2} s host)",
            stats_path.display(),
            csv_path.display(),
            runs,
            result.cached_served(),
            result.failures.len(),
            parsed.jobs,
            report.host_secs(),
        );
        print_execution_summary(&report);
        if parsed.progress.is_some() {
            write_profile(&parsed.out_dir, &campaign.spec.name, &clock, &report);
        }
        if !result.failures.is_empty() || report.verify_mismatches > 0 {
            std::process::exit(1);
        }
        return;
    }

    // Batch mode: all scenarios execute as one deduplicated job set, and
    // per-job lifecycle events stream to stdout as JSON lines in a
    // deterministic (scheduling-independent) order.
    let engine = Engine::new(CampaignSpec { campaigns, options });
    let sink = |ev: &CampaignEvent<'_>| println!("{}", event_json(&engine.spec, ev));
    let report = engine
        .run(&mut clock, Some(&sink))
        .unwrap_or_else(|e| die(&e.path, e.reason));

    for (campaign, result) in engine.spec.campaigns.iter().zip(&report.campaigns) {
        let (stats_path, csv_path, runs) =
            write_campaign_exports(&parsed.out_dir, campaign, result);
        println!(
            "wrote {} and {} ({} runs, {} cached, {} failed)",
            stats_path.display(),
            csv_path.display(),
            runs,
            result.cached_served(),
            result.failures.len(),
        );
    }
    clock.mark("export");
    println!(
        "batch: {} jobs across {} campaign(s), {} distinct key(s), {} simulated, {} cached, jobs {}, {:.2} s host",
        report.total_jobs,
        engine.spec.campaigns.len(),
        report.distinct_keys,
        report.simulated,
        report.cached_units,
        parsed.jobs,
        report.host_secs(),
    );
    print_execution_summary(&report);
    if parsed.progress.is_some() {
        write_profile(&parsed.out_dir, "batch", &clock, &report);
    }
    if report.any_failures() || report.verify_mismatches > 0 {
        std::process::exit(1);
    }
}
