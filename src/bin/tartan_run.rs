//! `tartan_run`: executes any scenario file (see `SCHEMA.md` and the
//! checked-in examples under `scenarios/`) and writes its results as a
//! validated `stats.json` export plus a flat CSV.
//!
//! ```text
//! tartan_run FILE [--jobs N] [--out DIR] [--scale small|paper]
//!                 [--store DIR [--resume] [--verify N]] [--retries N]
//!                 [--watchdog MS] [--progress[=human|jsonl]]
//! tartan_run --check FILE...
//! ```
//!
//! Run mode expands the scenario into its ordered job list, fans it out
//! across host cores (`--jobs N`, default: all cores; results are
//! collected in submission order, so the outputs are byte-identical for
//! any job count), and writes `<out>/<name>.stats.json` and
//! `<out>/<name>.csv` (default `results/`). `--scale` overrides the
//! scenario's scale preset; the scenario's `params.adjust` list still
//! applies on top.
//!
//! Crash-safe campaigns (DESIGN.md §14): `--store DIR` records every
//! completed run in a content-addressed store keyed by the SHA-256 of the
//! job's canonical rendering, committed atomically as each job finishes.
//! `--resume` serves jobs from the store instead of re-simulating them —
//! because runs are byte-deterministic and exports splice the stored
//! record bytes verbatim, a resumed campaign's outputs are byte-identical
//! to an uninterrupted run. `--verify N` re-executes a seeded sample of N
//! cache-served jobs and diffs the records byte-for-byte; a mismatch
//! quarantines and repairs the entry and fails the run. Jobs that panic
//! are isolated per job (`--retries N` attempts each, default 1): the
//! remaining jobs complete, and the export carries a structured
//! `failures` section instead of the campaign aborting.
//!
//! Campaign observability (DESIGN.md §15): `--progress[=human|jsonl]`
//! prints rate-limited heartbeats to stderr (done/total, runs/sec, ETA,
//! cache-hit rate, retries, slow, failures) and writes two additional
//! artifacts next to the stats export — `<name>.campaign_profile.json`
//! (schema-validated host-time attribution: disjoint parse/plan/simulate/
//! store-io/export phases whose nanos sum to the campaign total by
//! construction, one span per job, and the metrics snapshot) and
//! `<name>.campaign_trace.json` (a Perfetto-loadable timeline with one
//! track per worker). `--watchdog MS` flags jobs that run longer than the
//! timeout; slow and retried job indices are summarized on stdout either
//! way. All of this is strictly additive: the stats/CSV outputs are
//! byte-identical with the flags on or off.
//!
//! Check mode validates each file and prints one line per problem in the
//! scenario layer's `file: field.path: reason` form — the same errors CI
//! enforces for the checked-in manifests.
//!
//! Exit codes: 0 success, 1 invalid scenario, schema violation, I/O
//! error, job failure, or verification mismatch; 2 usage.
//!
//! Test hooks (used by the kill-resume suite and CI, not part of the UI):
//! `TARTAN_RUN_PANIC_AT=i,j,...` panics those job indices;
//! `TARTAN_RUN_EXIT_AFTER=N` hard-exits (code 3) after N completions,
//! simulating a mid-campaign kill.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tartan::core::{run_robot, ExperimentParams, ScenarioSpec};
use tartan::par;
use tartan::robots::Scale;
use tartan::scenario::json::{parse as parse_json, JsonValue};
use tartan::scenario::RunParams;
use tartan::sim::telemetry::{
    campaign_trace_json, push_str, stats_export_json, validate_campaign_profile_json,
    validate_stats_json, CampaignPhase, CampaignProfile, Counter, Heartbeat, JobFailureStats,
    JobSpan, MetricsRegistry,
};
use tartan::store::{sha256_hex, ResultStore};

const USAGE: &str = "usage: tartan_run FILE [--jobs N] [--out DIR] [--scale small|paper]\n\
                     \x20                [--store DIR [--resume] [--verify N]] [--retries N]\n\
                     \x20                [--watchdog MS] [--progress[=human|jsonl]]\n\
                     \x20      tartan_run --check FILE...";

fn usage_error(msg: &str) -> ! {
    eprintln!("tartan_run: {msg}\n{USAGE}");
    std::process::exit(2);
}

/// Single-line I/O failure in the scenario layer's `path: reason` style.
fn die(path: &Path, reason: impl std::fmt::Display) -> ! {
    eprintln!("tartan_run: {}: {reason}", path.display());
    std::process::exit(1);
}

/// Quotes a CSV field only when it needs it (commas, quotes, newlines).
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn check(files: &[String]) -> ! {
    let mut ok = true;
    for file in files {
        let text = match fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("{file}: $: {e}");
                ok = false;
                continue;
            }
        };
        match ScenarioSpec::from_json(&text).and_then(|s| s.expand().map(|p| (s, p))) {
            Ok((spec, plan)) => println!(
                "{file}: OK ({} jobs, {} groups, name {})",
                plan.jobs.len(),
                plan.groups.len(),
                spec.name
            ),
            Err(e) => {
                eprintln!("{file}: {e}");
                ok = false;
            }
        }
    }
    std::process::exit(if ok { 0 } else { 1 });
}

/// One completed job, whether simulated fresh or served from the store.
struct JobResult {
    /// The run's `stats.json` record, verbatim — the splice/export unit.
    record: String,
    /// CSV columns (robot/config come back from the payload on cache hits
    /// so a corrupted entry can never relabel a row).
    robot: String,
    wall_cycles: u64,
    instructions: u64,
    l2_demand_misses: u64,
    /// Quality as the CSV renders it (`{}` on the f64), kept as text so a
    /// cached row reproduces the fresh row byte-for-byte.
    quality: String,
    /// L2 demand miss ratio, for the console line (fresh runs only).
    l2_miss_pct: Option<f64>,
    /// Whether this result came out of the store.
    cached: bool,
}

/// Store payload: one summary header line (the CSV numerics), then the
/// full `stats.json` record verbatim. See `SCHEMA.md` ("store entry").
fn render_payload(result: &JobResult, config: &str) -> String {
    let mut header = String::from("{\"robot\":");
    push_str(&mut header, &result.robot);
    header.push_str(",\"config\":");
    push_str(&mut header, config);
    header.push_str(&format!(
        ",\"wall_cycles\":{},\"instructions\":{},\"l2_demand_misses\":{},\"quality\":\"{}\"}}",
        result.wall_cycles, result.instructions, result.l2_demand_misses, result.quality
    ));
    format!("{header}\n{}", result.record)
}

/// Decodes a store payload back into a [`JobResult`], cross-checking the
/// robot/config against the job it is about to stand in for. `None` means
/// "treat as a miss" (the caller quarantines and re-runs).
fn parse_payload(payload: &str, want_robot: &str, want_config: &str) -> Option<JobResult> {
    let (header, record) = payload.split_once('\n')?;
    let v = parse_json(header).ok()?;
    let get_str = |key: &str| match v.get(key) {
        Some(JsonValue::Str(s)) => Some(s.clone()),
        _ => None,
    };
    let get_u64 = |key: &str| match v.get(key) {
        Some(JsonValue::Num(raw)) => raw.parse::<u64>().ok(),
        _ => None,
    };
    let robot = get_str("robot")?;
    let config = get_str("config")?;
    if robot != want_robot || config != want_config {
        return None;
    }
    Some(JobResult {
        record: record.to_string(),
        robot,
        wall_cycles: get_u64("wall_cycles")?,
        instructions: get_u64("instructions")?,
        l2_demand_misses: get_u64("l2_demand_misses")?,
        quality: get_str("quality")?,
        l2_miss_pct: None,
        cached: true,
    })
}

/// Comma-separated job indices from a test-hook env var.
fn env_index_set(name: &str) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.split(',')
                .filter(|s| !s.is_empty())
                .filter_map(|s| s.trim().parse().ok())
                .collect()
        })
        .unwrap_or_default()
}

/// xorshift64* — the deterministic sampler behind `--verify N`.
fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545F491_4F6CDD1D)
}

/// How `--progress` renders its stderr heartbeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProgressMode {
    Human,
    Jsonl,
}

/// Minimum gap between mid-campaign heartbeats; the first and last
/// completions always emit one regardless.
const HEARTBEAT_INTERVAL_NANOS: u64 = 200_000_000;

/// The campaign tap (DESIGN.md §15): receives `tartan-par`'s per-job
/// lifecycle events and aggregates them into named metrics, one
/// [`JobSpan`] per job for the profile/trace exports, and rate-limited
/// stderr heartbeats. Purely additive — it never touches job results or
/// the deterministic stats/CSV outputs.
struct ProgressObserver {
    /// Campaign epoch; span timestamps are host nanos since this instant.
    epoch: Instant,
    total: usize,
    /// `None` collects metrics and spans without printing anything.
    mode: Option<ProgressMode>,
    claimed: Counter,
    started: Counter,
    retried: Counter,
    slow: Counter,
    panicked: Counter,
    done: Counter,
    failed: Counter,
    /// Results served from the store; bumped by the job closure, read
    /// here for the heartbeat's cache-hit figure.
    cached: Counter,
    spans: Mutex<Vec<JobSpan>>,
    finished: AtomicUsize,
    last_beat_nanos: AtomicU64,
}

impl ProgressObserver {
    fn new(
        registry: &MetricsRegistry,
        epoch: Instant,
        total: usize,
        mode: Option<ProgressMode>,
    ) -> ProgressObserver {
        ProgressObserver {
            epoch,
            total,
            mode,
            claimed: registry.counter("job.claimed"),
            started: registry.counter("job.started"),
            retried: registry.counter("job.retried"),
            slow: registry.counter("job.slow"),
            panicked: registry.counter("job.panicked"),
            done: registry.counter("job.done"),
            failed: registry.counter("job.failed"),
            cached: registry.counter("job.cached"),
            spans: Mutex::new(
                (0..total)
                    .map(|index| JobSpan {
                        index,
                        ..JobSpan::default()
                    })
                    .collect(),
            ),
            finished: AtomicUsize::new(0),
            last_beat_nanos: AtomicU64::new(0),
        }
    }

    fn nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn with_span(&self, index: usize, f: impl FnOnce(&mut JobSpan)) {
        let mut spans = self.spans.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(span) = spans.get_mut(index) {
            f(span);
        }
    }

    fn into_spans(self) -> Vec<JobSpan> {
        self.spans
            .into_inner()
            .unwrap_or_else(|p| p.into_inner())
    }

    fn heartbeat(&self, done: usize) {
        let Some(mode) = self.mode else { return };
        let now = self.nanos();
        let last = self.last_beat_nanos.load(Ordering::Relaxed);
        // First and final completions always beat; in between, rate-limit
        // and let the compare-exchange loser yield to the thread that won.
        let boundary = done == 1 || done == self.total;
        if !boundary && now.saturating_sub(last) < HEARTBEAT_INTERVAL_NANOS {
            return;
        }
        if self
            .last_beat_nanos
            .compare_exchange(last, now, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
            && !boundary
        {
            return;
        }
        let beat = Heartbeat {
            done,
            total: self.total,
            elapsed_nanos: now,
            cache_hits: self.cached.get(),
            retries: self.retried.get(),
            slow: self.slow.get(),
            failures: self.failed.get(),
        };
        match mode {
            ProgressMode::Jsonl => eprintln!("{}", beat.to_json_line()),
            ProgressMode::Human => eprintln!("{}", beat.render_human()),
        }
    }
}

impl par::JobObserver for ProgressObserver {
    fn on_claimed(&self, index: usize, worker: usize) {
        self.claimed.inc();
        let now = self.nanos();
        self.with_span(index, |s| {
            s.worker = worker;
            s.start_nanos = now;
        });
    }

    fn on_started(&self, _index: usize, _attempt: u32) {
        self.started.inc();
    }

    fn on_retried(&self, _index: usize, _attempt: u32, _message: &str) {
        self.retried.inc();
    }

    fn on_slow(&self, index: usize, _elapsed: Duration) {
        self.slow.inc();
        self.with_span(index, |s| s.slow = true);
    }

    fn on_panicked(&self, _index: usize, _attempts: u32, _message: &str) {
        self.panicked.inc();
    }

    fn on_done(&self, index: usize, worker: usize, _host_nanos: u64, attempts: u32, ok: bool) {
        self.done.inc();
        if !ok {
            self.failed.inc();
        }
        let now = self.nanos();
        self.with_span(index, |s| {
            s.worker = worker;
            s.end_nanos = now;
            s.attempts = attempts;
            s.ok = ok;
        });
        let done = self.finished.fetch_add(1, Ordering::SeqCst) + 1;
        self.heartbeat(done);
    }
}

/// Disjoint wall-clock attribution (DESIGN.md §15): each `mark` closes
/// the segment since the previous mark, so the per-phase nanos sum to
/// `total_nanos()` exactly by construction.
struct PhaseClock {
    t0: Instant,
    last: Instant,
    phases: Vec<CampaignPhase>,
}

impl PhaseClock {
    fn start() -> PhaseClock {
        let now = Instant::now();
        PhaseClock {
            t0: now,
            last: now,
            phases: Vec::new(),
        }
    }

    fn mark(&mut self, name: &str) {
        let now = Instant::now();
        self.phases.push(CampaignPhase {
            name: name.to_string(),
            host_nanos: now.duration_since(self.last).as_nanos() as u64,
        });
        self.last = now;
    }

    fn total_nanos(&self) -> u64 {
        self.last.duration_since(self.t0).as_nanos() as u64
    }
}

/// `"3, 7, 11"` — the summary-line list form for job indices.
fn fmt_indices(indices: &[usize]) -> String {
    indices
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(", ")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--check") {
        if args.len() < 2 {
            usage_error("--check needs at least one file");
        }
        check(&args[1..]);
    }

    let (jobs, rest) = match par::parse_jobs_flag(&args) {
        Ok(v) => v,
        Err(e) => usage_error(&e),
    };
    let mut file: Option<String> = None;
    let mut out_dir = PathBuf::from("results");
    let mut scale_override: Option<Scale> = None;
    let mut store_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut verify: usize = 0;
    let mut retries: u32 = 1;
    let mut watchdog_ms: Option<u64> = None;
    let mut progress: Option<ProgressMode> = None;
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(d) => out_dir = PathBuf::from(d),
                None => usage_error("--out needs a directory"),
            },
            "--scale" => match it.next().map(String::as_str) {
                Some("small") => scale_override = Some(Scale::small()),
                Some("paper") => scale_override = Some(Scale::paper()),
                Some(other) => usage_error(&format!("unknown scale {other:?} (small|paper)")),
                None => usage_error("--scale needs a preset (small|paper)"),
            },
            "--store" => match it.next() {
                Some(d) => store_dir = Some(PathBuf::from(d)),
                None => usage_error("--store needs a directory"),
            },
            "--resume" => resume = true,
            "--verify" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => verify = n,
                _ => usage_error("--verify needs a sample count"),
            },
            "--retries" => match it.next().map(|v| v.parse::<u32>()) {
                Some(Ok(n)) if n >= 1 => retries = n,
                _ => usage_error("--retries needs a count of at least 1"),
            },
            "--watchdog" => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) if ms >= 1 => watchdog_ms = Some(ms),
                _ => usage_error("--watchdog needs a timeout in milliseconds"),
            },
            "--progress" | "--progress=human" => progress = Some(ProgressMode::Human),
            "--progress=jsonl" => progress = Some(ProgressMode::Jsonl),
            other if other.starts_with("--progress=") => {
                usage_error(&format!("unknown progress mode {other:?} (human|jsonl)"))
            }
            other if other.starts_with("--") => {
                usage_error(&format!("unrecognized flag {other}"))
            }
            other => {
                if file.replace(other.to_string()).is_some() {
                    usage_error("exactly one scenario file is expected");
                }
            }
        }
    }
    let Some(file) = file else {
        usage_error("a scenario file is required");
    };
    if (resume || verify > 0) && store_dir.is_none() {
        usage_error("--resume and --verify require --store DIR");
    }

    // Phase attribution starts here: parse → plan → simulate → store-io
    // → export, as disjoint wall-clock segments (DESIGN.md §15).
    let mut clock = PhaseClock::start();
    let text = fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("tartan_run: {file}: {e}");
        std::process::exit(1);
    });
    let spec = match ScenarioSpec::from_json(&text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{file}: {e}");
            std::process::exit(1);
        }
    };
    clock.mark("parse");
    let plan = match spec.expand() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{file}: {e}");
            std::process::exit(1);
        }
    };

    let mut params: ExperimentParams = spec.base_params().into();
    if let Some(mut scale) = scale_override {
        spec.params.apply_adjusts(&mut scale);
        params.scale = scale;
    }

    let store = store_dir.map(|dir| {
        ResultStore::open(&dir).unwrap_or_else(|e| die(&e.path, e.reason))
    });
    // Content addresses: SHA-256 of each job's canonical rendering
    // (config + machine + software + scale + steps + seed + schema
    // versions; labels deliberately excluded — see DESIGN.md §14).
    let run_params: RunParams = params.into();
    let keys: Vec<String> = plan
        .jobs
        .iter()
        .map(|job| sha256_hex(job.cache_key_text(&run_params).as_bytes()))
        .collect();

    if let Some(title) = &spec.title {
        println!("{title}");
    }
    println!(
        "{}: {} jobs in {} group(s), steps {}, seed {}",
        spec.name,
        plan.jobs.len(),
        plan.groups.len(),
        params.steps,
        params.seed
    );

    let panic_at = env_index_set("TARTAN_RUN_PANIC_AT");
    let exit_after: Option<usize> = std::env::var("TARTAN_RUN_EXIT_AFTER")
        .ok()
        .and_then(|v| v.parse().ok());
    let completed = AtomicUsize::new(0);
    clock.mark("plan");

    // Worker count the pool will actually use — also the trace's tracks.
    let workers = jobs.max(1).min(plan.jobs.len().max(1));
    let registry = MetricsRegistry::new();
    registry.gauge("campaign.total_jobs").set(plan.jobs.len() as u64);
    registry.gauge("campaign.workers").set(workers as u64);
    let observer = ProgressObserver::new(&registry, clock.t0, plan.jobs.len(), progress);
    let cached_ctr = observer.cached.clone();

    let campaign = Instant::now();
    let policy = par::RetryPolicy {
        attempts: retries,
        backoff: std::time::Duration::from_millis(10),
        watchdog: watchdog_ms.map(Duration::from_millis),
    };
    let report = par::try_par_map_indexed_observed(jobs, plan.jobs.len(), &policy, &observer, |i| {
        let job = &plan.jobs[i];
        if panic_at.contains(&i) {
            panic!("injected test panic at job {i}");
        }
        let config = job.config.as_str();
        let result = store
            .as_ref()
            .filter(|_| resume)
            .and_then(|s| match s.get(&keys[i]) {
                Ok(Some(payload)) => {
                    let parsed = parse_payload(&payload, job.robot.name(), config);
                    if parsed.is_none() {
                        // Hash-valid but semantically wrong for this job
                        // (stale key scheme, hand-edited entry): self-heal.
                        eprintln!(
                            "tartan_run: store entry {} does not describe job {i}; quarantining",
                            &keys[i][..12]
                        );
                        let _ = s.quarantine(&keys[i]);
                    }
                    parsed
                }
                Ok(None) => None,
                Err(e) => {
                    eprintln!("tartan_run: {e}; re-running job {i}");
                    None
                }
            });
        let result = result.unwrap_or_else(|| {
            let out = run_robot(job.robot, job.machine.clone(), job.software, &params);
            let fresh = JobResult {
                record: out.to_run_stats(&job.config).to_json_record(),
                robot: out.robot.to_string(),
                wall_cycles: out.wall_cycles,
                instructions: out.instructions,
                l2_demand_misses: out.stats.l2.demand_misses(),
                quality: format!("{}", out.quality),
                l2_miss_pct: Some(100.0 * out.stats.l2.miss_ratio()),
                cached: false,
            };
            if let Some(s) = &store {
                // Commit immediately — a kill after this point loses
                // nothing this job computed.
                if let Err(e) = s.put(&keys[i], &render_payload(&fresh, config)) {
                    eprintln!("tartan_run: {e}; result kept in memory only");
                }
            }
            fresh
        });
        if result.cached {
            cached_ctr.inc();
        }
        let done = completed.fetch_add(1, Ordering::SeqCst) + 1;
        if exit_after.is_some_and(|n| done >= n) {
            // Simulated kill for the resume tests: completed jobs are
            // already committed to the store; everything else is lost.
            std::process::exit(3);
        }
        result
    });
    let host_secs = campaign.elapsed().as_secs_f64();
    clock.mark("simulate");
    // Snapshot these before `report.results` is moved out below.
    let retried_jobs = report.retried();
    let total_retries = report.total_retries();

    let mut results: Vec<Option<JobResult>> = Vec::with_capacity(plan.jobs.len());
    let mut failures: Vec<JobFailureStats> = Vec::new();
    for (i, r) in report.results.into_iter().enumerate() {
        let job = &plan.jobs[i];
        match r {
            Ok(res) => results.push(Some(res)),
            Err(f) => {
                eprintln!(
                    "tartan_run: job {i} ({} {} {:?}) failed after {} attempt(s): {}",
                    job.robot.name(),
                    job.config.as_str(),
                    job.label,
                    f.attempts,
                    f.message
                );
                failures.push(JobFailureStats {
                    robot: job.robot.name().to_string(),
                    config: job.config.as_str().to_string(),
                    label: job.label.clone(),
                    group: plan.groups[job.group].name.clone(),
                    attempts: f.attempts,
                    message: f.message,
                });
                results.push(None);
            }
        }
    }

    // --verify N: re-execute a seeded sample of the cache-served jobs and
    // demand byte-identical records. A mismatch means the entry lied about
    // its content (or determinism broke) — quarantine, repair, fail.
    let mut verify_mismatches = 0usize;
    if verify > 0 {
        let mut cached_idx: Vec<usize> = results
            .iter()
            .enumerate()
            .filter(|(_, r)| r.as_ref().is_some_and(|r| r.cached))
            .map(|(i, _)| i)
            .collect();
        let mut rng = params.seed ^ 0x9E37_79B9_7F4A_7C15;
        let sample = verify.min(cached_idx.len());
        for _ in 0..sample {
            let pick = (xorshift64star(&mut rng) % cached_idx.len() as u64) as usize;
            let i = cached_idx.swap_remove(pick);
            let job = &plan.jobs[i];
            let out = run_robot(job.robot, job.machine.clone(), job.software, &params);
            let fresh = JobResult {
                record: out.to_run_stats(&job.config).to_json_record(),
                robot: out.robot.to_string(),
                wall_cycles: out.wall_cycles,
                instructions: out.instructions,
                l2_demand_misses: out.stats.l2.demand_misses(),
                quality: format!("{}", out.quality),
                l2_miss_pct: Some(100.0 * out.stats.l2.miss_ratio()),
                cached: false,
            };
            let cached = results[i].as_ref().expect("sampled index is Some");
            if cached.record == fresh.record {
                println!("verified job {i}: cached record matches re-execution");
            } else {
                verify_mismatches += 1;
                eprintln!(
                    "tartan_run: verify mismatch on job {i} ({} {}): cached record differs from re-execution; repairing entry",
                    job.robot.name(),
                    job.config.as_str()
                );
                if let Some(s) = &store {
                    let _ = s.quarantine(&keys[i]);
                    if let Err(e) = s.put(&keys[i], &render_payload(&fresh, job.config.as_str())) {
                        eprintln!("tartan_run: {e}");
                    }
                }
                results[i] = Some(fresh);
            }
        }
        if sample < verify {
            println!(
                "verify: only {sample} cached result(s) available (asked for {verify})"
            );
        }
    }
    clock.mark("store-io");

    let mut records: Vec<String> = Vec::with_capacity(plan.jobs.len());
    let mut csv =
        String::from("robot,config,label,group,wall_cycles,instructions,l2_demand_misses,quality\n");
    let cached_served = results
        .iter()
        .filter(|r| r.as_ref().is_some_and(|r| r.cached))
        .count();
    for (job, result) in plan.jobs.iter().zip(&results) {
        let Some(out) = result else { continue };
        match out.l2_miss_pct {
            Some(pct) => println!(
                "{:<10} {:<16} {:<14} {:>12} cycles  L2 miss {:>5.1}%  quality {}",
                out.robot,
                job.config.as_str(),
                job.label,
                out.wall_cycles,
                pct,
                out.quality,
            ),
            None => println!(
                "{:<10} {:<16} {:<14} {:>12} cycles  (cached)",
                out.robot,
                job.config.as_str(),
                job.label,
                out.wall_cycles,
            ),
        }
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            csv_field(&out.robot),
            csv_field(job.config.as_str()),
            csv_field(&job.label),
            csv_field(&plan.groups[job.group].name),
            out.wall_cycles,
            out.instructions,
            out.l2_demand_misses,
            out.quality,
        ));
        records.push(out.record.clone());
    }

    let json = stats_export_json("tartan_run", &records, &failures);
    if let Err(e) = validate_stats_json(&json) {
        eprintln!("tartan_run: stats export violates the schema: {e}");
        std::process::exit(1);
    }
    if let Err(e) = fs::create_dir_all(&out_dir) {
        die(&out_dir, e);
    }
    let stats_path = out_dir.join(format!("{}.stats.json", spec.name));
    let csv_path = out_dir.join(format!("{}.csv", spec.name));
    if let Err(e) = fs::write(&stats_path, &json) {
        die(&stats_path, e);
    }
    if let Err(e) = fs::write(&csv_path, &csv) {
        die(&csv_path, e);
    }
    clock.mark("export");
    println!(
        "wrote {} and {} ({} runs, {} cached, {} failed, jobs {jobs}, {host_secs:.2} s host)",
        stats_path.display(),
        csv_path.display(),
        records.len(),
        cached_served,
        failures.len(),
    );

    // Store summary (satellite of DESIGN.md §15): campaign-lifetime op
    // counts from this handle, folded into the metrics snapshot.
    if let Some(s) = &store {
        let c = s.counts();
        registry.counter("store.hit").add(c.hits);
        registry.counter("store.miss").add(c.misses);
        registry.counter("store.put").add(c.puts);
        registry.counter("store.quarantine").add(c.quarantines);
        println!(
            "store: {} hit(s), {} miss(es), {} put(s), {} quarantine(s)",
            c.hits, c.misses, c.puts, c.quarantines
        );
    }
    if !retried_jobs.is_empty() {
        println!(
            "retried jobs ({total_retries} extra attempt(s)): {}",
            fmt_indices(&retried_jobs)
        );
    }
    if !report.slow.is_empty() {
        println!("watchdog-slow jobs: {}", fmt_indices(&report.slow));
    }

    if progress.is_some() {
        let mut spans = observer.into_spans();
        for (i, span) in spans.iter_mut().enumerate() {
            let job = &plan.jobs[i];
            span.robot = job.robot.name().to_string();
            span.config = job.config.as_str().to_string();
            span.label = job.label.clone();
            span.cached = results[i].as_ref().is_some_and(|r| r.cached);
        }
        let profile = CampaignProfile {
            generator: "tartan_run".to_string(),
            scenario: spec.name.clone(),
            jobs: workers as u64,
            total_host_nanos: clock.total_nanos(),
            phases: clock.phases.clone(),
            spans,
            metrics: registry.snapshot(),
        };
        let profile_json = profile.to_json();
        if let Err(e) = validate_campaign_profile_json(&profile_json) {
            eprintln!("tartan_run: campaign profile violates the schema: {e}");
            std::process::exit(1);
        }
        let profile_path = out_dir.join(format!("{}.campaign_profile.json", spec.name));
        if let Err(e) = fs::write(&profile_path, &profile_json) {
            die(&profile_path, e);
        }
        let trace = campaign_trace_json(&spec.name, workers, &profile.spans);
        let trace_path = out_dir.join(format!("{}.campaign_trace.json", spec.name));
        if let Err(e) = fs::write(&trace_path, &trace) {
            die(&trace_path, e);
        }
        println!(
            "wrote {} and {}",
            profile_path.display(),
            trace_path.display()
        );
    }
    if !failures.is_empty() || verify_mismatches > 0 {
        std::process::exit(1);
    }
}
