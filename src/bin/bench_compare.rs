//! `bench_compare`: diffs two `BENCH_host.json` documents and fails on a
//! host-time regression.
//!
//! ```text
//! bench_compare BASELINE CURRENT [--threshold PCT] [--warn-only]
//! ```
//!
//! Host timings are noisy — a loaded CI runner can easily be 20% slower
//! than the machine that produced the baseline — so the check is built
//! around two noise-resistant figures rather than any single run:
//!
//! * the **median per-run `host_nanos` ratio** across runs matched by
//!   `(robot, config)` — the median ignores one or two outlier runs that
//!   hit a scheduler hiccup, and a ratio-of-pairs cancels run-matrix
//!   changes in a way comparing totals would not;
//! * the **campaign `runs_per_sec` ratio** — the end-to-end throughput
//!   figure the bench prints, sensitive to regressions that per-run
//!   medians smear (e.g. one robot getting 10× slower).
//!
//! When **both** documents carry the v3 `warm` section (a cold/warm split
//! from `bench_tier1 --store`), the same two figures are compared for the
//! warm (store-served) pass as well, so a store-path slowdown is caught
//! even when simulation time is unchanged. A document whose warm rows
//! lack the v3 fields (`robot`/`config`/`host_nanos`/`cold_host_nanos`)
//! is rejected with a single-line error and exit 2 — never a panic. A
//! warm section present in only one input is reported and skipped: the
//! cold figures still compare.
//!
//! A regression is declared when either figure degrades by more than
//! `--threshold` percent (default 50 — generous on purpose: the gate is
//! for 2× blowups, not 5% jitter). `--warn-only` reports but always exits
//! 0 on a regression — the CI mode, where runner noise makes a hard gate
//! flaky (see ci.yml).
//!
//! Exit codes: 0 no regression, 1 regression, 2 usage / unreadable or
//! malformed input.

use std::fs;

use tartan::campaign::cli;
use tartan::scenario::json::{parse as parse_json, JsonValue};

const USAGE: &str = "usage: bench_compare BASELINE CURRENT [--threshold PCT] [--warn-only]";

fn usage_error(msg: &str) -> ! {
    cli::usage_error("bench_compare", USAGE, msg)
}

/// One run's identity and host time, pulled out of a `runs` array entry.
struct RunTime {
    robot: String,
    config: String,
    host_nanos: f64,
}

/// The warm (store-served) half of a v3 cold/warm split.
struct WarmDoc {
    total_host_nanos: f64,
    runs: Vec<RunTime>,
}

impl WarmDoc {
    fn runs_per_sec(&self) -> f64 {
        if self.total_host_nanos > 0.0 {
            self.runs.len() as f64 / (self.total_host_nanos / 1e9)
        } else {
            0.0
        }
    }
}

/// The slice of a `BENCH_host.json` document this tool compares.
struct BenchDoc {
    runs_per_sec: f64,
    runs: Vec<RunTime>,
    warm: Option<WarmDoc>,
}

fn num(v: Option<&JsonValue>) -> Option<f64> {
    match v {
        Some(JsonValue::Num(raw)) => raw.parse().ok(),
        _ => None,
    }
}

fn string(v: Option<&JsonValue>) -> Option<String> {
    match v {
        Some(JsonValue::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

/// Loads and dissects one `BENCH_host.json`. Tolerates schema-version
/// drift on purpose: a baseline captured under an older stats schema is
/// still a valid timing reference as long as the timing keys are present.
fn load(path: &str) -> BenchDoc {
    let text = fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("bench_compare: {path}: {e}");
        std::process::exit(2);
    });
    let doc = parse_json(&text).unwrap_or_else(|e| {
        eprintln!("bench_compare: {path}: {e}");
        std::process::exit(2);
    });
    let bad = |what: &str| -> ! { cli::input_error("bench_compare", path, what) };
    let Some(runs_per_sec) = num(doc.get("runs_per_sec")) else {
        bad("\"runs_per_sec\"");
    };
    let Some(JsonValue::Arr(entries)) = doc.get("runs") else {
        bad("\"runs\" array");
    };
    let mut runs = Vec::with_capacity(entries.len());
    for entry in entries {
        let (Some(robot), Some(config), Some(host_nanos)) = (
            string(entry.get("robot")),
            string(entry.get("config")),
            num(entry.get("host_nanos")),
        ) else {
            bad("runs[] entry (robot/config/host_nanos)");
        };
        runs.push(RunTime {
            robot,
            config,
            host_nanos,
        });
    }
    if runs.is_empty() {
        bad("\"runs\" array (empty)");
    }
    // The v3 warm section is optional, but when present it must carry the
    // fields the warm comparison divides by — a half-written row dies
    // here with a single line, not a panic in the ratio math.
    let warm = doc.get("warm").map(|section| {
        let Some(total_host_nanos) = num(section.get("total_host_nanos")) else {
            bad("warm \"total_host_nanos\"");
        };
        let Some(JsonValue::Arr(entries)) = section.get("runs") else {
            bad("warm \"runs\" array");
        };
        let mut runs = Vec::with_capacity(entries.len());
        for entry in entries {
            let (Some(robot), Some(config), Some(host_nanos), Some(_cold)) = (
                string(entry.get("robot")),
                string(entry.get("config")),
                num(entry.get("host_nanos")),
                num(entry.get("cold_host_nanos")),
            ) else {
                bad("warm runs[] entry (robot/config/host_nanos/cold_host_nanos)");
            };
            runs.push(RunTime {
                robot,
                config,
                host_nanos,
            });
        }
        if runs.is_empty() {
            bad("warm \"runs\" array (empty)");
        }
        WarmDoc {
            total_host_nanos,
            runs,
        }
    });
    BenchDoc {
        runs_per_sec,
        runs,
        warm,
    }
}

/// Median of a non-empty slice (mean of the middle two when even).
fn median(values: &mut [f64]) -> f64 {
    values.sort_by(|a, b| a.partial_cmp(b).expect("ratios are finite"));
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        (values[n / 2 - 1] + values[n / 2]) / 2.0
    }
}

/// Pairs `current` runs with `baseline` by `(robot, config)` and returns
/// the per-run host-time ratios plus the count left unmatched.
fn pair_ratios(baseline: &[RunTime], current: &[RunTime]) -> (Vec<f64>, usize) {
    let mut ratios = Vec::new();
    let mut unmatched = 0usize;
    for cur in current {
        let base = baseline
            .iter()
            .find(|b| b.robot == cur.robot && b.config == cur.config);
        match base {
            Some(b) if b.host_nanos > 0.0 => ratios.push(cur.host_nanos / b.host_nanos),
            _ => unmatched += 1,
        }
    }
    (ratios, unmatched)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut files: Vec<String> = Vec::new();
    let mut threshold_pct: f64 = 50.0;
    let mut warn_only = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => match it.next().map(|v| v.parse::<f64>()) {
                Some(Ok(p)) if p > 0.0 && p.is_finite() => threshold_pct = p,
                _ => usage_error("--threshold needs a positive percent"),
            },
            "--warn-only" => warn_only = true,
            other if other.starts_with("--") => {
                usage_error(&format!("unrecognized flag {other}"))
            }
            other => files.push(other.to_string()),
        }
    }
    let [baseline_path, current_path] = files.as_slice() else {
        usage_error("exactly two files are expected (BASELINE CURRENT)");
    };

    let baseline = load(baseline_path);
    let current = load(current_path);

    // Pair runs by (robot, config); unmatched runs are reported but never
    // counted — a grown or shrunk matrix is not by itself a regression.
    let (mut ratios, unmatched) = pair_ratios(&baseline.runs, &current.runs);
    if unmatched > 0 {
        println!("bench_compare: {unmatched} run(s) have no baseline counterpart; skipped");
    }
    if ratios.is_empty() {
        eprintln!("bench_compare: no runs match between {baseline_path} and {current_path}");
        std::process::exit(2);
    }

    let limit = 1.0 + threshold_pct / 100.0;
    let median_ratio = median(&mut ratios);
    let throughput_ratio = if current.runs_per_sec > 0.0 {
        baseline.runs_per_sec / current.runs_per_sec
    } else {
        f64::INFINITY
    };
    println!(
        "bench_compare: {} matched run(s): median host_nanos ratio {median_ratio:.3}, \
         runs/s {:.3} -> {:.3} (slowdown {throughput_ratio:.3}), threshold {limit:.2}x",
        ratios.len(),
        baseline.runs_per_sec,
        current.runs_per_sec,
    );

    let mut regressed = false;
    if median_ratio > limit {
        println!(
            "bench_compare: REGRESSION: median per-run host time grew {median_ratio:.2}x \
             (limit {limit:.2}x)"
        );
        regressed = true;
    }
    if throughput_ratio > limit {
        println!(
            "bench_compare: REGRESSION: campaign throughput fell {throughput_ratio:.2}x \
             (limit {limit:.2}x)"
        );
        regressed = true;
    }

    // Warm (store-served) comparison: same figures, same threshold, only
    // when both sides measured a warm pass.
    match (&baseline.warm, &current.warm) {
        (Some(base_warm), Some(cur_warm)) => {
            let (mut warm_ratios, warm_unmatched) =
                pair_ratios(&base_warm.runs, &cur_warm.runs);
            if warm_unmatched > 0 {
                println!(
                    "bench_compare: {warm_unmatched} warm run(s) have no baseline counterpart; skipped"
                );
            }
            if warm_ratios.is_empty() {
                println!("bench_compare: no warm runs match; warm comparison skipped");
            } else {
                let warm_median = median(&mut warm_ratios);
                let base_rps = base_warm.runs_per_sec();
                let cur_rps = cur_warm.runs_per_sec();
                let warm_slowdown = if cur_rps > 0.0 {
                    base_rps / cur_rps
                } else {
                    f64::INFINITY
                };
                println!(
                    "bench_compare: warm: {} matched run(s): median host_nanos ratio \
                     {warm_median:.3}, runs/s {base_rps:.3} -> {cur_rps:.3} \
                     (slowdown {warm_slowdown:.3})",
                    warm_ratios.len(),
                );
                if warm_median > limit {
                    println!(
                        "bench_compare: REGRESSION: median warm (store-served) host time grew \
                         {warm_median:.2}x (limit {limit:.2}x)"
                    );
                    regressed = true;
                }
                if warm_slowdown > limit {
                    println!(
                        "bench_compare: REGRESSION: warm (store-served) throughput fell \
                         {warm_slowdown:.2}x (limit {limit:.2}x)"
                    );
                    regressed = true;
                }
            }
        }
        (None, None) => {}
        _ => println!("bench_compare: warm section present in only one input; skipped"),
    }

    if !regressed {
        println!("bench_compare: OK (within threshold)");
    } else if warn_only {
        println!("bench_compare: warn-only mode, not failing the build");
    }
    if regressed && !warn_only {
        std::process::exit(1);
    }
}
