//! `tartan_gen`: coverage-guided scenario synthesis — grammar-enumerate
//! candidate scenarios, probe each one's behavioral coverage, keep the
//! novel ones, shrink every keeper, and write the corpus.
//!
//! ```text
//! tartan_gen [--seed N] [--budget N] [--out DIR] [--jobs N]
//! ```
//!
//! The pipeline (DESIGN.md §16):
//!
//! 1. **Enumerate** — `Pattern::tartan_default().select(seed, budget)`
//!    walks the grammar's cartesian space with a seeded full-period
//!    stride: `budget` distinct, structurally valid scenario specs.
//! 2. **Probe** — every spec runs end-to-end at the tiny probe scale
//!    (`Scale::probe`, milliseconds per job) and is reduced to its
//!    coverage vector: one bucketed `(robot, regime)` entry per planned
//!    job, extracted from the ordinary telemetry stats.
//! 3. **Curate** — a greedy novelty filter keeps a spec only when it
//!    contributes a coverage entry no earlier spec produced.
//! 4. **Shrink** — each keeper is minimized with the oracle's ddmin
//!    loop (fewer axes/variants/robots/adjusts, smaller multipliers,
//!    fewer steps) under the invariant that its coverage vector is
//!    unchanged and the spec still validates.
//!
//! Output: `<out>/<name>.json` per keeper (replayable with `tartan_run`,
//! validatable with `tartan_run --check`) plus `<out>/corpus_manifest.json`
//! (`corpus_schema_version` 1, see `SCHEMA.md`) recording the seed, the
//! space/enumeration statistics, and every keeper's coverage vector.
//! Stale `*.json` files in the output directory are removed first, so
//! the directory always equals the generation it claims.
//!
//! Determinism: probing fans out over `--jobs` host threads but results
//! are collected in submission order, curation is sequential, and each
//! keeper shrinks independently — the corpus tree is byte-identical for
//! any `--jobs` value and fixed `(--seed, --budget)`.
//!
//! Exit codes: 0 success; 1 I/O error or an empty corpus; 2 usage.

use std::fs;
use std::path::Path;

use tartan::campaign::cli;
use tartan::core::probe_spec;
use tartan::par;
use tartan::scenario::{
    curate, shrink_spec, CorpusEntry, CorpusManifest, CoverageVector, Pattern, ScenarioSpec,
};

const USAGE: &str = "usage: tartan_gen [--seed N] [--budget N] [--out DIR] [--jobs N]";

fn usage_error(msg: &str) -> ! {
    cli::usage_error("tartan_gen", USAGE, msg)
}

fn die(path: &Path, reason: impl std::fmt::Display) -> ! {
    cli::die("tartan_gen", path, reason)
}

fn probe(spec: &ScenarioSpec) -> Option<CoverageVector> {
    probe_spec(spec)
        .ok()
        .map(|runs| CoverageVector::from_runs(&runs))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = cli::FlagSet {
        out: true,
        default_out: "scenarios/corpus",
        help: true,
        extras: &["--seed", "--budget"],
        ..cli::FlagSet::jobs_only()
    };
    let parsed = cli::parse_args(&args, &flags).unwrap_or_else(|e| usage_error(&e));
    if parsed.help {
        println!("{USAGE}");
        return;
    }
    let jobs = parsed.jobs;
    let out = parsed.out_dir;

    let mut seed: u64 = 7;
    let mut budget: usize = 512;
    for (flag, value) in &parsed.extras {
        match flag.as_str() {
            "--seed" => {
                seed = value
                    .parse()
                    .unwrap_or_else(|e| usage_error(&format!("bad --seed: {e}")))
            }
            "--budget" => {
                budget = value
                    .parse()
                    .unwrap_or_else(|e| usage_error(&format!("bad --budget: {e}")))
            }
            _ => unreachable!("parse_args only returns declared extras"),
        }
    }
    if budget == 0 {
        usage_error("--budget must be at least 1");
    }

    // 1. Enumerate.
    let pattern = Pattern::tartan_default();
    let space = pattern.space();
    let specs = pattern.select(seed, budget);
    eprintln!(
        "tartan_gen: enumerated {} of {} points (seed {seed})",
        specs.len(),
        space
    );

    // 2. Probe (parallel, submission order).
    let probed: Vec<Option<CoverageVector>> = par::par_map(jobs, &specs, probe);

    // 3. Curate (sequential greedy novelty).
    let curated = curate(specs.into_iter().zip(probed).collect());
    eprintln!(
        "tartan_gen: kept {} ({} redundant, {} invalid)",
        curated.keepers.len(),
        curated.duplicate_coverage,
        curated.invalid
    );
    if curated.keepers.is_empty() {
        eprintln!("tartan_gen: empty corpus — nothing probed successfully");
        std::process::exit(1);
    }

    // 4. Shrink every keeper (parallel; keepers are independent).
    let shrunk: Vec<(ScenarioSpec, u64)> = par::par_map(jobs, &curated.keepers, |k| {
        let mut p = probe;
        shrink_spec(&k.spec, &k.coverage, &mut p)
    });
    let shrink_probes: u64 = shrunk.iter().map(|(_, n)| n).sum();

    // 5. Write the corpus: fresh *.json set plus the manifest.
    if let Err(e) = fs::create_dir_all(&out) {
        die(&out, e);
    }
    match fs::read_dir(&out) {
        Ok(entries) => {
            for entry in entries.flatten() {
                let path = entry.path();
                if path.extension().is_some_and(|ext| ext == "json") {
                    if let Err(e) = fs::remove_file(&path) {
                        die(&path, e);
                    }
                }
            }
        }
        Err(e) => die(&out, e),
    }
    let mut entries = Vec::with_capacity(shrunk.len());
    for (keeper, (spec, _)) in curated.keepers.iter().zip(&shrunk) {
        let file = format!("{}.json", spec.name);
        let path = out.join(&file);
        let mut text = spec.to_json();
        text.push('\n');
        if let Err(e) = fs::write(&path, text) {
            die(&path, e);
        }
        let plan = spec
            .expand()
            .unwrap_or_else(|e| die(&path, format!("shrunk spec no longer expands: {e}")));
        entries.push(CorpusEntry {
            name: spec.name.clone(),
            file,
            jobs: plan.jobs.len() as u64,
            coverage: keeper.coverage.entries().to_vec(),
        });
    }
    let manifest = CorpusManifest {
        seed,
        budget: budget as u64,
        space,
        enumerated: (budget as u64).min(space),
        invalid: curated.invalid as u64,
        kept: entries.len() as u64,
        duplicate_coverage: curated.duplicate_coverage as u64,
        shrink_probes,
        entries,
    };
    let manifest_path = out.join("corpus_manifest.json");
    let text = manifest.to_json();
    // Self-check before writing: the manifest must satisfy its own
    // validator, the same gate CI applies to the checked-in copy.
    if let Err(e) = CorpusManifest::from_json(&text) {
        die(&manifest_path, format!("generated manifest is invalid: {e}"));
    }
    if let Err(e) = fs::write(&manifest_path, text) {
        die(&manifest_path, e);
    }
    println!(
        "tartan_gen: wrote {} scenarios + corpus_manifest.json to {} ({} shrink probes)",
        manifest.kept,
        out.display(),
        shrink_probes
    );
}
