//! Tier-1 bench harness: runs all six robots on the baseline and Tartan
//! configurations at test scale and writes `results/BENCH_tier1.json` in
//! the versioned `stats.json` schema (see `SCHEMA.md`).
//!
//! CI runs this on every push and uploads the export as a workflow
//! artifact, so per-robot cycle counts, miss rates, and NPU statistics are
//! comparable across commits without rerunning anything.

use std::fs;

use tartan::core::{run_robot, ExperimentParams, MachineConfig, RobotKind, SoftwareConfig};
use tartan::sim::telemetry::{validate_stats_json, StatsExport};

fn main() {
    let params = ExperimentParams::quick();
    let mut export = StatsExport {
        generator: "bench_tier1".into(),
        runs: Vec::new(),
    };
    for kind in RobotKind::all() {
        for (config, hw, sw) in [
            (
                "baseline",
                MachineConfig::upgraded_baseline(),
                SoftwareConfig::legacy(),
            ),
            ("tartan", MachineConfig::tartan(), SoftwareConfig::approximable()),
        ] {
            let out = run_robot(kind, hw, sw, &params);
            println!(
                "{:<10} {:<9} {:>12} cycles  L2 miss {:>5.1}%  NPU {:>4}",
                out.robot,
                config,
                out.wall_cycles,
                100.0 * out.stats.l2.miss_ratio(),
                out.stats.npu_invocations,
            );
            export.runs.push(out.to_run_stats(config));
        }
    }
    let json = export.to_json();
    validate_stats_json(&json).expect("bench export must conform to the stats.json schema");
    fs::create_dir_all("results").expect("create results/");
    fs::write("results/BENCH_tier1.json", &json).expect("write results/BENCH_tier1.json");
    println!("wrote results/BENCH_tier1.json ({} runs)", export.runs.len());
}
