//! Tier-1 bench harness: runs all six robots on the baseline and Tartan
//! configurations at test scale and writes `results/BENCH_tier1.json` in
//! the versioned `stats.json` schema (see `SCHEMA.md`), plus
//! `results/BENCH_host.json` with host wall-time and throughput.
//!
//! The run matrix comes from the checked-in `scenarios/bench_tier1.json`
//! manifest and executes through the unified campaign engine
//! (DESIGN.md §18), fanning out across host cores (`--jobs N`, default:
//! all cores); results are collected in submission order, so
//! `BENCH_tier1.json` is byte-identical for any job count. CI runs this on
//! every push and uploads both exports as workflow artifacts, so per-robot
//! cycle counts, miss rates, NPU statistics, and simulator throughput are
//! comparable across commits without rerunning anything.
//!
//! `--store DIR` adds a cold/warm split: the cold pass seeds the result
//! store (records keyed exactly like `tartan_run`'s), then a warm pass
//! re-runs the same campaign with the engine's resume path so the matrix
//! is served entirely from the store, and `BENCH_host.json` gains a
//! `warm` section so cache speedup is a measured number instead of being
//! silently mixed into one figure. Every invocation also appends one
//! summary line to `results/BENCH_history.jsonl` (see `SCHEMA.md`), the
//! input to `bench_compare`'s regression check.
//!
//! Exits non-zero if any run's stats fail schema validation.

use std::fs::{self, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::time::{SystemTime, UNIX_EPOCH};

use tartan::campaign::{cli, Campaign, CampaignOptions, CampaignSpec, Engine, PhaseClock};
use tartan::core::experiments::manifests;
use tartan::core::{ExperimentParams, ScenarioSpec};
use tartan::sim::telemetry::{
    validate_bench_history_line, validate_host_bench_json, validate_stats_json, BenchHistoryLine,
    HostBenchExport, HostRunStats, StatsExport, WarmBenchStats,
};

const USAGE: &str = "usage: bench_tier1 [--jobs N] [--store DIR]";

/// Single-line I/O failure in the scenario layer's `path: reason` style.
fn die(path: &Path, reason: impl std::fmt::Display) -> ! {
    cli::die("bench_tier1", path, reason)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let flags = cli::FlagSet {
        store: true,
        ..cli::FlagSet::jobs_only()
    };
    let parsed = cli::parse_args(&args, &flags)
        .unwrap_or_else(|e| cli::usage_error("bench_tier1", USAGE, &e));
    let jobs = parsed.jobs;

    let spec = ScenarioSpec::from_json(manifests::BENCH_TIER1)
        .expect("checked-in bench scenario must parse");
    let plan = spec.expand().expect("checked-in bench scenario must expand");
    // The bench matrix always runs at test scale, whatever the manifest's
    // base params say — the export must be comparable across commits.
    let campaign = Campaign {
        spec,
        plan,
        params: ExperimentParams::quick(),
    };

    // Cold pass: simulate every job fresh; with `--store` the engine also
    // seeds the store with records keyed exactly like tartan_run's.
    let engine = Engine::new(CampaignSpec {
        campaigns: vec![campaign.clone()],
        options: CampaignOptions {
            jobs,
            store: parsed.store.clone(),
            keep_outcomes: true,
            tool: "bench_tier1",
            ..CampaignOptions::default()
        },
    });
    let mut clock = PhaseClock::start();
    let report = engine
        .run(&mut clock, None)
        .unwrap_or_else(|e| die(&e.path, e.reason));
    let result = &report.campaigns[0];
    if !result.failures.is_empty() {
        std::process::exit(1);
    }
    let total_host_nanos = report.exec_host_nanos;

    let mut export = StatsExport {
        generator: "bench_tier1".into(),
        runs: Vec::new(),
        failures: Vec::new(),
    };
    let mut host = HostBenchExport {
        generator: "bench_tier1".into(),
        jobs: jobs as u64,
        total_host_nanos,
        runs: Vec::new(),
        warm: None,
    };
    let mut schema_ok = true;
    for (job, slot) in campaign.plan.jobs.iter().zip(&result.results) {
        let out = slot.as_ref().expect("failures already handled");
        let outcome = out.outcome.as_ref().expect("cold pass keeps outcomes");
        let config = job.config.as_str();
        println!(
            "{:<10} {:<9} {:>12} cycles  L2 miss {:>5.1}%  NPU {:>4}  host {:>9.2} ms",
            out.robot,
            config,
            out.wall_cycles,
            100.0 * outcome.stats.l2.miss_ratio(),
            outcome.stats.npu_invocations,
            out.host_nanos as f64 / 1e6,
        );
        let run = outcome.to_run_stats(&job.config);
        let single = StatsExport {
            generator: "bench_tier1".into(),
            runs: vec![run.clone()],
            failures: Vec::new(),
        };
        if let Err(e) = validate_stats_json(&single.to_json()) {
            eprintln!("bench_tier1: {} {config}: schema violation: {e}", out.robot);
            schema_ok = false;
        }
        host.runs.push(HostRunStats {
            robot: run.robot.clone(),
            config: run.config.clone(),
            wall_cycles: run.wall_cycles,
            host_nanos: out.host_nanos,
            cold_host_nanos: None,
        });
        export.runs.push(run);
    }

    // Cold/warm split: re-run the campaign through the engine's resume
    // path, timing the same matrix served entirely from the store.
    if parsed.store.is_some() {
        let warm_engine = Engine::new(CampaignSpec {
            campaigns: vec![campaign],
            options: CampaignOptions {
                jobs,
                store: parsed.store,
                resume: true,
                tool: "bench_tier1",
                ..CampaignOptions::default()
            },
        });
        let mut warm_clock = PhaseClock::start();
        let warm_report = warm_engine
            .run(&mut warm_clock, None)
            .unwrap_or_else(|e| die(&e.path, e.reason));
        let warm_result = &warm_report.campaigns[0];
        if !warm_result.failures.is_empty() {
            std::process::exit(1);
        }
        let mut warm = WarmBenchStats {
            total_host_nanos: warm_report.exec_host_nanos,
            runs: Vec::new(),
        };
        for (i, slot) in warm_result.results.iter().enumerate() {
            let out = slot.as_ref().expect("failures already handled");
            if !out.cached {
                eprintln!(
                    "bench_tier1: warm pass missed {} {} in the store it just seeded",
                    host.runs[i].robot, host.runs[i].config
                );
                std::process::exit(1);
            }
            warm.runs.push(HostRunStats {
                robot: host.runs[i].robot.clone(),
                config: host.runs[i].config.clone(),
                wall_cycles: host.runs[i].wall_cycles,
                host_nanos: out.host_nanos,
                // Warm rows reuse the cold pass's cycle count, so carry the
                // cold simulation time too — sim_cycles_per_host_sec divides
                // cycles by the pass that produced them, not the store fetch.
                cold_host_nanos: Some(host.runs[i].host_nanos),
            });
        }
        println!(
            "warm (store-served): {:.3} s wall, {:.2} runs/s",
            warm.total_host_nanos as f64 / 1e9,
            warm.runs_per_sec(),
        );
        host.warm = Some(warm);
    }

    let json = export.to_json();
    if let Err(e) = validate_stats_json(&json) {
        eprintln!("bench_tier1: bench export violates the stats.json schema: {e}");
        std::process::exit(1);
    }
    let host_json = host.to_json();
    if let Err(e) = validate_host_bench_json(&host_json) {
        eprintln!("bench_tier1: host export violates the BENCH_host.json schema: {e}");
        std::process::exit(1);
    }
    let results_dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(results_dir) {
        die(results_dir, e);
    }
    let tier1_path = results_dir.join("BENCH_tier1.json");
    if let Err(e) = fs::write(&tier1_path, &json) {
        die(&tier1_path, e);
    }
    let host_path = results_dir.join("BENCH_host.json");
    if let Err(e) = fs::write(&host_path, &host_json) {
        die(&host_path, e);
    }
    // Append (never rewrite) one history line per invocation, so the file
    // accumulates a local throughput trajectory for bench_compare.
    let line = BenchHistoryLine {
        generator: "bench_tier1".into(),
        timestamp_secs: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
        jobs: jobs as u64,
        runs: export.runs.len() as u64,
        total_host_nanos,
        runs_per_sec: host.runs_per_sec(),
        warm_runs_per_sec: host.warm.as_ref().map(WarmBenchStats::runs_per_sec),
    }
    .to_json_line();
    if let Err(e) = validate_bench_history_line(&line) {
        eprintln!("bench_tier1: history line violates the schema: {e}");
        std::process::exit(1);
    }
    let history_path = results_dir.join("BENCH_history.jsonl");
    if let Err(e) = OpenOptions::new()
        .create(true)
        .append(true)
        .open(&history_path)
        .and_then(|mut f| writeln!(f, "{line}"))
    {
        die(&history_path, e);
    }
    println!(
        "wrote results/BENCH_tier1.json ({} runs) and results/BENCH_host.json \
         (jobs {jobs}, {:.2} s wall, {:.2} runs/s); appended results/BENCH_history.jsonl",
        export.runs.len(),
        total_host_nanos as f64 / 1e9,
        host.runs_per_sec(),
    );
    if !schema_ok {
        std::process::exit(1);
    }
}
