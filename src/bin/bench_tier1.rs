//! Tier-1 bench harness: runs all six robots on the baseline and Tartan
//! configurations at test scale and writes `results/BENCH_tier1.json` in
//! the versioned `stats.json` schema (see `SCHEMA.md`), plus
//! `results/BENCH_host.json` with host wall-time and throughput.
//!
//! The run matrix comes from the checked-in `scenarios/bench_tier1.json`
//! manifest and fans out across host cores (`--jobs N`, default: all
//! cores); results are collected in submission order, so
//! `BENCH_tier1.json` is byte-identical for any job count. CI runs this on
//! every push and uploads both exports as workflow artifacts, so per-robot
//! cycle counts, miss rates, NPU statistics, and simulator throughput are
//! comparable across commits without rerunning anything.
//!
//! Exits non-zero if any run's stats fail schema validation.

use std::fs;
use std::path::Path;
use std::time::Instant;

use tartan::core::experiments::manifests;
use tartan::core::{run_robot, ExperimentParams, ScenarioSpec};
use tartan::par;
use tartan::sim::telemetry::{
    validate_host_bench_json, validate_stats_json, HostBenchExport, HostRunStats, StatsExport,
};

/// Single-line I/O failure in the scenario layer's `path: reason` style.
fn die(path: &Path, reason: impl std::fmt::Display) -> ! {
    eprintln!("bench_tier1: {}: {reason}", path.display());
    std::process::exit(1);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (jobs, rest) = match par::parse_jobs_flag(&args) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("bench_tier1: {e}");
            std::process::exit(2);
        }
    };
    if !rest.is_empty() {
        eprintln!("bench_tier1: unrecognized arguments {rest:?} (only --jobs N is accepted)");
        std::process::exit(2);
    }

    let params = ExperimentParams::quick();
    let spec = ScenarioSpec::from_json(manifests::BENCH_TIER1)
        .expect("checked-in bench scenario must parse");
    let plan = spec.expand().expect("checked-in bench scenario must expand");

    let campaign = Instant::now();
    let timed = par::par_map(jobs, &plan.jobs, |job| {
        let start = Instant::now();
        let out = run_robot(job.robot, job.machine.clone(), job.software, &params);
        (out, start.elapsed())
    });
    let total_host_nanos = campaign.elapsed().as_nanos() as u64;

    let mut export = StatsExport {
        generator: "bench_tier1".into(),
        runs: Vec::new(),
        failures: Vec::new(),
    };
    let mut host = HostBenchExport {
        generator: "bench_tier1".into(),
        jobs: jobs as u64,
        total_host_nanos,
        runs: Vec::new(),
    };
    let mut schema_ok = true;
    for (job, (out, elapsed)) in plan.jobs.iter().zip(&timed) {
        let config = job.config.as_str();
        println!(
            "{:<10} {:<9} {:>12} cycles  L2 miss {:>5.1}%  NPU {:>4}  host {:>9.2} ms",
            out.robot,
            config,
            out.wall_cycles,
            100.0 * out.stats.l2.miss_ratio(),
            out.stats.npu_invocations,
            elapsed.as_secs_f64() * 1e3,
        );
        let run = out.to_run_stats(&job.config);
        let single = StatsExport {
            generator: "bench_tier1".into(),
            runs: vec![run.clone()],
            failures: Vec::new(),
        };
        if let Err(e) = validate_stats_json(&single.to_json()) {
            eprintln!("bench_tier1: {} {config}: schema violation: {e}", out.robot);
            schema_ok = false;
        }
        host.runs.push(HostRunStats {
            robot: run.robot.clone(),
            config: run.config.clone(),
            wall_cycles: run.wall_cycles,
            host_nanos: elapsed.as_nanos() as u64,
        });
        export.runs.push(run);
    }

    let json = export.to_json();
    if let Err(e) = validate_stats_json(&json) {
        eprintln!("bench_tier1: bench export violates the stats.json schema: {e}");
        std::process::exit(1);
    }
    let host_json = host.to_json();
    if let Err(e) = validate_host_bench_json(&host_json) {
        eprintln!("bench_tier1: host export violates the BENCH_host.json schema: {e}");
        std::process::exit(1);
    }
    let results_dir = Path::new("results");
    if let Err(e) = fs::create_dir_all(results_dir) {
        die(results_dir, e);
    }
    let tier1_path = results_dir.join("BENCH_tier1.json");
    if let Err(e) = fs::write(&tier1_path, &json) {
        die(&tier1_path, e);
    }
    let host_path = results_dir.join("BENCH_host.json");
    if let Err(e) = fs::write(&host_path, &host_json) {
        die(&host_path, e);
    }
    println!(
        "wrote results/BENCH_tier1.json ({} runs) and results/BENCH_host.json \
         (jobs {jobs}, {:.2} s wall, {:.2} runs/s)",
        export.runs.len(),
        total_host_nanos as f64 / 1e9,
        host.runs_per_sec(),
    );
    if !schema_ok {
        std::process::exit(1);
    }
}
