#![warn(missing_docs)]

//! Deterministic host-level parallelism for simulation campaigns.
//!
//! Every figure harness, fault campaign, fuzz run, and the tier-1 bench
//! executes a (robot × config × seed) matrix of *independent,
//! deterministic* simulations. This crate fans those jobs out across host
//! cores with nothing but `std`:
//!
//! * **Scoped worker pool** — [`par_map`]/[`par_map_indexed`] spawn at most
//!   `jobs` workers inside [`std::thread::scope`], so borrowed job data
//!   needs no `'static` bound and no reference counting.
//! * **Deterministic job list** — workers pull indices from one atomic
//!   counter (work-conserving: a slow simulation never idles the other
//!   cores), but every result lands in the slot of its *submission index*.
//!   The returned `Vec` is therefore identical — element for element — to
//!   what the sequential loop would have produced, which is what keeps all
//!   CSV/JSON exports byte-identical between `jobs = 1` and `jobs = N`.
//! * **Sequential fast path** — `jobs <= 1` (or a single job) runs inline
//!   on the caller's thread: no spawn, no locks, bit-identical by
//!   construction.
//!
//! The process-wide default job count ([`default_jobs`]/[`set_default_jobs`])
//! lets deep call sites — the per-figure experiment drivers — pick up a
//! `--jobs` flag parsed at the CLI edge without threading a parameter
//! through every signature. It defaults to 1: parallelism is strictly
//! opt-in, so library users and tests see sequential behavior unless they
//! ask otherwise.
//!
//! # Examples
//!
//! ```
//! let squares = tartan_par::par_map_indexed(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide default for [`default_jobs`]; 1 = sequential.
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(1);

/// Number of host cores available to this process (≥ 1).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Sets the process-wide default job count used by [`default_jobs`] (and
/// through it the experiment drivers). Clamped to ≥ 1.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs.max(1), Ordering::SeqCst);
}

/// The process-wide default job count. 1 (sequential) unless a CLI edge
/// called [`set_default_jobs`].
pub fn default_jobs() -> usize {
    DEFAULT_JOBS.load(Ordering::SeqCst)
}

/// Parses a `--jobs N` / `--jobs=N` flag out of an argument list,
/// returning `(jobs, remaining_args)`. `--jobs 0` and an absent flag both
/// mean "auto": [`available_jobs`].
///
/// # Errors
///
/// Returns a message when the flag has a missing or non-numeric value.
pub fn parse_jobs_flag(args: &[String]) -> Result<(usize, Vec<String>), String> {
    let mut jobs = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--jobs" {
            let v = it
                .next()
                .ok_or_else(|| "flag --jobs needs a value".to_string())?;
            jobs = Some(v.parse::<usize>().map_err(|e| format!("bad --jobs: {e}"))?);
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            jobs = Some(v.parse::<usize>().map_err(|e| format!("bad --jobs: {e}"))?);
        } else {
            rest.push(arg.clone());
        }
    }
    let jobs = match jobs {
        None | Some(0) => available_jobs(),
        Some(n) => n,
    };
    Ok((jobs, rest))
}

/// Runs `count` independent jobs `f(0) .. f(count - 1)` on up to `jobs`
/// worker threads and returns their results **in submission order**.
///
/// `f` must be a pure function of its index (plus captured shared state)
/// for the parallel result to equal the sequential one; every caller in
/// this workspace passes a deterministic simulation. Panics in `f` are
/// propagated to the caller once all workers have stopped.
pub fn par_map_indexed<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(count);
    if jobs <= 1 {
        return (0..count).map(f).collect();
    }
    // One slot per submission index. Workers race on *which* jobs they run,
    // never on *where* results go, so collection order is deterministic.
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = f(i);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job index was claimed by exactly one worker")
        })
        .collect()
}

/// [`par_map_indexed`] over a slice of job descriptions: returns
/// `f(&items[0]) .. f(&items[n-1])` in item order.
pub fn par_map<I, T, F>(jobs: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map_indexed(jobs, items.len(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order() {
        // Make early jobs slow so completion order inverts submission order.
        let out = par_map_indexed(4, 16, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20 - 4 * i as u64));
            }
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let work = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7);
        let seq = par_map_indexed(1, 100, work);
        for jobs in [2, 3, 4, 8, 100, 1000] {
            assert_eq!(par_map_indexed(jobs, 100, work), seq, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_and_single_job_lists() {
        assert_eq!(par_map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_map_borrows_items() {
        let items: Vec<String> = (0..10).map(|i| format!("job{i}")).collect();
        let out = par_map(3, &items, |s| s.len());
        assert_eq!(out, vec![4; 10]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let runs: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        par_map_indexed(8, 64, |i| runs[i].fetch_add(1, Ordering::SeqCst));
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn default_jobs_round_trips() {
        assert_eq!(default_jobs(), 1);
        set_default_jobs(6);
        assert_eq!(default_jobs(), 6);
        set_default_jobs(0); // clamped
        assert_eq!(default_jobs(), 1);
    }

    #[test]
    fn jobs_flag_parses_and_strips() {
        let args: Vec<String> = ["--iters", "5", "--jobs", "3", "--out", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (jobs, rest) = parse_jobs_flag(&args).unwrap();
        assert_eq!(jobs, 3);
        assert_eq!(rest, vec!["--iters", "5", "--out", "x"]);
        let (jobs, _) = parse_jobs_flag(&["--jobs=2".to_string()]).unwrap();
        assert_eq!(jobs, 2);
        // Absent or zero → auto.
        let (auto, _) = parse_jobs_flag(&[]).unwrap();
        assert!(auto >= 1);
        let (auto0, _) = parse_jobs_flag(&["--jobs=0".to_string()]).unwrap();
        assert_eq!(auto0, auto);
        assert!(parse_jobs_flag(&["--jobs".to_string()]).is_err());
        assert!(parse_jobs_flag(&["--jobs".to_string(), "x".to_string()]).is_err());
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }
}
