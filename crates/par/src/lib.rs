#![warn(missing_docs)]

//! Deterministic host-level parallelism for simulation campaigns.
//!
//! Every figure harness, fault campaign, fuzz run, and the tier-1 bench
//! executes a (robot × config × seed) matrix of *independent,
//! deterministic* simulations. This crate fans those jobs out across host
//! cores with nothing but `std`:
//!
//! * **Scoped worker pool** — [`par_map`]/[`par_map_indexed`] spawn at most
//!   `jobs` workers inside [`std::thread::scope`], so borrowed job data
//!   needs no `'static` bound and no reference counting.
//! * **Deterministic job list** — workers pull indices from one atomic
//!   counter (work-conserving: a slow simulation never idles the other
//!   cores), but every result lands in the slot of its *submission index*.
//!   The returned `Vec` is therefore identical — element for element — to
//!   what the sequential loop would have produced, which is what keeps all
//!   CSV/JSON exports byte-identical between `jobs = 1` and `jobs = N`.
//! * **Sequential fast path** — `jobs <= 1` (or a single job) runs inline
//!   on the caller's thread: no spawn, no locks, bit-identical by
//!   construction.
//! * **Fault isolation** — [`try_par_map`]/[`try_par_map_indexed`] wrap
//!   each job in [`std::panic::catch_unwind`], so one panicking job yields
//!   a structured [`JobFailure`] in its slot while every other job still
//!   completes and returns its result. A [`RetryPolicy`] adds bounded
//!   per-job retries with linear backoff and an optional watchdog timeout
//!   that *flags* (never kills) jobs running past their deadline.
//! * **Lifecycle observability** — [`try_par_map_indexed_observed`] taps
//!   every claimed/started/retried/slow/panicked/done transition (with
//!   per-job host nanoseconds and worker ids) through a [`JobObserver`],
//!   feeding the campaign progress/metrics layer without changing any
//!   result.
//!
//! The process-wide default job count ([`default_jobs`]/[`set_default_jobs`])
//! lets deep call sites — the per-figure experiment drivers — pick up a
//! `--jobs` flag parsed at the CLI edge without threading a parameter
//! through every signature. It defaults to 1: parallelism is strictly
//! opt-in, so library users and tests see sequential behavior unless they
//! ask otherwise.
//!
//! # Examples
//!
//! ```
//! let squares = tartan_par::par_map_indexed(4, 8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//! ```

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Process-wide default for [`default_jobs`]; 1 = sequential.
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(1);

/// Number of host cores available to this process (≥ 1).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Sets the process-wide default job count used by [`default_jobs`] (and
/// through it the experiment drivers). Clamped to ≥ 1.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs.max(1), Ordering::SeqCst);
}

/// The process-wide default job count. 1 (sequential) unless a CLI edge
/// called [`set_default_jobs`].
pub fn default_jobs() -> usize {
    DEFAULT_JOBS.load(Ordering::SeqCst)
}

/// Parses a `--jobs N` / `--jobs=N` flag out of an argument list,
/// returning `(jobs, remaining_args)`. `--jobs 0` and an absent flag both
/// mean "auto": [`available_jobs`].
///
/// # Errors
///
/// Returns a message when the flag has a missing or non-numeric value.
pub fn parse_jobs_flag(args: &[String]) -> Result<(usize, Vec<String>), String> {
    let mut jobs = None;
    let mut rest = Vec::with_capacity(args.len());
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--jobs" {
            let v = it
                .next()
                .ok_or_else(|| "flag --jobs needs a value".to_string())?;
            jobs = Some(v.parse::<usize>().map_err(|e| format!("bad --jobs: {e}"))?);
        } else if let Some(v) = arg.strip_prefix("--jobs=") {
            jobs = Some(v.parse::<usize>().map_err(|e| format!("bad --jobs: {e}"))?);
        } else {
            rest.push(arg.clone());
        }
    }
    let jobs = match jobs {
        None | Some(0) => available_jobs(),
        Some(n) => n,
    };
    Ok((jobs, rest))
}

/// Runs `count` independent jobs `f(0) .. f(count - 1)` on up to `jobs`
/// worker threads and returns their results **in submission order**.
///
/// `f` must be a pure function of its index (plus captured shared state)
/// for the parallel result to equal the sequential one; every caller in
/// this workspace passes a deterministic simulation. Panics in `f` are
/// propagated to the caller once all workers have stopped.
pub fn par_map_indexed<T, F>(jobs: usize, count: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let jobs = jobs.max(1).min(count);
    if jobs <= 1 {
        return (0..count).map(f).collect();
    }
    // One slot per submission index. Workers race on *which* jobs they run,
    // never on *where* results go, so collection order is deterministic.
    let slots: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                let result = f(i);
                // Recover from poisoning: if a sibling worker panicked while
                // holding a lock, the stored value is still intact — taking
                // it keeps one job failure from masquerading as another's.
                *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|p| p.into_inner())
                .expect("every job index was claimed by exactly one worker")
        })
        .collect()
}

/// [`par_map_indexed`] over a slice of job descriptions: returns
/// `f(&items[0]) .. f(&items[n-1])` in item order.
pub fn par_map<I, T, F>(jobs: usize, items: &[I], f: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    par_map_indexed(jobs, items.len(), |i| f(&items[i]))
}

/// Observer for per-job lifecycle events inside a fault-isolated campaign
/// ([`try_par_map_indexed_observed`]).
///
/// Every method has a no-op default, so an observer implements only what
/// it needs. Methods are called from worker threads (and `on_slow` also
/// from the watchdog thread) — implementations must be cheap and
/// `Sync`-safe; the campaign observability layer backs them with atomic
/// counters. Events never affect results: an observed campaign returns
/// exactly what an unobserved one would.
///
/// Event order per job: `on_claimed` → `on_started` (once per attempt) →
/// zero or more `on_retried` → optionally `on_panicked` → `on_done`.
/// `on_slow` can interleave at any point after the first `on_started`.
pub trait JobObserver: Sync {
    /// Worker `worker` (0-based) pulled job `index` off the queue.
    fn on_claimed(&self, index: usize, worker: usize) {
        let _ = (index, worker);
    }

    /// Attempt `attempt` (1-based) of job `index` began executing.
    fn on_started(&self, index: usize, attempt: u32) {
        let _ = (index, attempt);
    }

    /// Attempt `attempt` of job `index` panicked with `message`, and
    /// another attempt will follow.
    fn on_retried(&self, index: usize, attempt: u32, message: &str) {
        let _ = (index, attempt, message);
    }

    /// The watchdog flagged job `index` as running past its deadline
    /// (`elapsed` so far). Fires at most once per job.
    fn on_slow(&self, index: usize, elapsed: Duration) {
        let _ = (index, elapsed);
    }

    /// Job `index` exhausted all `attempts` attempts; `message` is the
    /// final panic payload. `on_done` still follows with `ok = false`.
    fn on_panicked(&self, index: usize, attempts: u32, message: &str) {
        let _ = (index, attempts, message);
    }

    /// Job `index` finished on worker `worker` after `attempts` attempts
    /// and `host_nanos` of host time (all attempts plus retry backoff).
    fn on_done(&self, index: usize, worker: usize, host_nanos: u64, attempts: u32, ok: bool) {
        let _ = (index, worker, host_nanos, attempts, ok);
    }
}

/// A [`JobObserver`] that ignores every event — the default for the
/// unobserved entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl JobObserver for NoopObserver {}

/// A job that did not produce a result: it panicked on every attempt the
/// [`RetryPolicy`] allowed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Submission index of the failed job.
    pub index: usize,
    /// How many attempts were made (≥ 1).
    pub attempts: u32,
    /// Panic message of the final attempt.
    pub message: String,
}

/// Failure-handling policy for [`try_par_map_indexed`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum attempts per job (≥ 1; 1 = no retry).
    pub attempts: u32,
    /// Base sleep before retry `n` (the actual sleep is `backoff * n`,
    /// i.e. linear backoff). [`Duration::ZERO`] retries immediately.
    pub backoff: Duration,
    /// If set, jobs running longer than this are *flagged* in
    /// [`TryReport::slow`] (and noted on stderr mid-flight by a watchdog
    /// thread) — never killed: a deterministic simulation that is slow is
    /// still making progress.
    pub watchdog: Option<Duration>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 1,
            backoff: Duration::ZERO,
            watchdog: None,
        }
    }
}

/// Outcome of a fault-isolated campaign: per-job results in submission
/// order plus the indices the watchdog flagged as slow.
#[derive(Debug)]
pub struct TryReport<T> {
    /// One entry per job, in submission order: the job's value, or a
    /// [`JobFailure`] if every attempt panicked.
    pub results: Vec<Result<T, JobFailure>>,
    /// Submission indices whose runtime exceeded the watchdog timeout,
    /// sorted ascending. Flagged jobs still ran to completion (or failure)
    /// and their `results` entries are valid.
    pub slow: Vec<usize>,
    /// Execution attempts per job, in submission order (all ≥ 1; an entry
    /// > 1 means the job was retried).
    pub attempts: Vec<u32>,
}

impl<T> TryReport<T> {
    /// The failures, in submission order.
    pub fn failures(&self) -> Vec<&JobFailure> {
        self.results.iter().filter_map(|r| r.as_ref().err()).collect()
    }

    /// Whether every job produced a value.
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(Result::is_ok)
    }

    /// Submission indices that needed more than one attempt (whether they
    /// eventually succeeded or not), sorted ascending.
    pub fn retried(&self) -> Vec<usize> {
        self.attempts
            .iter()
            .enumerate()
            .filter(|(_, &a)| a > 1)
            .map(|(i, _)| i)
            .collect()
    }

    /// Total retry attempts across the campaign: attempts beyond each
    /// job's first.
    pub fn total_retries(&self) -> u64 {
        self.attempts.iter().map(|&a| u64::from(a) - 1).sum()
    }
}

/// Best-effort human-readable panic payload (`&str` / `String` payloads,
/// which is what `panic!` produces; anything else gets a placeholder).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Runs job `i` under `catch_unwind` with the policy's retry budget.
/// Returns the result plus the number of attempts actually made.
fn run_isolated<T, F, O>(
    i: usize,
    policy: &RetryPolicy,
    observer: &O,
    f: &F,
) -> (Result<T, JobFailure>, u32)
where
    F: Fn(usize) -> T + Sync,
    O: JobObserver + ?Sized,
{
    let attempts = policy.attempts.max(1);
    let mut last = String::new();
    for attempt in 1..=attempts {
        observer.on_started(i, attempt);
        match catch_unwind(AssertUnwindSafe(|| f(i))) {
            Ok(v) => return (Ok(v), attempt),
            Err(payload) => {
                last = panic_message(payload.as_ref());
                if attempt < attempts {
                    observer.on_retried(i, attempt, &last);
                    if !policy.backoff.is_zero() {
                        std::thread::sleep(policy.backoff * attempt);
                    }
                }
            }
        }
    }
    observer.on_panicked(i, attempts, &last);
    (
        Err(JobFailure {
            index: i,
            attempts,
            message: last,
        }),
        attempts,
    )
}

/// Fault-isolated [`par_map_indexed`]: runs `count` jobs on up to `jobs`
/// workers, isolating each job with [`catch_unwind`]. A panicking job
/// records a [`JobFailure`] in its submission-order slot — it never aborts
/// the pool, and every other job still completes. Retries and the watchdog
/// timeout come from `policy`.
///
/// Results (and failures) land in submission order, so successful entries
/// are byte-identical to what a sequential run would produce.
pub fn try_par_map_indexed<T, F>(
    jobs: usize,
    count: usize,
    policy: &RetryPolicy,
    f: F,
) -> TryReport<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_par_map_indexed_observed(jobs, count, policy, &NoopObserver, f)
}

/// [`try_par_map_indexed`] with per-job lifecycle events delivered to
/// `observer` (see [`JobObserver`] for the event order). The observer is
/// purely a tap: results, ordering, and failure handling are identical to
/// the unobserved call.
pub fn try_par_map_indexed_observed<T, F, O>(
    jobs: usize,
    count: usize,
    policy: &RetryPolicy,
    observer: &O,
    f: F,
) -> TryReport<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
    O: JobObserver + ?Sized,
{
    let jobs = jobs.max(1).min(count.max(1));
    let epoch = Instant::now();
    // starts[i] holds (millis since epoch) + 1 while job i is running; 0 =
    // not running. The watchdog samples these without stopping anyone.
    let starts: Vec<AtomicU64> = (0..count).map(|_| AtomicU64::new(0)).collect();
    let slow: Vec<AtomicBool> = (0..count).map(|_| AtomicBool::new(false)).collect();
    let attempts_made: Vec<AtomicU32> = (0..count).map(|_| AtomicU32::new(0)).collect();

    let flag_if_slow = |i: usize, elapsed: Duration| {
        if let Some(limit) = policy.watchdog {
            if elapsed > limit && !slow[i].swap(true, Ordering::SeqCst) {
                eprintln!(
                    "tartan-par: job {i} exceeded the {:.1}s watchdog ({:.1}s); still running to completion",
                    limit.as_secs_f64(),
                    elapsed.as_secs_f64()
                );
                observer.on_slow(i, elapsed);
            }
        }
    };

    let run_job = |i: usize, worker: usize| {
        observer.on_claimed(i, worker);
        let begun = epoch.elapsed();
        starts[i].store(begun.as_millis() as u64 + 1, Ordering::SeqCst);
        let (result, attempts) = run_isolated(i, policy, observer, &f);
        starts[i].store(0, Ordering::SeqCst);
        let elapsed = epoch.elapsed() - begun;
        // Post-completion check covers the sequential path (no watchdog
        // thread) and jobs that finished between watchdog ticks.
        flag_if_slow(i, elapsed);
        attempts_made[i].store(attempts, Ordering::SeqCst);
        observer.on_done(i, worker, elapsed.as_nanos() as u64, attempts, result.is_ok());
        result
    };

    let results: Vec<Result<T, JobFailure>> = if jobs <= 1 {
        (0..count).map(|i| run_job(i, 0)).collect()
    } else {
        let slots: Vec<Mutex<Option<Result<T, JobFailure>>>> =
            (0..count).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            if let Some(limit) = policy.watchdog {
                let (stop, starts, flag_if_slow) = (&stop, &starts, &flag_if_slow);
                scope.spawn(move || {
                    let tick = (limit / 4).min(Duration::from_millis(50)).max(Duration::from_millis(1));
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(tick);
                        let now = epoch.elapsed().as_millis() as u64;
                        for (i, s) in starts.iter().enumerate() {
                            let begun = s.load(Ordering::SeqCst);
                            if begun != 0 {
                                flag_if_slow(i, Duration::from_millis(now.saturating_sub(begun - 1)));
                            }
                        }
                    }
                });
            }
            let mut workers = Vec::with_capacity(jobs);
            for w in 0..jobs {
                let (run_job, slots, next) = (&run_job, &slots, &next);
                workers.push(scope.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    let result = run_job(i, w);
                    *slots[i].lock().unwrap_or_else(|p| p.into_inner()) = Some(result);
                }));
            }
            for w in workers {
                let _ = w.join();
            }
            stop.store(true, Ordering::SeqCst);
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap_or_else(|p| p.into_inner())
                    .expect("every job index was claimed by exactly one worker")
            })
            .collect()
    };

    let slow: Vec<usize> = slow
        .iter()
        .enumerate()
        .filter(|(_, s)| s.load(Ordering::SeqCst))
        .map(|(i, _)| i)
        .collect();
    let attempts = attempts_made
        .iter()
        .map(|a| a.load(Ordering::SeqCst).max(1))
        .collect();
    TryReport {
        results,
        slow,
        attempts,
    }
}

/// Fault-isolated [`par_map`] with the default [`RetryPolicy`] (single
/// attempt, no watchdog): one panicking item yields a [`JobFailure`] in
/// its slot while every other item's result is still returned.
pub fn try_par_map<I, T, F>(jobs: usize, items: &[I], f: F) -> TryReport<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I) -> T + Sync,
{
    try_par_map_indexed(jobs, items.len(), &RetryPolicy::default(), |i| f(&items[i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_submission_order() {
        // Make early jobs slow so completion order inverts submission order.
        let out = par_map_indexed(4, 16, |i| {
            if i < 4 {
                std::thread::sleep(std::time::Duration::from_millis(20 - 4 * i as u64));
            }
            i * 10
        });
        assert_eq!(out, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_equals_sequential() {
        let work = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(7);
        let seq = par_map_indexed(1, 100, work);
        for jobs in [2, 3, 4, 8, 100, 1000] {
            assert_eq!(par_map_indexed(jobs, 100, work), seq, "jobs = {jobs}");
        }
    }

    #[test]
    fn empty_and_single_job_lists() {
        assert_eq!(par_map_indexed(4, 0, |i| i), Vec::<usize>::new());
        assert_eq!(par_map_indexed(4, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn par_map_borrows_items() {
        let items: Vec<String> = (0..10).map(|i| format!("job{i}")).collect();
        let out = par_map(3, &items, |s| s.len());
        assert_eq!(out, vec![4; 10]);
    }

    #[test]
    fn every_job_runs_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let runs: Vec<AtomicU64> = (0..64).map(|_| AtomicU64::new(0)).collect();
        par_map_indexed(8, 64, |i| runs[i].fetch_add(1, Ordering::SeqCst));
        for (i, r) in runs.iter().enumerate() {
            assert_eq!(r.load(Ordering::SeqCst), 1, "job {i}");
        }
    }

    #[test]
    fn default_jobs_round_trips() {
        assert_eq!(default_jobs(), 1);
        set_default_jobs(6);
        assert_eq!(default_jobs(), 6);
        set_default_jobs(0); // clamped
        assert_eq!(default_jobs(), 1);
    }

    #[test]
    fn jobs_flag_parses_and_strips() {
        let args: Vec<String> = ["--iters", "5", "--jobs", "3", "--out", "x"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (jobs, rest) = parse_jobs_flag(&args).unwrap();
        assert_eq!(jobs, 3);
        assert_eq!(rest, vec!["--iters", "5", "--out", "x"]);
        let (jobs, _) = parse_jobs_flag(&["--jobs=2".to_string()]).unwrap();
        assert_eq!(jobs, 2);
        // Absent or zero → auto.
        let (auto, _) = parse_jobs_flag(&[]).unwrap();
        assert!(auto >= 1);
        let (auto0, _) = parse_jobs_flag(&["--jobs=0".to_string()]).unwrap();
        assert_eq!(auto0, auto);
        assert!(parse_jobs_flag(&["--jobs".to_string()]).is_err());
        assert!(parse_jobs_flag(&["--jobs".to_string(), "x".to_string()]).is_err());
    }

    #[test]
    fn available_jobs_is_positive() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn duplicate_jobs_flag_last_wins() {
        let args: Vec<String> = ["--jobs", "2", "--jobs", "5"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (jobs, rest) = parse_jobs_flag(&args).unwrap();
        assert_eq!(jobs, 5);
        assert!(rest.is_empty());
        // Mixed spellings: the later `--jobs=N` still wins.
        let args: Vec<String> = ["--jobs", "7", "--jobs=3"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let (jobs, _) = parse_jobs_flag(&args).unwrap();
        assert_eq!(jobs, 3);
    }

    #[test]
    fn empty_jobs_value_rejected() {
        let err = parse_jobs_flag(&["--jobs=".to_string()]).unwrap_err();
        assert!(err.contains("bad --jobs"), "got: {err}");
        let err =
            parse_jobs_flag(&["--jobs".to_string(), String::new()]).unwrap_err();
        assert!(err.contains("bad --jobs"), "got: {err}");
    }

    // Satellite regression: one panicking job under try_par_map must still
    // yield every other job's result — no pool-wide abort, no poisoned-slot
    // panic.
    #[test]
    fn one_panicking_job_spares_the_rest() {
        let items: Vec<usize> = (0..32).collect();
        let report = try_par_map(4, &items, |&i| {
            if i == 13 {
                panic!("injected failure in job {i}");
            }
            i * 2
        });
        assert_eq!(report.results.len(), 32);
        for (i, r) in report.results.iter().enumerate() {
            if i == 13 {
                let f = r.as_ref().unwrap_err();
                assert_eq!(f.index, 13);
                assert_eq!(f.attempts, 1);
                assert!(f.message.contains("injected failure"), "{}", f.message);
            } else {
                assert_eq!(*r.as_ref().unwrap(), i * 2, "job {i}");
            }
        }
        assert!(!report.all_ok());
        assert_eq!(report.failures().len(), 1);
        assert!(report.slow.is_empty());
    }

    #[test]
    fn k_failures_leave_n_minus_k_results() {
        let bad = [3usize, 7, 8, 20];
        for jobs in [1, 4] {
            let report = try_par_map_indexed(jobs, 24, &RetryPolicy::default(), |i| {
                if bad.contains(&i) {
                    panic!("boom {i}");
                }
                i
            });
            let failed: Vec<usize> =
                report.failures().iter().map(|f| f.index).collect();
            assert_eq!(failed, bad, "jobs = {jobs}");
            assert_eq!(
                report.results.iter().filter(|r| r.is_ok()).count(),
                24 - bad.len(),
                "jobs = {jobs}"
            );
        }
    }

    #[test]
    fn retry_recovers_flaky_jobs() {
        use std::sync::atomic::AtomicU32;
        let tries: Vec<AtomicU32> = (0..8).map(|_| AtomicU32::new(0)).collect();
        let policy = RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(1),
            watchdog: None,
        };
        let report = try_par_map_indexed(2, 8, &policy, |i| {
            // Every job fails its first two attempts, succeeds on the third.
            if tries[i].fetch_add(1, Ordering::SeqCst) < 2 {
                panic!("transient {i}");
            }
            i + 100
        });
        assert!(report.all_ok());
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(*r.as_ref().unwrap(), i + 100);
            assert_eq!(tries[i].load(Ordering::SeqCst), 3);
        }
    }

    #[test]
    fn retry_budget_is_bounded() {
        use std::sync::atomic::AtomicU32;
        let tries = AtomicU32::new(0);
        let policy = RetryPolicy {
            attempts: 3,
            backoff: Duration::ZERO,
            watchdog: None,
        };
        let report = try_par_map_indexed(1, 1, &policy, |_| -> usize {
            tries.fetch_add(1, Ordering::SeqCst);
            panic!("always fails");
        });
        let f = report.results[0].as_ref().unwrap_err();
        assert_eq!(f.attempts, 3);
        assert_eq!(tries.load(Ordering::SeqCst), 3);
        assert_eq!(f.message, "always fails");
    }

    #[test]
    fn watchdog_flags_but_never_kills() {
        let policy = RetryPolicy {
            attempts: 1,
            backoff: Duration::ZERO,
            watchdog: Some(Duration::from_millis(10)),
        };
        for jobs in [1, 3] {
            let report = try_par_map_indexed(jobs, 6, &policy, |i| {
                if i == 2 {
                    std::thread::sleep(Duration::from_millis(40));
                }
                i
            });
            assert!(report.all_ok(), "jobs = {jobs}: slow job must complete");
            assert_eq!(
                *report.results[2].as_ref().unwrap(),
                2,
                "jobs = {jobs}: flagged job's result is intact"
            );
            assert!(
                report.slow.contains(&2),
                "jobs = {jobs}: slow = {:?}",
                report.slow
            );
        }
    }

    #[test]
    fn try_results_preserve_submission_order() {
        let report = try_par_map_indexed(4, 16, &RetryPolicy::default(), |i| {
            if i < 4 {
                std::thread::sleep(Duration::from_millis(20 - 4 * i as u64));
            }
            i * 10
        });
        let values: Vec<usize> = report
            .results
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(values, (0..16).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn try_empty_job_list() {
        let report =
            try_par_map_indexed(4, 0, &RetryPolicy::default(), |i| i);
        assert!(report.results.is_empty());
        assert!(report.slow.is_empty());
        assert!(report.attempts.is_empty());
        assert!(report.all_ok());
    }

    #[test]
    fn attempts_recorded_per_job() {
        use std::sync::atomic::AtomicU32;
        let tries: Vec<AtomicU32> = (0..6).map(|_| AtomicU32::new(0)).collect();
        let policy = RetryPolicy {
            attempts: 3,
            backoff: Duration::ZERO,
            watchdog: None,
        };
        let report = try_par_map_indexed(2, 6, &policy, |i| {
            // Job 2 needs two attempts, job 4 fails all three.
            let t = tries[i].fetch_add(1, Ordering::SeqCst);
            if (i == 2 && t < 1) || i == 4 {
                panic!("boom {i}");
            }
            i
        });
        assert_eq!(report.attempts, vec![1, 1, 2, 1, 3, 1]);
        assert_eq!(report.retried(), vec![2, 4]);
        assert_eq!(report.total_retries(), 3);
    }

    /// Counting observer used by the lifecycle tests.
    #[derive(Default)]
    struct CountingObserver {
        claimed: AtomicU64,
        started: AtomicU64,
        retried: AtomicU64,
        slow: AtomicU64,
        panicked: AtomicU64,
        done: AtomicU64,
        done_ok: AtomicU64,
        host_nanos: AtomicU64,
        max_worker: AtomicU64,
    }

    impl JobObserver for CountingObserver {
        fn on_claimed(&self, _i: usize, worker: usize) {
            self.claimed.fetch_add(1, Ordering::SeqCst);
            self.max_worker.fetch_max(worker as u64, Ordering::SeqCst);
        }
        fn on_started(&self, _i: usize, _attempt: u32) {
            self.started.fetch_add(1, Ordering::SeqCst);
        }
        fn on_retried(&self, _i: usize, _attempt: u32, _message: &str) {
            self.retried.fetch_add(1, Ordering::SeqCst);
        }
        fn on_slow(&self, _i: usize, _elapsed: Duration) {
            self.slow.fetch_add(1, Ordering::SeqCst);
        }
        fn on_panicked(&self, _i: usize, _attempts: u32, _message: &str) {
            self.panicked.fetch_add(1, Ordering::SeqCst);
        }
        fn on_done(&self, _i: usize, _worker: usize, host_nanos: u64, _attempts: u32, ok: bool) {
            self.done.fetch_add(1, Ordering::SeqCst);
            if ok {
                self.done_ok.fetch_add(1, Ordering::SeqCst);
            }
            self.host_nanos.fetch_add(host_nanos, Ordering::SeqCst);
        }
    }

    // Satellite reconciliation: the observer's event counts must agree
    // with the TryReport the same campaign returns.
    #[test]
    fn observer_events_reconcile_with_report() {
        use std::sync::atomic::AtomicU32;
        let tries: Vec<AtomicU32> = (0..12).map(|_| AtomicU32::new(0)).collect();
        let policy = RetryPolicy {
            attempts: 2,
            backoff: Duration::ZERO,
            watchdog: Some(Duration::from_millis(10)),
        };
        for jobs in [1, 3] {
            tries.iter().for_each(|t| t.store(0, Ordering::SeqCst));
            let obs = CountingObserver::default();
            let report = try_par_map_indexed_observed(jobs, 12, &policy, &obs, |i| {
                let t = tries[i].fetch_add(1, Ordering::SeqCst);
                if i == 5 {
                    std::thread::sleep(Duration::from_millis(30));
                }
                if i == 7 || (i == 9 && t == 0) {
                    panic!("boom {i}");
                }
                i
            });
            assert_eq!(obs.claimed.load(Ordering::SeqCst), 12, "jobs = {jobs}");
            assert_eq!(obs.done.load(Ordering::SeqCst), 12, "jobs = {jobs}");
            assert_eq!(
                obs.done_ok.load(Ordering::SeqCst) as usize,
                report.results.iter().filter(|r| r.is_ok()).count(),
                "jobs = {jobs}"
            );
            assert_eq!(
                obs.started.load(Ordering::SeqCst),
                report.attempts.iter().map(|&a| u64::from(a)).sum::<u64>(),
                "jobs = {jobs}"
            );
            assert_eq!(
                obs.retried.load(Ordering::SeqCst),
                report.total_retries(),
                "jobs = {jobs}"
            );
            assert_eq!(
                obs.panicked.load(Ordering::SeqCst) as usize,
                report.failures().len(),
                "jobs = {jobs}"
            );
            assert_eq!(
                obs.slow.load(Ordering::SeqCst) as usize,
                report.slow.len(),
                "jobs = {jobs}"
            );
            assert!(report.slow.contains(&5), "jobs = {jobs}");
            assert!(
                obs.host_nanos.load(Ordering::SeqCst) >= 30_000_000,
                "jobs = {jobs}: per-job host time must cover the slow job"
            );
            assert!(
                (obs.max_worker.load(Ordering::SeqCst) as usize) < jobs.max(1),
                "jobs = {jobs}: worker ids stay in range"
            );
        }
    }

    #[test]
    fn observed_results_equal_unobserved() {
        let work = |i: usize| (i as u64).wrapping_mul(0x9E37_79B9).rotate_left(9);
        let plain = try_par_map_indexed(3, 40, &RetryPolicy::default(), work);
        let obs = CountingObserver::default();
        let observed =
            try_par_map_indexed_observed(3, 40, &RetryPolicy::default(), &obs, work);
        let a: Vec<u64> = plain.results.into_iter().map(|r| r.unwrap()).collect();
        let b: Vec<u64> = observed.results.into_iter().map(|r| r.unwrap()).collect();
        assert_eq!(a, b);
        assert_eq!(observed.attempts, vec![1; 40]);
    }
}
