//! The experiment runner: builds a machine + robot, runs the pipeline, and
//! snapshots everything the figures need.

use tartan_robots::{RobotKind, Scale, SoftwareConfig};
use tartan_scenario::{ConfigId, RunParams};
use tartan_sim::telemetry::{
    CacheCounters, FaultCounters, PhaseEntry, Report, ReportBuilder, RobotRunStats, ScopeCounters,
    SupervisionCounters,
};
use tartan_sim::{CacheStats, FaultStats, Machine, MachineConfig, MachineStats};

/// Sizing knobs shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Workload scale.
    pub scale: Scale,
    /// Pipeline periods per run.
    pub steps: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentParams {
    /// Fast parameters for tests.
    pub fn quick() -> Self {
        ExperimentParams {
            scale: Scale::small(),
            steps: 2,
            seed: 42,
        }
    }

    /// The scale the figure harnesses use.
    pub fn paper() -> Self {
        ExperimentParams {
            scale: Scale::paper(),
            steps: 3,
            seed: 42,
        }
    }

    /// Parameters for coverage probes: the tiny [`Scale::probe`]
    /// workloads and a single pipeline period, so the scenario
    /// synthesizer can afford hundreds of runs. Not meaningful for
    /// figures — regimes, not magnitudes.
    pub fn probe() -> Self {
        ExperimentParams {
            scale: Scale::probe(),
            steps: 1,
            seed: 42,
        }
    }
}

impl From<RunParams> for ExperimentParams {
    fn from(p: RunParams) -> Self {
        ExperimentParams {
            scale: p.scale,
            steps: p.steps,
            seed: p.seed,
        }
    }
}

impl From<ExperimentParams> for RunParams {
    fn from(p: ExperimentParams) -> Self {
        RunParams {
            scale: p.scale,
            steps: p.steps,
            seed: p.seed,
        }
    }
}

/// Everything a figure needs from one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Robot name.
    pub robot: &'static str,
    /// End-to-end wall cycles.
    pub wall_cycles: u64,
    /// Dynamic instructions.
    pub instructions: u64,
    /// Cycles attributed to the robot's bottleneck phases (Fig. 1).
    pub bottleneck_cycles: u64,
    /// Cycles attributed to CPU↔NPU communication (Fig. 8).
    pub comm_cycles: u64,
    /// Full statistics snapshot.
    pub stats: MachineStats,
    /// Fault-injection counters for the run (zero without a fault plan).
    pub faults: FaultStats,
    /// Robot-specific quality metric (lower is better).
    pub quality: f64,
    /// Hierarchical phase report (robot → iteration → kernel scopes) with
    /// per-scope latency percentiles and L2 cache attribution.
    pub report: Report,
    /// Supervision counters, for robots that ran a supervised NPU or a
    /// verified approximate engine.
    pub supervision: Option<SupervisionCounters>,
}

impl RunOutcome {
    /// Total cycles attributed to phases (the breakdown denominator).
    pub fn phase_total(&self) -> u64 {
        self.stats.phases.values().map(|p| p.cycles).sum()
    }

    /// Fraction of attributed cycles spent in the bottleneck.
    pub fn bottleneck_fraction(&self) -> f64 {
        let total = self.phase_total();
        if total == 0 {
            0.0
        } else {
            self.bottleneck_cycles as f64 / total as f64
        }
    }

    /// Converts the outcome into one versioned `stats.json` run record.
    /// The hardware/software combination is labeled by its canonical
    /// [`ConfigId`] — the single rendering point for config labels, so
    /// exports can't drift between harnesses.
    pub fn to_run_stats(&self, config: &ConfigId) -> RobotRunStats {
        RobotRunStats {
            robot: self.robot.to_string(),
            config: config.as_str().to_string(),
            wall_cycles: self.wall_cycles,
            instructions: self.instructions,
            quality: self.quality,
            l1: cache_counters(&self.stats.l1),
            l2: cache_counters(&self.stats.l2),
            l3: cache_counters(&self.stats.l3),
            dram_bytes: self.stats.dram_bytes,
            l3_traffic_bytes: self.stats.l3_traffic_bytes,
            npu_invocations: self.stats.npu_invocations,
            supervision: self.supervision,
            faults: FaultCounters {
                injected: self.faults.injected,
                detected: self.faults.detected,
                recovered: self.faults.recovered,
                unrecovered: self.faults.unrecovered,
            },
            phases: self
                .stats
                .phases
                .iter()
                .map(|(name, p)| PhaseEntry {
                    name: (*name).to_string(),
                    cycles: p.cycles,
                    instructions: p.instructions,
                })
                .collect(),
        }
    }
}

/// Mirrors one cache level's counters into the export schema.
fn cache_counters(s: &CacheStats) -> CacheCounters {
    CacheCounters {
        accesses: s.accesses,
        hits: s.hits,
        misses: s.misses,
        prefetch_covered: s.prefetch_covered,
        prefetches_issued: s.prefetches_issued,
        prefetches_useful: s.prefetches_useful,
        prefetches_late: s.prefetches_late,
        evictions: s.evictions,
        writebacks: s.writebacks,
    }
}

/// L2-level counter delta between two stats snapshots — the attribution a
/// closing scope carries (`CacheStats::misses` already includes late
/// prefetches, matching [`ScopeCounters::misses`]).
fn scope_delta(before: &MachineStats, after: &MachineStats) -> ScopeCounters {
    ScopeCounters {
        accesses: after.l2.accesses.saturating_sub(before.l2.accesses),
        misses: after.l2.misses.saturating_sub(before.l2.misses),
        prefetches_issued: after
            .l2
            .prefetches_issued
            .saturating_sub(before.l2.prefetches_issued),
        prefetches_useful: after
            .l2
            .prefetches_useful
            .saturating_sub(before.l2.prefetches_useful),
        instructions: after.instructions.saturating_sub(before.instructions),
    }
}

/// Runs one robot on one configuration and snapshots the outcome.
pub fn run_robot(
    kind: RobotKind,
    hw: MachineConfig,
    sw: SoftwareConfig,
    params: &ExperimentParams,
) -> RunOutcome {
    let mut machine = Machine::new(hw);
    let mut robot = kind.build(&mut machine, sw, params.scale, params.seed);
    // Setup (environment generation, model training) happens in `build`
    // and is untimed except for explicit configuration costs; reset the
    // wall clock contribution by measuring a delta.
    let start_wall = machine.wall_cycles();
    let start_stats = machine.stats();
    // Phase scopes: one root per run, one "iteration" child per pipeline
    // period, one leaf per kernel phase that advanced during the period.
    // Same-named siblings merge, so the iteration node's histogram is the
    // per-period latency distribution (p50/p95/p99).
    let mut builder = ReportBuilder::new();
    builder.begin(robot.name(), start_wall);
    let mut prev = start_stats.clone();
    for _ in 0..params.steps {
        builder.begin("iteration", machine.wall_cycles());
        robot.step(&mut machine);
        let now = machine.stats();
        for (name, phase) in now.phases.iter() {
            let before = prev.phases.get(name).copied().unwrap_or_default();
            let cycles = phase.cycles.saturating_sub(before.cycles);
            let instructions = phase.instructions.saturating_sub(before.instructions);
            if cycles > 0 || instructions > 0 {
                builder.leaf(
                    name,
                    cycles,
                    ScopeCounters {
                        instructions,
                        ..ScopeCounters::default()
                    },
                );
            }
        }
        builder.end(machine.wall_cycles(), scope_delta(&prev, &now));
        prev = now;
    }
    let mut stats = machine.stats();
    builder.end(machine.wall_cycles(), scope_delta(&start_stats, &stats));
    let report = builder.build();
    // Subtract setup-time contributions (e.g., streaming NPU weights at
    // configuration) so every reported quantity covers the same window.
    // Saturating: a phase snapshot can only shrink if an accelerator was
    // re-registered mid-run, but a stats-accounting hiccup must yield a
    // zero delta, not a wrapped u64 that dwarfs every figure.
    for (name, phase) in stats.phases.iter_mut() {
        if let Some(before) = start_stats.phases.get(name) {
            phase.cycles = phase.cycles.saturating_sub(before.cycles);
            phase.instructions = phase.instructions.saturating_sub(before.instructions);
        }
    }
    let bottleneck_cycles = robot
        .bottleneck_phases()
        .iter()
        .map(|ph| stats.phase_cycles(ph))
        .sum();
    RunOutcome {
        robot: robot.name(),
        wall_cycles: stats.wall_cycles.saturating_sub(start_wall),
        instructions: stats.instructions.saturating_sub(start_stats.instructions),
        bottleneck_cycles,
        comm_cycles: stats.phase_cycles(tartan_sim::PHASE_COMM),
        faults: stats.faults,
        stats,
        quality: robot.quality(),
        report,
        supervision: robot.supervision(),
    }
}

/// One (robot, hardware, software) combination in a campaign job list.
pub type CampaignJob = (RobotKind, MachineConfig, SoftwareConfig);

/// Runs an independent job list through [`run_robot`] on up to
/// [`tartan_par::default_jobs`] host threads, returning outcomes **in job
/// order**.
///
/// Each simulation is deterministic and self-contained (its own `Machine`,
/// its own seeded RNG), so the outcome vector — and every stats/CSV/JSON
/// export derived from it — is byte-identical whatever the job count. All
/// figure harnesses, the tier-1 bench, and the fault campaigns fan out
/// through here; see `DESIGN.md` §12 for the determinism argument.
pub fn run_campaign(jobs: &[CampaignJob], params: &ExperimentParams) -> Vec<RunOutcome> {
    run_campaign_with_jobs(tartan_par::default_jobs(), jobs, params)
}

/// [`run_campaign`] with an explicit host-thread count (used by the
/// determinism regression tests to compare `jobs = 1` against `jobs = N`
/// directly, without touching the process-wide default).
pub fn run_campaign_with_jobs(
    host_jobs: usize,
    jobs: &[CampaignJob],
    params: &ExperimentParams,
) -> Vec<RunOutcome> {
    tartan_par::par_map(host_jobs, jobs, |(kind, hw, sw)| {
        run_robot(*kind, hw.clone(), *sw, params)
    })
}

/// Geometric mean of an iterator of positive numbers.
pub fn gmean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_outcome_has_consistent_fields() {
        let out = run_robot(
            RobotKind::DeliBot,
            MachineConfig::upgraded_baseline(),
            SoftwareConfig::legacy(),
            &ExperimentParams::quick(),
        );
        assert_eq!(out.robot, "DeliBot");
        assert!(out.wall_cycles > 0);
        assert!(out.instructions > 0);
        assert!(out.bottleneck_fraction() > 0.0 && out.bottleneck_fraction() <= 1.0);
    }

    #[test]
    fn report_scopes_cover_the_run() {
        let params = ExperimentParams::quick();
        let out = run_robot(
            RobotKind::DeliBot,
            MachineConfig::upgraded_baseline(),
            SoftwareConfig::legacy(),
            &params,
        );
        let root = out.report.root("DeliBot").expect("root scope");
        let iter = root.child("iteration").expect("iteration scope");
        assert_eq!(iter.instances, params.steps as u64);
        assert!(iter.cycles <= root.cycles);
        assert!(!iter.children.is_empty(), "kernel leaf scopes expected");
        assert!(iter.counters.accesses > 0);
        // The outcome round-trips through the versioned stats.json schema.
        let json = tartan_sim::telemetry::StatsExport {
            generator: "runner_test".into(),
            runs: vec![out.to_run_stats(&ConfigId::Baseline)],
            failures: Vec::new(),
        }
        .to_json();
        tartan_sim::telemetry::validate_stats_json(&json).unwrap();
    }

    #[test]
    fn campaign_outcomes_arrive_in_job_order_for_any_job_count() {
        let params = ExperimentParams::quick();
        let jobs: Vec<CampaignJob> = vec![
            (
                RobotKind::DeliBot,
                MachineConfig::upgraded_baseline(),
                SoftwareConfig::legacy(),
            ),
            (
                RobotKind::DeliBot,
                MachineConfig::tartan(),
                SoftwareConfig::approximable(),
            ),
            (
                RobotKind::CarriBot,
                MachineConfig::tartan(),
                SoftwareConfig::optimized(),
            ),
        ];
        let seq = run_campaign_with_jobs(1, &jobs, &params);
        let par = run_campaign_with_jobs(4, &jobs, &params);
        assert_eq!(seq.len(), 3);
        assert_eq!(seq[0].robot, "DeliBot");
        assert_eq!(seq[2].robot, "CarriBot");
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.robot, p.robot);
            assert_eq!(s.wall_cycles, p.wall_cycles);
            assert_eq!(s.stats, p.stats);
            assert_eq!(s.quality.to_bits(), p.quality.to_bits());
        }
    }

    #[test]
    fn gmean_of_equal_values() {
        assert!((gmean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((gmean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(gmean(Vec::<f64>::new()), 0.0);
    }
}
