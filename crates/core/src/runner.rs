//! The experiment runner: builds a machine + robot, runs the pipeline, and
//! snapshots everything the figures need.

use tartan_robots::{RobotKind, Scale, SoftwareConfig};
use tartan_sim::{FaultStats, Machine, MachineConfig, MachineStats};

/// Sizing knobs shared by all experiments.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentParams {
    /// Workload scale.
    pub scale: Scale,
    /// Pipeline periods per run.
    pub steps: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl ExperimentParams {
    /// Fast parameters for tests.
    pub fn quick() -> Self {
        ExperimentParams {
            scale: Scale::small(),
            steps: 2,
            seed: 42,
        }
    }

    /// The scale the figure harnesses use.
    pub fn paper() -> Self {
        ExperimentParams {
            scale: Scale::paper(),
            steps: 3,
            seed: 42,
        }
    }
}

/// Everything a figure needs from one run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Robot name.
    pub robot: &'static str,
    /// End-to-end wall cycles.
    pub wall_cycles: u64,
    /// Dynamic instructions.
    pub instructions: u64,
    /// Cycles attributed to the robot's bottleneck phases (Fig. 1).
    pub bottleneck_cycles: u64,
    /// Cycles attributed to CPU↔NPU communication (Fig. 8).
    pub comm_cycles: u64,
    /// Full statistics snapshot.
    pub stats: MachineStats,
    /// Fault-injection counters for the run (zero without a fault plan).
    pub faults: FaultStats,
    /// Robot-specific quality metric (lower is better).
    pub quality: f64,
}

impl RunOutcome {
    /// Total cycles attributed to phases (the breakdown denominator).
    pub fn phase_total(&self) -> u64 {
        self.stats.phases.values().map(|p| p.cycles).sum()
    }

    /// Fraction of attributed cycles spent in the bottleneck.
    pub fn bottleneck_fraction(&self) -> f64 {
        let total = self.phase_total();
        if total == 0 {
            0.0
        } else {
            self.bottleneck_cycles as f64 / total as f64
        }
    }
}

/// Runs one robot on one configuration and snapshots the outcome.
pub fn run_robot(
    kind: RobotKind,
    hw: MachineConfig,
    sw: SoftwareConfig,
    params: &ExperimentParams,
) -> RunOutcome {
    let mut machine = Machine::new(hw);
    let mut robot = kind.build(&mut machine, sw, params.scale, params.seed);
    // Setup (environment generation, model training) happens in `build`
    // and is untimed except for explicit configuration costs; reset the
    // wall clock contribution by measuring a delta.
    let start_wall = machine.wall_cycles();
    let start_stats = machine.stats();
    robot.run(&mut machine, params.steps);
    let mut stats = machine.stats();
    // Subtract setup-time contributions (e.g., streaming NPU weights at
    // configuration) so every reported quantity covers the same window.
    // Saturating: a phase snapshot can only shrink if an accelerator was
    // re-registered mid-run, but a stats-accounting hiccup must yield a
    // zero delta, not a wrapped u64 that dwarfs every figure.
    for (name, phase) in stats.phases.iter_mut() {
        if let Some(before) = start_stats.phases.get(name) {
            phase.cycles = phase.cycles.saturating_sub(before.cycles);
            phase.instructions = phase.instructions.saturating_sub(before.instructions);
        }
    }
    let bottleneck_cycles = robot
        .bottleneck_phases()
        .iter()
        .map(|ph| stats.phase_cycles(ph))
        .sum();
    RunOutcome {
        robot: robot.name(),
        wall_cycles: stats.wall_cycles.saturating_sub(start_wall),
        instructions: stats.instructions.saturating_sub(start_stats.instructions),
        bottleneck_cycles,
        comm_cycles: stats.phase_cycles(tartan_sim::PHASE_COMM),
        faults: stats.faults,
        stats,
        quality: robot.quality(),
    }
}

/// Geometric mean of an iterator of positive numbers.
pub fn gmean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        log_sum += v.max(1e-12).ln();
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_outcome_has_consistent_fields() {
        let out = run_robot(
            RobotKind::DeliBot,
            MachineConfig::upgraded_baseline(),
            SoftwareConfig::legacy(),
            &ExperimentParams::quick(),
        );
        assert_eq!(out.robot, "DeliBot");
        assert!(out.wall_cycles > 0);
        assert!(out.instructions > 0);
        assert!(out.bottleneck_fraction() > 0.0 && out.bottleneck_fraction() <= 1.0);
    }

    #[test]
    fn gmean_of_equal_values() {
        assert!((gmean([2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
        assert!((gmean([1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(gmean(Vec::<f64>::new()), 0.0);
    }
}
