//! Table IV: Tartan's area and storage overhead breakdown.
//!
//! Logic-area constants come from the paper's cited 14 nm datapoints
//! ([78], [154]); SRAM figures come from the live models (ANL metadata
//! table, NPU area model). The host is the paper's 133 mm² mobile die.

use tartan_npu::NpuAreaModel;
use tartan_prefetch::{Anl, Prefetcher};

/// One Table IV row.
#[derive(Debug, Clone, PartialEq)]
pub struct OverheadRow {
    /// Component label, e.g. `"4 x OVEC"`.
    pub component: String,
    /// Dedicated storage in bytes (0 = none).
    pub memory_bytes: u64,
    /// Silicon area in µm².
    pub area_um2: f64,
}

/// Host die area (133 mm², §VIII-E).
pub const HOST_DIE_UM2: f64 = 133.0 * 1_000_000.0;

/// OVEC address-generation logic per core (paper: 258 µm² for 4 cores).
const OVEC_UM2_PER_CORE: f64 = 258.0 / 4.0;

/// ANL comparator/control logic per core (paper: 30 µm² for 4 cores).
const ANL_LOGIC_UM2_PER_CORE: f64 = 30.0 / 4.0;

/// FCP manipulation-LUT area per L2 (paper: ~1 µm² total).
const FCP_UM2_PER_CORE: f64 = 0.25;

/// FCP 8-entry lookup table per L2: 8 × 12 bits ≈ 12 B for 4 cores? The
/// paper lists 12 B total; 3 B per core.
const FCP_BYTES_PER_CORE: u64 = 3;

/// Computes the Table IV rows for a machine with `cores` cores and an
/// NPU with `npu_pes` processing elements.
pub fn table4(cores: u32, npu_pes: u32) -> Vec<OverheadRow> {
    let anl = Anl::new(32);
    let npu = NpuAreaModel::new(npu_pes);
    vec![
        OverheadRow {
            component: format!("{cores} x OVEC"),
            memory_bytes: 0,
            area_um2: OVEC_UM2_PER_CORE * f64::from(cores),
        },
        OverheadRow {
            component: format!("1 x NPU ({npu_pes} PEs)"),
            memory_bytes: npu.sram_bytes(),
            area_um2: npu.area_um2(),
        },
        OverheadRow {
            component: format!("{cores} x ANL"),
            memory_bytes: u64::from(cores) * anl.metadata_bits() / 8,
            area_um2: ANL_LOGIC_UM2_PER_CORE * f64::from(cores),
        },
        OverheadRow {
            component: format!("{cores} x FCP"),
            memory_bytes: u64::from(cores) * FCP_BYTES_PER_CORE,
            area_um2: FCP_UM2_PER_CORE * f64::from(cores),
        },
    ]
}

/// Total area overhead as a fraction of the host die.
pub fn total_overhead_fraction(rows: &[OverheadRow]) -> f64 {
    rows.iter().map(|r| r.area_um2).sum::<f64>() / HOST_DIE_UM2
}

/// Renders Table IV.
pub fn format_table4(rows: &[OverheadRow]) -> String {
    let mut out = String::from("Table IV: Overhead breakdown\n");
    out.push_str(&format!(
        "{:<16} {:>12} {:>12}\n",
        "Component", "Memory [B]", "Area [um^2]"
    ));
    let mut mem = 0u64;
    let mut area = 0.0;
    for r in rows {
        out.push_str(&format!(
            "{:<16} {:>12} {:>12.0}\n",
            r.component, r.memory_bytes, r.area_um2
        ));
        mem += r.memory_bytes;
        area += r.area_um2;
    }
    out.push_str(&format!("{:<16} {:>12} {:>12.0}\n", "Total", mem, area));
    out.push_str(&format!(
        "Die overhead: {:.4}% of a 133 mm^2 mobile die\n",
        100.0 * total_overhead_fraction(rows)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_magnitudes() {
        let rows = table4(4, 4);
        // OVEC ≈ 258, NPU ≈ 1661, ANL ≈ 30, FCP ≈ 1 (µm²).
        assert!((rows[0].area_um2 - 258.0).abs() < 1.0);
        assert!((rows[1].area_um2 - 1661.0).abs() / 1661.0 < 0.02);
        assert!((rows[2].area_um2 - 30.0).abs() < 1.0);
        assert!(rows[3].area_um2 <= 1.5);
        // ANL: 480 B for 4 cores; NPU 18.8 KB.
        assert_eq!(rows[2].memory_bytes, 480);
        assert!((rows[1].memory_bytes as f64 / 1024.0 - 18.8).abs() < 0.5);
    }

    #[test]
    fn total_overhead_is_about_a_thousandth_of_a_percent() {
        let rows = table4(4, 4);
        let frac = total_overhead_fraction(&rows);
        // Paper: "merely 0.001%". (Fraction ≈ 1.5e-5.)
        assert!(frac < 5e-5, "fraction {frac}");
        assert!(frac > 5e-6, "fraction {frac}");
        assert!(!format_table4(&rows).is_empty());
    }
}
