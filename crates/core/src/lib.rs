#![warn(missing_docs)]

//! Tartan's top level: the hardware/software configuration matrix and the
//! experiment drivers that regenerate every figure and table of the paper's
//! evaluation (§VIII).
//!
//! Each `figN_*`/`tableN_*` function in [`experiments`] runs the relevant
//! robots on the relevant machine configurations, returns typed result
//! rows, and can render them as text tables. The `bench` crate and the
//! `paper_figures` example drive them at paper scale; integration tests
//! use [`tartan_robots::Scale::small`].
//!
//! # Examples
//!
//! ```no_run
//! use tartan_core::{experiments, runner::ExperimentParams};
//!
//! let params = ExperimentParams::quick();
//! let rows = experiments::fig12_end_to_end(&params);
//! println!("{}", experiments::format_fig12(&rows));
//! ```

pub mod experiments;
pub mod overhead;
pub mod runner;

pub use runner::{
    probe_spec, run_campaign, run_campaign_with_jobs, run_robot, CampaignJob, ExperimentParams,
    RunOutcome,
};

pub use tartan_robots::{NeuralExec, NnsKind, RobotKind, Scale, SoftwareConfig};
pub use tartan_scenario::{ConfigId, Plan, PlannedJob, RunParams, ScenarioError, ScenarioSpec};
pub use tartan_sim::{FcpConfig, FcpManipulation, MachineConfig, NpuMode, PrefetcherKind};
