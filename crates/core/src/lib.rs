#![warn(missing_docs)]

//! Tartan's configuration matrix and experiment runner: build a machine +
//! robot, run the pipeline, and snapshot everything the figures need as a
//! [`RunOutcome`].
//!
//! The figure/table drivers that consume these runs live one layer up, in
//! `tartan-campaign` (`experiments`): they expand the checked-in scenario
//! manifests and execute them through the campaign engine. This crate
//! stays at the single-run level — [`run_robot`] plus the
//! [`overhead`] area/power model — so the scenario and campaign layers
//! can both link it without cycles.
//!
//! # Examples
//!
//! ```
//! use tartan_core::{run_robot, ExperimentParams, MachineConfig, RobotKind, SoftwareConfig};
//!
//! let out = run_robot(
//!     RobotKind::DeliBot,
//!     MachineConfig::tartan(),
//!     SoftwareConfig::approximable(),
//!     &ExperimentParams::quick(),
//! );
//! assert!(out.wall_cycles > 0);
//! ```

pub mod overhead;
pub mod runner;

pub use runner::{
    run_campaign, run_campaign_with_jobs, run_robot, CampaignJob, ExperimentParams, RunOutcome,
};

pub use tartan_robots::{NeuralExec, NnsKind, RobotKind, Scale, SoftwareConfig};
pub use tartan_scenario::{ConfigId, Plan, PlannedJob, RunParams, ScenarioError, ScenarioSpec};
pub use tartan_sim::{FcpConfig, FcpManipulation, MachineConfig, NpuMode, PrefetcherKind};
