//! A tiny, dependency-free, seeded PRNG for the fuzz driver.
//!
//! The in-tree `rand` shim serves the simulator's workloads; the oracle
//! carries its own generator so fuzz cases stay reproducible even if the
//! shim's stream ever changes. xorshift64* is deterministic, fast, and
//! passes the statistical bar a fuzzer needs.

/// An xorshift64* generator.
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// Creates a generator from a seed (any value, including 0, is fine).
    pub fn new(seed: u64) -> XorShift {
        // Splash the seed so that nearby seeds do not produce nearby
        // streams; the state must be nonzero for xorshift to cycle.
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x2545_F491_4F6C_DD1D;
        if s == 0 {
            s = 0x9E37_79B9_7F4A_7C15;
        }
        XorShift { state: s }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        // Modulo bias is irrelevant for fuzzing ranges (all tiny vs 2^64).
        self.next_u64() % n
    }

    /// Picks one element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u64) as usize]
    }

    /// True with probability `num`/`den`.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = XorShift::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift::new(7);
            (0..16).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = XorShift::new(8);
            (0..16).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift::new(0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn below_stays_in_range_and_covers_it() {
        let mut r = XorShift::new(3);
        let mut seen = [false; 8];
        for _ in 0..256 {
            let v = r.below(8);
            assert!(v < 8);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn chance_is_roughly_calibrated() {
        let mut r = XorShift::new(11);
        let hits = (0..1000).filter(|_| r.chance(1, 4)).count();
        assert!((150..350).contains(&hits), "1/4 chance hit {hits}/1000");
    }
}
