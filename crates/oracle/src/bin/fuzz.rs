//! The differential fuzz driver CLI.
//!
//! ```text
//! cargo run -p tartan-oracle --bin fuzz -- --iters 1000 --seed 7 --jobs 4
//! ```
//!
//! Generates seeded random machine configs + access patterns, runs each
//! through the simulator with trace capture on, and replays the trace
//! through the golden models. On the first divergence it prints the
//! diagnostic, shrinks the case to a minimal reproducer, prints it in the
//! corpus format (optionally writing it to `--out`), and exits nonzero.
//!
//! `--jobs N` fans the iteration budget out across N host workers, each on
//! its own seed stream: worker 0 keeps the base seed (so `--jobs 1` is
//! byte-identical to the historical sequential driver), workers `j > 0`
//! derive theirs from it. When several workers diverge, the one with the
//! lowest index is reported — deterministic for a given seed and job
//! count. Shrinking and reporting always run sequentially afterwards.
//!
//! `--mutate fcp-index` bends the *golden* FCP indexing off by one; the
//! run is then expected to diverge, which demonstrates (and CI-checks)
//! the oracle's detection power. Exit codes follow "did the oracle behave
//! correctly": a mutated run succeeds when the defect is caught and fails
//! when it is not, while an honest run succeeds only when every case is
//! clean.

use std::process::ExitCode;

use tartan_oracle::fuzz::shrink;
use tartan_oracle::{generate, run_case, Divergence, FuzzCase, Mutation, XorShift};

struct Args {
    iters: u64,
    seed: u64,
    jobs: usize,
    mutation: Option<Mutation>,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        iters: 1000,
        seed: 7,
        jobs: 1,
        mutation: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--iters" => {
                args.iters = value()?
                    .parse()
                    .map_err(|e| format!("bad --iters: {e}"))?;
            }
            "--seed" => {
                args.seed = value()?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--jobs" => {
                let jobs: usize = value()?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
                args.jobs = if jobs == 0 {
                    tartan_par::available_jobs()
                } else {
                    jobs
                };
            }
            "--mutate" => {
                args.mutation = match value()?.as_str() {
                    "fcp-index" => Some(Mutation::FcpIndexOffByOne),
                    other => return Err(format!("unknown mutation {other:?}")),
                };
            }
            "--out" => args.out = Some(value()?),
            "--help" | "-h" => {
                println!(
                    "usage: fuzz [--iters N] [--seed S] [--jobs J] [--mutate fcp-index] [--out FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Seed for worker `j`: worker 0 keeps the base seed so a single-worker
/// run reproduces the historical sequential stream; the rest get
/// well-mixed distinct streams (splitmix64-style finalizer).
fn worker_seed(base: u64, j: usize) -> u64 {
    if j == 0 {
        return base;
    }
    let mut z = base ^ (j as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One worker's fuzz loop: `iters` fresh cases from `seed`, stopping at
/// the first divergence. `progress` enables the per-100-case stderr lines
/// (only the single-worker driver keeps them, to stay byte-identical).
fn fuzz_worker(
    seed: u64,
    iters: u64,
    mutation: Option<Mutation>,
    progress: bool,
) -> Result<u64, Box<(u64, FuzzCase, Divergence)>> {
    let mut rng = XorShift::new(seed);
    let force_fcp = mutation.is_some();
    for i in 0..iters {
        let case = generate(&mut rng, force_fcp);
        if let Err(divergence) = run_case(&case, mutation) {
            return Err(Box::new((i, case, divergence)));
        }
        if progress && (i + 1) % 100 == 0 {
            eprintln!("fuzz: {} / {} cases clean", i + 1, iters);
        }
    }
    Ok(iters)
}

/// Shrinks and reports one diverging case; returns the process exit code.
fn report_divergence(args: &Args, case: &FuzzCase, divergence: &Divergence) -> ExitCode {
    println!("  {divergence}");
    println!("fuzz: shrinking ({} accesses)...", case.accesses());
    let small = shrink(case, args.mutation);
    let final_div = run_case(&small, args.mutation).expect_err("shrunk case still diverges");
    println!("fuzz: minimal reproducer has {} accesses:", small.accesses());
    println!("  {final_div}");
    let text = tartan_oracle::corpus::serialize(&small);
    println!("--- reproducer (corpus format) ---");
    print!("{text}");
    println!("----------------------------------");
    if let Some(path) = &args.out {
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("fuzz: failed to write {path}: {e}");
        } else {
            println!("fuzz: reproducer written to {path}");
        }
    }
    // Under a mutation, divergence is the *expected* outcome: the oracle
    // proved it can see the injected defect.
    if args.mutation.is_some() {
        println!("fuzz: mutation detected — oracle has teeth");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            return ExitCode::from(2);
        }
    };

    if args.jobs <= 1 {
        if let Err(hit) = fuzz_worker(args.seed, args.iters, args.mutation, true) {
            let (i, case, divergence) = &*hit;
            println!("fuzz: divergence at iteration {i} (seed {})", args.seed);
            return report_divergence(&args, case, divergence);
        }
    } else {
        // Split the budget as evenly as possible; worker j's seed stream
        // is fixed by (base seed, j), so the set of cases explored depends
        // only on (--seed, --jobs, --iters).
        let jobs = args.jobs as u64;
        let budgets: Vec<(usize, u64, u64)> = (0..args.jobs)
            .map(|j| {
                let share = args.iters / jobs + u64::from((j as u64) < args.iters % jobs);
                (j, worker_seed(args.seed, j), share)
            })
            .collect();
        let results = tartan_par::par_map(args.jobs, &budgets, |&(_, seed, share)| {
            fuzz_worker(seed, share, args.mutation, false)
        });
        // Lowest worker index wins ties: deterministic regardless of which
        // worker thread happened to finish first.
        let first = budgets
            .iter()
            .zip(&results)
            .find_map(|(&(j, seed, _), res)| res.as_ref().err().map(|hit| (j, seed, hit)));
        if let Some((j, seed, hit)) = first {
            let (i, case, divergence) = &**hit;
            println!(
                "fuzz: divergence at iteration {i} of worker {j} (worker seed {seed}, base seed {})",
                args.seed
            );
            return report_divergence(&args, case, divergence);
        }
    }

    println!(
        "fuzz: {} cases, zero divergences (seed {}{})",
        args.iters,
        args.seed,
        match args.mutation {
            Some(_) => ", mutated golden model never disagreed — oracle is blind!",
            None => "",
        }
    );
    // A mutated run that stays clean means the oracle failed to detect the
    // injected defect: that is a failure of the *oracle*, so exit nonzero.
    if args.mutation.is_some() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
