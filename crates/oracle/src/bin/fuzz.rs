//! The differential fuzz driver CLI.
//!
//! ```text
//! cargo run -p tartan-oracle --bin fuzz -- --iters 1000 --seed 7
//! ```
//!
//! Generates seeded random machine configs + access patterns, runs each
//! through the simulator with trace capture on, and replays the trace
//! through the golden models. On the first divergence it prints the
//! diagnostic, shrinks the case to a minimal reproducer, prints it in the
//! corpus format (optionally writing it to `--out`), and exits nonzero.
//!
//! `--mutate fcp-index` bends the *golden* FCP indexing off by one; the
//! run is then expected to diverge, which demonstrates (and CI-checks)
//! the oracle's detection power. Exit codes follow "did the oracle behave
//! correctly": a mutated run succeeds when the defect is caught and fails
//! when it is not, while an honest run succeeds only when every case is
//! clean.

use std::process::ExitCode;

use tartan_oracle::{generate, run_case, shrink, Mutation, XorShift};

struct Args {
    iters: u64,
    seed: u64,
    mutation: Option<Mutation>,
    out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        iters: 1000,
        seed: 7,
        mutation: None,
        out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--iters" => {
                args.iters = value()?
                    .parse()
                    .map_err(|e| format!("bad --iters: {e}"))?;
            }
            "--seed" => {
                args.seed = value()?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--mutate" => {
                args.mutation = match value()?.as_str() {
                    "fcp-index" => Some(Mutation::FcpIndexOffByOne),
                    other => return Err(format!("unknown mutation {other:?}")),
                };
            }
            "--out" => args.out = Some(value()?),
            "--help" | "-h" => {
                println!(
                    "usage: fuzz [--iters N] [--seed S] [--mutate fcp-index] [--out FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fuzz: {e}");
            return ExitCode::from(2);
        }
    };

    let mut rng = XorShift::new(args.seed);
    let force_fcp = args.mutation.is_some();
    for i in 0..args.iters {
        let case = generate(&mut rng, force_fcp);
        if let Err(divergence) = run_case(&case, args.mutation) {
            println!("fuzz: divergence at iteration {i} (seed {})", args.seed);
            println!("  {divergence}");
            println!("fuzz: shrinking ({} accesses)...", case.accesses());
            let small = shrink(&case, args.mutation);
            let final_div =
                run_case(&small, args.mutation).expect_err("shrunk case still diverges");
            println!(
                "fuzz: minimal reproducer has {} accesses:",
                small.accesses()
            );
            println!("  {final_div}");
            let text = tartan_oracle::corpus::serialize(&small);
            println!("--- reproducer (corpus format) ---");
            print!("{text}");
            println!("----------------------------------");
            if let Some(path) = &args.out {
                if let Err(e) = std::fs::write(path, &text) {
                    eprintln!("fuzz: failed to write {path}: {e}");
                } else {
                    println!("fuzz: reproducer written to {path}");
                }
            }
            // Under a mutation, divergence is the *expected* outcome: the
            // oracle proved it can see the injected defect.
            return if args.mutation.is_some() {
                println!("fuzz: mutation detected — oracle has teeth");
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            };
        }
        if (i + 1) % 100 == 0 {
            eprintln!("fuzz: {} / {} cases clean", i + 1, args.iters);
        }
    }
    println!(
        "fuzz: {} cases, zero divergences (seed {}{})",
        args.iters,
        args.seed,
        match args.mutation {
            Some(_) => ", mutated golden model never disagreed — oracle is blind!",
            None => "",
        }
    );
    // A mutated run that stays clean means the oracle failed to detect the
    // injected defect: that is a failure of the *oracle*, so exit nonzero.
    if args.mutation.is_some() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
