//! Plain-text serialization of fuzz cases, for the checked-in reproducer
//! corpus (`tests/corpus/*.txt`).
//!
//! The format is line-based and diff-friendly. Floating-point fields
//! (OVEC origin/orient) are stored as their IEEE-754 bit patterns in hex
//! so a round trip is exact — a reproducer must replay the *identical*
//! address stream, and decimal formatting would quietly perturb it.

use tartan_sim::{FcpConfig, FcpManipulation, PrefetcherKind};

use crate::fuzz::{FuzzCase, Op};

/// Magic first line; bump the version if the format changes.
const HEADER: &str = "tartan-oracle-case v1";

/// Serializes a case into the corpus text format.
pub fn serialize(case: &FuzzCase) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(s, "{HEADER}");
    let _ = writeln!(s, "cores {}", case.cores);
    let _ = writeln!(s, "line_bytes {}", case.line_bytes);
    let _ = writeln!(s, "l1 {} {}", case.l1.0, case.l1.1);
    let _ = writeln!(s, "l2 {} {}", case.l2.0, case.l2.1);
    let _ = writeln!(s, "l3 {} {}", case.l3.0, case.l3.1);
    let _ = writeln!(s, "dram_latency {}", case.dram_latency);
    let _ = writeln!(
        s,
        "prefetcher {}",
        match case.prefetcher {
            PrefetcherKind::None => "none",
            PrefetcherKind::NextLine => "next_line",
            PrefetcherKind::Anl => "anl",
            PrefetcherKind::Bingo => "bingo",
        }
    );
    let _ = writeln!(s, "anl_region_bytes {}", case.anl_region_bytes);
    match case.fcp {
        None => {
            let _ = writeln!(s, "fcp none");
        }
        Some(f) => {
            let m = match f.manipulation {
                FcpManipulation::Increment => "increment",
                FcpManipulation::Double => "double",
                FcpManipulation::Square => "square",
            };
            let _ = writeln!(s, "fcp {} {} {m}", f.region_bytes, f.xor_bits);
        }
    }
    let _ = writeln!(s, "write_through {}", u8::from(case.write_through));
    let _ = writeln!(s, "ovec {}", u8::from(case.ovec));
    for op in &case.ops {
        match *op {
            Op::Read { core, pc, addr, bytes } => {
                let _ = writeln!(s, "op read {core} {pc:#x} {addr:#x} {bytes}");
            }
            Op::Write {
                core,
                pc,
                addr,
                bytes,
                through,
            } => {
                let _ = writeln!(
                    s,
                    "op write {core} {pc:#x} {addr:#x} {bytes} {}",
                    u8::from(through)
                );
            }
            Op::Ovec {
                core,
                pc,
                base,
                origin,
                orient,
                lanes,
                elem_bytes,
                max_elems,
            } => {
                let _ = writeln!(
                    s,
                    "op ovec {core} {pc:#x} {base:#x} {:016x} {:016x} {lanes} {elem_bytes} {max_elems}",
                    origin.to_bits(),
                    orient.to_bits(),
                );
            }
            Op::Barrier => {
                let _ = writeln!(s, "op barrier");
            }
        }
    }
    s
}

fn parse_u64(tok: &str) -> Result<u64, String> {
    let parsed = match tok.strip_prefix("0x") {
        Some(hex) => u64::from_str_radix(hex, 16),
        None => tok.parse(),
    };
    parsed.map_err(|e| format!("bad number {tok:?}: {e}"))
}

fn parse_f64_bits(tok: &str) -> Result<f64, String> {
    u64::from_str_radix(tok, 16)
        .map(f64::from_bits)
        .map_err(|e| format!("bad f64 bit pattern {tok:?}: {e}"))
}

fn parse_bool(tok: &str) -> Result<bool, String> {
    match tok {
        "0" => Ok(false),
        "1" => Ok(true),
        other => Err(format!("bad flag {other:?} (want 0 or 1)")),
    }
}

/// Parses the corpus text format back into a case.
///
/// Tolerates blank lines and `#` comments; rejects unknown keys, so a
/// truncated or hand-mangled reproducer fails loudly instead of replaying
/// the wrong thing.
pub fn parse(text: &str) -> Result<FuzzCase, String> {
    let mut lines = text.lines().map(str::trim).filter(|l| {
        !l.is_empty() && !l.starts_with('#')
    });
    if lines.next() != Some(HEADER) {
        return Err(format!("missing header line {HEADER:?}"));
    }
    let mut case = FuzzCase {
        cores: 1,
        line_bytes: 64,
        l1: (512, 2),
        l2: (2048, 4),
        l3: (8192, 4),
        dram_latency: 200,
        prefetcher: PrefetcherKind::None,
        anl_region_bytes: 512,
        fcp: None,
        write_through: false,
        ovec: false,
        ops: Vec::new(),
    };
    for line in lines {
        let toks: Vec<&str> = line.split_whitespace().collect();
        let args = &toks[1..];
        let want = |n: usize| -> Result<(), String> {
            if args.len() == n {
                Ok(())
            } else {
                Err(format!("line {line:?}: expected {n} fields after the key"))
            }
        };
        match toks[0] {
            "cores" => {
                want(1)?;
                case.cores = parse_u64(args[0])? as usize;
            }
            "line_bytes" => {
                want(1)?;
                case.line_bytes = parse_u64(args[0])?;
            }
            "l1" | "l2" | "l3" => {
                want(2)?;
                let geom = (parse_u64(args[0])?, parse_u64(args[1])? as u32);
                match toks[0] {
                    "l1" => case.l1 = geom,
                    "l2" => case.l2 = geom,
                    _ => case.l3 = geom,
                }
            }
            "dram_latency" => {
                want(1)?;
                case.dram_latency = parse_u64(args[0])?;
            }
            "prefetcher" => {
                want(1)?;
                case.prefetcher = match args[0] {
                    "none" => PrefetcherKind::None,
                    "next_line" => PrefetcherKind::NextLine,
                    "anl" => PrefetcherKind::Anl,
                    "bingo" => PrefetcherKind::Bingo,
                    other => return Err(format!("unknown prefetcher {other:?}")),
                };
            }
            "anl_region_bytes" => {
                want(1)?;
                case.anl_region_bytes = parse_u64(args[0])?;
            }
            "fcp" => {
                if args == ["none"] {
                    case.fcp = None;
                } else {
                    want(3)?;
                    case.fcp = Some(FcpConfig {
                        region_bytes: parse_u64(args[0])?,
                        xor_bits: parse_u64(args[1])? as u32,
                        manipulation: match args[2] {
                            "increment" => FcpManipulation::Increment,
                            "double" => FcpManipulation::Double,
                            "square" => FcpManipulation::Square,
                            other => return Err(format!("unknown manipulation {other:?}")),
                        },
                    });
                }
            }
            "write_through" => {
                want(1)?;
                case.write_through = parse_bool(args[0])?;
            }
            "ovec" => {
                want(1)?;
                case.ovec = parse_bool(args[0])?;
            }
            "op" => match args.first().copied() {
                Some("read") => {
                    want(5)?;
                    case.ops.push(Op::Read {
                        core: parse_u64(args[1])? as usize,
                        pc: parse_u64(args[2])?,
                        addr: parse_u64(args[3])?,
                        bytes: parse_u64(args[4])?,
                    });
                }
                Some("write") => {
                    want(6)?;
                    case.ops.push(Op::Write {
                        core: parse_u64(args[1])? as usize,
                        pc: parse_u64(args[2])?,
                        addr: parse_u64(args[3])?,
                        bytes: parse_u64(args[4])?,
                        through: parse_bool(args[5])?,
                    });
                }
                Some("ovec") => {
                    want(9)?;
                    case.ops.push(Op::Ovec {
                        core: parse_u64(args[1])? as usize,
                        pc: parse_u64(args[2])?,
                        base: parse_u64(args[3])?,
                        origin: parse_f64_bits(args[4])?,
                        orient: parse_f64_bits(args[5])?,
                        lanes: parse_u64(args[6])? as usize,
                        elem_bytes: parse_u64(args[7])?,
                        max_elems: parse_u64(args[8])?,
                    });
                }
                Some("barrier") => {
                    want(1)?;
                    case.ops.push(Op::Barrier);
                }
                other => return Err(format!("unknown op {other:?}")),
            },
            other => return Err(format!("unknown key {other:?}")),
        }
    }
    Ok(case)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::XorShift;

    #[test]
    fn round_trip_is_exact() {
        let mut rng = XorShift::new(99);
        for _ in 0..20 {
            let case = crate::fuzz::generate(&mut rng, false);
            let text = serialize(&case);
            let back = parse(&text).expect("parses back");
            assert_eq!(case, back, "round trip drifted for:\n{text}");
        }
    }

    #[test]
    fn mangled_input_is_rejected() {
        assert!(parse("nonsense").is_err());
        let mut rng = XorShift::new(1);
        let text = serialize(&crate::fuzz::generate(&mut rng, false));
        let mangled = text.replace("line_bytes", "line_bytez");
        assert!(parse(&mangled).is_err());
    }
}
