//! Generic greedy delta-debugging: the chunked-deletion loop the fuzzer
//! shrinks reproducers with, extracted so other layers (the scenario
//! synthesizer's corpus minimizer, most notably) can reuse it against
//! their own "still interesting?" predicates.
//!
//! The algorithm is the classic ddmin-style pass the fuzz driver has
//! always run: try deleting chunks of the item list, halving the chunk
//! size down to single items, and repeat the whole sweep until a fixpoint.
//! It is deterministic (no randomness, scan order fixed), terminates (the
//! list only ever shrinks between sweeps), and **idempotent**: running it
//! on its own output deletes nothing, because the final sweep already
//! proved every single-item deletion loses the property.

/// Greedily deletes items from `items` while `keeps` stays true, and
/// returns the locally minimal subset (original order preserved).
///
/// `keeps` receives candidate sublists; a candidate is adopted when the
/// predicate holds for it. The input itself is *not* checked — callers
/// start from a list already known to satisfy the predicate (the fuzzer
/// asserts divergence before shrinking; the corpus minimizer probes the
/// unshrunk spec first). The result is 1-minimal: no single remaining
/// item can be deleted without losing the property. An empty result is
/// possible when `keeps` accepts the empty list; predicates with a
/// non-empty invariant must encode it (`!c.is_empty() && ...`).
pub fn greedy_min_subset<T: Clone>(
    items: &[T],
    mut keeps: impl FnMut(&[T]) -> bool,
) -> Vec<T> {
    let mut best = items.to_vec();
    // Chunked deletion, repeated until a fixpoint.
    loop {
        let before = best.len();
        let mut chunk = (best.len() / 2).max(1);
        loop {
            let mut start = 0;
            while start < best.len() {
                let mut candidate = best.clone();
                let end = (start + chunk).min(candidate.len());
                candidate.drain(start..end);
                if keeps(&candidate) {
                    best = candidate;
                    // Same start index now holds the next chunk.
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        if best.len() == before {
            break;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_exactly_the_required_items() {
        // Property: the subset must contain both 3 and 7.
        let items: Vec<u32> = (0..100).collect();
        let min = greedy_min_subset(&items, |c| c.contains(&3) && c.contains(&7));
        assert_eq!(min, [3, 7]);
    }

    #[test]
    fn preserves_order_and_is_one_minimal() {
        // Property: sum of the kept items is at least 25; items 9+9+9
        // would do, but greedy deletion keeps whatever suffices.
        let items = vec![9, 1, 9, 1, 9, 1, 1];
        let min = greedy_min_subset(&items, |c| c.iter().sum::<i32>() >= 25);
        assert!(min.iter().sum::<i32>() >= 25);
        for skip in 0..min.len() {
            let without: Vec<i32> = min
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != skip)
                .map(|(_, v)| *v)
                .collect();
            assert!(
                without.iter().sum::<i32>() < 25,
                "result is not 1-minimal: could drop index {skip}"
            );
        }
        // Order is the original order (a subsequence, never a permutation).
        let mut it = items.iter();
        assert!(min.iter().all(|m| it.any(|v| v == m)));
    }

    #[test]
    fn shrinking_a_minimal_subset_is_a_no_op() {
        let items: Vec<u32> = (0..37).collect();
        let keeps = |c: &[u32]| c.contains(&5) && c.contains(&23) && c.contains(&36);
        let min = greedy_min_subset(&items, keeps);
        assert_eq!(greedy_min_subset(&min, keeps), min, "not idempotent");
    }

    #[test]
    fn empty_input_and_always_true_predicates_are_safe() {
        let empty: Vec<u8> = Vec::new();
        assert!(greedy_min_subset(&empty, |_| true).is_empty());
        assert!(greedy_min_subset(&[1u8, 2, 3], |_| true).is_empty());
        // A predicate that rejects every deletion keeps everything.
        let items = [1u8, 2, 3];
        assert_eq!(greedy_min_subset(&items, |c| c.len() == 3), items);
    }
}
