#![warn(missing_docs)]

//! Differential conformance oracle for the Tartan timing simulator.
//!
//! Every number the repository reports — OVEC speedups, ANL coverage, FCP
//! miss reductions — is only as trustworthy as `tartan-sim`. This crate
//! provides an *independent* check, in three layers:
//!
//! 1. **Golden models** ([`golden`]) — small, obviously-correct reference
//!    implementations of the four hardware mechanisms: the set-associative
//!    cache with true LRU, FCP XOR indexing, and `m(x)` recency
//!    manipulation; the ANL `PC+Region` degree table; OVEC oriented-load
//!    address generation; and the DRAM/L3 bandwidth accountant. They are
//!    written from the paper's description (and `DESIGN.md`), *not* from
//!    the simulator's code: shifts become divisions, intrusive updates
//!    become rebuilt state, so a shared bug is unlikely to hide in both.
//! 2. **Trace replay** ([`trace`]) — the simulator records a per-access
//!    decision trace (every [`tartan_telemetry::Event::MemRequest`] plus
//!    the hit/miss/eviction/prefetch decisions that follow it) through the
//!    ordinary telemetry [`Sink`](tartan_telemetry::Sink) machinery; the
//!    replay driver feeds the same request stream through the golden
//!    models and asserts decision-by-decision agreement, reporting the
//!    *first divergence* with full context (cycle, PC, address, both
//!    decisions).
//! 3. **Fuzzing** ([`fuzz`]) — a dependency-free, seeded fuzz driver
//!    generates adversarial machine configurations and access patterns,
//!    runs them through both sides, and greedily *shrinks* any divergence
//!    to a small reproducer that can be checked into `tests/corpus/` as a
//!    regression test (the in-tree proptest shim deliberately has no
//!    shrinking, so the oracle brings its own).
//!
//! The oracle also supports *mutation checks* ([`golden::Mutation`]): a
//! deliberate defect injected into a golden model must be caught by the
//! fuzz driver and shrunk to a tiny reproducer — the test that the oracle
//! itself has teeth.

pub mod corpus;
pub mod fuzz;
pub mod golden;
pub mod rng;
pub mod shrink;
pub mod trace;

pub use fuzz::{generate, run_case, FuzzCase, Op};
pub use shrink::greedy_min_subset;
pub use golden::{GoldenHierarchy, Mutation, Request};
pub use rng::XorShift;
pub use trace::{replay, CaptureSink, Decision, Divergence, DivergenceKind, GoldenTotals};
