//! The shrinking fuzz driver: generates adversarial machine configs and
//! access patterns, runs them through the real simulator with tracing on,
//! replays the trace through the golden models, and — on divergence —
//! greedily shrinks the case to a minimal reproducer.
//!
//! Everything is seeded and dependency-free ([`XorShift`]), so any failure
//! is reproducible from its printed seed or its serialized case
//! ([`crate::corpus`]).

use tartan_sim::{
    FcpConfig, FcpManipulation, Machine, MachineConfig, MemPolicy, PrefetcherKind, Proc,
};
use tartan_telemetry::shared;

use crate::golden::Mutation;
use crate::rng::XorShift;
use crate::trace::{replay, CaptureSink, Divergence, GoldenTotals};

/// One operation in a fuzzed access pattern.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// An independent load.
    Read {
        /// Executing core (thread in parallel sections).
        core: usize,
        /// Program counter.
        pc: u64,
        /// Byte address (may be unaligned, may straddle lines).
        addr: u64,
        /// Access size in bytes.
        bytes: u64,
    },
    /// A store, optionally routed through the write-through policy.
    Write {
        /// Executing core.
        core: usize,
        /// Program counter.
        pc: u64,
        /// Byte address.
        addr: u64,
        /// Access size in bytes.
        bytes: u64,
        /// Use [`MemPolicy::WriteThrough`] instead of [`MemPolicy::Normal`].
        through: bool,
    },
    /// An OVEC oriented load (only generated for OVEC-enabled configs).
    Ovec {
        /// Executing core.
        core: usize,
        /// Program counter.
        pc: u64,
        /// Base byte address of the pattern.
        base: u64,
        /// Fractional element index of lane 0.
        origin: f64,
        /// Fractional per-lane displacement.
        orient: f64,
        /// Number of lanes.
        lanes: usize,
        /// Element size in bytes.
        elem_bytes: u64,
        /// Buffer length in elements (indices clamp to it).
        max_elems: u64,
    },
    /// Ends the current `run`/`parallel` section. Sections restart the
    /// thread-local clock while prefetch `ready` stamps persist — the
    /// timeliness edge the oracle most wants to probe.
    Barrier,
}

impl Op {
    /// Whether the op performs memory accesses (barriers do not).
    pub fn is_access(&self) -> bool {
        !matches!(self, Op::Barrier)
    }
}

/// A complete fuzz case: a machine configuration plus an access pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct FuzzCase {
    /// Cores (1 = sequential `run` sections, 2 = `parallel` sections).
    pub cores: usize,
    /// Cache line size in bytes.
    pub line_bytes: u64,
    /// L1 (size_bytes, ways).
    pub l1: (u64, u32),
    /// L2 (size_bytes, ways).
    pub l2: (u64, u32),
    /// L3 (size_bytes, ways).
    pub l3: (u64, u32),
    /// DRAM latency in cycles (varies prefetch timeliness).
    pub dram_latency: u64,
    /// Attached L2 prefetcher.
    pub prefetcher: PrefetcherKind,
    /// ANL region size in bytes.
    pub anl_region_bytes: u64,
    /// FCP indexing/partitioning, if enabled.
    pub fcp: Option<FcpConfig>,
    /// Enable the write-through-regions policy.
    pub write_through: bool,
    /// Enable OVEC (required for [`Op::Ovec`]).
    pub ovec: bool,
    /// The access pattern.
    pub ops: Vec<Op>,
}

impl FuzzCase {
    /// The machine configuration this case runs under (caches deliberately
    /// tiny so short patterns still thrash them).
    pub fn config(&self) -> MachineConfig {
        let mut cfg = MachineConfig::legacy_baseline();
        cfg.cores = self.cores;
        cfg.line_bytes = self.line_bytes;
        (cfg.l1.size_bytes, cfg.l1.ways) = self.l1;
        (cfg.l2.size_bytes, cfg.l2.ways) = self.l2;
        (cfg.l3.size_bytes, cfg.l3.ways) = self.l3;
        cfg.dram_latency = self.dram_latency;
        cfg.prefetcher = self.prefetcher;
        cfg.anl_region_bytes = self.anl_region_bytes;
        cfg.fcp = self.fcp;
        cfg.write_through_regions = self.write_through;
        cfg.ovec = self.ovec;
        cfg
    }

    /// Number of accessing ops (the reproducer-size metric).
    pub fn accesses(&self) -> usize {
        self.ops.iter().filter(|o| o.is_access()).count()
    }
}

/// PCs drawn by the generator. `0x10` and `0x10 + 4096` share a 12-bit
/// ANL tag — the aliasing case the golden table must reproduce.
const PC_POOL: [u64; 5] = [0x10, 0x24, 0x38, 0x10 + 4096, 0x4c];

/// Generates one random fuzz case.
///
/// Geometry is drawn from small power-of-two menus so that (a) the set
/// math stays valid and (b) a few dozen accesses are enough to force
/// evictions at every level. `force_fcp` guarantees an FCP config (used
/// by the mutation check, whose injected defect lives in FCP indexing).
pub fn generate(rng: &mut XorShift, force_fcp: bool) -> FuzzCase {
    let cores = if rng.chance(1, 3) { 2 } else { 1 };
    let line_bytes = *rng.pick(&[32u64, 64]);
    let l1 = *rng.pick(&[(512u64, 2u32), (1024, 2), (1024, 4)]);
    let l2 = *rng.pick(&[(2048u64, 4u32), (4096, 4), (4096, 8)]);
    let l3 = *rng.pick(&[(8192u64, 4u32), (16384, 8)]);
    let dram_latency = *rng.pick(&[50u64, 200]);
    let prefetcher = *rng.pick(&[
        PrefetcherKind::None,
        PrefetcherKind::NextLine,
        PrefetcherKind::Anl,
        PrefetcherKind::Anl,
    ]);
    let anl_region_bytes = *rng.pick(&[256u64, 512, 1024]);
    let fcp = if force_fcp || rng.chance(1, 2) {
        let region_bytes = *rng.pick(&[256u64, 512, 1024]);
        let lines_per_region = region_bytes / line_bytes;
        // xor_bits must leave at least one offset line per XORed bucket.
        let max_bits = lines_per_region.ilog2();
        let xor_bits = 1 + rng.below(u64::from(max_bits)) as u32;
        let manipulation = *rng.pick(&[
            FcpManipulation::Increment,
            FcpManipulation::Double,
            FcpManipulation::Square,
        ]);
        Some(FcpConfig {
            region_bytes,
            xor_bits,
            manipulation,
        })
    } else {
        None
    };
    let write_through = rng.chance(1, 2);
    let ovec = rng.chance(1, 2);

    let n_ops = 30 + rng.below(90) as usize;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        let core = rng.below(cores as u64) as usize;
        let pc = *rng.pick(&PC_POOL);
        if rng.chance(1, 12) {
            ops.push(Op::Barrier);
        } else if ovec && rng.chance(1, 6) {
            ops.push(Op::Ovec {
                core,
                pc,
                base: rng.below(32) * line_bytes,
                // Eighths: exact in f64, still exercises the floor path.
                origin: rng.below(64) as f64 / 8.0 - 2.0,
                orient: rng.below(48) as f64 / 8.0 - 3.0,
                lanes: 1 + rng.below(16) as usize,
                elem_bytes: *rng.pick(&[2u64, 4, 8]),
                max_elems: 16 + rng.below(240),
            });
        } else {
            // A tight address space (a few L3s) forces conflict misses.
            let addr = rng.below(4 * l3.0);
            let bytes = 1 + rng.below(16);
            if rng.chance(2, 5) {
                ops.push(Op::Write {
                    core,
                    pc,
                    addr,
                    bytes,
                    through: rng.chance(1, 2),
                });
            } else {
                ops.push(Op::Read {
                    core,
                    pc,
                    addr,
                    bytes,
                });
            }
        }
    }
    FuzzCase {
        cores,
        line_bytes,
        l1,
        l2,
        l3,
        dram_latency,
        prefetcher,
        anl_region_bytes,
        fcp,
        write_through,
        ovec,
        ops,
    }
}

fn exec_op(p: &mut Proc<'_>, op: &Op) {
    match *op {
        Op::Read { pc, addr, bytes, .. } => p.read(pc, addr, bytes, MemPolicy::Normal),
        Op::Write {
            pc,
            addr,
            bytes,
            through,
            ..
        } => {
            let policy = if through {
                MemPolicy::WriteThrough
            } else {
                MemPolicy::Normal
            };
            p.write(pc, addr, bytes, policy);
        }
        Op::Ovec {
            pc,
            base,
            origin,
            orient,
            lanes,
            elem_bytes,
            max_elems,
            ..
        } => {
            p.oriented_load(pc, base, origin, orient, lanes, elem_bytes, max_elems, MemPolicy::Normal);
        }
        Op::Barrier => {}
    }
}

/// Runs a case through the real simulator (trace capture on) and replays
/// the capture through the golden models.
///
/// Returns the golden totals on agreement, or the first [`Divergence`].
/// A `mutation` bends the golden models, *not* the simulator — any
/// returned divergence then demonstrates the oracle's detection power.
pub fn run_case(case: &FuzzCase, mutation: Option<Mutation>) -> Result<GoldenTotals, Divergence> {
    let cfg = case.config();
    let mut m = Machine::new(cfg.clone());
    let (typed, erased) = shared(CaptureSink::new());
    m.set_telemetry(erased);

    for section in case.ops.split(|op| matches!(op, Op::Barrier)) {
        if section.is_empty() {
            continue;
        }
        if case.cores == 1 {
            m.run(|p| {
                for op in section {
                    exec_op(p, op);
                }
            });
        } else {
            m.parallel(case.cores, |tid, p| {
                for op in section {
                    let owner = match *op {
                        Op::Read { core, .. }
                        | Op::Write { core, .. }
                        | Op::Ovec { core, .. } => core,
                        Op::Barrier => unreachable!("sections are barrier-free"),
                    };
                    if owner == tid {
                        exec_op(p, op);
                    }
                }
            });
        }
    }

    let stats = m.stats();
    drop(m); // release the erased Arc so the capture is solely ours
    let events = std::mem::take(&mut typed.lock().expect("capture sink poisoned").events);
    let totals = replay(&cfg, &events, mutation)?;
    totals.check_against(&stats, events.len())?;
    Ok(totals)
}

/// Greedily shrinks a diverging case while preserving divergence.
///
/// First pass: delete op chunks (halving chunk sizes down to single ops).
/// Second pass: simplify the configuration (drop the prefetcher, FCP,
/// write-through) when divergence survives without them. The result is a
/// locally minimal reproducer, typically a handful of accesses.
pub fn shrink(case: &FuzzCase, mutation: Option<Mutation>) -> FuzzCase {
    let diverges = |c: &FuzzCase| run_case(c, mutation).is_err();
    assert!(diverges(case), "shrink starts from a diverging case");
    let mut best = case.clone();

    // Pass 1: chunked op deletion down to a 1-minimal op list, via the
    // shared greedy loop (`crate::shrink`). The config stays fixed while
    // ops shrink; an empty op list is never interesting.
    let template = best.clone();
    best.ops = crate::shrink::greedy_min_subset(&best.ops, |ops| {
        if ops.is_empty() {
            return false;
        }
        let mut candidate = template.clone();
        candidate.ops = ops.to_vec();
        diverges(&candidate)
    });

    // Pass 2: config simplifications, each kept only if still diverging.
    let mut candidate = best.clone();
    candidate.prefetcher = PrefetcherKind::None;
    if diverges(&candidate) {
        best = candidate;
    }
    let mut candidate = best.clone();
    candidate.fcp = None;
    if diverges(&candidate) {
        best = candidate;
    }
    let mut candidate = best.clone();
    candidate.write_through = false;
    if diverges(&candidate) {
        best = candidate;
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_cases_agree_with_the_simulator() {
        let mut rng = XorShift::new(0x7a57a2);
        for _ in 0..40 {
            let case = generate(&mut rng, false);
            if let Err(div) = run_case(&case, None) {
                panic!("golden/simulator divergence on {case:?}: {div}");
            }
        }
    }

    #[test]
    fn mutated_golden_model_is_caught_and_shrinks_small() {
        let mut rng = XorShift::new(11);
        let mut caught = 0;
        for _ in 0..40 {
            let case = generate(&mut rng, true);
            if run_case(&case, Some(Mutation::FcpIndexOffByOne)).is_err() {
                caught += 1;
                let small = shrink(&case, Some(Mutation::FcpIndexOffByOne));
                assert!(
                    small.accesses() <= 20,
                    "reproducer still has {} accesses",
                    small.accesses()
                );
                assert!(run_case(&small, Some(Mutation::FcpIndexOffByOne)).is_err());
                break;
            }
        }
        assert!(caught > 0, "off-by-one FCP index never diverged in 40 cases");
    }
}
