//! Golden OVEC oriented-load address generation (`O_MOVE`, §IV).
//!
//! Lane `i` of an oriented load reads element `floor(origin + i·orient)`,
//! clamped to the buffer; consecutive lanes that fall in one cache line
//! cost a single probe. These two functions re-derive the byte addresses
//! and the resulting demand-request stream so the replay driver can check
//! the simulator's generated addresses lane by lane.

/// The deduplicated byte addresses an oriented load fetches: one per run
/// of consecutive lanes that share a cache line.
pub fn ovec_lane_addresses(
    base: u64,
    origin: f64,
    orient: f64,
    lanes: u32,
    elem_bytes: u64,
    max_elems: u64,
    line_bytes: u64,
) -> Vec<u64> {
    let mut out = Vec::new();
    let mut last_line = None;
    for i in 0..lanes {
        let raw = (origin + f64::from(i) * orient).floor() as i64;
        let idx = raw.clamp(0, max_elems as i64 - 1) as u64;
        let addr = base + idx * elem_bytes;
        let line = addr / line_bytes;
        if last_line != Some(line) {
            out.push(addr);
            last_line = Some(line);
        }
    }
    out
}

/// The *line-granular* demand requests those addresses produce: an access
/// of `elem_bytes` at `addr` touches every line from its first to its last
/// byte, and each touched line is one request into the hierarchy.
pub fn ovec_line_requests(lane_addresses: &[u64], elem_bytes: u64, line_bytes: u64) -> Vec<u64> {
    let mut out = Vec::new();
    for &addr in lane_addresses {
        let first = addr / line_bytes;
        let last = (addr + elem_bytes - 1) / line_bytes;
        for line in first..=last {
            out.push(line * line_bytes);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractional_walk_floors_indices() {
        // origin 10.2, orient 1.5 → elements 10, 11, 13, 14. Line-sized
        // elements put each lane in its own line, so nothing deduplicates.
        let addrs = ovec_lane_addresses(0, 10.2, 1.5, 4, 64, 1 << 20, 64);
        assert_eq!(addrs, vec![640, 704, 832, 896]);
    }

    #[test]
    fn consecutive_same_line_lanes_dedup() {
        // Stride under a line: lanes 0..8 at 4 B inside 32 B lines → one
        // probe per 8 elements.
        let addrs = ovec_lane_addresses(0, 0.0, 1.0, 16, 4, 1 << 20, 32);
        assert_eq!(addrs, vec![0, 32]);
    }

    #[test]
    fn negative_orient_walks_backwards() {
        let addrs = ovec_lane_addresses(0, 10.0, -8.0, 3, 4, 1 << 20, 32);
        // Indices 10, 2, -6→0: addresses 40 (line 1), then 8 and 0 (both
        // line 0, deduplicated to the first).
        assert_eq!(addrs, vec![40, 8]);
    }

    #[test]
    fn clamping_pins_lanes_to_the_buffer_edge() {
        let addrs = ovec_lane_addresses(0, -5.0, 2.0, 4, 4, 4, 64);
        // Raw indices -5, -3, -1, 1 clamp to 0, 0, 0, 1 → addrs 0 (dedup), 4
        // — same line, so a single probe.
        assert_eq!(addrs, vec![0]);
    }

    #[test]
    fn straddling_elements_touch_two_lines() {
        let reqs = ovec_line_requests(&[30], 4, 32);
        assert_eq!(reqs, vec![0, 32]);
    }
}
