//! Golden set-associative cache: true LRU, prefetch timeliness, FCP
//! region indexing, and `m(x)` recency manipulation (§VII of the paper).

use tartan_sim::{FcpConfig, FcpManipulation};

use super::Mutation;

/// Recency values saturate here (mirrors the simulator's 15-bit cap so the
/// `x²` manipulation cannot overflow).
const AGE_MAX: u32 = 1 << 15;

/// One resident line's metadata.
#[derive(Debug, Clone, Copy)]
struct Slot {
    line: u64,
    dirty: bool,
    /// Still awaiting its first demand touch after a prefetch insert.
    prefetched: bool,
    /// Thread-local cycle at which a prefetched line's data arrives.
    ready: u64,
    /// 0 = most recently used; grows toward eviction.
    age: u32,
}

/// What one demand access decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenOutcome {
    /// Plain hit on a resident, demanded line.
    Hit,
    /// Plain miss; the line was filled from below.
    Miss,
    /// First touch of a prefetched line whose data had already arrived.
    Covered,
    /// First touch of a prefetched line still in flight (counts as a miss).
    Late,
}

/// A victim displaced by a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldenEviction {
    /// Line number of the victim.
    pub line: u64,
    /// Whether it was dirty (costs a writeback).
    pub dirty: bool,
    /// Whether it was a prefetched line never touched by demand.
    pub prefetched_unused: bool,
}

/// The golden cache model: per-set vectors of optional slots, way order
/// preserved so victim tie-breaks are reproducible.
#[derive(Debug, Clone)]
pub struct GoldenCache {
    sets: u64,
    ways: usize,
    line_bytes: u64,
    fcp: Option<FcpConfig>,
    mutation: Option<Mutation>,
    slots: Vec<Vec<Option<Slot>>>,
}

impl GoldenCache {
    /// Builds a golden cache with the same geometry the simulator derives:
    /// `sets = size / (line_bytes * ways)`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry (zero sets/ways).
    pub fn new(
        size_bytes: u64,
        ways: u32,
        line_bytes: u64,
        fcp: Option<FcpConfig>,
        mutation: Option<Mutation>,
    ) -> GoldenCache {
        let sets = size_bytes / (line_bytes * u64::from(ways));
        assert!(sets >= 1 && ways >= 1, "degenerate golden cache geometry");
        GoldenCache {
            sets,
            ways: ways as usize,
            line_bytes,
            fcp,
            mutation,
            slots: vec![vec![None; ways as usize]; sets as usize],
        }
    }

    /// The set a line number maps to.
    ///
    /// Written with division/modulo instead of the simulator's masks and
    /// shifts: conventional indexing is `line mod sets`; FCP indexing takes
    /// the region number and XORs in the top `l` bits of the intra-region
    /// line offset, so one region spreads over exactly `2^l` sets.
    pub fn index_of(&self, line: u64) -> u64 {
        match self.fcp {
            None => line % self.sets,
            Some(f) => {
                let lines_per_region = f.region_bytes / self.line_bytes;
                let region = line / lines_per_region;
                let offset = line % lines_per_region;
                let span = 1u64 << f.xor_bits;
                let offset_high = offset / (lines_per_region / span);
                let offset_high = match self.mutation {
                    // Off-by-one *before* the XOR: changes which lines
                    // collide, not just what the sets are called.
                    Some(Mutation::FcpIndexOffByOne) => offset_high + 1,
                    None => offset_high,
                };
                (region ^ offset_high) % self.sets
            }
        }
    }

    /// True-LRU touch: the named way becomes age 0; every other resident
    /// way that was younger than it ages by one (saturating).
    fn touch(set: &mut [Option<Slot>], way: usize) {
        let old_age = set[way].expect("touched way is resident").age;
        for (w, slot) in set.iter_mut().enumerate() {
            if w == way {
                continue;
            }
            if let Some(s) = slot {
                if s.age < old_age {
                    s.age = (s.age + 1).min(AGE_MAX);
                }
            }
        }
        set[way].as_mut().expect("touched way is resident").age = 0;
    }

    /// Victim way: the first empty slot, else the lowest-numbered way among
    /// those with the maximum age.
    fn victim(set: &[Option<Slot>]) -> usize {
        let mut best: Option<(usize, u32)> = None;
        for (w, slot) in set.iter().enumerate() {
            match slot {
                None => return w,
                Some(s) => {
                    if best.is_none_or(|(_, age)| s.age > age) {
                        best = Some((w, s.age));
                    }
                }
            }
        }
        best.expect("set has at least one way").0
    }

    /// FCP recency manipulation (§VII-B): after a fill, every *other*
    /// resident line of the filled line's region in this set has its age
    /// put through `m(x)`, pushing runaway regions toward eviction.
    fn manipulate_region(&mut self, index: u64, filled_line: u64) {
        let Some(f) = self.fcp else { return };
        let lines_per_region = f.region_bytes / self.line_bytes;
        let region = filled_line / lines_per_region;
        for slot in self.slots[index as usize].iter_mut().flatten() {
            if slot.line != filled_line && slot.line / lines_per_region == region {
                slot.age = apply_manipulation(f.manipulation, slot.age).min(AGE_MAX);
            }
        }
    }

    fn fill(
        &mut self,
        index: u64,
        line: u64,
        dirty: bool,
        prefetched: bool,
        ready: u64,
    ) -> Option<GoldenEviction> {
        let set = &mut self.slots[index as usize];
        let way = Self::victim(set);
        let evicted = set[way].map(|s| GoldenEviction {
            line: s.line,
            dirty: s.dirty,
            prefetched_unused: s.prefetched,
        });
        set[way] = Some(Slot {
            line,
            dirty,
            prefetched,
            ready,
            // Oldest possible, so the touch below ages every other line.
            age: AGE_MAX,
        });
        Self::touch(set, way);
        self.manipulate_region(index, line);
        evicted
    }

    /// A demand access. `mark_dirty` is whether the access dirties the line
    /// (false for reads and for write-through stores); `now` is the
    /// thread-local cycle prefetch timeliness is judged against.
    pub fn access(
        &mut self,
        line: u64,
        mark_dirty: bool,
        now: u64,
    ) -> (GoldenOutcome, Option<GoldenEviction>) {
        let index = self.index_of(line);
        let set = &mut self.slots[index as usize];
        let hit_way = set
            .iter()
            .position(|s| s.is_some_and(|s| s.line == line));
        if let Some(way) = hit_way {
            let slot = set[way].as_mut().expect("hit way is resident");
            let was_prefetched = slot.prefetched;
            let ready = slot.ready;
            slot.prefetched = false;
            if mark_dirty {
                slot.dirty = true;
            }
            Self::touch(set, way);
            let outcome = if !was_prefetched {
                GoldenOutcome::Hit
            } else if ready <= now {
                GoldenOutcome::Covered
            } else {
                GoldenOutcome::Late
            };
            return (outcome, None);
        }
        let evicted = self.fill(index, line, mark_dirty, false, 0);
        (GoldenOutcome::Miss, evicted)
    }

    /// Inserts a prefetched line whose data arrives at `ready`. Returns
    /// `None` if the line was already resident (no state change), else the
    /// displaced victim (if any).
    pub fn insert_prefetch(
        &mut self,
        line: u64,
        ready: u64,
    ) -> Option<Option<GoldenEviction>> {
        let index = self.index_of(line);
        if self.slots[index as usize]
            .iter()
            .any(|s| s.is_some_and(|s| s.line == line))
        {
            return None;
        }
        Some(self.fill(index, line, false, true, ready))
    }

    /// Whether a line is resident (no state change).
    pub fn contains(&self, line: u64) -> bool {
        let index = self.index_of(line);
        self.slots[index as usize]
            .iter()
            .any(|s| s.is_some_and(|s| s.line == line))
    }

    /// Number of resident lines (capacity invariant checks).
    pub fn valid_lines(&self) -> usize {
        self.slots.iter().flatten().filter(|s| s.is_some()).count()
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Ways per set (with [`GoldenCache::sets`], the capacity bound).
    pub fn ways(&self) -> usize {
        self.ways
    }
}

/// The recency-manipulation function `m(x)`, re-derived from the paper:
/// increment, double, or square, saturating.
fn apply_manipulation(m: FcpManipulation, x: u32) -> u32 {
    match m {
        FcpManipulation::Increment => x.saturating_add(1),
        FcpManipulation::Double => x.saturating_mul(2),
        FcpManipulation::Square => x.saturating_mul(x),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> GoldenCache {
        // 4 sets × 2 ways × 64 B.
        GoldenCache::new(512, 2, 64, None, None)
    }

    #[test]
    fn lru_evicts_oldest_with_low_way_tiebreak() {
        let mut c = tiny();
        assert_eq!(c.access(0, false, 0).0, GoldenOutcome::Miss);
        assert_eq!(c.access(4, false, 0).0, GoldenOutcome::Miss);
        assert_eq!(c.access(0, false, 0).0, GoldenOutcome::Hit);
        let (out, ev) = c.access(8, false, 0);
        assert_eq!(out, GoldenOutcome::Miss);
        assert_eq!(
            ev,
            Some(GoldenEviction {
                line: 4,
                dirty: false,
                prefetched_unused: false
            })
        );
    }

    #[test]
    fn prefetch_timeliness_splits_covered_and_late() {
        let mut c = tiny();
        assert!(c.insert_prefetch(12, 50).is_some());
        assert!(c.insert_prefetch(12, 50).is_none(), "duplicate is a no-op");
        assert_eq!(c.access(12, false, 100).0, GoldenOutcome::Covered);
        assert_eq!(c.access(12, false, 101).0, GoldenOutcome::Hit);
        let mut c2 = tiny();
        c2.insert_prefetch(13, 500);
        assert_eq!(c2.access(13, false, 100).0, GoldenOutcome::Late);
    }

    #[test]
    fn fcp_index_matches_division_formulation() {
        let fcp = FcpConfig {
            region_bytes: 512,
            xor_bits: 2,
            manipulation: FcpManipulation::Square,
        };
        // 16 sets × 4 ways × 64 B; 8 lines per region.
        let c = GoldenCache::new(4096, 4, 64, Some(fcp), None);
        // A region's 8 lines must spread over exactly 2^l = 4 sets.
        let mut sets: Vec<u64> = (0..8).map(|o| c.index_of(5 * 8 + o)).collect();
        sets.sort_unstable();
        sets.dedup();
        assert_eq!(sets.len(), 4);
    }

    #[test]
    fn mutation_shifts_fcp_index() {
        let fcp = FcpConfig {
            region_bytes: 512,
            xor_bits: 2,
            manipulation: FcpManipulation::Square,
        };
        let honest = GoldenCache::new(4096, 4, 64, Some(fcp), None);
        let bent = GoldenCache::new(4096, 4, 64, Some(fcp), Some(Mutation::FcpIndexOffByOne));
        // 8 lines/region, span 4: line 40 = region 5, offset_high 0.
        assert_eq!(honest.index_of(40), 5);
        assert_eq!(bent.index_of(40), 4);
        // The defect changes collision *structure*, not just set labels:
        // lines 4 (region 0, oh 2) and 14 (region 1, oh 3) conflict in the
        // honest mapping but land in different sets under the mutation.
        assert_eq!(honest.index_of(4), honest.index_of(14));
        assert_ne!(bent.index_of(4), bent.index_of(14));
    }
}
