//! The golden memory hierarchy: per-core L1/L2, a shared L3, golden
//! prefetchers, and the DRAM/L3 bandwidth accountant, stepped one demand
//! request at a time.
//!
//! [`GoldenHierarchy::step`] reproduces, for one recorded
//! [`MemRequest`](tartan_telemetry::Event::MemRequest), the exact sequence
//! of decisions the simulator emits as telemetry events: the L1 access,
//! the L2 access and its eviction, the L3 access on a true miss, and every
//! prefetch probe/issue/eviction that follows — in emission order, so the
//! replay driver can compare streams element by element.

use tartan_sim::{CacheConfig, MachineConfig, PrefetcherKind};
use tartan_telemetry::{CacheOutcome, Level};

use super::anl::{GoldenAnl, GoldenPrefetcher};
use super::cache::{GoldenCache, GoldenOutcome};
use super::Mutation;
use crate::trace::{Decision, GoldenLevelTotals, GoldenTotals};

/// One demand line request — the golden-side mirror of
/// [`tartan_telemetry::Event::MemRequest`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Global cycle stamp (used only to label decisions).
    pub cycle: u64,
    /// Requesting core.
    pub core: u32,
    /// Program counter (prefetcher training input).
    pub pc: u64,
    /// Line-aligned byte address.
    pub line_addr: u64,
    /// Whether the access is a store.
    pub write: bool,
    /// Whether the access dirties cache lines.
    pub dirty: bool,
    /// Bytes streamed to the L3 by a write-through store (0 otherwise).
    pub wt_bytes: u64,
    /// Thread-local cycle of the access (prefetch-timeliness clock).
    pub now: u64,
}

/// The golden hierarchy.
#[derive(Debug, Clone)]
pub struct GoldenHierarchy {
    line_bytes: u64,
    l1: Vec<GoldenCache>,
    l2: Vec<GoldenCache>,
    l3: GoldenCache,
    prefetchers: Vec<GoldenPrefetcher>,
    l2_latency: u64,
    l3_latency: u64,
    dram_latency: u64,
    dram_bytes_per_cycle: u64,
    totals: GoldenTotals,
}

impl GoldenHierarchy {
    /// Builds golden models for the hierarchy `cfg` describes, with an
    /// optional deliberate defect for mutation-testing the oracle.
    ///
    /// # Panics
    ///
    /// Panics on a config whose prefetcher has no golden model (Bingo).
    pub fn new(cfg: &MachineConfig, mutation: Option<Mutation>) -> GoldenHierarchy {
        let mk = |level: CacheConfig, fcp, mutation| {
            GoldenCache::new(level.size_bytes, level.ways, cfg.line_bytes, fcp, mutation)
        };
        let mut l1 = Vec::with_capacity(cfg.cores);
        let mut l2 = Vec::with_capacity(cfg.cores);
        let mut prefetchers = Vec::with_capacity(cfg.cores);
        for _ in 0..cfg.cores {
            l1.push(mk(cfg.l1, None, None));
            l2.push(mk(cfg.l2, cfg.fcp, mutation));
            prefetchers.push(match cfg.prefetcher {
                PrefetcherKind::None => GoldenPrefetcher::None,
                PrefetcherKind::NextLine => GoldenPrefetcher::NextLine {
                    line_bytes: cfg.line_bytes,
                },
                PrefetcherKind::Anl => {
                    GoldenPrefetcher::Anl(GoldenAnl::new(cfg.line_bytes, cfg.anl_region_bytes))
                }
                PrefetcherKind::Bingo => {
                    panic!("the oracle has no golden Bingo model; fuzz configs must avoid it")
                }
            });
        }
        GoldenHierarchy {
            line_bytes: cfg.line_bytes,
            l1,
            l2,
            l3: mk(cfg.l3, None, None),
            prefetchers,
            l2_latency: cfg.l2.latency,
            l3_latency: cfg.l3.latency,
            dram_latency: cfg.dram_latency,
            dram_bytes_per_cycle: cfg.dram_bytes_per_cycle,
            totals: GoldenTotals::default(),
        }
    }

    /// Aggregate counters accumulated so far (the DRAM/L3 accountant plus
    /// per-level cache tallies, mirroring `MachineStats` semantics).
    pub fn totals(&self) -> &GoldenTotals {
        &self.totals
    }

    /// Feeds one demand request through the golden hierarchy, appending
    /// the decision sequence (in the simulator's event-emission order) to
    /// `out`.
    ///
    /// # Panics
    ///
    /// Panics if `req.core` is out of range for the configuration.
    pub fn step(&mut self, req: &Request, out: &mut Vec<Decision>) {
        let core = req.core as usize;
        assert!(core < self.l1.len(), "request from unknown core {core}");
        let line = req.line_addr / self.line_bytes;
        self.totals.requests += 1;

        let (l1_out, l1_ev) = self.l1[core].access(line, req.dirty, req.now);
        self.totals.l1.tally_access(l1_out);
        out.push(Decision::Access {
            cycle: req.cycle,
            level: Level::L1,
            line_addr: req.line_addr,
            write: req.write,
            outcome: outcome_of(l1_out),
        });
        if let Some(ev) = l1_ev {
            self.totals.l1.tally_eviction(ev.dirty);
            out.push(Decision::Eviction {
                cycle: req.cycle,
                level: Level::L1,
                line_addr: ev.line * self.line_bytes,
                dirty: ev.dirty,
                prefetched_unused: ev.prefetched_unused,
            });
        }

        if l1_out == GoldenOutcome::Miss {
            let (l2_out, l2_ev) = self.l2[core].access(line, req.dirty, req.now);
            self.totals.l2.tally_access(l2_out);
            out.push(Decision::Access {
                cycle: req.cycle,
                level: Level::L2,
                line_addr: req.line_addr,
                write: req.write,
                outcome: outcome_of(l2_out),
            });
            if let Some(ev) = l2_ev {
                self.totals.l2.tally_eviction(ev.dirty);
                out.push(Decision::Eviction {
                    cycle: req.cycle,
                    level: Level::L2,
                    line_addr: ev.line * self.line_bytes,
                    dirty: ev.dirty,
                    prefetched_unused: ev.prefetched_unused,
                });
            }

            // Prefetcher training: only a *plain* hit counts as a hit, so
            // covered and late touches keep teaching the true miss density.
            let mut candidates = Vec::new();
            self.prefetchers[core].on_access(
                req.pc,
                req.line_addr,
                l2_out == GoldenOutcome::Hit,
                &mut candidates,
            );

            if l2_out == GoldenOutcome::Miss {
                let (l3_out, l3_ev) = self.l3.access(line, false, req.now);
                self.totals.l3.tally_access(l3_out);
                out.push(Decision::Access {
                    cycle: req.cycle,
                    level: Level::L3,
                    line_addr: req.line_addr,
                    write: false,
                    outcome: outcome_of(l3_out),
                });
                if let Some(ev) = l3_ev {
                    self.totals.l3.tally_eviction(ev.dirty);
                    out.push(Decision::Eviction {
                        cycle: req.cycle,
                        level: Level::L3,
                        line_addr: ev.line * self.line_bytes,
                        dirty: ev.dirty,
                        prefetched_unused: ev.prefetched_unused,
                    });
                }
                self.totals.l3_traffic_bytes += self.line_bytes;
                if l3_out == GoldenOutcome::Miss {
                    self.totals.dram_bytes += self.line_bytes;
                    if l3_ev.is_some_and(|ev| ev.dirty) {
                        // The displaced dirty L3 victim writes back to DRAM.
                        self.totals.dram_bytes += self.line_bytes;
                    }
                }
            }

            if let Some(ev) = l2_ev {
                // L2 evictions reach the prefetcher (ANL's region
                // termination) and cost writeback traffic when dirty.
                self.prefetchers[core].on_eviction(ev.line * self.line_bytes);
                if ev.dirty {
                    self.totals.l3_traffic_bytes += self.line_bytes;
                }
            }

            for candidate in candidates {
                self.issue_prefetch(core, candidate, req, out);
            }
        }

        if req.wt_bytes > 0 {
            // Write-through stores stream their payload to the L3.
            self.totals.l3_traffic_bytes += req.wt_bytes;
        }
    }

    fn issue_prefetch(&mut self, core: usize, line_addr: u64, req: &Request, out: &mut Vec<Decision>) {
        let line = line_addr / self.line_bytes;
        if self.l2[core].contains(line) {
            return;
        }
        // The L3 probe that determines the fill path (and its latency).
        let (l3_out, l3_ev) = self.l3.access(line, false, req.now);
        self.totals.l3.tally_access(l3_out);
        out.push(Decision::Access {
            cycle: req.cycle,
            level: Level::L3,
            line_addr,
            write: false,
            outcome: outcome_of(l3_out),
        });
        if let Some(ev) = l3_ev {
            self.totals.l3.tally_eviction(ev.dirty);
            out.push(Decision::Eviction {
                cycle: req.cycle,
                level: Level::L3,
                line_addr: ev.line * self.line_bytes,
                dirty: ev.dirty,
                prefetched_unused: ev.prefetched_unused,
            });
        }
        self.totals.l3_traffic_bytes += self.line_bytes;
        let mut fill_latency = self.l3_latency + self.l2_latency;
        if l3_out == GoldenOutcome::Miss {
            fill_latency += self.dram_latency + self.line_bytes / self.dram_bytes_per_cycle;
            self.totals.dram_bytes += self.line_bytes;
        }
        if let Some(evicted) = self.l2[core].insert_prefetch(line, req.now + fill_latency) {
            self.totals.l2.prefetches_issued += 1;
            out.push(Decision::Prefetch {
                cycle: req.cycle,
                level: Level::L2,
                line_addr,
            });
            if let Some(ev) = evicted {
                self.prefetchers[core].on_eviction(ev.line * self.line_bytes);
                if ev.dirty {
                    self.totals.l3_traffic_bytes += self.line_bytes;
                }
                self.totals.l2.tally_eviction(ev.dirty);
                out.push(Decision::Eviction {
                    cycle: req.cycle,
                    level: Level::L2,
                    line_addr: ev.line * self.line_bytes,
                    dirty: ev.dirty,
                    prefetched_unused: ev.prefetched_unused,
                });
            }
        }
    }
}

impl GoldenLevelTotals {
    fn tally_access(&mut self, out: GoldenOutcome) {
        self.accesses += 1;
        match out {
            GoldenOutcome::Hit => self.hits += 1,
            GoldenOutcome::Miss => self.misses += 1,
            GoldenOutcome::Covered => {
                self.prefetch_covered += 1;
                self.prefetches_useful += 1;
            }
            GoldenOutcome::Late => {
                // A late prefetch touch counts as a miss for coverage but
                // still proves the prefetch was useful.
                self.misses += 1;
                self.prefetches_late += 1;
                self.prefetches_useful += 1;
            }
        }
    }

    fn tally_eviction(&mut self, dirty: bool) {
        self.evictions += 1;
        if dirty {
            self.writebacks += 1;
        }
    }
}

fn outcome_of(out: GoldenOutcome) -> CacheOutcome {
    match out {
        GoldenOutcome::Hit => CacheOutcome::Hit,
        GoldenOutcome::Miss => CacheOutcome::Miss,
        GoldenOutcome::Covered => CacheOutcome::Covered,
        GoldenOutcome::Late => CacheOutcome::Late,
    }
}
