//! Golden prefetcher models: ANL's `PC+Region` degree table (§VI-D) and
//! the classic next-line baseline.

/// ANL table size (§VIII-C).
const TABLE_ENTRIES: usize = 16;
/// CD/LD saturate at 5 bits.
const DEGREE_MAX: u32 = 31;
/// Low-order PC bits kept in the tag (§VIII-C).
const PC_TAG_MOD: u64 = 1 << 12;

/// One `PC+Region` table entry, counters widened to `u32` so saturation is
/// an explicit `min` rather than a type-width artifact.
#[derive(Debug, Clone, Copy)]
struct Entry {
    pc_tag: u64,
    region: u64,
    /// Misses observed in the current region generation.
    current_degree: u32,
    /// Degree learned in the previous generation; consumed once.
    last_degree: u32,
}

/// The golden ANL model: a `Vec<Option<Entry>>` table in way order.
#[derive(Debug, Clone)]
pub struct GoldenAnl {
    table: Vec<Option<Entry>>,
    line_bytes: u64,
    region_bytes: u64,
}

impl GoldenAnl {
    /// Creates a golden ANL for the given line and region sizes.
    pub fn new(line_bytes: u64, region_bytes: u64) -> GoldenAnl {
        GoldenAnl {
            table: vec![None; TABLE_ENTRIES],
            line_bytes,
            region_bytes,
        }
    }

    fn find(&self, pc_tag: u64, region: u64) -> Option<usize> {
        self.table
            .iter()
            .position(|e| e.is_some_and(|e| e.pc_tag == pc_tag && e.region == region))
    }

    /// Replacement slot: first empty entry, else the first entry with the
    /// lowest `max(CD, LD)` — dense regions survive.
    fn victim(&self) -> usize {
        let mut best: Option<(usize, u32)> = None;
        for (i, entry) in self.table.iter().enumerate() {
            match entry {
                None => return i,
                Some(e) => {
                    let score = e.current_degree.max(e.last_degree);
                    if best.is_none_or(|(_, s)| score < s) {
                        best = Some((i, score));
                    }
                }
            }
        }
        best.expect("table is non-empty").0
    }

    /// Observes a demand access; appends next-line prefetch candidates.
    /// ANL trains on (and triggers from) misses only.
    pub fn on_access(&mut self, pc: u64, line_addr: u64, hit: bool, out: &mut Vec<u64>) {
        if hit {
            return;
        }
        let pc_tag = pc % PC_TAG_MOD;
        let region = line_addr / self.region_bytes;
        match self.find(pc_tag, region) {
            Some(i) => {
                let e = self.table[i].as_mut().expect("entry found");
                for k in 1..=u64::from(e.last_degree) {
                    out.push(line_addr + k * self.line_bytes);
                }
                e.current_degree = (e.current_degree + 1).min(DEGREE_MAX);
                e.last_degree = 0;
            }
            None => {
                let v = self.victim();
                self.table[v] = Some(Entry {
                    pc_tag,
                    region,
                    current_degree: 1,
                    last_degree: 0,
                });
            }
        }
    }

    /// Region termination (edge-triggered): the first eviction of a
    /// generation commits `CD → LD` for every entry tracking the region;
    /// later evictions of the same dead generation (CD already 0) must not
    /// clobber the learned degree.
    pub fn on_eviction(&mut self, line_addr: u64) {
        let region = line_addr / self.region_bytes;
        for entry in self.table.iter_mut().flatten() {
            if entry.region == region && entry.current_degree > 0 {
                entry.last_degree = entry.current_degree;
                entry.current_degree = 0;
            }
        }
    }
}

/// A golden model of whichever prefetcher a config attaches to the L2.
#[derive(Debug, Clone)]
pub enum GoldenPrefetcher {
    /// No prefetching.
    None,
    /// Degree-1 next line on every miss.
    NextLine {
        /// Cache line size in bytes.
        line_bytes: u64,
    },
    /// Tartan's adaptive next-line.
    Anl(GoldenAnl),
}

impl GoldenPrefetcher {
    /// Observes a demand access (`hit` means a *plain* hit — covered and
    /// late prefetch touches train as misses, like the simulator).
    pub fn on_access(&mut self, pc: u64, line_addr: u64, hit: bool, out: &mut Vec<u64>) {
        match self {
            GoldenPrefetcher::None => {}
            GoldenPrefetcher::NextLine { line_bytes } => {
                if !hit {
                    out.push(line_addr + *line_bytes);
                }
            }
            GoldenPrefetcher::Anl(anl) => anl.on_access(pc, line_addr, hit, out),
        }
    }

    /// Observes an L2 eviction (ANL's region-termination signal).
    pub fn on_eviction(&mut self, line_addr: u64) {
        if let GoldenPrefetcher::Anl(anl) = self {
            anl.on_eviction(line_addr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_and_replays_degree() {
        let mut anl = GoldenAnl::new(64, 1024);
        let mut out = Vec::new();
        for i in 0..3u64 {
            anl.on_access(7, i * 64, false, &mut out);
        }
        assert!(out.is_empty(), "first generation only learns");
        anl.on_eviction(64);
        anl.on_access(7, 0, false, &mut out);
        assert_eq!(out, vec![64, 128, 192]);
        // LD was consumed: the next miss in the region prefetches nothing.
        out.clear();
        anl.on_access(7, 128, false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn second_eviction_of_dead_generation_keeps_ld() {
        let mut anl = GoldenAnl::new(64, 1024);
        let mut out = Vec::new();
        anl.on_access(7, 0, false, &mut out);
        anl.on_access(7, 64, false, &mut out);
        anl.on_eviction(0);
        anl.on_eviction(64); // CD is 0: must not zero LD
        anl.on_access(7, 0, false, &mut out);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn pc_tags_alias_at_twelve_bits() {
        let mut anl = GoldenAnl::new(64, 1024);
        let mut out = Vec::new();
        anl.on_access(0x10, 0, false, &mut out);
        anl.on_access(0x10, 64, false, &mut out);
        anl.on_eviction(0);
        // 0x10 + 2^12 has the same 12-bit tag: it replays PC 0x10's degree.
        anl.on_access(0x10 + 4096, 0, false, &mut out);
        assert_eq!(out, vec![64, 128]);
    }
}
