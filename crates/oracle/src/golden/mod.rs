//! Golden functional models of the four Tartan hardware mechanisms.
//!
//! Each model is a deliberately naive re-implementation, written from the
//! paper / `DESIGN.md` description rather than from the simulator's code:
//! shifts become divisions, saturating counters are re-derived, and state
//! is kept in the most obvious representation. The point is independence —
//! a bug would have to be made twice, in two different shapes, to survive
//! the differential comparison.

mod anl;
mod cache;
mod hierarchy;
mod ovec;

pub use anl::{GoldenAnl, GoldenPrefetcher};
pub use cache::{GoldenCache, GoldenEviction, GoldenOutcome};
pub use hierarchy::{GoldenHierarchy, Request};
pub use ovec::{ovec_lane_addresses, ovec_line_requests};

/// A deliberate defect injected into a golden model, used to prove the
/// oracle catches bugs (mutation testing of the oracle itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// FCP set indexing is off by one *in the XORed offset bits*: the
    /// golden index becomes `region XOR (offset_high + 1) mod sets`.
    ///
    /// Note the placement: adding 1 *after* the XOR would merely relabel
    /// every set through a fixed bijection, preserving which lines
    /// collide — undetectable from decision streams by construction.
    /// Perturbing the offset bits *before* the XOR changes the collision
    /// structure itself, so any FCP case where the two mappings group
    /// lines differently diverges.
    FcpIndexOffByOne,
}
