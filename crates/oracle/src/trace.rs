//! Trace-replay differential validation.
//!
//! [`CaptureSink`] records the simulator's event stream (including the
//! opt-in [`Interest::TRACE`](tartan_telemetry::Interest::TRACE) demand
//! requests); [`replay`] feeds those requests through the golden models
//! and checks that every cache/prefetch decision the simulator emitted
//! matches the golden prediction, element by element and in order. The
//! first disagreement is returned as a [`Divergence`] carrying enough
//! context (cycle, PC, address, both decisions) to debug it directly.

use std::collections::VecDeque;
use std::fmt;

use tartan_sim::{MachineConfig, MachineStats};
use tartan_telemetry::{CacheOutcome, Event, Interest, Level, Sink};

use crate::golden::{ovec_lane_addresses, ovec_line_requests, GoldenHierarchy, Mutation, Request};

/// One decision the hierarchy makes, in the vocabulary shared by the
/// simulator's telemetry events and the golden models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// A demand access at a cache level and its outcome.
    Access {
        /// Global cycle stamp.
        cycle: u64,
        /// Cache level.
        level: Level,
        /// Accessed line address (bytes).
        line_addr: u64,
        /// Whether the access was a store.
        write: bool,
        /// Hit/miss/covered/late.
        outcome: CacheOutcome,
    },
    /// A victim displaced from a cache level.
    Eviction {
        /// Global cycle stamp.
        cycle: u64,
        /// Cache level.
        level: Level,
        /// Victim line address (bytes).
        line_addr: u64,
        /// Whether the victim costs a writeback.
        dirty: bool,
        /// Whether the victim was prefetched but never demanded.
        prefetched_unused: bool,
    },
    /// A prefetch issued into a cache level.
    Prefetch {
        /// Global cycle stamp.
        cycle: u64,
        /// Cache level prefetched into.
        level: Level,
        /// Prefetched line address (bytes).
        line_addr: u64,
    },
}

impl fmt::Display for Decision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Decision::Access {
                cycle,
                level,
                line_addr,
                write,
                outcome,
            } => write!(
                f,
                "access[{} {} addr={line_addr:#x} cycle={cycle}] -> {}",
                level.name(),
                if write { "store" } else { "load" },
                outcome.name(),
            ),
            Decision::Eviction {
                cycle,
                level,
                line_addr,
                dirty,
                prefetched_unused,
            } => write!(
                f,
                "evict[{} addr={line_addr:#x} cycle={cycle} dirty={dirty} unused_pf={prefetched_unused}]",
                level.name(),
            ),
            Decision::Prefetch {
                cycle,
                level,
                line_addr,
            } => write!(
                f,
                "prefetch[{} addr={line_addr:#x} cycle={cycle}]",
                level.name()
            ),
        }
    }
}

/// Why (and where) replay disagreed with the recorded stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DivergenceKind {
    /// The simulator emitted a decision event the golden model predicted
    /// differently.
    DecisionMismatch {
        /// What the golden model predicted.
        expected: Decision,
        /// What the simulator recorded.
        actual: Decision,
    },
    /// The golden model predicted a decision the simulator never emitted.
    MissingEvent {
        /// The unfulfilled prediction.
        expected: Decision,
    },
    /// The simulator emitted a decision event with nothing predicted.
    ExtraEvent {
        /// The unexpected event, as a decision.
        actual: Decision,
    },
    /// An OVEC-generated demand address disagreed with the golden address
    /// generator.
    OvecAddr {
        /// Golden next line address.
        expected: u64,
        /// Recorded line address.
        actual: u64,
    },
    /// The golden OVEC address generator expected more demand requests
    /// than the simulator issued.
    OvecShortfall {
        /// How many predicted line requests never appeared.
        remaining: usize,
    },
    /// An aggregate counter disagreed after an otherwise clean replay.
    TotalsMismatch {
        /// Which counter (e.g. `l2.misses`, `dram_bytes`).
        field: &'static str,
        /// Golden value.
        golden: u64,
        /// Simulator value.
        simulator: u64,
    },
}

/// The first point where the simulator and the golden models disagree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Divergence {
    /// Index into the recorded event stream (== its length for end-of-stream
    /// and totals divergences).
    pub index: usize,
    /// The demand request being replayed when the streams split, if any —
    /// carries the cycle, PC, and address of the triggering access.
    pub request: Option<Request>,
    /// What went wrong.
    pub kind: DivergenceKind,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "divergence at event {}", self.index)?;
        if let Some(r) = &self.request {
            write!(
                f,
                " (cycle {} pc {:#x} addr {:#x} core {})",
                r.cycle, r.pc, r.line_addr, r.core
            )?;
        }
        match self.kind {
            DivergenceKind::DecisionMismatch { expected, actual } => {
                write!(f, ": golden {expected} vs simulator {actual}")
            }
            DivergenceKind::MissingEvent { expected } => {
                write!(f, ": golden predicted {expected}, simulator emitted nothing")
            }
            DivergenceKind::ExtraEvent { actual } => {
                write!(f, ": simulator emitted {actual}, golden predicted nothing")
            }
            DivergenceKind::OvecAddr { expected, actual } => write!(
                f,
                ": OVEC generated addr {actual:#x}, golden expected {expected:#x}"
            ),
            DivergenceKind::OvecShortfall { remaining } => write!(
                f,
                ": OVEC pattern ended with {remaining} golden line requests unissued"
            ),
            DivergenceKind::TotalsMismatch {
                field,
                golden,
                simulator,
            } => write!(f, ": totals field {field}: golden {golden} vs simulator {simulator}"),
        }
    }
}

/// Per-level aggregate counters, shaped like the simulator's `CacheStats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GoldenLevelTotals {
    /// Demand accesses.
    pub accesses: u64,
    /// Plain demand hits.
    pub hits: u64,
    /// Demand misses (including late-prefetch touches).
    pub misses: u64,
    /// Misses covered by timely prefetches.
    pub prefetch_covered: u64,
    /// Prefetches issued into this level.
    pub prefetches_issued: u64,
    /// Prefetched lines later touched by demand.
    pub prefetches_useful: u64,
    /// Prefetched lines touched before their data arrived.
    pub prefetches_late: u64,
    /// Victims displaced from this level.
    pub evictions: u64,
    /// Dirty victims written back.
    pub writebacks: u64,
}

/// Aggregate counters accumulated by the golden hierarchy — the golden
/// DRAM/L3 bandwidth accountant plus per-level cache tallies.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GoldenTotals {
    /// Demand requests replayed.
    pub requests: u64,
    /// Merged per-core L1 counters.
    pub l1: GoldenLevelTotals,
    /// Merged per-core L2 counters.
    pub l2: GoldenLevelTotals,
    /// Shared L3 counters.
    pub l3: GoldenLevelTotals,
    /// Bytes moved between DRAM and the L3.
    pub dram_bytes: u64,
    /// Bytes moved between the L3 and the L2s.
    pub l3_traffic_bytes: u64,
}

impl GoldenTotals {
    /// Checks the golden counters against the simulator's end-of-run stats.
    /// Only the fields the golden hierarchy models are compared.
    pub fn check_against(&self, stats: &MachineStats, index: usize) -> Result<(), Divergence> {
        macro_rules! level_fields {
            ($lvl:ident) => {
                [
                    (
                        concat!(stringify!($lvl), ".accesses"),
                        self.$lvl.accesses,
                        stats.$lvl.accesses,
                    ),
                    (concat!(stringify!($lvl), ".hits"), self.$lvl.hits, stats.$lvl.hits),
                    (
                        concat!(stringify!($lvl), ".misses"),
                        self.$lvl.misses,
                        stats.$lvl.misses,
                    ),
                    (
                        concat!(stringify!($lvl), ".prefetch_covered"),
                        self.$lvl.prefetch_covered,
                        stats.$lvl.prefetch_covered,
                    ),
                    (
                        concat!(stringify!($lvl), ".prefetches_issued"),
                        self.$lvl.prefetches_issued,
                        stats.$lvl.prefetches_issued,
                    ),
                    (
                        concat!(stringify!($lvl), ".prefetches_useful"),
                        self.$lvl.prefetches_useful,
                        stats.$lvl.prefetches_useful,
                    ),
                    (
                        concat!(stringify!($lvl), ".prefetches_late"),
                        self.$lvl.prefetches_late,
                        stats.$lvl.prefetches_late,
                    ),
                    (
                        concat!(stringify!($lvl), ".evictions"),
                        self.$lvl.evictions,
                        stats.$lvl.evictions,
                    ),
                    (
                        concat!(stringify!($lvl), ".writebacks"),
                        self.$lvl.writebacks,
                        stats.$lvl.writebacks,
                    ),
                ]
            };
        }
        let globals = [
            ("dram_bytes", self.dram_bytes, stats.dram_bytes),
            ("l3_traffic_bytes", self.l3_traffic_bytes, stats.l3_traffic_bytes),
        ];
        let checks = globals
            .into_iter()
            .chain(level_fields!(l1))
            .chain(level_fields!(l2))
            .chain(level_fields!(l3));
        for (field, golden, simulator) in checks {
            if golden != simulator {
                return Err(Divergence {
                    index,
                    request: None,
                    kind: DivergenceKind::TotalsMismatch {
                        field,
                        golden,
                        simulator,
                    },
                });
            }
        }
        Ok(())
    }
}

/// Records every cache, prefetch, OVEC, and trace event, unbounded.
///
/// The replay driver needs the *complete* stream — a ring buffer's silent
/// drop-oldest policy would truncate the front and desynchronize replay.
#[derive(Debug, Default)]
pub struct CaptureSink {
    /// The recorded stream, in emission order.
    pub events: Vec<Event>,
}

impl CaptureSink {
    /// An empty capture.
    pub fn new() -> CaptureSink {
        CaptureSink::default()
    }
}

impl Sink for CaptureSink {
    fn record(&mut self, event: &Event) {
        self.events.push(event.clone());
    }

    fn interest(&self) -> Interest {
        Interest::CACHE | Interest::PREFETCH | Interest::OVEC | Interest::TRACE
    }
}

/// The decision a recorded event represents, if it represents one.
fn decision_of(event: &Event) -> Option<Decision> {
    match *event {
        Event::CacheAccess {
            cycle,
            level,
            line_addr,
            write,
            outcome,
        } => Some(Decision::Access {
            cycle,
            level,
            line_addr,
            write,
            outcome,
        }),
        Event::CacheEviction {
            cycle,
            level,
            line_addr,
            dirty,
            prefetched_unused,
        } => Some(Decision::Eviction {
            cycle,
            level,
            line_addr,
            dirty,
            prefetched_unused,
        }),
        Event::PrefetchIssue {
            cycle,
            level,
            line_addr,
        } => Some(Decision::Prefetch {
            cycle,
            level,
            line_addr,
        }),
        _ => None,
    }
}

/// Replays a recorded event stream through the golden models.
///
/// Walks the stream once: each [`Event::MemRequest`] is stepped through
/// [`GoldenHierarchy`], and the decision events that follow it must match
/// the golden predictions exactly, in order. [`Event::OvecAddrGen`] events
/// additionally arm the golden address generator, whose predicted line
/// requests are checked against the demand addresses that follow. Events
/// outside the replay contract (NPU, fault, phase) are ignored.
///
/// Returns the golden aggregate counters on success (compare them to
/// `Machine::stats` with [`GoldenTotals::check_against`] to close the loop
/// on the bandwidth accountant), or the first [`Divergence`].
///
/// The config must not enable `intel_lvs`: LVS-elided accesses issue no
/// demand request, which is fine for decision replay but starves the OVEC
/// address cross-check.
pub fn replay(
    cfg: &MachineConfig,
    events: &[Event],
    mutation: Option<Mutation>,
) -> Result<GoldenTotals, Divergence> {
    assert!(
        !cfg.intel_lvs,
        "replay does not support intel_lvs configurations"
    );
    let mut golden = GoldenHierarchy::new(cfg, mutation);
    let mut pending: VecDeque<Decision> = VecDeque::new();
    let mut scratch: Vec<Decision> = Vec::new();
    let mut ovec_queue: VecDeque<u64> = VecDeque::new();
    let mut last_request: Option<Request> = None;

    for (index, event) in events.iter().enumerate() {
        match *event {
            Event::MemRequest {
                cycle,
                core,
                pc,
                line_addr,
                write,
                dirty,
                wt_bytes,
                now,
            } => {
                if let Some(expected) = pending.pop_front() {
                    return Err(Divergence {
                        index,
                        request: last_request,
                        kind: DivergenceKind::MissingEvent { expected },
                    });
                }
                let request = Request {
                    cycle,
                    core,
                    pc,
                    line_addr,
                    write,
                    dirty,
                    wt_bytes,
                    now,
                };
                if let Some(expected) = ovec_queue.pop_front() {
                    if expected != line_addr {
                        return Err(Divergence {
                            index,
                            request: Some(request),
                            kind: DivergenceKind::OvecAddr {
                                expected,
                                actual: line_addr,
                            },
                        });
                    }
                }
                scratch.clear();
                golden.step(&request, &mut scratch);
                pending.extend(scratch.drain(..));
                last_request = Some(request);
            }
            Event::OvecAddrGen {
                lanes,
                base,
                origin,
                orient,
                elem_bytes,
                max_elems,
                ..
            } => {
                if !ovec_queue.is_empty() {
                    return Err(Divergence {
                        index,
                        request: last_request,
                        kind: DivergenceKind::OvecShortfall {
                            remaining: ovec_queue.len(),
                        },
                    });
                }
                let lane_addrs = ovec_lane_addresses(
                    base,
                    origin,
                    orient,
                    lanes,
                    elem_bytes,
                    max_elems,
                    cfg.line_bytes,
                );
                ovec_queue.extend(ovec_line_requests(&lane_addrs, elem_bytes, cfg.line_bytes));
            }
            _ => {
                if let Some(actual) = decision_of(event) {
                    match pending.pop_front() {
                        None => {
                            return Err(Divergence {
                                index,
                                request: last_request,
                                kind: DivergenceKind::ExtraEvent { actual },
                            })
                        }
                        Some(expected) if expected != actual => {
                            return Err(Divergence {
                                index,
                                request: last_request,
                                kind: DivergenceKind::DecisionMismatch { expected, actual },
                            })
                        }
                        Some(_) => {}
                    }
                }
                // NPU / fault / phase events carry no replayed decision.
            }
        }
    }

    if let Some(expected) = pending.pop_front() {
        return Err(Divergence {
            index: events.len(),
            request: last_request,
            kind: DivergenceKind::MissingEvent { expected },
        });
    }
    if !ovec_queue.is_empty() {
        return Err(Divergence {
            index: events.len(),
            request: last_request,
            kind: DivergenceKind::OvecShortfall {
                remaining: ovec_queue.len(),
            },
        });
    }
    Ok(golden.totals().clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tartan_sim::{Machine, MemPolicy, Proc};
    use tartan_telemetry::shared;

    fn tiny_cfg() -> MachineConfig {
        let mut cfg = MachineConfig::legacy_baseline();
        cfg.cores = 1;
        cfg.l1.size_bytes = 512;
        cfg.l1.ways = 2;
        cfg.l2.size_bytes = 2048;
        cfg.l2.ways = 4;
        cfg.l3.size_bytes = 8192;
        cfg.l3.ways = 4;
        cfg
    }

    fn capture(cfg: &MachineConfig, body: impl FnOnce(&mut Proc<'_>)) -> (Vec<Event>, MachineStats) {
        let mut m = Machine::new(cfg.clone());
        let (typed, erased) = shared(CaptureSink::new());
        m.set_telemetry(erased);
        m.run(|p| body(p));
        let stats = m.stats();
        let events = std::mem::take(&mut typed.lock().expect("capture sink").events);
        (events, stats)
    }

    #[test]
    fn clean_run_replays_without_divergence() {
        let cfg = tiny_cfg();
        let (events, stats) = capture(&cfg, |p| {
            for i in 0..64u64 {
                p.read(0x10, i * 64, 4, MemPolicy::Normal);
            }
            for i in 0..64u64 {
                p.write(0x20, i * 64, 4, MemPolicy::Normal);
            }
        });
        assert!(events.iter().any(|e| e.kind() == "mem_request"));
        let totals = replay(&cfg, &events, None).expect("no divergence");
        totals.check_against(&stats, events.len()).expect("totals agree");
        assert_eq!(totals.requests, 128);
    }

    #[test]
    fn tampered_stream_is_caught() {
        let cfg = tiny_cfg();
        let (mut events, _) = capture(&cfg, |p| {
            for i in 0..8u64 {
                p.read(0x10, i * 64, 4, MemPolicy::Normal);
            }
        });
        // Flip one recorded outcome: the replay must localize it.
        let target = events
            .iter()
            .position(|e| matches!(e, Event::CacheAccess { level: Level::L2, .. }))
            .expect("an L2 access was recorded");
        if let Event::CacheAccess { outcome, .. } = &mut events[target] {
            *outcome = CacheOutcome::Hit;
        }
        let div = replay(&cfg, &events, None).expect_err("tampering detected");
        assert_eq!(div.index, target);
        assert!(matches!(div.kind, DivergenceKind::DecisionMismatch { .. }));
    }
}
