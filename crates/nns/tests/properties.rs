//! Property-based conformance tests for the NNS engines (DESIGN.md §11):
//! on arbitrary seeded point clouds, the k-d tree must agree with brute
//! force exactly, and an LSH configured to examine every bucket must
//! degenerate to brute force.

use proptest::prelude::*;
use tartan_nns::{dist_sq, BruteForce, KdTree, LshConfig, LshNns, NnsEngine, PointSet};
use tartan_sim::{Machine, MachineConfig};

/// Raw points are generated 4-wide and truncated to the case's
/// dimensionality (the shimmed proptest has no `prop_flat_map` to couple
/// the two strategies directly). Coordinates come from a finite range, so
/// distances are well-defined and the k-d tree build (which sorts on
/// coordinates) never sees a NaN.
fn arb_raw_points(max: usize) -> impl Strategy<Value = Vec<Vec<f32>>> {
    proptest::collection::vec(
        proptest::collection::vec(-8.0f32..8.0, 4usize),
        1..max,
    )
}

fn truncate(raw: &[Vec<f32>], dim: usize) -> Vec<Vec<f32>> {
    raw.iter().map(|p| p[..dim].to_vec()).collect()
}

proptest! {
    // Each case builds a machine and simulates full queries; a modest case
    // count keeps the suite fast.
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The k-d tree is exact: for every query its nearest neighbor is at
    /// the same distance as brute force's (indices may differ on ties).
    #[test]
    fn kdtree_nearest_matches_brute_force(
        dim in 1usize..=4,
        raw_pts in arb_raw_points(50),
        raw_queries in arb_raw_points(6),
    ) {
        let (pts, queries) = (truncate(&raw_pts, dim), truncate(&raw_queries, dim));
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let set = PointSet::new(&mut m, &pts);
        let tree = KdTree::build(&mut m, &set);
        let brute = BruteForce::new();
        let pairs = m.run(|p| {
            queries
                .iter()
                .map(|q| {
                    let a = tree.nearest(p, &set, q).expect("non-empty set");
                    let b = brute.nearest(p, &set, q).expect("non-empty set");
                    (dist_sq(set.point(a), q), dist_sq(set.point(b), q))
                })
                .collect::<Vec<_>>()
        });
        for (i, (da, db)) in pairs.into_iter().enumerate() {
            prop_assert_eq!(da, db, "query {}", i);
        }
    }

    /// Radius search through the k-d tree returns exactly the brute-force
    /// index set, including points sitting right on the radius boundary.
    #[test]
    fn kdtree_within_matches_brute_force(
        dim in 1usize..=4,
        raw_pts in arb_raw_points(50),
        raw_queries in arb_raw_points(6),
        eps in 0.1f32..6.0,
    ) {
        let (pts, queries) = (truncate(&raw_pts, dim), truncate(&raw_queries, dim));
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let set = PointSet::new(&mut m, &pts);
        let tree = KdTree::build(&mut m, &set);
        let brute = BruteForce::new();
        let pairs = m.run(|p| {
            queries
                .iter()
                .map(|q| {
                    let (mut a, mut b) = (Vec::new(), Vec::new());
                    tree.within(p, &set, q, eps, &mut a);
                    brute.within(p, &set, q, eps, &mut b);
                    (a, b)
                })
                .collect::<Vec<_>>()
        });
        for (i, (a, b)) in pairs.into_iter().enumerate() {
            prop_assert_eq!(a, b, "query {}", i);
        }
    }

    /// An LSH whose probes cover every reachable bucket is exhaustive, so
    /// it must match brute force exactly — in both flavours. With one
    /// projection and a huge bucket width, every key is 0 or -1 (the dot
    /// products are far smaller than `w`, but can be negative), and two
    /// probes (`key±1`) reach both, so every point is examined.
    #[test]
    fn exhaustive_probe_lsh_matches_brute_force(
        dim in 1usize..=4,
        raw_pts in arb_raw_points(50),
        raw_queries in arb_raw_points(6),
        seed in any::<u64>(),
        vectorized in any::<bool>(),
        eps in 0.1f32..6.0,
    ) {
        let (pts, queries) = (truncate(&raw_pts, dim), truncate(&raw_queries, dim));
        let cfg = LshConfig {
            projections: 1,
            w: 1e6,
            probes: 2,
            seed,
            vectorized,
        };
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let set = PointSet::new(&mut m, &pts);
        let lsh = LshNns::build(&mut m, &set, cfg);
        prop_assert!(lsh.buckets() <= 2, "keys beyond {{-1, 0}} break coverage");
        let brute = BruteForce::new();
        let results = m.run(|p| {
            queries
                .iter()
                .map(|q| {
                    let a = lsh.nearest(p, &set, q).expect("non-empty set");
                    let b = brute.nearest(p, &set, q).expect("non-empty set");
                    let (mut wa, mut wb) = (Vec::new(), Vec::new());
                    lsh.within(p, &set, q, eps, &mut wa);
                    brute.within(p, &set, q, eps, &mut wb);
                    (dist_sq(set.point(a), q), dist_sq(set.point(b), q), wa, wb)
                })
                .collect::<Vec<_>>()
        });
        for (i, (da, db, wa, wb)) in results.into_iter().enumerate() {
            prop_assert_eq!(da, db, "nearest, query {}", i);
            prop_assert_eq!(wa, wb, "within, query {}", i);
        }
    }
}
