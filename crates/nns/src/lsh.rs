//! LSH-based NNS via random projections (§VI-A/B), in two software
//! flavours: FLANN-style scalar code and Tartan's vectorized VLN (§VI-C).
//!
//! The hash of a point `x` is the vector of `⌊x·r_k / w⌋` over `K` random
//! Gaussian directions `r_k`; points are *physically reordered* so each
//! bucket is one contiguous run (cache-friendly sequential scans, §VI-E).

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use tartan_sim::{Buffer, Machine, MemPolicy, Proc};

use crate::point_set::PointSet;
use crate::{dist_sq, NnsEngine};

const PC_PROJECTION: u64 = 0x6_3000;
const PC_DIRECTORY: u64 = 0x6_3100;
const PC_BUCKET_SCAN: u64 = 0x6_3200;
const PC_BUCKET_IDS: u64 = 0x6_3300;

/// Configuration of an LSH engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LshConfig {
    /// Number of random projections `K` (hash-key length).
    pub projections: usize,
    /// Bucket width `w` (§VI-A); larger buckets raise recall and cost.
    pub w: f32,
    /// Multi-probe extent: how many single-coordinate ±1 key perturbations
    /// to also examine (0 = only the exact bucket).
    pub probes: usize,
    /// RNG seed for the projection directions.
    pub seed: u64,
    /// `true` → VLN (vectorized projection and examination);
    /// `false` → FLANN-style scalar code.
    pub vectorized: bool,
}

impl LshConfig {
    /// A FLANN-like configuration.
    pub fn flann(w: f32) -> Self {
        LshConfig {
            projections: 4,
            w,
            probes: 4,
            seed: 0x15A,
            vectorized: false,
        }
    }

    /// Tartan's VLN configuration (same algorithmic parameters, vectorized
    /// execution).
    pub fn vln(w: f32) -> Self {
        LshConfig {
            vectorized: true,
            ..Self::flann(w)
        }
    }
}

/// An LSH-based approximate NNS engine over a [`PointSet`].
#[derive(Debug)]
pub struct LshNns {
    cfg: LshConfig,
    dim: usize,
    /// `K × dim` projection directions, row-major, in simulated memory.
    proj: Buffer<f32>,
    /// Points reordered into bucket-contiguous layout.
    bucket_data: Buffer<f32>,
    /// Original point index of each reordered slot.
    bucket_ids: Buffer<u32>,
    /// Packed `(start << 32) | len` per directory slot.
    directory: Buffer<u64>,
    /// Hash key → directory slot.
    table: HashMap<Vec<i32>, u32>,
}

impl LshNns {
    /// Builds the hash tables and bucket-contiguous storage (untimed setup).
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero projections or a non-positive
    /// bucket width.
    pub fn build(machine: &mut Machine, set: &PointSet, cfg: LshConfig) -> Self {
        assert!(cfg.projections > 0, "need at least one projection");
        assert!(cfg.w > 0.0, "bucket width must be positive");
        let dim = set.dim();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        // Gaussian directions via Box–Muller.
        let mut proj_flat = Vec::with_capacity(cfg.projections * dim);
        for _ in 0..cfg.projections * dim {
            let u1: f32 = rng.random_range(1e-6f32..1.0);
            let u2: f32 = rng.random_range(0.0f32..1.0);
            proj_flat.push((-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos());
        }

        let key_of = |pt: &[f32]| -> Vec<i32> {
            (0..cfg.projections)
                .map(|k| {
                    let dot: f32 = proj_flat[k * dim..(k + 1) * dim]
                        .iter()
                        .zip(pt.iter())
                        .map(|(a, b)| a * b)
                        .sum();
                    (dot / cfg.w).floor() as i32
                })
                .collect()
        };

        // Group points by key.
        let mut groups: HashMap<Vec<i32>, Vec<u32>> = HashMap::new();
        for i in 0..set.len() {
            groups.entry(key_of(set.point(i))).or_default().push(i as u32);
        }
        // Deterministic directory order.
        let mut keys: Vec<Vec<i32>> = groups.keys().cloned().collect();
        keys.sort_unstable();

        let mut bucket_flat = Vec::with_capacity(set.len() * dim);
        let mut ids = Vec::with_capacity(set.len());
        let mut directory = Vec::with_capacity(keys.len());
        let mut table = HashMap::with_capacity(keys.len());
        for (slot, key) in keys.into_iter().enumerate() {
            let members = &groups[&key];
            let start = ids.len() as u64;
            for &i in members {
                bucket_flat.extend_from_slice(set.point(i as usize));
                ids.push(i);
            }
            directory.push((start << 32) | members.len() as u64);
            table.insert(key, slot as u32);
        }

        LshNns {
            cfg,
            dim,
            proj: machine.buffer_from_vec(proj_flat, MemPolicy::Normal),
            bucket_data: machine.buffer_from_vec(bucket_flat, MemPolicy::Normal),
            bucket_ids: machine.buffer_from_vec(ids, MemPolicy::Normal),
            directory: machine.buffer_from_vec(directory, MemPolicy::Normal),
            table,
        }
    }

    /// The configuration this engine was built with.
    pub fn config(&self) -> &LshConfig {
        &self.cfg
    }

    /// Number of distinct buckets.
    pub fn buckets(&self) -> usize {
        self.directory.len()
    }

    /// Computes the hash key of `query`, charging projection cost.
    fn hash_query(&self, p: &mut Proc<'_>, query: &[f32]) -> Vec<i32> {
        let mut key = Vec::with_capacity(self.cfg.projections);
        for k in 0..self.cfg.projections {
            let row = if self.cfg.vectorized {
                // VLN: the dot product runs on the vector unit; one vload of
                // the direction row, then fused multiply-adds.
                let row = self.proj.vget(p, PC_PROJECTION, k * self.dim, self.dim);
                p.vec_compute(2 * self.dim as u64);
                p.instr(2); // horizontal reduce + floor/divide
                row
            } else {
                // FLANN: scalar loop with per-element loads and branches.
                for d in 0..self.dim {
                    let _ = self.proj.get(p, PC_PROJECTION, k * self.dim + d);
                }
                p.flop(2 * self.dim as u64);
                p.instr(self.dim as u64 + 2); // loop overhead + floor/divide
                &self.proj.as_slice()[k * self.dim..(k + 1) * self.dim]
            };
            let dot: f32 = row.iter().zip(query.iter()).map(|(a, b)| a * b).sum();
            key.push((dot / self.cfg.w).floor() as i32);
        }
        key
    }

    /// Yields the directory slots to examine for a key (exact bucket plus
    /// multi-probe perturbations).
    fn probe_slots(&self, p: &mut Proc<'_>, key: &[i32]) -> Vec<u32> {
        let mut slots = Vec::new();
        let try_key = |p: &mut Proc<'_>, k: &[i32], slots: &mut Vec<u32>| {
            // Hash-table probe: hashing arithmetic plus one dependent load
            // into the directory.
            p.instr(8);
            if let Some(&slot) = self.table.get(k) {
                let _ = self.directory.get_dep(p, PC_DIRECTORY, slot as usize);
                if !slots.contains(&slot) {
                    slots.push(slot);
                }
            }
        };
        try_key(p, key, &mut slots);
        let mut probed = 0;
        'outer: for k in 0..key.len() {
            for delta in [-1i32, 1] {
                if probed >= self.cfg.probes {
                    break 'outer;
                }
                let mut kk = key.to_vec();
                kk[k] += delta;
                try_key(p, &kk, &mut slots);
                probed += 1;
            }
        }
        slots
    }

    fn slot_range(&self, slot: u32) -> (usize, usize) {
        let packed = self.directory.as_slice()[slot as usize];
        ((packed >> 32) as usize, (packed & 0xFFFF_FFFF) as usize)
    }

    /// Scans one bucket, invoking `visit(original_index, dist_sq)`.
    fn scan_bucket(
        &self,
        p: &mut Proc<'_>,
        slot: u32,
        query: &[f32],
        mut visit: impl FnMut(usize, f32),
    ) {
        let (start, len) = self.slot_range(slot);
        if len == 0 {
            return;
        }
        if self.cfg.vectorized {
            // VLN: one contiguous vector load of the whole candidate run,
            // vectorized subtract/multiply/accumulate, then a masked
            // compare; IDs come in with a vector load as well.
            let data = self
                .bucket_data
                .vget(p, PC_BUCKET_SCAN, start * self.dim, len * self.dim);
            p.vec_compute(3 * (len * self.dim) as u64);
            p.instr(len.div_ceil(p.lanes()) as u64 + 1);
            let ids = self.bucket_ids.vget(p, PC_BUCKET_IDS, start, len);
            for (j, &id) in ids.iter().enumerate() {
                let d = dist_sq(&data[j * self.dim..(j + 1) * self.dim], query);
                visit(id as usize, d);
            }
        } else {
            // FLANN: scalar per-candidate loop with a conditional branch on
            // every iteration (what defeats the auto-vectorizer, §VIII-C).
            for j in 0..len {
                for d in 0..self.dim {
                    let _ = self
                        .bucket_data
                        .get(p, PC_BUCKET_SCAN, (start + j) * self.dim + d);
                }
                p.flop(3 * self.dim as u64);
                p.instr(4);
                let id = self.bucket_ids.get(p, PC_BUCKET_IDS, start + j);
                let d = dist_sq(
                    &self.bucket_data.as_slice()[(start + j) * self.dim..(start + j + 1) * self.dim],
                    query,
                );
                visit(id as usize, d);
            }
        }
    }
}

impl NnsEngine for LshNns {
    fn nearest(&self, p: &mut Proc<'_>, set: &PointSet, query: &[f32]) -> Option<usize> {
        let key = self.hash_query(p, query);
        let slots = self.probe_slots(p, &key);
        let mut best: Option<(usize, f32)> = None;
        for slot in slots {
            self.scan_bucket(p, slot, query, |id, d| {
                if best.is_none_or(|(_, bd)| d < bd) {
                    best = Some((id, d));
                }
            });
        }
        if best.is_none() {
            // Rare fallback when every probed bucket is empty: exhaustive
            // scan keeps the engine total (RRT needs *a* neighbor).
            return crate::BruteForce::new().nearest(p, set, query);
        }
        best.map(|(i, _)| i)
    }

    fn within(&self, p: &mut Proc<'_>, _set: &PointSet, query: &[f32], eps: f32, out: &mut Vec<usize>) {
        let key = self.hash_query(p, query);
        let slots = self.probe_slots(p, &key);
        let eps_sq = eps * eps;
        for slot in slots {
            self.scan_bucket(p, slot, query, |id, d| {
                if d <= eps_sq {
                    out.push(id);
                }
            });
        }
        out.sort_unstable();
        out.dedup();
    }

    fn name(&self) -> &'static str {
        if self.cfg.vectorized {
            "VLN"
        } else {
            "FLANN"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;
    use tartan_sim::MachineConfig;

    fn clustered_points(n: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..8)
            .map(|_| (0..4).map(|_| rng.random_range(-4.0f32..4.0)).collect())
            .collect();
        (0..n)
            .map(|i| {
                let c = &centers[i % centers.len()];
                c.iter().map(|x| x + rng.random_range(-0.3f32..0.3)).collect()
            })
            .collect()
    }

    #[test]
    fn recall_against_brute_force_is_high() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let pts = clustered_points(2000, 11);
        let set = PointSet::new(&mut m, &pts);
        let vln = LshNns::build(&mut m, &set, LshConfig::vln(1.5));
        let brute = BruteForce::new();
        let mut rng = StdRng::seed_from_u64(12);
        let mut good = 0;
        let trials = 60;
        m.run(|p| {
            for _ in 0..trials {
                let idx = rng.random_range(0..pts.len());
                let q: Vec<f32> = pts[idx].iter().map(|x| x + 0.05).collect();
                let a = vln.nearest(p, &set, &q).expect("fallback guarantees Some");
                let b = brute.nearest(p, &set, &q).expect("non-empty");
                let da = dist_sq(set.point(a), &q).sqrt();
                let db = dist_sq(set.point(b), &q).sqrt();
                // §VIII-C: tuned for operation accuracy within 1% of brute
                // force; allow a small absolute slack for ties.
                if da <= db + 0.05 {
                    good += 1;
                }
            }
        });
        assert!(
            good as f64 / trials as f64 > 0.9,
            "recall {good}/{trials} too low"
        );
    }

    #[test]
    fn vln_needs_fewer_instructions_than_flann() {
        let pts = clustered_points(4000, 21);
        let run = |vectorized: bool| {
            let mut m = Machine::new(MachineConfig::upgraded_baseline());
            let set = PointSet::new(&mut m, &pts);
            let cfg = if vectorized {
                LshConfig::vln(1.5)
            } else {
                LshConfig::flann(1.5)
            };
            let engine = LshNns::build(&mut m, &set, cfg);
            m.run(|p| {
                for i in 0..100 {
                    let q: Vec<f32> = pts[i * 17 % pts.len()].clone();
                    engine.nearest(p, &set, &q);
                }
            });
            (m.wall_cycles(), m.stats().instructions)
        };
        let (vln_t, vln_i) = run(true);
        let (flann_t, flann_i) = run(false);
        assert!(vln_i * 2 < flann_i, "instructions {vln_i} vs {flann_i}");
        assert!(vln_t < flann_t, "time {vln_t} vs {flann_t}");
    }

    #[test]
    fn within_finds_radius_neighbors() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let pts = vec![
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.1, 0.0, 0.0, 0.0],
            vec![3.0, 3.0, 3.0, 3.0],
        ];
        let set = PointSet::new(&mut m, &pts);
        let vln = LshNns::build(&mut m, &set, LshConfig::vln(1.0));
        let mut out = Vec::new();
        m.run(|p| vln.within(p, &set, &[0.0; 4], 0.5, &mut out));
        assert!(out.contains(&0));
        assert!(out.contains(&1));
        assert!(!out.contains(&2));
    }

    #[test]
    fn buckets_reflect_spatial_density() {
        // Same-cluster points should predominantly share buckets: the
        // collision probability of LSH rises as distance falls (§VI-A).
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let pts = clustered_points(800, 31);
        let set = PointSet::new(&mut m, &pts);
        let engine = LshNns::build(&mut m, &set, LshConfig::vln(2.0));
        assert!(engine.buckets() >= 2, "clusters should form multiple buckets");
        assert!(
            engine.buckets() < 700,
            "near-duplicate points must collide ({} buckets)",
            engine.buckets()
        );
    }

    #[test]
    #[should_panic(expected = "bucket width")]
    fn zero_width_rejected() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let set = PointSet::new(&mut m, &[vec![0.0]]);
        let _ = LshNns::build(&mut m, &set, LshConfig::vln(0.0));
    }
}
