#![warn(missing_docs)]

//! Instrumented nearest-neighbor-search engines for the Tartan simulator
//! (§VI, Fig. 9).
//!
//! Four engines, matching the paper's comparison:
//!
//! * [`BruteForce`] — RoWild's baseline: scan every point,
//! * [`KdTree`] — the OMPL-style tree; traversal is a chain of *dependent*
//!   loads, which is why its cache misses stall the core (§VIII-C),
//! * [`LshNns`] in FLANN mode — LSH with scalar projection and examination
//!   (conditional branches defeat compiler vectorization),
//! * [`LshNns`] in VLN mode — Tartan's aggressively vectorized LSH: the
//!   projection dot-products and the candidate examination both run on the
//!   vector unit (§VI-C). A software-only technique.
//!
//! All engines answer the same queries over a shared [`PointSet`] and are
//! exercised through a [`Proc`], so their execution time and cache behavior
//! come out of the simulator rather than hand-waved constants.
//!
//! # Examples
//!
//! ```
//! use tartan_sim::{Machine, MachineConfig, MemPolicy};
//! use tartan_nns::{PointSet, BruteForce, NnsEngine};
//!
//! let mut m = Machine::new(MachineConfig::upgraded_baseline());
//! let pts = vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![0.1, 0.1]];
//! let set = PointSet::new(&mut m, &pts);
//! let brute = BruteForce::new();
//! let hit = m.run(|p| brute.nearest(p, &set, &[0.05, 0.05]));
//! assert_eq!(hit, Some(0));
//! ```

mod brute;
mod dynamic;
mod kdtree;
mod lsh;
mod point_set;

pub use brute::BruteForce;
pub use dynamic::{DynBrute, DynKdTree, DynLsh, DynNns, DynPointStore};
pub use kdtree::KdTree;
pub use lsh::{LshConfig, LshNns};
pub use point_set::PointSet;

use tartan_sim::Proc;

/// A nearest-neighbor engine over a [`PointSet`].
pub trait NnsEngine {
    /// Returns the index of the (approximately) nearest point to `query`,
    /// or `None` if the engine finds no candidate.
    fn nearest(&self, p: &mut Proc<'_>, set: &PointSet, query: &[f32]) -> Option<usize>;

    /// Appends the indices of all points within Euclidean distance `eps`
    /// of `query` that the engine can find.
    fn within(&self, p: &mut Proc<'_>, set: &PointSet, query: &[f32], eps: f32, out: &mut Vec<usize>);

    /// Engine name for reports (`"Brute"`, `"KdTree"`, `"FLANN"`, `"VLN"`).
    fn name(&self) -> &'static str;
}

/// Squared Euclidean distance between two untimed slices.
pub fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}
