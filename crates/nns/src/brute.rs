//! The exhaustive baseline search (RoWild's default, §VIII-C-1).

use tartan_sim::Proc;

use crate::point_set::PointSet;
use crate::{dist_sq, NnsEngine};

/// Brute-force NNS: scans every point with scalar loads and arithmetic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BruteForce;

impl BruteForce {
    /// Creates the engine.
    pub fn new() -> Self {
        BruteForce
    }
}

impl NnsEngine for BruteForce {
    fn nearest(&self, p: &mut Proc<'_>, set: &PointSet, query: &[f32]) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for i in 0..set.len() {
            let pt = set.load_point(p, i);
            let d = dist_sq(pt, query);
            // dim subs, dim muls, dim-1 adds, one compare + branch.
            p.flop(3 * set.dim() as u64);
            p.instr(2);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best.map(|(i, _)| i)
    }

    fn within(&self, p: &mut Proc<'_>, set: &PointSet, query: &[f32], eps: f32, out: &mut Vec<usize>) {
        let eps_sq = eps * eps;
        for i in 0..set.len() {
            let pt = set.load_point(p, i);
            let d = dist_sq(pt, query);
            p.flop(3 * set.dim() as u64);
            p.instr(2);
            if d <= eps_sq {
                out.push(i);
            }
        }
    }

    fn name(&self) -> &'static str {
        "Brute"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tartan_sim::{Machine, MachineConfig};

    #[test]
    fn finds_exact_nearest() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let pts = vec![vec![0.0, 0.0], vec![5.0, 5.0], vec![1.0, 1.0]];
        let set = PointSet::new(&mut m, &pts);
        let hit = m.run(|p| BruteForce::new().nearest(p, &set, &[1.2, 0.9]));
        assert_eq!(hit, Some(2));
    }

    #[test]
    fn within_returns_all_in_radius() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let pts = vec![vec![0.0], vec![0.5], vec![2.0], vec![0.9]];
        let set = PointSet::new(&mut m, &pts);
        let mut out = Vec::new();
        m.run(|p| BruteForce::new().within(p, &set, &[0.0], 1.0, &mut out));
        assert_eq!(out, vec![0, 1, 3]);
    }

    #[test]
    fn cost_scales_linearly() {
        let cost = |n: usize| {
            let mut m = Machine::new(MachineConfig::upgraded_baseline());
            let pts: Vec<Vec<f32>> = (0..n).map(|i| vec![i as f32, 0.0, 0.0]).collect();
            let set = PointSet::new(&mut m, &pts);
            m.run(|p| {
                BruteForce::new().nearest(p, &set, &[0.0; 3]);
            });
            m.wall_cycles()
        };
        let c1 = cost(1000);
        let c4 = cost(4000);
        assert!(c4 > 3 * c1 && c4 < 6 * c1, "c1={c1} c4={c4}");
    }
}
