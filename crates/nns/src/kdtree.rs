//! An OMPL-style k-d tree (§VI): exact, but traversal is a pointer chase
//! whose cache misses are dependent and stall the core (§VIII-C-1).

use tartan_sim::{Buffer, Machine, MemPolicy, Proc};

use crate::point_set::PointSet;
use crate::{dist_sq, NnsEngine};

const PC_NODE_LOAD: u64 = 0x6_2000;

/// One k-d tree node, stored in simulated memory.
#[derive(Debug, Clone, Copy, Default)]
struct Node {
    split_dim: u32,
    split_val: f32,
    /// Index of the point stored at this node.
    point: u32,
    /// Child node indices; -1 = none.
    left: i32,
    right: i32,
}

/// A k-d tree over a [`PointSet`].
///
/// The tree is built untimed (setup); queries are fully instrumented. Node
/// visits use *dependent* loads — the child index must arrive before the
/// traversal can continue — reproducing the full-stall behavior the paper
/// attributes to tree searches.
#[derive(Debug)]
pub struct KdTree {
    nodes: Buffer<Node>,
    root: i32,
}

impl KdTree {
    /// Builds the tree over all points of `set`.
    pub fn build(machine: &mut Machine, set: &PointSet) -> Self {
        let mut indices: Vec<u32> = (0..set.len() as u32).collect();
        let mut nodes: Vec<Node> = Vec::with_capacity(set.len());
        let root = Self::build_rec(set, &mut indices[..], 0, &mut nodes);
        KdTree {
            nodes: machine.buffer_from_vec(nodes, MemPolicy::Normal),
            root,
        }
    }

    fn build_rec(set: &PointSet, idx: &mut [u32], depth: usize, nodes: &mut Vec<Node>) -> i32 {
        if idx.is_empty() {
            return -1;
        }
        let dim = depth % set.dim();
        idx.sort_by(|&a, &b| {
            set.point(a as usize)[dim]
                .partial_cmp(&set.point(b as usize)[dim])
                .expect("coordinates must not be NaN")
        });
        let mid = idx.len() / 2;
        let point = idx[mid];
        let split_val = set.point(point as usize)[dim];
        let me = nodes.len() as i32;
        nodes.push(Node {
            split_dim: dim as u32,
            split_val,
            point,
            left: -1,
            right: -1,
        });
        let (lo, rest) = idx.split_at_mut(mid);
        let hi = &mut rest[1..];
        let left = Self::build_rec(set, lo, depth + 1, nodes);
        let right = Self::build_rec(set, hi, depth + 1, nodes);
        nodes.as_mut_slice()[me as usize].left = left;
        nodes.as_mut_slice()[me as usize].right = right;
        me
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn nearest_rec(
        &self,
        p: &mut Proc<'_>,
        set: &PointSet,
        query: &[f32],
        node: i32,
        best: &mut Option<(usize, f32)>,
    ) {
        if node < 0 {
            return;
        }
        // The node must arrive before we know where to go: dependent load.
        let n = self.nodes.get_dep(p, PC_NODE_LOAD, node as usize);
        let pt = set.load_point(p, n.point as usize);
        let d = dist_sq(pt, query);
        p.flop(3 * set.dim() as u64);
        p.instr(3); // compare, branch, child select
        if best.is_none_or(|(_, bd)| d < bd) {
            *best = Some((n.point as usize, d));
        }
        let diff = query[n.split_dim as usize] - n.split_val;
        let (near, far) = if diff < 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        self.nearest_rec(p, set, query, near, best);
        if let Some((_, bd)) = *best {
            if diff * diff < bd {
                self.nearest_rec(p, set, query, far, best);
            }
        }
    }

    fn within_rec(
        &self,
        p: &mut Proc<'_>,
        set: &PointSet,
        query: &[f32],
        eps_sq: f32,
        node: i32,
        out: &mut Vec<usize>,
    ) {
        if node < 0 {
            return;
        }
        let n = self.nodes.get_dep(p, PC_NODE_LOAD, node as usize);
        let pt = set.load_point(p, n.point as usize);
        let d = dist_sq(pt, query);
        p.flop(3 * set.dim() as u64);
        p.instr(3);
        if d <= eps_sq {
            out.push(n.point as usize);
        }
        let diff = query[n.split_dim as usize] - n.split_val;
        if diff < 0.0 || diff * diff <= eps_sq {
            self.within_rec(p, set, query, eps_sq, n.left, out);
        }
        if diff >= 0.0 || diff * diff <= eps_sq {
            self.within_rec(p, set, query, eps_sq, n.right, out);
        }
    }
}

impl NnsEngine for KdTree {
    fn nearest(&self, p: &mut Proc<'_>, set: &PointSet, query: &[f32]) -> Option<usize> {
        let mut best = None;
        self.nearest_rec(p, set, query, self.root, &mut best);
        best.map(|(i, _)| i)
    }

    fn within(&self, p: &mut Proc<'_>, set: &PointSet, query: &[f32], eps: f32, out: &mut Vec<usize>) {
        self.within_rec(p, set, query, eps * eps, self.root, out);
        out.sort_unstable();
    }

    fn name(&self) -> &'static str {
        "KdTree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BruteForce;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use tartan_sim::MachineConfig;

    fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.random_range(-1.0f32..1.0)).collect())
            .collect()
    }

    #[test]
    fn nearest_matches_brute_force() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let pts = random_points(500, 3, 1);
        let set = PointSet::new(&mut m, &pts);
        let tree = KdTree::build(&mut m, &set);
        let brute = BruteForce::new();
        let mut rng = StdRng::seed_from_u64(2);
        m.run(|p| {
            for _ in 0..50 {
                let q: Vec<f32> = (0..3).map(|_| rng.random_range(-1.0f32..1.0)).collect();
                let a = tree.nearest(p, &set, &q).expect("non-empty");
                let b = brute.nearest(p, &set, &q).expect("non-empty");
                // Equal index or equal distance (ties possible).
                let da = crate::dist_sq(set.point(a), &q);
                let db = crate::dist_sq(set.point(b), &q);
                assert!((da - db).abs() < 1e-9, "{a} vs {b}: {da} vs {db}");
            }
        });
    }

    #[test]
    fn within_matches_brute_force() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let pts = random_points(300, 2, 3);
        let set = PointSet::new(&mut m, &pts);
        let tree = KdTree::build(&mut m, &set);
        let brute = BruteForce::new();
        m.run(|p| {
            for qi in 0..20 {
                let q = vec![(qi as f32) / 20.0 - 0.5, 0.1];
                let mut a = Vec::new();
                let mut b = Vec::new();
                tree.within(p, &set, &q, 0.3, &mut a);
                brute.within(p, &set, &q, 0.3, &mut b);
                assert_eq!(a, b, "query {qi}");
            }
        });
    }

    #[test]
    fn tree_visits_fewer_points_than_brute() {
        // The whole reason to build a tree: the query should be cheaper in
        // instructions than exhaustive scan on a big set.
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let pts = random_points(4000, 3, 5);
        let set = PointSet::new(&mut m, &pts);
        let tree = KdTree::build(&mut m, &set);
        let before = m.stats().instructions;
        m.run(|p| {
            tree.nearest(p, &set, &[0.3, -0.2, 0.8]);
        });
        let tree_instr = m.stats().instructions - before;
        let before = m.stats().instructions;
        m.run(|p| {
            BruteForce::new().nearest(p, &set, &[0.3, -0.2, 0.8]);
        });
        let brute_instr = m.stats().instructions - before;
        assert!(
            tree_instr * 5 < brute_instr,
            "tree {tree_instr} vs brute {brute_instr}"
        );
    }

    #[test]
    fn single_point_tree() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let set = PointSet::new(&mut m, &[vec![1.0, 2.0]]);
        let tree = KdTree::build(&mut m, &set);
        assert_eq!(tree.len(), 1);
        let hit = m.run(|p| tree.nearest(p, &set, &[0.0, 0.0]));
        assert_eq!(hit, Some(0));
    }
}
