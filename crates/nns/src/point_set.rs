//! The shared, instrumented point store all NNS engines query.

use tartan_sim::{Buffer, Machine, MemPolicy, Proc};

/// Program counter assigned to point-data loads.
pub(crate) const PC_POINT_LOAD: u64 = 0x6_1000;

/// A set of `n` points of dimensionality `dim`, stored row-major in one
/// simulated buffer.
#[derive(Debug)]
pub struct PointSet {
    dim: usize,
    data: Buffer<f32>,
}

impl PointSet {
    /// Uploads `points` into simulated memory.
    ///
    /// # Panics
    ///
    /// Panics if `points` is empty or rows have inconsistent widths.
    pub fn new(machine: &mut Machine, points: &[Vec<f32>]) -> Self {
        assert!(!points.is_empty(), "point set must be non-empty");
        let dim = points[0].len();
        assert!(dim > 0, "points need at least one dimension");
        assert!(
            points.iter().all(|r| r.len() == dim),
            "all points must share a dimensionality"
        );
        let mut flat = Vec::with_capacity(points.len() * dim);
        for row in points {
            flat.extend_from_slice(row);
        }
        PointSet {
            dim,
            data: machine.buffer_from_vec(flat, MemPolicy::Normal),
        }
    }

    /// Dimensionality of each point.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// Whether the set is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Untimed view of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn point(&self, i: usize) -> &[f32] {
        &self.data.as_slice()[i * self.dim..(i + 1) * self.dim]
    }

    /// Timed scalar read of point `i` (one load per coordinate, plus the
    /// arithmetic the caller charges). Issued as one address run,
    /// charge-identical to `dim` scalar gets.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn load_point(&self, p: &mut Proc<'_>, i: usize) -> &[f32] {
        self.data.get_run(p, PC_POINT_LOAD, i * self.dim, self.dim, 0)
    }

    /// Timed vector read of points `[start, start + n)` as one contiguous
    /// range (VLN's bucket-scan access pattern).
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn vload_points(&self, p: &mut Proc<'_>, start: usize, n: usize) -> &[f32] {
        self.data.vget(p, PC_POINT_LOAD, start * self.dim, n * self.dim)
    }

    /// Simulated base address of the underlying storage.
    pub fn base_addr(&self) -> u64 {
        self.data.base_addr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tartan_sim::MachineConfig;

    #[test]
    fn round_trips_points() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let pts = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let set = PointSet::new(&mut m, &pts);
        assert_eq!(set.len(), 2);
        assert_eq!(set.dim(), 2);
        assert_eq!(set.point(1), &[3.0, 4.0]);
    }

    #[test]
    fn load_point_charges_time() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let set = PointSet::new(&mut m, &vec![vec![1.0; 6]; 10]);
        m.run(|p| {
            set.load_point(p, 3);
        });
        assert!(m.wall_cycles() > 0);
        assert_eq!(m.stats().l1.accesses, 6);
    }

    #[test]
    #[should_panic(expected = "share a dimensionality")]
    fn ragged_points_rejected() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let _ = PointSet::new(&mut m, &[vec![1.0], vec![1.0, 2.0]]);
    }
}
