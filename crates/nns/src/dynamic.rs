//! Dynamic NNS engines for incrementally grown point sets (RRT trees).
//!
//! RRT (§III-B, MoveBot) interleaves queries with insertions, so the static
//! engines of this crate do not fit. Three dynamic engines mirror the
//! paper's comparison:
//!
//! * [`DynBrute`] — scan the growing store,
//! * [`DynKdTree`] — incremental (unbalanced) k-d tree insertion; queries
//!   remain exact but traversal is a dependent-load pointer chase,
//! * [`DynLsh`] — LSH with *chunked* bucket storage: each bucket owns runs
//!   of contiguous slots so VLN's vectorized scans stay possible while the
//!   tree grows.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use tartan_sim::{recycled_f32, Buffer, Machine, MemPolicy, Proc};

use crate::dist_sq;
use crate::lsh::LshConfig;

const PC_STORE: u64 = 0x6_4000;
const PC_NODE: u64 = 0x6_4100;
const PC_CHUNK: u64 = 0x6_4200;

/// An append-only instrumented point store with a fixed capacity.
#[derive(Debug)]
pub struct DynPointStore {
    dim: usize,
    len: usize,
    data: Buffer<f32>,
}

impl DynPointStore {
    /// Allocates a store for up to `capacity` points.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `dim` is zero.
    pub fn new(machine: &mut Machine, dim: usize, capacity: usize) -> Self {
        assert!(dim > 0 && capacity > 0, "store needs positive dimensions");
        DynPointStore {
            dim,
            len: 0,
            data: machine.buffer_from_vec(recycled_f32(dim * capacity), MemPolicy::Normal),
        }
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Points currently stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a point (timed stores), returning its index.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is exhausted or `point` has the wrong width.
    pub fn push(&mut self, p: &mut Proc<'_>, point: &[f32]) -> usize {
        assert_eq!(point.len(), self.dim, "point width mismatch");
        assert!(
            (self.len + 1) * self.dim <= self.data.len(),
            "store capacity exhausted"
        );
        let idx = self.len;
        self.data.set_run(p, PC_STORE, idx * self.dim, point, 0);
        self.len += 1;
        idx
    }

    /// Untimed view of point `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn point(&self, i: usize) -> &[f32] {
        assert!(i < self.len, "point {i} out of bounds");
        &self.data.as_slice()[i * self.dim..(i + 1) * self.dim]
    }

    /// Timed scalar read of point `i` (one address run, charge-identical
    /// to `dim` scalar gets).
    pub fn load_point(&self, p: &mut Proc<'_>, i: usize) -> &[f32] {
        assert!(i < self.len, "point {i} out of bounds");
        self.data.get_run(p, PC_STORE, i * self.dim, self.dim, 0)
    }

    /// Timed vector read of `n` points starting at `start`.
    pub fn vload_points(&self, p: &mut Proc<'_>, start: usize, n: usize) -> &[f32] {
        self.data.vget(p, PC_STORE, start * self.dim, n * self.dim)
    }
}

/// A dynamic NNS engine.
pub trait DynNns {
    /// Inserts the point at index `idx` of the store (the caller has just
    /// pushed it).
    fn insert(&mut self, p: &mut Proc<'_>, store: &DynPointStore, idx: usize);

    /// Returns the (approximately) nearest stored point to `query`.
    fn nearest(&self, p: &mut Proc<'_>, store: &DynPointStore, query: &[f32]) -> Option<usize>;

    /// Engine name.
    fn name(&self) -> &'static str;
}

/// Exhaustive dynamic search.
#[derive(Debug, Clone, Copy, Default)]
pub struct DynBrute;

impl DynBrute {
    /// Creates the engine.
    pub fn new() -> Self {
        DynBrute
    }
}

impl DynNns for DynBrute {
    fn insert(&mut self, _p: &mut Proc<'_>, _store: &DynPointStore, _idx: usize) {}

    fn nearest(&self, p: &mut Proc<'_>, store: &DynPointStore, query: &[f32]) -> Option<usize> {
        let mut best: Option<(usize, f32)> = None;
        for i in 0..store.len() {
            let pt = store.load_point(p, i);
            let d = dist_sq(pt, query);
            p.flop(3 * store.dim() as u64);
            p.instr(2);
            if best.is_none_or(|(_, bd)| d < bd) {
                best = Some((i, d));
            }
        }
        best.map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "Brute"
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct DynNode {
    point: u32,
    left: i32,
    right: i32,
}

/// Incrementally built (unbalanced) k-d tree.
#[derive(Debug)]
pub struct DynKdTree {
    nodes: Buffer<DynNode>,
    len: usize,
    root: i32,
}

impl DynKdTree {
    /// Allocates node storage for up to `capacity` points.
    pub fn new(machine: &mut Machine, capacity: usize) -> Self {
        DynKdTree {
            nodes: machine.buffer_from_vec(vec![DynNode::default(); capacity], MemPolicy::Normal),
            len: 0,
            root: -1,
        }
    }

    fn nearest_rec(
        &self,
        p: &mut Proc<'_>,
        store: &DynPointStore,
        query: &[f32],
        node: i32,
        depth: usize,
        best: &mut Option<(usize, f32)>,
    ) {
        if node < 0 {
            return;
        }
        let n = self.nodes.get_dep(p, PC_NODE, node as usize);
        let pt = store.load_point(p, n.point as usize);
        let d = dist_sq(pt, query);
        p.flop(3 * store.dim() as u64);
        p.instr(3);
        if best.is_none_or(|(_, bd)| d < bd) {
            *best = Some((n.point as usize, d));
        }
        let dim = depth % store.dim();
        let diff = query[dim] - pt[dim];
        let (near, far) = if diff < 0.0 {
            (n.left, n.right)
        } else {
            (n.right, n.left)
        };
        self.nearest_rec(p, store, query, near, depth + 1, best);
        if let Some((_, bd)) = *best {
            if diff * diff < bd {
                self.nearest_rec(p, store, query, far, depth + 1, best);
            }
        }
    }
}

impl DynNns for DynKdTree {
    fn insert(&mut self, p: &mut Proc<'_>, store: &DynPointStore, idx: usize) {
        assert!(self.len < self.nodes.len(), "tree capacity exhausted");
        let me = self.len as i32;
        self.nodes.set(
            p,
            PC_NODE,
            me as usize,
            DynNode {
                point: idx as u32,
                left: -1,
                right: -1,
            },
        );
        self.len += 1;
        if self.root < 0 {
            self.root = me;
            return;
        }
        // Walk down to a leaf slot: dependent loads all the way.
        let mut cur = self.root;
        let mut depth = 0;
        loop {
            let n = self.nodes.get_dep(p, PC_NODE, cur as usize);
            let cur_pt = store.load_point(p, n.point as usize);
            let dim = depth % store.dim();
            p.instr(3);
            let go_left = store.point(idx)[dim] < cur_pt[dim];
            let next = if go_left { n.left } else { n.right };
            if next < 0 {
                let mut updated = n;
                if go_left {
                    updated.left = me;
                } else {
                    updated.right = me;
                }
                self.nodes.set(p, PC_NODE, cur as usize, updated);
                return;
            }
            cur = next;
            depth += 1;
        }
    }

    fn nearest(&self, p: &mut Proc<'_>, store: &DynPointStore, query: &[f32]) -> Option<usize> {
        let mut best = None;
        self.nearest_rec(p, store, query, self.root, 0, &mut best);
        best.map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        "KdTree"
    }
}

/// Chunk size (points) of dynamic LSH bucket runs.
const CHUNK_POINTS: usize = 8;

/// LSH over a growing store, with chunked contiguous bucket storage.
#[derive(Debug)]
pub struct DynLsh {
    cfg: LshConfig,
    dim: usize,
    proj: Vec<f32>,
    /// Copied point data, laid out chunk-contiguously per bucket.
    chunk_data: Buffer<f32>,
    /// Original store index per chunk slot.
    chunk_ids: Buffer<u32>,
    /// Next free chunk slot.
    next_slot: usize,
    /// Bucket key → list of (start_slot, used) chunks.
    buckets: HashMap<Vec<i32>, Vec<(u32, u32)>>,
}

impl DynLsh {
    /// Allocates chunk storage for up to `capacity` points (rounded up by
    /// the chunking overhead).
    pub fn new(machine: &mut Machine, dim: usize, capacity: usize, cfg: LshConfig) -> Self {
        assert!(cfg.projections > 0, "need at least one projection");
        assert!(cfg.w > 0.0, "bucket width must be positive");
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut proj = Vec::with_capacity(cfg.projections * dim);
        for _ in 0..cfg.projections * dim {
            let u1: f32 = rng.random_range(1e-6f32..1.0);
            let u2: f32 = rng.random_range(0.0f32..1.0);
            proj.push((-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos());
        }
        // Worst case every point opens its own chunk.
        let slots = capacity * 2 + CHUNK_POINTS;
        DynLsh {
            cfg,
            dim,
            proj,
            chunk_data: machine.buffer_from_vec(recycled_f32(slots * dim), MemPolicy::Normal),
            chunk_ids: machine.buffer_from_vec(vec![0; slots], MemPolicy::Normal),
            next_slot: 0,
            buckets: HashMap::new(),
        }
    }

    fn key_of(&self, p: &mut Proc<'_>, pt: &[f32], timed: bool) -> Vec<i32> {
        let mut key = Vec::with_capacity(self.cfg.projections);
        for k in 0..self.cfg.projections {
            if timed {
                if self.cfg.vectorized {
                    p.vec_compute(2 * self.dim as u64);
                    p.instr(2);
                } else {
                    p.flop(2 * self.dim as u64);
                    p.instr(self.dim as u64 + 2);
                }
            }
            let dot: f32 = self.proj[k * self.dim..(k + 1) * self.dim]
                .iter()
                .zip(pt.iter())
                .map(|(a, b)| a * b)
                .sum();
            key.push((dot / self.cfg.w).floor() as i32);
        }
        key
    }
}

impl DynNns for DynLsh {
    fn insert(&mut self, p: &mut Proc<'_>, store: &DynPointStore, idx: usize) {
        let key = self.key_of(p, store.point(idx), true);
        let dim = self.dim;
        let need_new_chunk = match self.buckets.get(&key) {
            Some(chunks) => chunks
                .last()
                .is_none_or(|&(_, used)| used as usize >= CHUNK_POINTS),
            None => true,
        };
        if need_new_chunk {
            assert!(
                (self.next_slot + CHUNK_POINTS) * dim <= self.chunk_data.len(),
                "chunk storage exhausted"
            );
            self.buckets
                .entry(key.clone())
                .or_default()
                .push((self.next_slot as u32, 0));
            self.next_slot += CHUNK_POINTS;
        }
        let chunks = self.buckets.get_mut(&key).expect("chunk just ensured");
        let (start, used) = *chunks.last().expect("non-empty");
        let slot = start as usize + used as usize;
        let point = store.point(idx).to_vec();
        for (d, &v) in point.iter().enumerate() {
            self.chunk_data.set(p, PC_CHUNK, slot * dim + d, v);
        }
        self.chunk_ids.set(p, PC_CHUNK, slot, idx as u32);
        p.instr(6); // hash-table update bookkeeping
        *chunks.last_mut().expect("non-empty") = (start, used + 1);
    }

    fn nearest(&self, p: &mut Proc<'_>, store: &DynPointStore, query: &[f32]) -> Option<usize> {
        if store.is_empty() {
            return None;
        }
        let key = self.key_of(p, query, true);
        let mut best: Option<(usize, f32)> = None;
        let scan = |p: &mut Proc<'_>, k: &[i32], best: &mut Option<(usize, f32)>| {
            p.instr(8); // table probe
            let Some(chunks) = self.buckets.get(k) else {
                return;
            };
            for &(start, used) in chunks {
                let (start, used) = (start as usize, used as usize);
                if used == 0 {
                    continue;
                }
                if self.cfg.vectorized {
                    let data = self
                        .chunk_data
                        .vget(p, PC_CHUNK, start * self.dim, used * self.dim);
                    p.vec_compute(3 * (used * self.dim) as u64);
                    p.instr(used.div_ceil(p.lanes()) as u64 + 1);
                    let ids = self.chunk_ids.vget(p, PC_CHUNK, start, used);
                    for (j, &id) in ids.iter().enumerate() {
                        let d = dist_sq(&data[j * self.dim..(j + 1) * self.dim], query);
                        if best.is_none_or(|(_, bd)| d < bd) {
                            *best = Some((id as usize, d));
                        }
                    }
                } else {
                    for j in 0..used {
                        let _ = self.chunk_data.get_run(p, PC_CHUNK, (start + j) * self.dim, self.dim, 0);
                        p.flop(3 * self.dim as u64);
                        p.instr(4);
                        let id = self.chunk_ids.get(p, PC_CHUNK, start + j);
                        let d = dist_sq(
                            &self.chunk_data.as_slice()
                                [(start + j) * self.dim..(start + j + 1) * self.dim],
                            query,
                        );
                        if best.is_none_or(|(_, bd)| d < bd) {
                            *best = Some((id as usize, d));
                        }
                    }
                }
            }
        };
        scan(p, &key, &mut best);
        let mut probed = 0;
        'outer: for k in 0..key.len() {
            for delta in [-1i32, 1] {
                if probed >= self.cfg.probes {
                    break 'outer;
                }
                let mut kk = key.clone();
                kk[k] += delta;
                scan(p, &kk, &mut best);
                probed += 1;
            }
        }
        if best.is_none() {
            // RRT needs *some* neighbor: exhaustive fallback.
            return DynBrute::new().nearest(p, store, query);
        }
        best.map(|(i, _)| i)
    }

    fn name(&self) -> &'static str {
        if self.cfg.vectorized {
            "VLN"
        } else {
            "FLANN"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tartan_sim::MachineConfig;

    fn grow_and_query(engine: &mut dyn DynNns, n: usize) -> (Vec<usize>, u64) {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let mut store = DynPointStore::new(&mut m, 3, n + 1);
        let mut rng = StdRng::seed_from_u64(9);
        let pts: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..3).map(|_| rng.random_range(-1.0f32..1.0)).collect())
            .collect();
        let mut hits = Vec::new();
        m.run(|p| {
            for pt in &pts {
                let idx = store.push(p, pt);
                engine.insert(p, &store, idx);
            }
            for i in (0..n).step_by(7) {
                let q: Vec<f32> = pts[i].iter().map(|x| x + 0.01).collect();
                hits.push(engine.nearest(p, &store, &q).expect("non-empty"));
            }
        });
        (hits, m.wall_cycles())
    }

    #[test]
    fn kdtree_matches_brute_exactly() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let mut kd_machine = Machine::new(MachineConfig::upgraded_baseline());
        let mut kd = DynKdTree::new(&mut kd_machine, 512);
        let mut brute = DynBrute::new();
        let (b, _) = grow_and_query(&mut brute, 400);
        // Rebuild identically for the tree.
        let mut store = DynPointStore::new(&mut m, 3, 401);
        let mut rng = StdRng::seed_from_u64(9);
        let pts: Vec<Vec<f32>> = (0..400)
            .map(|_| (0..3).map(|_| rng.random_range(-1.0f32..1.0)).collect())
            .collect();
        let mut k_hits = Vec::new();
        kd_machine.run(|_p| {});
        m.run(|p| {
            for pt in &pts {
                let idx = store.push(p, pt);
                kd.insert(p, &store, idx);
            }
            for i in (0..400).step_by(7) {
                let q: Vec<f32> = pts[i].iter().map(|x| x + 0.01).collect();
                k_hits.push(kd.nearest(p, &store, &q).expect("non-empty"));
            }
        });
        assert_eq!(b, k_hits);
    }

    #[test]
    fn lsh_mostly_agrees_with_brute() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let mut lsh = DynLsh::new(&mut m, 3, 512, LshConfig::vln(0.8));
        let mut brute = DynBrute::new();
        let (b, _) = grow_and_query(&mut brute, 400);
        let (l, _) = {
            let mut store = DynPointStore::new(&mut m, 3, 401);
            let mut rng = StdRng::seed_from_u64(9);
            let pts: Vec<Vec<f32>> = (0..400)
                .map(|_| (0..3).map(|_| rng.random_range(-1.0f32..1.0)).collect())
                .collect();
            let mut hits = Vec::new();
            m.run(|p| {
                for pt in &pts {
                    let idx = store.push(p, pt);
                    lsh.insert(p, &store, idx);
                }
                for i in (0..400).step_by(7) {
                    let q: Vec<f32> = pts[i].iter().map(|x| x + 0.01).collect();
                    hits.push(lsh.nearest(p, &store, &q).expect("non-empty"));
                }
            });
            (hits, 0u64)
        };
        let agree = b.iter().zip(l.iter()).filter(|(x, y)| x == y).count();
        assert!(
            agree as f64 / b.len() as f64 > 0.85,
            "agreement {agree}/{}",
            b.len()
        );
    }

    #[test]
    fn vln_is_cheaper_than_brute_at_scale() {
        let mut m1 = Machine::new(MachineConfig::upgraded_baseline());
        let mut lsh = DynLsh::new(&mut m1, 3, 3000, LshConfig::vln(0.5));
        let mut brute = DynBrute::new();
        let (_, tb) = grow_and_query(&mut brute, 2500);
        // VLN timing on its own machine.
        let tl = {
            let mut store = DynPointStore::new(&mut m1, 3, 2501);
            let mut rng = StdRng::seed_from_u64(9);
            let pts: Vec<Vec<f32>> = (0..2500)
                .map(|_| (0..3).map(|_| rng.random_range(-1.0f32..1.0)).collect())
                .collect();
            m1.run(|p| {
                for pt in &pts {
                    let idx = store.push(p, pt);
                    lsh.insert(p, &store, idx);
                }
                for i in (0..2500).step_by(7) {
                    let q: Vec<f32> = pts[i].iter().map(|x| x + 0.01).collect();
                    lsh.nearest(p, &store, &q);
                }
            });
            m1.wall_cycles()
        };
        assert!(tl < tb, "VLN {tl} must beat brute {tb}");
    }

    #[test]
    fn empty_store_returns_none() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let store = DynPointStore::new(&mut m, 2, 4);
        let lsh = DynLsh::new(&mut m, 2, 4, LshConfig::vln(1.0));
        let hit = m.run(|p| lsh.nearest(p, &store, &[0.0, 0.0]));
        assert_eq!(hit, None);
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn store_capacity_enforced() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let mut store = DynPointStore::new(&mut m, 2, 1);
        m.run(|p| {
            store.push(p, &[0.0, 0.0]);
            store.push(p, &[1.0, 1.0]);
        });
    }
}
