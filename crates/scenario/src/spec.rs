//! Typed scenario specs: partial machine/software/params descriptions that
//! parse from JSON with field-path errors, render back deterministically,
//! merge field-wise (later wins), and resolve into validated simulator
//! configurations.
//!
//! Every spec type is *partial*: each field is optional and `None` means
//! "inherit". Resolution starts from a named preset (machine default:
//! `upgraded_baseline`; software default: `legacy`) and applies the
//! overrides on top, then runs the target type's own validation
//! ([`MachineConfig::validate`]), so a scenario can never build a machine
//! the simulator would reject at runtime.
//!
//! Two fields are *double-optional*: `machine.fcp` and
//! `machine.fault_plan`. Omitting them inherits; an explicit JSON `null`
//! disables the feature even if an earlier layer enabled it.

use crate::error::ScenarioError;
use crate::json::JsonValue;
use tartan_robots::{NeuralExec, NnsKind, Scale, SoftwareConfig, VecMethod};
use tartan_sim::{
    FaultPlan, FcpConfig, FcpManipulation, MachineConfig, NpuMode, PrefetcherKind, VectorIsa,
};

/// Version of the scenario file format this build reads and writes.
pub const SCENARIO_SCHEMA_VERSION: u64 = 1;

// ----------------------------------------------------------- JSON helpers

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

fn type_err(path: &str, expected: &str, got: &JsonValue) -> ScenarioError {
    ScenarioError::new(path, format!("expected {expected}, got {}", got.kind()))
}

fn obj<'a>(v: &'a JsonValue, path: &str) -> Result<&'a [(String, JsonValue)], ScenarioError> {
    match v {
        JsonValue::Obj(fields) => Ok(fields),
        other => Err(type_err(path, "an object", other)),
    }
}

fn arr<'a>(v: &'a JsonValue, path: &str) -> Result<&'a [JsonValue], ScenarioError> {
    match v {
        JsonValue::Arr(items) => Ok(items),
        other => Err(type_err(path, "an array", other)),
    }
}

fn str_of<'a>(v: &'a JsonValue, path: &str) -> Result<&'a str, ScenarioError> {
    match v {
        JsonValue::Str(s) => Ok(s),
        other => Err(type_err(path, "a string", other)),
    }
}

fn u64_of(v: &JsonValue, path: &str) -> Result<u64, ScenarioError> {
    match v {
        JsonValue::Num(raw) => raw.parse::<u64>().map_err(|_| {
            ScenarioError::new(path, format!("expected an unsigned integer, got {raw}"))
        }),
        other => Err(type_err(path, "an unsigned integer", other)),
    }
}

fn u32_of(v: &JsonValue, path: &str) -> Result<u32, ScenarioError> {
    let n = u64_of(v, path)?;
    u32::try_from(n)
        .map_err(|_| ScenarioError::new(path, format!("{n} does not fit in 32 bits")))
}

fn usize_of(v: &JsonValue, path: &str) -> Result<usize, ScenarioError> {
    let n = u64_of(v, path)?;
    usize::try_from(n)
        .map_err(|_| ScenarioError::new(path, format!("{n} does not fit in a usize")))
}

fn f64_of(v: &JsonValue, path: &str) -> Result<f64, ScenarioError> {
    match v {
        JsonValue::Num(raw) => raw
            .parse::<f64>()
            .map_err(|_| ScenarioError::new(path, format!("expected a number, got {raw}"))),
        other => Err(type_err(path, "a number", other)),
    }
}

fn bool_of(v: &JsonValue, path: &str) -> Result<bool, ScenarioError> {
    match v {
        JsonValue::Bool(b) => Ok(*b),
        other => Err(type_err(path, "a boolean", other)),
    }
}

fn keyword<T: Copy>(
    v: &JsonValue,
    path: &str,
    table: &[(&str, T)],
) -> Result<T, ScenarioError> {
    let s = str_of(v, path)?;
    table
        .iter()
        .find(|(name, _)| *name == s)
        .map(|(_, value)| *value)
        .ok_or_else(|| {
            let names: Vec<&str> = table.iter().map(|(name, _)| *name).collect();
            ScenarioError::new(
                path,
                format!("unknown value {s:?} (expected one of {})", names.join(", ")),
            )
        })
}

fn keyword_name<T: PartialEq>(value: T, table: &[(&'static str, T)]) -> &'static str {
    table
        .iter()
        .find(|(_, v)| *v == value)
        .map(|(name, _)| *name)
        .expect("every enum variant has a table entry")
}

fn unknown_field(path: &str, key: &str, known: &[&str]) -> ScenarioError {
    ScenarioError::new(
        join(path, key),
        format!("unknown field (known fields: {})", known.join(", ")),
    )
}

fn num(n: u64) -> JsonValue {
    JsonValue::Num(n.to_string())
}

fn fnum(x: f64) -> JsonValue {
    JsonValue::Num(format!("{x}"))
}

// Keyword tables: the single source of spelling for every enum the schema
// exposes.
const VECTOR_ISAS: [(&str, VectorIsa); 2] =
    [("avx2", VectorIsa::Avx2), ("avx512", VectorIsa::Avx512)];
const PREFETCHERS: [(&str, PrefetcherKind); 4] = [
    ("none", PrefetcherKind::None),
    ("nextline", PrefetcherKind::NextLine),
    ("anl", PrefetcherKind::Anl),
    ("bingo", PrefetcherKind::Bingo),
];
const MANIPULATIONS: [(&str, FcpManipulation); 3] = [
    ("x+1", FcpManipulation::Increment),
    ("2x", FcpManipulation::Double),
    ("x^2", FcpManipulation::Square),
];
const VEC_METHODS: [(&str, VecMethod); 4] = [
    ("scalar", VecMethod::Scalar),
    ("gather", VecMethod::Gather),
    ("ovec", VecMethod::Ovec),
    ("racod", VecMethod::Racod),
];
const NNS_KINDS: [(&str, NnsKind); 4] = [
    ("brute", NnsKind::Brute),
    ("kdtree", NnsKind::KdTree),
    ("flann", NnsKind::Flann),
    ("vln", NnsKind::Vln),
];
const NEURAL_EXECS: [(&str, NeuralExec); 3] = [
    ("none", NeuralExec::None),
    ("npu", NeuralExec::Npu),
    ("software", NeuralExec::Software),
];

fn merge_opt<T: Clone>(base: &Option<T>, over: &Option<T>) -> Option<T> {
    over.clone().or_else(|| base.clone())
}

fn opt<T>(differs: bool, v: T) -> Option<T> {
    if differs {
        Some(v)
    } else {
        None
    }
}

// -------------------------------------------------------------- CacheSpec

/// Partial override of one cache level.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CacheSpec {
    /// Total capacity in bytes.
    pub size_bytes: Option<u64>,
    /// Associativity.
    pub ways: Option<u32>,
    /// Access latency in cycles.
    pub latency: Option<u64>,
}

impl CacheSpec {
    const FIELDS: [&'static str; 3] = ["size_bytes", "ways", "latency"];

    fn parse(v: &JsonValue, path: &str) -> Result<CacheSpec, ScenarioError> {
        let mut spec = CacheSpec::default();
        for (key, value) in obj(v, path)? {
            let p = join(path, key);
            match key.as_str() {
                "size_bytes" => spec.size_bytes = Some(u64_of(value, &p)?),
                "ways" => spec.ways = Some(u32_of(value, &p)?),
                "latency" => spec.latency = Some(u64_of(value, &p)?),
                _ => return Err(unknown_field(path, key, &Self::FIELDS)),
            }
        }
        Ok(spec)
    }

    fn to_value(&self) -> JsonValue {
        let mut fields = Vec::new();
        if let Some(n) = self.size_bytes {
            fields.push(("size_bytes".into(), num(n)));
        }
        if let Some(n) = self.ways {
            fields.push(("ways".into(), num(u64::from(n))));
        }
        if let Some(n) = self.latency {
            fields.push(("latency".into(), num(n)));
        }
        JsonValue::Obj(fields)
    }

    fn merged(&self, over: &CacheSpec) -> CacheSpec {
        CacheSpec {
            size_bytes: over.size_bytes.or(self.size_bytes),
            ways: over.ways.or(self.ways),
            latency: over.latency.or(self.latency),
        }
    }

    fn apply(&self, level: &mut tartan_sim::CacheConfig) {
        if let Some(n) = self.size_bytes {
            level.size_bytes = n;
        }
        if let Some(n) = self.ways {
            level.ways = n;
        }
        if let Some(n) = self.latency {
            level.latency = n;
        }
    }
}

// ---------------------------------------------------------------- FcpSpec

/// Partial override of the FCP parameters (base:
/// [`FcpConfig::paper_default`] or whatever the preset already enables).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FcpSpec {
    /// Region size in bytes.
    pub region_bytes: Option<u64>,
    /// XOR width.
    pub xor_bits: Option<u32>,
    /// Recency manipulation: `"x+1"`, `"2x"`, or `"x^2"`.
    pub manipulation: Option<FcpManipulation>,
}

impl FcpSpec {
    const FIELDS: [&'static str; 3] = ["region_bytes", "xor_bits", "manipulation"];

    fn parse(v: &JsonValue, path: &str) -> Result<FcpSpec, ScenarioError> {
        let mut spec = FcpSpec::default();
        for (key, value) in obj(v, path)? {
            let p = join(path, key);
            match key.as_str() {
                "region_bytes" => spec.region_bytes = Some(u64_of(value, &p)?),
                "xor_bits" => spec.xor_bits = Some(u32_of(value, &p)?),
                "manipulation" => spec.manipulation = Some(keyword(value, &p, &MANIPULATIONS)?),
                _ => return Err(unknown_field(path, key, &Self::FIELDS)),
            }
        }
        Ok(spec)
    }

    fn to_value(&self) -> JsonValue {
        let mut fields = Vec::new();
        if let Some(n) = self.region_bytes {
            fields.push(("region_bytes".into(), num(n)));
        }
        if let Some(n) = self.xor_bits {
            fields.push(("xor_bits".into(), num(u64::from(n))));
        }
        if let Some(m) = self.manipulation {
            fields.push((
                "manipulation".into(),
                JsonValue::Str(keyword_name(m, &MANIPULATIONS).into()),
            ));
        }
        JsonValue::Obj(fields)
    }

    fn merged(&self, over: &FcpSpec) -> FcpSpec {
        FcpSpec {
            region_bytes: over.region_bytes.or(self.region_bytes),
            xor_bits: over.xor_bits.or(self.xor_bits),
            manipulation: over.manipulation.or(self.manipulation),
        }
    }

    fn resolve(&self, base: FcpConfig) -> FcpConfig {
        FcpConfig {
            region_bytes: self.region_bytes.unwrap_or(base.region_bytes),
            xor_bits: self.xor_bits.unwrap_or(base.xor_bits),
            manipulation: self.manipulation.unwrap_or(base.manipulation),
        }
    }
}

// -------------------------------------------------------------- FaultSpec

/// Partial override of the fault-injection plan (base: a quiet plan).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultSpec {
    /// Fault RNG seed.
    pub seed: Option<u64>,
    /// Per-invocation relative-error probability.
    pub accel_error_rate: Option<f64>,
    /// Maximum relative-error magnitude.
    pub accel_error_magnitude: Option<f64>,
    /// Per-invocation bit-flip probability.
    pub accel_bitflip_rate: Option<f64>,
    /// Per-invocation outright-failure probability.
    pub accel_fail_rate: Option<f64>,
    /// Per-access memory latency-spike probability.
    pub mem_spike_rate: Option<f64>,
    /// Extra cycles per latency spike.
    pub mem_spike_cycles: Option<u64>,
}

impl FaultSpec {
    const FIELDS: [&'static str; 7] = [
        "seed",
        "accel_error_rate",
        "accel_error_magnitude",
        "accel_bitflip_rate",
        "accel_fail_rate",
        "mem_spike_rate",
        "mem_spike_cycles",
    ];

    fn parse(v: &JsonValue, path: &str) -> Result<FaultSpec, ScenarioError> {
        let mut spec = FaultSpec::default();
        for (key, value) in obj(v, path)? {
            let p = join(path, key);
            match key.as_str() {
                "seed" => spec.seed = Some(u64_of(value, &p)?),
                "accel_error_rate" => spec.accel_error_rate = Some(f64_of(value, &p)?),
                "accel_error_magnitude" => {
                    spec.accel_error_magnitude = Some(f64_of(value, &p)?);
                }
                "accel_bitflip_rate" => spec.accel_bitflip_rate = Some(f64_of(value, &p)?),
                "accel_fail_rate" => spec.accel_fail_rate = Some(f64_of(value, &p)?),
                "mem_spike_rate" => spec.mem_spike_rate = Some(f64_of(value, &p)?),
                "mem_spike_cycles" => spec.mem_spike_cycles = Some(u64_of(value, &p)?),
                _ => return Err(unknown_field(path, key, &Self::FIELDS)),
            }
        }
        Ok(spec)
    }

    fn to_value(&self) -> JsonValue {
        let mut fields = Vec::new();
        if let Some(n) = self.seed {
            fields.push(("seed".into(), num(n)));
        }
        for (name, value) in [
            ("accel_error_rate", self.accel_error_rate),
            ("accel_error_magnitude", self.accel_error_magnitude),
            ("accel_bitflip_rate", self.accel_bitflip_rate),
            ("accel_fail_rate", self.accel_fail_rate),
            ("mem_spike_rate", self.mem_spike_rate),
        ] {
            if let Some(x) = value {
                fields.push((name.into(), fnum(x)));
            }
        }
        if let Some(n) = self.mem_spike_cycles {
            fields.push(("mem_spike_cycles".into(), num(n)));
        }
        JsonValue::Obj(fields)
    }

    fn merged(&self, over: &FaultSpec) -> FaultSpec {
        FaultSpec {
            seed: over.seed.or(self.seed),
            accel_error_rate: over.accel_error_rate.or(self.accel_error_rate),
            accel_error_magnitude: over.accel_error_magnitude.or(self.accel_error_magnitude),
            accel_bitflip_rate: over.accel_bitflip_rate.or(self.accel_bitflip_rate),
            accel_fail_rate: over.accel_fail_rate.or(self.accel_fail_rate),
            mem_spike_rate: over.mem_spike_rate.or(self.mem_spike_rate),
            mem_spike_cycles: over.mem_spike_cycles.or(self.mem_spike_cycles),
        }
    }

    fn resolve(&self, base: FaultPlan) -> FaultPlan {
        FaultPlan {
            seed: self.seed.unwrap_or(base.seed),
            accel_error_rate: self.accel_error_rate.unwrap_or(base.accel_error_rate),
            accel_error_magnitude: self
                .accel_error_magnitude
                .unwrap_or(base.accel_error_magnitude),
            accel_bitflip_rate: self.accel_bitflip_rate.unwrap_or(base.accel_bitflip_rate),
            accel_fail_rate: self.accel_fail_rate.unwrap_or(base.accel_fail_rate),
            mem_spike_rate: self.mem_spike_rate.unwrap_or(base.mem_spike_rate),
            mem_spike_cycles: self.mem_spike_cycles.unwrap_or(base.mem_spike_cycles),
        }
    }
}

// ------------------------------------------------------------ MachineSpec

/// Partial machine description: a preset name plus any number of field
/// overrides.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MachineSpec {
    /// Starting preset: `legacy_baseline`, `upgraded_baseline` (default),
    /// or `tartan`. When specs are merged, the *last* preset mentioned
    /// wins and all merged field overrides apply on top of it.
    pub preset: Option<String>,
    /// Core count.
    pub cores: Option<usize>,
    /// Cache line size in bytes.
    pub line_bytes: Option<u64>,
    /// L1-D overrides.
    pub l1: Option<CacheSpec>,
    /// Private-L2 overrides.
    pub l2: Option<CacheSpec>,
    /// Shared-L3 overrides.
    pub l3: Option<CacheSpec>,
    /// DRAM latency in cycles.
    pub dram_latency: Option<u64>,
    /// DRAM bandwidth in bytes per core cycle.
    pub dram_bytes_per_cycle: Option<u64>,
    /// Issue width.
    pub issue_width: Option<u64>,
    /// Memory-level parallelism.
    pub mlp: Option<u64>,
    /// L1 ports.
    pub l1_ports: Option<u64>,
    /// `"avx2"` or `"avx512"`.
    pub vector_isa: Option<VectorIsa>,
    /// OVEC extension present.
    pub ovec: Option<bool>,
    /// OVEC address-generation latency in cycles.
    pub ovec_addr_gen_latency: Option<u64>,
    /// `"none"`, `"nextline"`, `"anl"`, or `"bingo"`.
    pub prefetcher: Option<PrefetcherKind>,
    /// ANL region size in bytes.
    pub anl_region_bytes: Option<u64>,
    /// FCP: omitted = inherit, JSON `null` = disable, object = enable with
    /// overrides over the inherited/paper parameters.
    pub fcp: Option<Option<FcpSpec>>,
    /// NPU attachment: `{"mode": "none"}`, `{"mode": "integrated",
    /// "pes": N}`, or `{"mode": "coprocessor"}`.
    pub npu: Option<NpuMode>,
    /// NPU MAC latency.
    pub npu_mac_latency: Option<u64>,
    /// Integrated-NPU communication latency.
    pub npu_comm_latency: Option<u64>,
    /// Co-processor communication latency.
    pub npu_coproc_comm_latency: Option<u64>,
    /// Write-through producer/consumer regions.
    pub write_through_regions: Option<bool>,
    /// Intel ray-casting accelerator model.
    pub intel_lvs: Option<bool>,
    /// Fault plan: omitted = inherit, JSON `null` = disable, object =
    /// enable with overrides over a quiet plan.
    pub fault_plan: Option<Option<FaultSpec>>,
}

impl MachineSpec {
    const FIELDS: [&'static str; 24] = [
        "preset",
        "cores",
        "line_bytes",
        "l1",
        "l2",
        "l3",
        "dram_latency",
        "dram_bytes_per_cycle",
        "issue_width",
        "mlp",
        "l1_ports",
        "vector_isa",
        "ovec",
        "ovec_addr_gen_latency",
        "prefetcher",
        "anl_region_bytes",
        "fcp",
        "npu",
        "npu_mac_latency",
        "npu_comm_latency",
        "npu_coproc_comm_latency",
        "write_through_regions",
        "intel_lvs",
        "fault_plan",
    ];

    /// Parses a machine spec from a JSON object.
    pub fn parse(v: &JsonValue, path: &str) -> Result<MachineSpec, ScenarioError> {
        let mut spec = MachineSpec::default();
        for (key, value) in obj(v, path)? {
            let p = join(path, key);
            match key.as_str() {
                "preset" => spec.preset = Some(str_of(value, &p)?.to_string()),
                "cores" => spec.cores = Some(usize_of(value, &p)?),
                "line_bytes" => spec.line_bytes = Some(u64_of(value, &p)?),
                "l1" => spec.l1 = Some(CacheSpec::parse(value, &p)?),
                "l2" => spec.l2 = Some(CacheSpec::parse(value, &p)?),
                "l3" => spec.l3 = Some(CacheSpec::parse(value, &p)?),
                "dram_latency" => spec.dram_latency = Some(u64_of(value, &p)?),
                "dram_bytes_per_cycle" => {
                    spec.dram_bytes_per_cycle = Some(u64_of(value, &p)?);
                }
                "issue_width" => spec.issue_width = Some(u64_of(value, &p)?),
                "mlp" => spec.mlp = Some(u64_of(value, &p)?),
                "l1_ports" => spec.l1_ports = Some(u64_of(value, &p)?),
                "vector_isa" => spec.vector_isa = Some(keyword(value, &p, &VECTOR_ISAS)?),
                "ovec" => spec.ovec = Some(bool_of(value, &p)?),
                "ovec_addr_gen_latency" => {
                    spec.ovec_addr_gen_latency = Some(u64_of(value, &p)?);
                }
                "prefetcher" => spec.prefetcher = Some(keyword(value, &p, &PREFETCHERS)?),
                "anl_region_bytes" => spec.anl_region_bytes = Some(u64_of(value, &p)?),
                "fcp" => {
                    spec.fcp = Some(match value {
                        JsonValue::Null => None,
                        other => Some(FcpSpec::parse(other, &p)?),
                    });
                }
                "npu" => spec.npu = Some(parse_npu(value, &p)?),
                "npu_mac_latency" => spec.npu_mac_latency = Some(u64_of(value, &p)?),
                "npu_comm_latency" => spec.npu_comm_latency = Some(u64_of(value, &p)?),
                "npu_coproc_comm_latency" => {
                    spec.npu_coproc_comm_latency = Some(u64_of(value, &p)?);
                }
                "write_through_regions" => {
                    spec.write_through_regions = Some(bool_of(value, &p)?);
                }
                "intel_lvs" => spec.intel_lvs = Some(bool_of(value, &p)?),
                "fault_plan" => {
                    spec.fault_plan = Some(match value {
                        JsonValue::Null => None,
                        other => Some(FaultSpec::parse(other, &p)?),
                    });
                }
                _ => return Err(unknown_field(path, key, &Self::FIELDS)),
            }
        }
        Ok(spec)
    }

    /// Renders the spec (omitted fields stay omitted; explicit disables
    /// render as `null`).
    pub fn to_value(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        if let Some(p) = &self.preset {
            fields.push(("preset".into(), JsonValue::Str(p.clone())));
        }
        if let Some(n) = self.cores {
            fields.push(("cores".into(), num(n as u64)));
        }
        for (name, value) in [
            ("line_bytes", self.line_bytes),
            ("dram_latency", self.dram_latency),
            ("dram_bytes_per_cycle", self.dram_bytes_per_cycle),
            ("issue_width", self.issue_width),
            ("mlp", self.mlp),
            ("l1_ports", self.l1_ports),
            ("ovec_addr_gen_latency", self.ovec_addr_gen_latency),
            ("anl_region_bytes", self.anl_region_bytes),
            ("npu_mac_latency", self.npu_mac_latency),
            ("npu_comm_latency", self.npu_comm_latency),
            ("npu_coproc_comm_latency", self.npu_coproc_comm_latency),
        ] {
            if let Some(n) = value {
                fields.push((name.into(), num(n)));
            }
        }
        for (name, level) in [("l1", &self.l1), ("l2", &self.l2), ("l3", &self.l3)] {
            if let Some(spec) = level {
                fields.push((name.into(), spec.to_value()));
            }
        }
        if let Some(isa) = self.vector_isa {
            fields.push((
                "vector_isa".into(),
                JsonValue::Str(keyword_name(isa, &VECTOR_ISAS).into()),
            ));
        }
        if let Some(b) = self.ovec {
            fields.push(("ovec".into(), JsonValue::Bool(b)));
        }
        if let Some(pf) = self.prefetcher {
            fields.push((
                "prefetcher".into(),
                JsonValue::Str(keyword_name(pf, &PREFETCHERS).into()),
            ));
        }
        if let Some(fcp) = &self.fcp {
            fields.push((
                "fcp".into(),
                match fcp {
                    None => JsonValue::Null,
                    Some(spec) => spec.to_value(),
                },
            ));
        }
        if let Some(npu) = self.npu {
            fields.push(("npu".into(), npu_to_value(npu)));
        }
        if let Some(b) = self.write_through_regions {
            fields.push(("write_through_regions".into(), JsonValue::Bool(b)));
        }
        if let Some(b) = self.intel_lvs {
            fields.push(("intel_lvs".into(), JsonValue::Bool(b)));
        }
        if let Some(plan) = &self.fault_plan {
            fields.push((
                "fault_plan".into(),
                match plan {
                    None => JsonValue::Null,
                    Some(spec) => spec.to_value(),
                },
            ));
        }
        JsonValue::Obj(fields)
    }

    /// Field-wise merge; `over`'s fields win. Nested partials (`l1`–`l3`,
    /// `fcp`, `fault_plan`) merge field-wise too, except that `over`'s
    /// explicit `null` on `fcp`/`fault_plan` discards the base entirely.
    pub fn merged(&self, over: &MachineSpec) -> MachineSpec {
        let merge_level = |base: &Option<CacheSpec>, over: &Option<CacheSpec>| match (base, over) {
            (Some(b), Some(o)) => Some(b.merged(o)),
            (b, o) => o.clone().or_else(|| b.clone()),
        };
        MachineSpec {
            preset: merge_opt(&self.preset, &over.preset),
            cores: over.cores.or(self.cores),
            line_bytes: over.line_bytes.or(self.line_bytes),
            l1: merge_level(&self.l1, &over.l1),
            l2: merge_level(&self.l2, &over.l2),
            l3: merge_level(&self.l3, &over.l3),
            dram_latency: over.dram_latency.or(self.dram_latency),
            dram_bytes_per_cycle: over.dram_bytes_per_cycle.or(self.dram_bytes_per_cycle),
            issue_width: over.issue_width.or(self.issue_width),
            mlp: over.mlp.or(self.mlp),
            l1_ports: over.l1_ports.or(self.l1_ports),
            vector_isa: over.vector_isa.or(self.vector_isa),
            ovec: over.ovec.or(self.ovec),
            ovec_addr_gen_latency: over.ovec_addr_gen_latency.or(self.ovec_addr_gen_latency),
            prefetcher: over.prefetcher.or(self.prefetcher),
            anl_region_bytes: over.anl_region_bytes.or(self.anl_region_bytes),
            fcp: match (&self.fcp, &over.fcp) {
                (Some(Some(b)), Some(Some(o))) => Some(Some(b.merged(o))),
                (b, o) => o.clone().or_else(|| b.clone()),
            },
            npu: over.npu.or(self.npu),
            npu_mac_latency: over.npu_mac_latency.or(self.npu_mac_latency),
            npu_comm_latency: over.npu_comm_latency.or(self.npu_comm_latency),
            npu_coproc_comm_latency: over
                .npu_coproc_comm_latency
                .or(self.npu_coproc_comm_latency),
            write_through_regions: over.write_through_regions.or(self.write_through_regions),
            intel_lvs: over.intel_lvs.or(self.intel_lvs),
            fault_plan: match (&self.fault_plan, &over.fault_plan) {
                (Some(Some(b)), Some(Some(o))) => Some(Some(b.merged(o))),
                (b, o) => o.clone().or_else(|| b.clone()),
            },
        }
    }

    /// Resolves into a validated [`MachineConfig`]: preset first, then
    /// overrides, then [`MachineConfig::validate`]. `path` prefixes error
    /// paths (e.g. `groups[0].machine`).
    pub fn resolve(&self, path: &str) -> Result<MachineConfig, ScenarioError> {
        let mut cfg = match &self.preset {
            None => MachineConfig::upgraded_baseline(),
            Some(name) => MachineConfig::from_preset(name).ok_or_else(|| {
                ScenarioError::new(
                    join(path, "preset"),
                    format!(
                        "unknown preset {name:?} (expected one of {})",
                        MachineConfig::PRESETS.join(", ")
                    ),
                )
            })?,
        };
        if let Some(n) = self.cores {
            cfg.cores = n;
        }
        if let Some(n) = self.line_bytes {
            cfg.line_bytes = n;
        }
        if let Some(spec) = &self.l1 {
            spec.apply(&mut cfg.l1);
        }
        if let Some(spec) = &self.l2 {
            spec.apply(&mut cfg.l2);
        }
        if let Some(spec) = &self.l3 {
            spec.apply(&mut cfg.l3);
        }
        if let Some(n) = self.dram_latency {
            cfg.dram_latency = n;
        }
        if let Some(n) = self.dram_bytes_per_cycle {
            cfg.dram_bytes_per_cycle = n;
        }
        if let Some(n) = self.issue_width {
            cfg.issue_width = n;
        }
        if let Some(n) = self.mlp {
            cfg.mlp = n;
        }
        if let Some(n) = self.l1_ports {
            cfg.l1_ports = n;
        }
        if let Some(isa) = self.vector_isa {
            cfg.vector_isa = isa;
        }
        if let Some(b) = self.ovec {
            cfg.ovec = b;
        }
        if let Some(n) = self.ovec_addr_gen_latency {
            cfg.ovec_addr_gen_latency = n;
        }
        if let Some(pf) = self.prefetcher {
            cfg.prefetcher = pf;
        }
        if let Some(n) = self.anl_region_bytes {
            cfg.anl_region_bytes = n;
        }
        match &self.fcp {
            None => {}
            Some(None) => cfg.fcp = None,
            Some(Some(spec)) => {
                cfg.fcp = Some(spec.resolve(cfg.fcp.unwrap_or_else(FcpConfig::paper_default)));
            }
        }
        if let Some(npu) = self.npu {
            cfg.npu = npu;
        }
        if let Some(n) = self.npu_mac_latency {
            cfg.npu_mac_latency = n;
        }
        if let Some(n) = self.npu_comm_latency {
            cfg.npu_comm_latency = n;
        }
        if let Some(n) = self.npu_coproc_comm_latency {
            cfg.npu_coproc_comm_latency = n;
        }
        if let Some(b) = self.write_through_regions {
            cfg.write_through_regions = b;
        }
        if let Some(b) = self.intel_lvs {
            cfg.intel_lvs = b;
        }
        match &self.fault_plan {
            None => {}
            Some(None) => cfg.fault_plan = None,
            Some(Some(spec)) => {
                cfg.fault_plan =
                    Some(spec.resolve(cfg.fault_plan.unwrap_or_else(|| FaultPlan::quiet(0))));
            }
        }
        cfg.validate()
            .map_err(|e| ScenarioError::new(join(path, &e.path), e.reason))?;
        Ok(cfg)
    }

    /// Builds the spec that names an exact [`MachineConfig`]: the preset
    /// name when the config is a preset, otherwise `upgraded_baseline`
    /// plus every differing field spelled out.
    pub fn from_config(cfg: &MachineConfig) -> MachineSpec {
        if let Some(name) = cfg.preset_name() {
            return MachineSpec {
                preset: Some(name.to_string()),
                ..MachineSpec::default()
            };
        }
        let base = MachineConfig::upgraded_baseline();
        let level = |b: &tartan_sim::CacheConfig, c: &tartan_sim::CacheConfig| {
            if b == c {
                None
            } else {
                Some(CacheSpec {
                    size_bytes: opt(b.size_bytes != c.size_bytes, c.size_bytes),
                    ways: opt(b.ways != c.ways, c.ways),
                    latency: opt(b.latency != c.latency, c.latency),
                })
            }
        };
        MachineSpec {
            preset: None,
            cores: opt(base.cores != cfg.cores, cfg.cores),
            line_bytes: opt(base.line_bytes != cfg.line_bytes, cfg.line_bytes),
            l1: level(&base.l1, &cfg.l1),
            l2: level(&base.l2, &cfg.l2),
            l3: level(&base.l3, &cfg.l3),
            dram_latency: opt(base.dram_latency != cfg.dram_latency, cfg.dram_latency),
            dram_bytes_per_cycle: opt(
                base.dram_bytes_per_cycle != cfg.dram_bytes_per_cycle,
                cfg.dram_bytes_per_cycle,
            ),
            issue_width: opt(base.issue_width != cfg.issue_width, cfg.issue_width),
            mlp: opt(base.mlp != cfg.mlp, cfg.mlp),
            l1_ports: opt(base.l1_ports != cfg.l1_ports, cfg.l1_ports),
            vector_isa: opt(base.vector_isa != cfg.vector_isa, cfg.vector_isa),
            ovec: opt(base.ovec != cfg.ovec, cfg.ovec),
            ovec_addr_gen_latency: opt(
                base.ovec_addr_gen_latency != cfg.ovec_addr_gen_latency,
                cfg.ovec_addr_gen_latency,
            ),
            prefetcher: opt(base.prefetcher != cfg.prefetcher, cfg.prefetcher),
            anl_region_bytes: opt(
                base.anl_region_bytes != cfg.anl_region_bytes,
                cfg.anl_region_bytes,
            ),
            fcp: if base.fcp == cfg.fcp {
                None
            } else {
                Some(cfg.fcp.map(|f| FcpSpec {
                    region_bytes: Some(f.region_bytes),
                    xor_bits: Some(f.xor_bits),
                    manipulation: Some(f.manipulation),
                }))
            },
            npu: opt(base.npu != cfg.npu, cfg.npu),
            npu_mac_latency: opt(
                base.npu_mac_latency != cfg.npu_mac_latency,
                cfg.npu_mac_latency,
            ),
            npu_comm_latency: opt(
                base.npu_comm_latency != cfg.npu_comm_latency,
                cfg.npu_comm_latency,
            ),
            npu_coproc_comm_latency: opt(
                base.npu_coproc_comm_latency != cfg.npu_coproc_comm_latency,
                cfg.npu_coproc_comm_latency,
            ),
            write_through_regions: opt(
                base.write_through_regions != cfg.write_through_regions,
                cfg.write_through_regions,
            ),
            intel_lvs: opt(base.intel_lvs != cfg.intel_lvs, cfg.intel_lvs),
            fault_plan: if base.fault_plan == cfg.fault_plan {
                None
            } else {
                Some(cfg.fault_plan.map(|p| FaultSpec {
                    seed: Some(p.seed),
                    accel_error_rate: Some(p.accel_error_rate),
                    accel_error_magnitude: Some(p.accel_error_magnitude),
                    accel_bitflip_rate: Some(p.accel_bitflip_rate),
                    accel_fail_rate: Some(p.accel_fail_rate),
                    mem_spike_rate: Some(p.mem_spike_rate),
                    mem_spike_cycles: Some(p.mem_spike_cycles),
                }))
            },
        }
    }
}

fn parse_npu(v: &JsonValue, path: &str) -> Result<NpuMode, ScenarioError> {
    let mut mode: Option<&str> = None;
    let mut pes: Option<u32> = None;
    for (key, value) in obj(v, path)? {
        let p = join(path, key);
        match key.as_str() {
            "mode" => mode = Some(str_of(value, &p)?),
            "pes" => pes = Some(u32_of(value, &p)?),
            _ => return Err(unknown_field(path, key, &["mode", "pes"])),
        }
    }
    let mode = mode
        .ok_or_else(|| ScenarioError::new(join(path, "mode"), "required field is missing"))?;
    match (mode, pes) {
        ("none", None) => Ok(NpuMode::None),
        ("coprocessor", None) => Ok(NpuMode::Coprocessor),
        ("integrated", Some(pes)) => Ok(NpuMode::Integrated { pes }),
        ("integrated", None) => Err(ScenarioError::new(
            join(path, "pes"),
            "required for the integrated mode",
        )),
        ("none" | "coprocessor", Some(_)) => Err(ScenarioError::new(
            join(path, "pes"),
            format!("only valid for the integrated mode (mode is {mode:?})"),
        )),
        _ => Err(ScenarioError::new(
            join(path, "mode"),
            format!("unknown value {mode:?} (expected one of none, integrated, coprocessor)"),
        )),
    }
}

fn npu_to_value(npu: NpuMode) -> JsonValue {
    let mut fields = vec![(
        "mode".to_string(),
        JsonValue::Str(
            match npu {
                NpuMode::None => "none",
                NpuMode::Integrated { .. } => "integrated",
                NpuMode::Coprocessor => "coprocessor",
            }
            .into(),
        ),
    )];
    if let NpuMode::Integrated { pes } = npu {
        fields.push(("pes".into(), num(u64::from(pes))));
    }
    JsonValue::Obj(fields)
}

// ----------------------------------------------------------- SoftwareSpec

/// Partial software description: a preset name plus field overrides.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SoftwareSpec {
    /// Starting preset: `legacy` (default), `optimized`, or `approximable`.
    pub preset: Option<String>,
    /// `"scalar"`, `"gather"`, `"ovec"`, or `"racod"`.
    pub vec_method: Option<VecMethod>,
    /// `"brute"`, `"kdtree"`, `"flann"`, or `"vln"`.
    pub nns: Option<NnsKind>,
    /// `"none"`, `"npu"`, or `"software"`.
    pub neural: Option<NeuralExec>,
    /// Bilinear ray-casting refinement.
    pub interpolate_raycast: Option<bool>,
}

impl SoftwareSpec {
    const FIELDS: [&'static str; 5] = [
        "preset",
        "vec_method",
        "nns",
        "neural",
        "interpolate_raycast",
    ];

    /// Parses a software spec from a JSON object.
    pub fn parse(v: &JsonValue, path: &str) -> Result<SoftwareSpec, ScenarioError> {
        let mut spec = SoftwareSpec::default();
        for (key, value) in obj(v, path)? {
            let p = join(path, key);
            match key.as_str() {
                "preset" => spec.preset = Some(str_of(value, &p)?.to_string()),
                "vec_method" => spec.vec_method = Some(keyword(value, &p, &VEC_METHODS)?),
                "nns" => spec.nns = Some(keyword(value, &p, &NNS_KINDS)?),
                "neural" => spec.neural = Some(keyword(value, &p, &NEURAL_EXECS)?),
                "interpolate_raycast" => {
                    spec.interpolate_raycast = Some(bool_of(value, &p)?);
                }
                _ => return Err(unknown_field(path, key, &Self::FIELDS)),
            }
        }
        Ok(spec)
    }

    /// Renders the spec.
    pub fn to_value(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        if let Some(p) = &self.preset {
            fields.push(("preset".into(), JsonValue::Str(p.clone())));
        }
        if let Some(m) = self.vec_method {
            fields.push((
                "vec_method".into(),
                JsonValue::Str(keyword_name(m, &VEC_METHODS).into()),
            ));
        }
        if let Some(n) = self.nns {
            fields.push(("nns".into(), JsonValue::Str(keyword_name(n, &NNS_KINDS).into())));
        }
        if let Some(n) = self.neural {
            fields.push((
                "neural".into(),
                JsonValue::Str(keyword_name(n, &NEURAL_EXECS).into()),
            ));
        }
        if let Some(b) = self.interpolate_raycast {
            fields.push(("interpolate_raycast".into(), JsonValue::Bool(b)));
        }
        JsonValue::Obj(fields)
    }

    /// Field-wise merge; `over`'s fields win.
    pub fn merged(&self, over: &SoftwareSpec) -> SoftwareSpec {
        SoftwareSpec {
            preset: merge_opt(&self.preset, &over.preset),
            vec_method: over.vec_method.or(self.vec_method),
            nns: over.nns.or(self.nns),
            neural: over.neural.or(self.neural),
            interpolate_raycast: over.interpolate_raycast.or(self.interpolate_raycast),
        }
    }

    /// Resolves into a [`SoftwareConfig`]: preset first (default
    /// `legacy`), then overrides.
    pub fn resolve(&self, path: &str) -> Result<SoftwareConfig, ScenarioError> {
        let mut sw = match &self.preset {
            None => SoftwareConfig::legacy(),
            Some(name) => SoftwareConfig::from_preset(name).ok_or_else(|| {
                ScenarioError::new(
                    join(path, "preset"),
                    format!(
                        "unknown preset {name:?} (expected one of {})",
                        SoftwareConfig::PRESETS.join(", ")
                    ),
                )
            })?,
        };
        if let Some(m) = self.vec_method {
            sw.vec_method = m;
        }
        if let Some(n) = self.nns {
            sw.nns = n;
        }
        if let Some(n) = self.neural {
            sw.neural = n;
        }
        if let Some(b) = self.interpolate_raycast {
            sw.interpolate_raycast = b;
        }
        Ok(sw)
    }

    /// Builds the spec that names an exact [`SoftwareConfig`].
    pub fn from_config(sw: &SoftwareConfig) -> SoftwareSpec {
        if let Some(name) = sw.preset_name() {
            return SoftwareSpec {
                preset: Some(name.to_string()),
                ..SoftwareSpec::default()
            };
        }
        let base = SoftwareConfig::legacy();
        SoftwareSpec {
            preset: None,
            vec_method: opt(base.vec_method != sw.vec_method, sw.vec_method),
            nns: opt(base.nns != sw.nns, sw.nns),
            neural: opt(base.neural != sw.neural, sw.neural),
            interpolate_raycast: opt(
                base.interpolate_raycast != sw.interpolate_raycast,
                sw.interpolate_raycast,
            ),
        }
    }
}

// ------------------------------------------------------------- ParamsSpec

/// One workload-scale adjustment: set or multiply a named [`Scale`] field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScaleAdjust {
    /// Scale field name (e.g. `map_points`).
    pub field: String,
    /// The operation.
    pub op: AdjustOp,
}

/// How a [`ScaleAdjust`] changes the field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdjustOp {
    /// Replace the value.
    Set(u64),
    /// Multiply the value.
    Mul(u64),
}

/// The adjustable [`Scale`] fields (tuple-valued fields are not exposed).
pub const SCALE_FIELDS: [&str; 14] = [
    "grid2",
    "particles",
    "rays",
    "rrt_nodes",
    "map_points",
    "source_points",
    "image_side",
    "pca_k",
    "train_epochs",
    "heuristic_samples",
    "theta_bins",
    "depth_side",
    "cnn_input",
    "delibot_grid",
];

fn scale_field_mut<'a>(scale: &'a mut Scale, name: &str) -> Option<&'a mut usize> {
    match name {
        "grid2" => Some(&mut scale.grid2),
        "particles" => Some(&mut scale.particles),
        "rays" => Some(&mut scale.rays),
        "rrt_nodes" => Some(&mut scale.rrt_nodes),
        "map_points" => Some(&mut scale.map_points),
        "source_points" => Some(&mut scale.source_points),
        "image_side" => Some(&mut scale.image_side),
        "pca_k" => Some(&mut scale.pca_k),
        "train_epochs" => Some(&mut scale.train_epochs),
        "heuristic_samples" => Some(&mut scale.heuristic_samples),
        "theta_bins" => Some(&mut scale.theta_bins),
        "depth_side" => Some(&mut scale.depth_side),
        "cnn_input" => Some(&mut scale.cnn_input),
        "delibot_grid" => Some(&mut scale.delibot_grid),
        _ => None,
    }
}

impl ScaleAdjust {
    fn parse(v: &JsonValue, path: &str) -> Result<ScaleAdjust, ScenarioError> {
        let mut field: Option<String> = None;
        let mut op: Option<AdjustOp> = None;
        for (key, value) in obj(v, path)? {
            let p = join(path, key);
            match key.as_str() {
                "field" => field = Some(str_of(value, &p)?.to_string()),
                "set" | "mul" => {
                    if op.is_some() {
                        return Err(ScenarioError::new(
                            p,
                            "exactly one of `set` and `mul` is allowed",
                        ));
                    }
                    let n = u64_of(value, &p)?;
                    op = Some(if key == "set" {
                        AdjustOp::Set(n)
                    } else {
                        AdjustOp::Mul(n)
                    });
                }
                _ => return Err(unknown_field(path, key, &["field", "set", "mul"])),
            }
        }
        let field = field
            .ok_or_else(|| ScenarioError::new(join(path, "field"), "required field is missing"))?;
        if !SCALE_FIELDS.contains(&field.as_str()) {
            return Err(ScenarioError::new(
                join(path, "field"),
                format!(
                    "unknown scale field {field:?} (known fields: {})",
                    SCALE_FIELDS.join(", ")
                ),
            ));
        }
        let op = op.ok_or_else(|| {
            ScenarioError::new(path, "one of `set` and `mul` is required")
        })?;
        Ok(ScaleAdjust { field, op })
    }

    fn to_value(&self) -> JsonValue {
        let mut fields = vec![("field".to_string(), JsonValue::Str(self.field.clone()))];
        match self.op {
            AdjustOp::Set(n) => fields.push(("set".into(), num(n))),
            AdjustOp::Mul(n) => fields.push(("mul".into(), num(n))),
        }
        JsonValue::Obj(fields)
    }

    /// Applies the adjustment to a scale.
    pub fn apply(&self, scale: &mut Scale) {
        let slot = scale_field_mut(scale, &self.field)
            .expect("field validity is checked at parse time");
        match self.op {
            AdjustOp::Set(n) => *slot = n as usize,
            AdjustOp::Mul(n) => *slot *= n as usize,
        }
    }
}

/// Run parameters: workload scale, pipeline steps, and seed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParamsSpec {
    /// Scale preset: `small` (default) or `paper`.
    pub scale: Option<String>,
    /// Pipeline periods per job.
    pub steps: Option<u64>,
    /// Environment seed.
    pub seed: Option<u64>,
    /// Scale adjustments, applied in order after the preset (and equally
    /// on top of a caller-supplied scale — see
    /// [`ParamsSpec::apply_adjusts`]).
    pub adjust: Vec<ScaleAdjust>,
}

impl ParamsSpec {
    const FIELDS: [&'static str; 4] = ["scale", "steps", "seed", "adjust"];

    /// Parses run parameters from a JSON object.
    pub fn parse(v: &JsonValue, path: &str) -> Result<ParamsSpec, ScenarioError> {
        let mut spec = ParamsSpec::default();
        for (key, value) in obj(v, path)? {
            let p = join(path, key);
            match key.as_str() {
                "scale" => {
                    let name = str_of(value, &p)?;
                    if Scale::from_preset(name).is_none() {
                        return Err(ScenarioError::new(
                            p,
                            format!(
                                "unknown scale preset {name:?} (expected one of {})",
                                Scale::PRESETS.join(", ")
                            ),
                        ));
                    }
                    spec.scale = Some(name.to_string());
                }
                "steps" => spec.steps = Some(u64_of(value, &p)?),
                "seed" => spec.seed = Some(u64_of(value, &p)?),
                "adjust" => {
                    for (i, item) in arr(value, &p)?.iter().enumerate() {
                        spec.adjust.push(ScaleAdjust::parse(item, &format!("{p}[{i}]"))?);
                    }
                }
                _ => return Err(unknown_field(path, key, &Self::FIELDS)),
            }
        }
        Ok(spec)
    }

    /// Renders the parameters.
    pub fn to_value(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        if let Some(s) = &self.scale {
            fields.push(("scale".into(), JsonValue::Str(s.clone())));
        }
        if let Some(n) = self.steps {
            fields.push(("steps".into(), num(n)));
        }
        if let Some(n) = self.seed {
            fields.push(("seed".into(), num(n)));
        }
        if !self.adjust.is_empty() {
            fields.push((
                "adjust".into(),
                JsonValue::Arr(self.adjust.iter().map(ScaleAdjust::to_value).collect()),
            ));
        }
        JsonValue::Obj(fields)
    }

    /// Applies only the adjustment list to an existing scale — this is how
    /// figure harnesses honor a caller's quick/paper scale while still
    /// taking the study-specific sizing (e.g. Fig. 10's `map_points` × 20)
    /// from the manifest.
    pub fn apply_adjusts(&self, scale: &mut Scale) {
        for adj in &self.adjust {
            adj.apply(scale);
        }
    }

    /// Builds the full stand-alone scale: preset (default `small`) plus
    /// adjustments.
    pub fn base_scale(&self) -> Scale {
        let mut scale = self
            .scale
            .as_deref()
            .and_then(Scale::from_preset)
            .unwrap_or_else(Scale::small);
        self.apply_adjusts(&mut scale);
        scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn mspec(doc: &str) -> Result<MachineSpec, ScenarioError> {
        MachineSpec::parse(&parse(doc).unwrap(), "machine")
    }

    #[test]
    fn machine_spec_resolves_presets_with_overrides() {
        let spec = mspec(r#"{"preset": "tartan", "anl_region_bytes": 2048, "npu": {"mode": "integrated", "pes": 8}}"#)
            .unwrap();
        let cfg = spec.resolve("machine").unwrap();
        let mut want = MachineConfig::tartan();
        want.anl_region_bytes = 2048;
        want.npu = NpuMode::Integrated { pes: 8 };
        assert_eq!(cfg, want);
    }

    #[test]
    fn empty_machine_spec_is_the_upgraded_baseline() {
        let cfg = mspec("{}").unwrap().resolve("machine").unwrap();
        assert_eq!(cfg, MachineConfig::upgraded_baseline());
    }

    #[test]
    fn explicit_null_disables_fcp() {
        let spec = mspec(r#"{"preset": "tartan", "fcp": null}"#).unwrap();
        let cfg = spec.resolve("machine").unwrap();
        assert_eq!(cfg.fcp, None);
        // And omitting it inherits the preset's FCP.
        let spec = mspec(r#"{"preset": "tartan"}"#).unwrap();
        assert!(spec.resolve("machine").unwrap().fcp.is_some());
        // A partial FCP object merges over the paper default.
        let spec = mspec(r#"{"preset": "tartan", "fcp": {"xor_bits": 3}}"#).unwrap();
        let fcp = spec.resolve("machine").unwrap().fcp.unwrap();
        assert_eq!(fcp.xor_bits, 3);
        assert_eq!(fcp.region_bytes, FcpConfig::paper_default().region_bytes);
    }

    #[test]
    fn unknown_fields_are_rejected_with_paths() {
        let err = mspec(r#"{"linebytes": 32}"#).unwrap_err();
        assert_eq!(err.path, "machine.linebytes");
        assert!(err.reason.contains("unknown field"), "{err}");
        assert!(err.reason.contains("line_bytes"), "lists known fields: {err}");

        let err = mspec(r#"{"l2": {"sets": 4}}"#).unwrap_err();
        assert_eq!(err.path, "machine.l2.sets");

        let err = mspec(r#"{"prefetcher": "stride"}"#).unwrap_err();
        assert_eq!(err.path, "machine.prefetcher");
        assert!(err.reason.contains("anl"), "{err}");
    }

    #[test]
    fn validation_errors_carry_the_scenario_path() {
        let spec = mspec(r#"{"l2": {"ways": 0}}"#).unwrap();
        let err = spec.resolve("groups[3].machine").unwrap_err();
        assert_eq!(err.path, "groups[3].machine.l2.ways");
        assert_eq!(err.to_string(), "groups[3].machine.l2.ways: must be at least 1");
    }

    #[test]
    fn merge_is_field_wise_and_later_wins() {
        let base = mspec(r#"{"preset": "tartan", "mlp": 8, "l2": {"ways": 4}}"#).unwrap();
        let over = mspec(r#"{"mlp": 2, "l2": {"latency": 20}}"#).unwrap();
        let merged = base.merged(&over);
        assert_eq!(merged.preset.as_deref(), Some("tartan"));
        assert_eq!(merged.mlp, Some(2));
        let l2 = merged.l2.unwrap();
        assert_eq!((l2.ways, l2.latency), (Some(4), Some(20)));
        // An explicit null on the override side wins over a base enable.
        let base = mspec(r#"{"fcp": {"xor_bits": 3}}"#).unwrap();
        let over = mspec(r#"{"fcp": null}"#).unwrap();
        assert_eq!(base.merged(&over).fcp, Some(None));
    }

    #[test]
    fn npu_spellings_are_strict() {
        assert_eq!(
            mspec(r#"{"npu": {"mode": "none"}}"#).unwrap().npu,
            Some(NpuMode::None)
        );
        assert_eq!(
            mspec(r#"{"npu": {"mode": "coprocessor"}}"#).unwrap().npu,
            Some(NpuMode::Coprocessor)
        );
        let err = mspec(r#"{"npu": {"mode": "integrated"}}"#).unwrap_err();
        assert_eq!(err.path, "machine.npu.pes");
        let err = mspec(r#"{"npu": {"mode": "none", "pes": 4}}"#).unwrap_err();
        assert_eq!(err.path, "machine.npu.pes");
        let err = mspec(r#"{"npu": {"mode": "quantum"}}"#).unwrap_err();
        assert_eq!(err.path, "machine.npu.mode");
    }

    #[test]
    fn from_config_round_trips_presets_and_customs() {
        for name in MachineConfig::PRESETS {
            let cfg = MachineConfig::from_preset(name).unwrap();
            let spec = MachineSpec::from_config(&cfg);
            assert_eq!(spec.preset.as_deref(), Some(name));
            assert_eq!(spec.resolve("machine").unwrap(), cfg);
        }
        let mut custom = MachineConfig::tartan();
        custom.anl_region_bytes = 4096;
        custom.fault_plan = Some(FaultPlan::quiet(7).with_mem_spikes(0.5, 100));
        let spec = MachineSpec::from_config(&custom);
        assert_eq!(spec.resolve("machine").unwrap(), custom);
        // And the spec survives its own JSON rendering.
        let reparsed = MachineSpec::parse(&parse(&spec.to_value().render()).unwrap(), "machine")
            .unwrap();
        assert_eq!(reparsed, spec);
    }

    #[test]
    fn software_spec_resolves_and_round_trips() {
        let v = parse(r#"{"preset": "optimized", "nns": "kdtree"}"#).unwrap();
        let spec = SoftwareSpec::parse(&v, "software").unwrap();
        let sw = spec.resolve("software").unwrap();
        assert_eq!(sw.vec_method, VecMethod::Ovec);
        assert_eq!(sw.nns, NnsKind::KdTree);
        for name in SoftwareConfig::PRESETS {
            let sw = SoftwareConfig::from_preset(name).unwrap();
            assert_eq!(SoftwareSpec::from_config(&sw).resolve("s").unwrap(), sw);
        }
        let mut custom = SoftwareConfig::legacy();
        custom.interpolate_raycast = true;
        custom.nns = NnsKind::Flann;
        let spec = SoftwareSpec::from_config(&custom);
        assert_eq!(spec.resolve("s").unwrap(), custom);
        let err = SoftwareSpec::parse(&parse(r#"{"nns": "octree"}"#).unwrap(), "software")
            .unwrap_err();
        assert_eq!(err.path, "software.nns");
    }

    #[test]
    fn params_adjusts_apply_in_order() {
        let v = parse(
            r#"{"scale": "small", "steps": 3, "adjust": [
                {"field": "map_points", "mul": 20},
                {"field": "rays", "set": 4}
            ]}"#,
        )
        .unwrap();
        let spec = ParamsSpec::parse(&v, "params").unwrap();
        let scale = spec.base_scale();
        assert_eq!(scale.map_points, Scale::small().map_points * 20);
        assert_eq!(scale.rays, 4);
        // apply_adjusts honors a caller-supplied scale.
        let mut paper = Scale::paper();
        spec.apply_adjusts(&mut paper);
        assert_eq!(paper.map_points, Scale::paper().map_points * 20);

        let err = ParamsSpec::parse(
            &parse(r#"{"adjust": [{"field": "warp", "set": 1}]}"#).unwrap(),
            "params",
        )
        .unwrap_err();
        assert_eq!(err.path, "params.adjust[0].field");
        let err = ParamsSpec::parse(&parse(r#"{"scale": "huge"}"#).unwrap(), "params")
            .unwrap_err();
        assert_eq!(err.path, "params.scale");
        let err = ParamsSpec::parse(
            &parse(r#"{"adjust": [{"field": "rays", "set": 1, "mul": 2}]}"#).unwrap(),
            "params",
        )
        .unwrap_err();
        assert!(err.reason.contains("exactly one"), "{err}");
    }
}
