//! Canonical cache-key rendering for campaign jobs.
//!
//! The content-addressed result store (`tartan-store`) memoizes runs by
//! the SHA-256 of a *canonical job rendering*: everything that determines
//! the run's output bytes, and nothing that doesn't. This module defines
//! that rendering.
//!
//! What goes in:
//! * the robot and canonical [`ConfigId`](crate::ConfigId) string,
//! * the machine and software configurations, rendered through
//!   [`MachineSpec::from_config`]/[`SoftwareSpec::from_config`] — the same
//!   canonicalization the scenario layer round-trips through, so two
//!   scenario documents that resolve to the same configuration produce the
//!   same key,
//! * every field of the workload [`Scale`], the step count, and the seed,
//! * [`CACHE_KEY_VERSION`] and the stats schema version
//!   ([`tartan_telemetry::STATS_SCHEMA_VERSION`]), so a format change on
//!   either side invalidates old entries instead of mis-serving them.
//!
//! What stays out, deliberately: the sweep *label* and *group* — they are
//! presentation, chosen by the scenario author, and renaming a bar must
//! not force a re-simulation. CSV rows are rebuilt from the current plan's
//! labels plus the cached numbers.

use crate::expand::{PlannedJob, RunParams};
use crate::json::JsonValue;
use crate::spec::{MachineSpec, SoftwareSpec};
use tartan_robots::Scale;

/// Version of the canonical rendering below. Bump whenever the rendering
/// (field set, order, or semantics) changes, so stale store entries become
/// misses rather than wrong hits.
pub const CACHE_KEY_VERSION: u32 = 1;

fn num(n: impl ToString) -> JsonValue {
    JsonValue::Num(n.to_string())
}

fn pair((a, b): (usize, usize)) -> JsonValue {
    JsonValue::Arr(vec![num(a), num(b)])
}

/// Every [`Scale`] field, in declaration order. All fields are listed
/// explicitly so adding a field to `Scale` without extending this
/// rendering is a compile error (via the exhaustive destructuring).
fn scale_value(s: &Scale) -> JsonValue {
    let Scale {
        grid2,
        grid3,
        particles,
        rays,
        rrt_nodes,
        map_points,
        source_points,
        image_side,
        pca_k,
        patrol_hidden,
        train_epochs,
        heuristic_samples,
        theta_bins,
        depth_side,
        cnn_input,
        delibot_grid,
    } = *s;
    let (g3a, g3b, g3c) = grid3;
    JsonValue::Obj(vec![
        ("grid2".into(), num(grid2)),
        ("grid3".into(), JsonValue::Arr(vec![num(g3a), num(g3b), num(g3c)])),
        ("particles".into(), num(particles)),
        ("rays".into(), num(rays)),
        ("rrt_nodes".into(), num(rrt_nodes)),
        ("map_points".into(), num(map_points)),
        ("source_points".into(), num(source_points)),
        ("image_side".into(), num(image_side)),
        ("pca_k".into(), num(pca_k)),
        ("patrol_hidden".into(), pair(patrol_hidden)),
        ("train_epochs".into(), num(train_epochs)),
        ("heuristic_samples".into(), num(heuristic_samples)),
        ("theta_bins".into(), num(theta_bins)),
        ("depth_side".into(), num(depth_side)),
        ("cnn_input".into(), num(cnn_input)),
        ("delibot_grid".into(), num(delibot_grid)),
    ])
}

impl PlannedJob {
    /// The canonical text whose SHA-256 addresses this job's result in the
    /// store. Deterministic: equal (job, params) pairs render equal text,
    /// and any semantic difference — robot, resolved machine or software
    /// configuration, scale, steps, or seed — renders different text.
    pub fn cache_key_text(&self, params: &RunParams) -> String {
        JsonValue::Obj(vec![
            ("cache_key_version".into(), num(CACHE_KEY_VERSION)),
            (
                "stats_schema".into(),
                num(tartan_telemetry::STATS_SCHEMA_VERSION),
            ),
            ("robot".into(), JsonValue::Str(self.robot.name().into())),
            ("config".into(), JsonValue::Str(self.config.as_str().into())),
            (
                "machine".into(),
                MachineSpec::from_config(&self.machine).to_value(),
            ),
            (
                "software".into(),
                SoftwareSpec::from_config(&self.software).to_value(),
            ),
            ("scale".into(), scale_value(&params.scale)),
            ("steps".into(), num(params.steps)),
            ("seed".into(), num(params.seed)),
        ])
        .render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expand::ScenarioSpec;

    const DOC: &str = r#"{
        "schema_version": 1, "name": "key-test",
        "groups": [{
            "robots": ["DeliBot", "FlyBot"],
            "axes": [{"variants": [
                {"label": "base"},
                {"label": "tartan", "machine": {"preset": "tartan"},
                 "software": {"preset": "approximable"}}
            ]}]
        }]
    }"#;

    fn plan_and_params() -> (crate::Plan, RunParams) {
        let spec = ScenarioSpec::from_json(DOC).unwrap();
        let plan = spec.expand().unwrap();
        let params = spec.base_params();
        (plan, params)
    }

    #[test]
    fn equal_jobs_render_equal_text() {
        let (plan, params) = plan_and_params();
        for job in &plan.jobs {
            assert_eq!(job.cache_key_text(&params), job.cache_key_text(&params));
        }
        // And the rendering is stable across independent expansions.
        let (plan2, params2) = plan_and_params();
        for (a, b) in plan.jobs.iter().zip(&plan2.jobs) {
            assert_eq!(a.cache_key_text(&params), b.cache_key_text(&params2));
        }
    }

    #[test]
    fn distinct_jobs_render_distinct_text() {
        let (plan, params) = plan_and_params();
        let mut keys: Vec<String> = plan
            .jobs
            .iter()
            .map(|j| j.cache_key_text(&params))
            .collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), plan.jobs.len(), "4 jobs must yield 4 keys");
    }

    #[test]
    fn params_perturbations_change_the_text() {
        let (plan, params) = plan_and_params();
        let job = &plan.jobs[0];
        let base = job.cache_key_text(&params);

        let mut p = params;
        p.seed += 1;
        assert_ne!(job.cache_key_text(&p), base, "seed must be keyed");

        let mut p = params;
        p.steps += 1;
        assert_ne!(job.cache_key_text(&p), base, "steps must be keyed");

        let mut p = params;
        p.scale.map_points *= 2;
        assert_ne!(job.cache_key_text(&p), base, "scale must be keyed");
    }

    #[test]
    fn label_and_group_are_not_keyed() {
        // Renaming a bar must not invalidate its cached result.
        let (plan, params) = plan_and_params();
        let mut relabeled = plan.jobs[0].clone();
        relabeled.label = "a completely different label".into();
        relabeled.group = 7;
        assert_eq!(
            relabeled.cache_key_text(&params),
            plan.jobs[0].cache_key_text(&params)
        );
    }

    #[test]
    fn text_is_valid_json_and_versioned() {
        let (plan, params) = plan_and_params();
        let text = plan.jobs[0].cache_key_text(&params);
        tartan_telemetry::validate_json(&text).unwrap();
        assert!(text.starts_with("{\"cache_key_version\":1,\"stats_schema\":"));
        assert!(text.contains("\"robot\":\"DeliBot\""));
        assert!(text.contains("\"seed\":42"));
    }
}
