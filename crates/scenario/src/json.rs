//! A small JSON value tree: parser and deterministic renderer.
//!
//! The workspace is offline (no serde). `tartan-telemetry` ships a JSON
//! *writer* and a syntax *validator*; scenarios additionally need to read
//! documents back, so this module parses into a [`JsonValue`] tree. Two
//! deliberate choices keep round-trips exact:
//!
//! * Numbers are stored as their **raw source text** ([`JsonValue::Num`]),
//!   so a `u64` seed never detours through `f64` and back.
//! * Rendering reuses the telemetry writer's escaping
//!   ([`tartan_telemetry::json::push_str`]), so identical trees render to
//!   byte-identical documents.

use tartan_telemetry::push_str;

/// One parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw source text (e.g. `"42"`, `"-1.5e3"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; key order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks a key up in an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name for the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "a boolean",
            JsonValue::Num(_) => "a number",
            JsonValue::Str(_) => "a string",
            JsonValue::Arr(_) => "an array",
            JsonValue::Obj(_) => "an object",
        }
    }

    /// Renders the tree as compact JSON (deterministic; preserves object
    /// key order).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(raw) => out.push_str(raw),
            JsonValue::Str(s) => push_str(out, s),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    push_str(out, k);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

/// Parses one JSON document into a value tree.
///
/// # Errors
///
/// Returns `"<message> at byte <offset>"` on malformed input.
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(
            self.bytes.get(self.pos),
            Some(b' ' | b'\t' | b'\n' | b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            None => Err(format!("unexpected end of input at byte {}", self.pos)),
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let digits = |p: &mut Self| {
            let from = p.pos;
            while p.bytes.get(p.pos).is_some_and(u8::is_ascii_digit) {
                p.pos += 1;
            }
            p.pos > from
        };
        if !digits(self) {
            return Err(format!("malformed number at byte {start}"));
        }
        if self.bytes.get(self.pos) == Some(&b'.') {
            self.pos += 1;
            if !digits(self) {
                return Err(format!("malformed number at byte {start}"));
            }
        }
        if matches!(self.bytes.get(self.pos), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.bytes.get(self.pos), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits(self) {
                return Err(format!("malformed number at byte {start}"));
            }
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII")
            .to_string();
        Ok(JsonValue::Num(raw))
    }

    fn string(&mut self) -> Result<String, String> {
        debug_assert_eq!(self.bytes[self.pos], b'"');
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| {
                                    format!("malformed \\u escape at byte {}", self.pos)
                                })?;
                            // Surrogate pairs are not needed by any scenario
                            // document; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.pos += 1; // '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(format!("expected object key at byte {}", self.pos));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(format!("expected `:` at byte {}", self.pos));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value()?;
            if fields.iter().any(|(k, _)| *k == key) {
                return Err(format!("duplicate key {key:?} at byte {}", self.pos));
            }
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fmt::Write as _;

    #[test]
    fn parses_and_rerenders_compactly() {
        let doc = r#" { "a" : [ 1 , 2.5 , -3e2 ] , "b" : { "c" : null , "d" : true } , "e" : "x\ny" } "#;
        let v = parse(doc).unwrap();
        assert_eq!(
            v.render(),
            r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"x\ny"}"#
        );
        // Rendering is a fixed point: parse(render(v)) == v.
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn numbers_keep_their_raw_text() {
        let v = parse("18446744073709551615").unwrap();
        assert_eq!(v, JsonValue::Num("18446744073709551615".into()));
        assert_eq!(v.render(), "18446744073709551615");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\"1}", "{\"a\":1,}", "\"unterminated", "{} x", "1.", "-",
            "1e", "{'k':1}", "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} must be rejected");
        }
    }

    #[test]
    fn rejects_duplicate_keys() {
        let err = parse(r#"{"a":1,"a":2}"#).unwrap_err();
        assert!(err.contains("duplicate key"), "{err}");
    }

    #[test]
    fn get_walks_objects() {
        let v = parse(r#"{"a":{"b":7}}"#).unwrap();
        assert_eq!(v.get("a").and_then(|a| a.get("b")), Some(&JsonValue::Num("7".into())));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escapes_survive_round_trips() {
        let v = JsonValue::Str("quote \" slash \\ tab \t ctrl \u{1}".into());
        let rendered = v.render();
        tartan_telemetry::validate_json(&rendered).unwrap();
        assert_eq!(parse(&rendered).unwrap(), v);
        let mut n = String::new();
        let _ = write!(n, "{}", 0.25f64);
        assert_eq!(parse(&n).unwrap().render(), "0.25");
    }
}
