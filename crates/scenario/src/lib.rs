//! Declarative scenario layer for Tartan experiments.
//!
//! A *scenario* is a checked-in JSON document describing one experiment
//! campaign: which machine configurations, which software configurations,
//! which robots, at what scale, and how the sweep axes expand into an
//! ordered job list. The figure harnesses in `tartan-core` and the
//! `tartan_run` CLI both consume scenarios, so "what did this experiment
//! run?" has exactly one answer — the manifest — instead of being encoded
//! ad hoc in each harness.
//!
//! The crate is dependency-free beyond the workspace's own `tartan-sim`,
//! `tartan-robots`, and `tartan-telemetry` (for the JSON writer): the
//! environment is offline, so serialization is hand-rolled in
//! [`json`] with exact (raw-text) number round-trips.
//!
//! Pipeline:
//!
//! 1. [`ScenarioSpec::from_json`] parses + structurally validates (unknown
//!    fields, keyword spellings, schema version) with single-line,
//!    path-qualified [`ScenarioError`]s.
//! 2. [`ScenarioSpec::expand`] merges preset + override specs, takes the
//!    cartesian product of the sweep axes, resolves every variant into a
//!    validated `MachineConfig`/`SoftwareConfig`, and returns a [`Plan`]
//!    whose job order is deterministic.
//! 3. Callers run the [`Plan`]'s jobs (e.g. through `tartan-core`'s
//!    campaign engine) and label rows with the expansion's labels and the
//!    canonical [`ConfigId`].

#![warn(missing_docs)]

pub mod error;
pub mod expand;
pub mod id;
pub mod json;
pub mod key;
pub mod spec;

pub use error::ScenarioError;
pub use expand::{
    AxisSpec, GroupPlan, GroupSpec, Plan, PlannedJob, RobotsSpec, RunParams, ScenarioSpec,
    SweepOrder, VariantSpec,
};
pub use id::ConfigId;
pub use json::JsonValue;
pub use key::CACHE_KEY_VERSION;
pub use spec::{
    AdjustOp, CacheSpec, FaultSpec, FcpSpec, MachineSpec, ParamsSpec, ScaleAdjust, SoftwareSpec,
    SCALE_FIELDS, SCENARIO_SCHEMA_VERSION,
};
