//! Declarative scenario layer for Tartan experiments.
//!
//! A *scenario* is a checked-in JSON document describing one experiment
//! campaign: which machine configurations, which software configurations,
//! which robots, at what scale, and how the sweep axes expand into an
//! ordered job list. The figure harnesses in `tartan-core` and the
//! `tartan_run` CLI both consume scenarios, so "what did this experiment
//! run?" has exactly one answer — the manifest — instead of being encoded
//! ad hoc in each harness.
//!
//! The crate is dependency-free beyond the workspace's own `tartan-sim`,
//! `tartan-robots`, `tartan-telemetry` (coverage fingerprints), and
//! `tartan-oracle` (the [`synth`] corpus shrinker reuses its ddmin
//! loop): the environment is offline, so serialization is hand-rolled
//! in [`json`] with exact (raw-text) number round-trips.
//!
//! Pipeline:
//!
//! 1. [`ScenarioSpec::from_json`] parses + structurally validates (unknown
//!    fields, keyword spellings, schema version) with single-line,
//!    path-qualified [`ScenarioError`]s.
//! 2. [`ScenarioSpec::expand`] merges preset + override specs, takes the
//!    cartesian product of the sweep axes, resolves every variant into a
//!    validated `MachineConfig`/`SoftwareConfig`, and returns a [`Plan`]
//!    whose job order is deterministic.
//! 3. Callers run the [`Plan`]'s jobs (e.g. through `tartan-core`'s
//!    campaign engine) and label rows with the expansion's labels and the
//!    canonical [`ConfigId`].
//!
//! On top of the document pipeline sit the *synthesis* layers: a
//! compositional workload [`grammar`] (patterns with typed holes, plugged
//! and enumerated enumo-style) and the coverage-guided corpus curator in
//! [`synth`], which together drive the `tartan_gen` binary.

#![warn(missing_docs)]

pub mod error;
pub mod expand;
pub mod grammar;
pub mod id;
pub mod json;
pub mod key;
pub mod spec;
pub mod synth;

pub use error::ScenarioError;
pub use expand::{
    AxisSpec, GroupPlan, GroupSpec, Plan, PlannedJob, RobotsSpec, RunParams, ScenarioSpec,
    SweepOrder, VariantSpec,
};
pub use grammar::{Edit, Filling, Hole, Pattern};
pub use id::ConfigId;
pub use synth::{
    curate, shrink_spec, CorpusEntry, CorpusManifest, CoverageVector, Curated, Keeper,
    CORPUS_MANIFEST_VERSION,
};
pub use json::JsonValue;
pub use key::CACHE_KEY_VERSION;
pub use spec::{
    AdjustOp, CacheSpec, FaultSpec, FcpSpec, MachineSpec, ParamsSpec, ScaleAdjust, SoftwareSpec,
    SCALE_FIELDS, SCENARIO_SCHEMA_VERSION,
};
