//! A compositional workload grammar: scenario *patterns* with typed
//! holes, in the style of enumo's rule-synthesis workloads.
//!
//! A [`Pattern`] is a [`ScenarioSpec`] template plus an ordered list of
//! [`Hole`]s. Each hole names one degree of freedom — which robots run,
//! which machine geometry, whether FCP is on, how the scale is bent —
//! and carries a list of [`Filling`]s, each a label plus a bundle of
//! typed [`Edit`]s. [`Pattern::plug`] replaces (or appends) a hole's
//! filling list, so callers compose variations the way enumo programs
//! `plug` term sets into grammar metavariables.
//!
//! Instantiation takes the **cartesian product** of all filling lists:
//! the pattern describes `∏ |hole_i|` concrete scenarios. That space is
//! enumerable exhaustively ([`Pattern::enumerate_all`]) or sampled
//! deterministically with a seeded full-period walk
//! ([`Pattern::select`]): with `N` points and a stride coprime to `N`,
//! the walk visits distinct indices in a pseudo-random order that is a
//! pure function of the seed — the same seed and budget always yield
//! the same scenario list, independent of host or parallelism.
//!
//! Every instantiated spec is structurally valid by construction (the
//! default pattern's fillings only use schema keywords), carries a
//! unique `[A-Za-z0-9_-]` name derived from its filling labels, and
//! round-trips through `parse(render(spec))` like any hand-written
//! scenario; the property tests in `tests/roundtrip.rs` pin that for
//! a thousand enumerated points.

use crate::expand::{AxisSpec, GroupSpec, RobotsSpec, ScenarioSpec, VariantSpec};
use crate::spec::{AdjustOp, FaultSpec, FcpSpec, MachineSpec, ParamsSpec, ScaleAdjust, SoftwareSpec};
use tartan_robots::{NeuralExec, RobotKind};
use tartan_sim::PrefetcherKind;

// ------------------------------------------------------------------ Edits

/// One typed change a filling applies to the template.
// MachineSpec dwarfs the other payloads, but edits are cold pattern
// data (a pattern holds dozens at most) — boxing buys nothing here.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum Edit {
    /// Set the robot list of every group.
    Robots(RobotsSpec),
    /// Merge a partial machine spec over the scenario-wide base.
    Machine(MachineSpec),
    /// Merge a partial software spec over the scenario-wide base.
    Software(SoftwareSpec),
    /// Append a scale adjustment to `params.adjust`.
    Adjust(ScaleAdjust),
    /// Append a sweep axis to every group.
    Sweep(AxisSpec),
    /// Append a sweep axis to one group (by index; out-of-range is a
    /// no-op). For multi-group templates whose groups sweep different
    /// dimensions, e.g. the ablation studies.
    SweepAt(usize, AxisSpec),
    /// Set `params.steps`.
    Steps(u64),
}

impl Edit {
    fn apply(&self, spec: &mut ScenarioSpec) {
        match self {
            Edit::Robots(r) => {
                for g in &mut spec.groups {
                    g.robots = r.clone();
                }
            }
            Edit::Machine(m) => spec.machine = spec.machine.merged(m),
            Edit::Software(s) => spec.software = spec.software.merged(s),
            Edit::Adjust(a) => spec.params.adjust.push(a.clone()),
            Edit::Sweep(axis) => {
                for g in &mut spec.groups {
                    g.axes.push(axis.clone());
                }
            }
            Edit::SweepAt(i, axis) => {
                if let Some(g) = spec.groups.get_mut(*i) {
                    g.axes.push(axis.clone());
                }
            }
            Edit::Steps(n) => spec.params.steps = Some(*n),
        }
    }
}

// --------------------------------------------------------------- Fillings

/// One way to fill a hole: a label (becomes part of the scenario name)
/// plus the edits it applies.
#[derive(Debug, Clone, PartialEq)]
pub struct Filling {
    /// Label fragment; sanitized into `[A-Za-z0-9_-]` for naming.
    pub label: String,
    /// The edits, applied in order.
    pub edits: Vec<Edit>,
}

impl Filling {
    /// A filling with a single edit.
    pub fn new(label: &str, edit: Edit) -> Filling {
        Filling {
            label: label.to_string(),
            edits: vec![edit],
        }
    }

    /// A label-only filling that changes nothing (an "off" option).
    pub fn noop(label: &str) -> Filling {
        Filling {
            label: label.to_string(),
            edits: Vec::new(),
        }
    }
}

/// One degree of freedom: a named hole and its candidate fillings.
#[derive(Debug, Clone, PartialEq)]
pub struct Hole {
    /// Hole name, used by [`Pattern::plug`].
    pub name: String,
    /// The candidate fillings, in enumeration order.
    pub fillings: Vec<Filling>,
}

// ---------------------------------------------------------------- Pattern

/// A scenario template with typed holes; see the module docs.
#[derive(Debug, Clone, PartialEq)]
pub struct Pattern {
    /// The base spec every instantiation starts from.
    pub template: ScenarioSpec,
    /// The holes, in application (and mixed-radix digit) order: the
    /// first hole is the most significant digit of the point index.
    pub holes: Vec<Hole>,
}

impl Pattern {
    /// A pattern over a template with no holes (a single point).
    pub fn new(template: ScenarioSpec) -> Pattern {
        Pattern {
            template,
            holes: Vec::new(),
        }
    }

    /// Replaces the fillings of hole `name`, or appends a new hole when
    /// no hole has that name yet. Empty filling lists are ignored (a
    /// hole must keep at least one option).
    pub fn plug(mut self, name: &str, fillings: Vec<Filling>) -> Pattern {
        if fillings.is_empty() {
            return self;
        }
        match self.holes.iter_mut().find(|h| h.name == name) {
            Some(hole) => hole.fillings = fillings,
            None => self.holes.push(Hole {
                name: name.to_string(),
                fillings,
            }),
        }
        self
    }

    /// Number of points in the pattern's cartesian space.
    pub fn space(&self) -> u64 {
        self.holes
            .iter()
            .map(|h| h.fillings.len() as u64)
            .product()
    }

    /// Decodes point `index` (mixed radix, first hole most significant)
    /// into one digit per hole.
    fn decode(&self, index: u64) -> Vec<usize> {
        let mut digits = vec![0usize; self.holes.len()];
        let mut rest = index;
        for (slot, hole) in digits.iter_mut().zip(&self.holes).rev() {
            let radix = hole.fillings.len() as u64;
            *slot = (rest % radix) as usize;
            rest /= radix;
        }
        digits
    }

    /// Builds the concrete scenario at one point of the space. The name
    /// is `<template name>-<labels>` with every label sanitized to the
    /// schema's `[A-Za-z0-9_-]` alphabet; distinct points yield
    /// distinct names as long as each hole's labels are distinct.
    pub fn instantiate(&self, digits: &[usize]) -> ScenarioSpec {
        assert_eq!(digits.len(), self.holes.len(), "one digit per hole");
        let mut spec = self.template.clone();
        let mut name = spec.name.clone();
        for (hole, &d) in self.holes.iter().zip(digits) {
            let filling = &hole.fillings[d];
            for edit in &filling.edits {
                edit.apply(&mut spec);
            }
            name.push('-');
            name.extend(filling.label.chars().map(|c| {
                if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                    c
                } else {
                    '-'
                }
            }));
        }
        spec.name = name;
        spec
    }

    /// Enumerates the entire space in mixed-radix order.
    pub fn enumerate_all(&self) -> Vec<ScenarioSpec> {
        (0..self.space())
            .map(|i| self.instantiate(&self.decode(i)))
            .collect()
    }

    /// Deterministically selects `budget` *distinct* points of the
    /// space, seeded. Uses a full-period walk: `index_i = (offset +
    /// i·stride) mod N` with `gcd(stride, N) = 1`, so the first `N`
    /// indices are a permutation of the space — no rejection sampling,
    /// no duplicates, and the result is a pure function of
    /// `(pattern, seed, budget)`.
    pub fn select(&self, seed: u64, budget: usize) -> Vec<ScenarioSpec> {
        let n = self.space();
        if n == 0 {
            return Vec::new();
        }
        let count = (budget as u64).min(n);
        let mut rng = SplitMix64::new(seed);
        let offset = rng.next() % n;
        let stride = coprime_stride(rng.next(), n);
        (0..count)
            .map(|i| {
                let idx = (offset + (i % n).wrapping_mul(stride)) % n;
                self.instantiate(&self.decode(idx))
            })
            .collect()
    }

    /// The default Tartan pattern: one group, holes for robots, machine
    /// geometry, prefetcher, FCP, software/NPU stack, fault plans,
    /// scale bending, a sweep-axis hole, and pipeline depth. The space
    /// is a few tens of thousands of points, all structurally valid.
    ///
    /// Scale edits are multiply-only so the corpus shrinker's
    /// "smaller scales" pass (halving multipliers toward 1) applies to
    /// every generated spec, and probes stay cheap.
    pub fn tartan_default() -> Pattern {
        let template = ScenarioSpec {
            name: "gen".into(),
            title: Some("grammar-generated scenario".into()),
            params: ParamsSpec::default(),
            machine: MachineSpec::default(),
            software: SoftwareSpec::default(),
            groups: vec![GroupSpec::default()],
        };
        let robot = |k: RobotKind| {
            Filling::new(
                &k.name().to_ascii_lowercase(),
                Edit::Robots(RobotsSpec::List(vec![k])),
            )
        };
        let machine_preset = |label: &str, preset: &str| {
            Filling::new(
                label,
                Edit::Machine(MachineSpec {
                    preset: Some(preset.to_string()),
                    ..MachineSpec::default()
                }),
            )
        };
        let prefetcher = |label: &str, kind: PrefetcherKind| {
            Filling::new(
                label,
                Edit::Machine(MachineSpec {
                    prefetcher: Some(kind),
                    ..MachineSpec::default()
                }),
            )
        };
        let software_preset = |label: &str, preset: &str| {
            Filling::new(
                label,
                Edit::Software(SoftwareSpec {
                    preset: Some(preset.to_string()),
                    ..SoftwareSpec::default()
                }),
            )
        };
        let mul = |label: &str, field: &str, by: u64| {
            Filling::new(
                label,
                Edit::Adjust(ScaleAdjust {
                    field: field.to_string(),
                    op: AdjustOp::Mul(by),
                }),
            )
        };

        Pattern::new(template)
            .plug(
                "robots",
                RobotKind::all()
                    .iter()
                    .map(|&k| robot(k))
                    .chain([Filling::new(
                        "nav2",
                        Edit::Robots(RobotsSpec::List(vec![
                            RobotKind::MoveBot,
                            RobotKind::HomeBot,
                        ])),
                    )])
                    .collect(),
            )
            .plug(
                "machine",
                vec![
                    machine_preset("ub", "upgraded_baseline"),
                    machine_preset("legacy", "legacy_baseline"),
                    machine_preset("tartan", "tartan"),
                ],
            )
            .plug(
                "prefetch",
                vec![
                    Filling::noop("pfkeep"),
                    prefetcher("pfnone", PrefetcherKind::None),
                    prefetcher("pfanl", PrefetcherKind::Anl),
                    prefetcher("pfbingo", PrefetcherKind::Bingo),
                ],
            )
            .plug(
                "fcp",
                vec![
                    Filling::new("fcpoff", Edit::Machine(MachineSpec {
                        fcp: Some(None),
                        ..MachineSpec::default()
                    })),
                    Filling::new("fcpon", Edit::Machine(MachineSpec {
                        fcp: Some(Some(FcpSpec::default())),
                        ..MachineSpec::default()
                    })),
                    Filling::new("fcp1k", Edit::Machine(MachineSpec {
                        fcp: Some(Some(FcpSpec {
                            region_bytes: Some(1024),
                            xor_bits: Some(3),
                            manipulation: None,
                        })),
                        ..MachineSpec::default()
                    })),
                ],
            )
            .plug(
                "software",
                vec![
                    software_preset("swleg", "legacy"),
                    software_preset("swopt", "optimized"),
                    software_preset("swapx", "approximable"),
                    Filling {
                        label: "swsoftnn".into(),
                        edits: vec![
                            Edit::Software(SoftwareSpec {
                                preset: Some("approximable".to_string()),
                                neural: Some(NeuralExec::Software),
                                ..SoftwareSpec::default()
                            }),
                        ],
                    },
                ],
            )
            .plug(
                "faults",
                vec![
                    Filling::noop("clean"),
                    Filling::new("faulty", Edit::Machine(MachineSpec {
                        fault_plan: Some(Some(FaultSpec {
                            seed: Some(7),
                            accel_error_rate: Some(0.05),
                            accel_error_magnitude: None,
                            accel_bitflip_rate: Some(0.01),
                            accel_fail_rate: None,
                            mem_spike_rate: None,
                            mem_spike_cycles: None,
                        })),
                        ..MachineSpec::default()
                    })),
                ],
            )
            .plug(
                "scale",
                vec![
                    Filling::noop("s1"),
                    mul("smap4", "map_points", 4),
                    mul("srays8", "rays", 8),
                    Filling {
                        label: "sgrid2x2".into(),
                        edits: vec![
                            Edit::Adjust(ScaleAdjust {
                                field: "grid2".into(),
                                op: AdjustOp::Mul(2),
                            }),
                            Edit::Adjust(ScaleAdjust {
                                field: "delibot_grid".into(),
                                op: AdjustOp::Mul(2),
                            }),
                        ],
                    },
                ],
            )
            .plug(
                "sweep",
                vec![
                    Filling::noop("flat"),
                    Filling::new(
                        "pfsweep",
                        Edit::Sweep(AxisSpec {
                            name: Some("prefetcher".into()),
                            variants: vec![
                                VariantSpec {
                                    label: "base".into(),
                                    ..VariantSpec::default()
                                },
                                VariantSpec {
                                    label: "+anl".into(),
                                    machine: MachineSpec {
                                        prefetcher: Some(PrefetcherKind::Anl),
                                        ..MachineSpec::default()
                                    },
                                    ..VariantSpec::default()
                                },
                            ],
                        }),
                    ),
                    Filling {
                        label: "isasweep".into(),
                        edits: vec![Edit::Sweep(AxisSpec {
                            name: Some("vec".into()),
                            variants: vec![
                                VariantSpec {
                                    label: "scalar".into(),
                                    software: SoftwareSpec {
                                        vec_method: Some(tartan_robots::VecMethod::Scalar),
                                        ..SoftwareSpec::default()
                                    },
                                    ..VariantSpec::default()
                                },
                                VariantSpec {
                                    label: "ovec".into(),
                                    software: SoftwareSpec {
                                        vec_method: Some(tartan_robots::VecMethod::Ovec),
                                        ..SoftwareSpec::default()
                                    },
                                    ..VariantSpec::default()
                                },
                            ],
                        })],
                    },
                ],
            )
            .plug(
                "steps",
                vec![
                    Filling::new("t1", Edit::Steps(1)),
                    Filling::new("t2", Edit::Steps(2)),
                ],
            )
    }
}

// -------------------------------------------------------------- selection

/// splitmix64: the seed expander behind the selection walk. Chosen over
/// xorshift because it is well-defined at seed 0 and two outputs are
/// enough here.
struct SplitMix64(u64);

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64(seed)
    }

    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Derives a stride in `[1, n)` coprime to `n` from raw random bits, by
/// linear probing from the candidate — terminates because 1 is coprime
/// to everything.
fn coprime_stride(raw: u64, n: u64) -> u64 {
    if n <= 1 {
        return 1;
    }
    let mut stride = 1 + raw % (n - 1);
    while gcd(stride, n) != 1 {
        stride += 1;
        if stride >= n {
            stride = 1;
        }
    }
    stride
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn plug_replaces_existing_holes_and_appends_new_ones() {
        let p = Pattern::tartan_default();
        let holes = p.holes.len();
        let p = p.plug("robots", vec![Filling::noop("any")]);
        assert_eq!(p.holes.len(), holes, "plug on a known hole replaces");
        assert_eq!(p.holes[0].fillings.len(), 1);
        let p = p.plug("extra", vec![Filling::noop("x"), Filling::noop("y")]);
        assert_eq!(p.holes.len(), holes + 1, "plug on a new name appends");
        assert_eq!(p.space() % 2, 0);
    }

    #[test]
    fn the_default_space_is_thousands_of_points_with_unique_names() {
        let p = Pattern::tartan_default();
        assert!(
            p.space() >= 2000,
            "default pattern space too small: {}",
            p.space()
        );
        // Distinct points → distinct names (sampled; the full space is
        // covered transitively by per-hole label uniqueness).
        let specs = p.select(1, 512);
        let names: HashSet<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names.len(), specs.len(), "duplicate scenario names");
        for s in &specs {
            assert!(
                s.name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-'),
                "bad name {:?}",
                s.name
            );
        }
    }

    #[test]
    fn every_selected_spec_parses_expands_and_round_trips() {
        for spec in Pattern::tartan_default().select(7, 64) {
            let json = spec.to_json();
            let reparsed = ScenarioSpec::from_json(&json).unwrap_or_else(|e| {
                panic!("{}: generated spec does not re-parse: {e}", spec.name)
            });
            assert_eq!(reparsed, spec, "{}: parse(render) diverged", spec.name);
            let plan = spec
                .expand()
                .unwrap_or_else(|e| panic!("{}: does not expand: {e}", spec.name));
            assert!(!plan.jobs.is_empty());
        }
    }

    #[test]
    fn selection_is_deterministic_and_duplicate_free() {
        let p = Pattern::tartan_default();
        let a = p.select(42, 300);
        let b = p.select(42, 300);
        assert_eq!(a, b, "same seed must give the same selection");
        let idx: HashSet<String> = a.iter().map(|s| s.name.clone()).collect();
        assert_eq!(idx.len(), a.len(), "full-period walk repeated a point");
        let c = p.select(43, 300);
        assert_ne!(
            a.iter().map(|s| &s.name).collect::<Vec<_>>(),
            c.iter().map(|s| &s.name).collect::<Vec<_>>(),
            "different seeds should explore differently"
        );
    }

    #[test]
    fn selection_covers_the_space_when_budget_exceeds_it() {
        // A small pattern: budget > space must yield exactly the space,
        // every point once.
        let p = Pattern::tartan_default()
            .plug("robots", vec![Filling::noop("a"), Filling::noop("b")])
            .plug("machine", vec![Filling::noop("m")])
            .plug("prefetch", vec![Filling::noop("p")])
            .plug("fcp", vec![Filling::noop("f")])
            .plug("software", vec![Filling::noop("s")])
            .plug("faults", vec![Filling::noop("c")])
            .plug("scale", vec![Filling::noop("1"), Filling::noop("2")])
            .plug("sweep", vec![Filling::noop("w")])
            .plug("steps", vec![Filling::noop("t")]);
        assert_eq!(p.space(), 4);
        let all = p.select(9, 1000);
        assert_eq!(all.len(), 4);
        let names: HashSet<String> = all.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn coprime_stride_is_always_coprime() {
        for n in 1..200u64 {
            for raw in [0, 1, 7, n, n * 3 + 1, u64::MAX] {
                let s = coprime_stride(raw, n);
                assert!(n <= 1 || s < n);
                assert_eq!(gcd(s, n.max(1)), 1, "stride {s} not coprime to {n}");
            }
        }
    }
}
