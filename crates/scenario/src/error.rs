//! Scenario errors: one offending field path plus one reason, always
//! rendered as a single line.

/// A rejected scenario: which field is wrong and why.
///
/// Rendered as one line, `<path>: <reason>` (e.g.
/// `groups[2].machine.l2.ways: must be at least 1`), so CLIs and CI can
/// surface it verbatim. The path is relative to the scenario document
/// root; a parse error before any field exists uses the path `$`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// Dotted path of the offending field (array steps as `[i]`).
    pub path: String,
    /// Why the value is unusable.
    pub reason: String,
}

impl ScenarioError {
    /// Builds an error for one field.
    pub fn new(path: impl Into<String>, reason: impl Into<String>) -> Self {
        ScenarioError {
            path: path.into(),
            reason: reason.into(),
        }
    }

    /// Builds a document-level error (JSON syntax, wrong root type, …).
    pub fn document(reason: impl Into<String>) -> Self {
        Self::new("$", reason)
    }
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.reason)
    }
}

impl std::error::Error for ScenarioError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_as_one_line() {
        let e = ScenarioError::new("groups[2].machine.l2.ways", "must be at least 1");
        assert_eq!(e.to_string(), "groups[2].machine.l2.ways: must be at least 1");
        assert!(!e.to_string().contains('\n'));
        assert_eq!(ScenarioError::document("not JSON").to_string(), "$: not JSON");
    }
}
