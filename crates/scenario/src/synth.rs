//! Coverage-guided scenario synthesis: curate a grammar-enumerated
//! stream into a small corpus of behaviorally distinct scenarios, and
//! shrink every keeper to a minimal spec with the same coverage.
//!
//! The pipeline (driven by the `tartan_gen` binary):
//!
//! 1. **Enumerate** — [`crate::grammar::Pattern::select`] produces a
//!    seeded, duplicate-free stream of structurally valid specs.
//! 2. **Probe** — each spec is run at the tiny probe scale and reduced
//!    to a [`CoverageVector`]: one sorted entry per `(robot, regime)`
//!    pair, where the regime is
//!    [`tartan_telemetry::CoverageFingerprint`]'s bucketed summary of
//!    the run. Probing is the caller's job (it parallelizes it);
//!    everything in this module is pure and sequential.
//! 3. **Curate** — [`curate`] keeps a spec only when its vector
//!    contains an entry no earlier keeper produced (greedy set-cover
//!    order, AFL-style "new coverage or it didn't happen").
//! 4. **Shrink** — [`shrink_spec`] minimizes each keeper with the
//!    oracle's ddmin loop ([`tartan_oracle::greedy_min_subset`]):
//!    fewer groups/axes/variants/robots/adjusts, then smaller scale
//!    multipliers and fewer steps — accepting a candidate only when it
//!    still parses from its own rendered JSON, still expands, and
//!    probes to the *identical* coverage vector.
//!
//! The result set plus generation statistics serialize as the
//! `corpus_manifest.json` schema ([`CORPUS_MANIFEST_VERSION`]).

use std::collections::BTreeSet;

use crate::expand::{RobotsSpec, ScenarioSpec};
use crate::json::{parse, JsonValue};
use crate::spec::AdjustOp;
use tartan_oracle::greedy_min_subset;
use tartan_telemetry::{CoverageFingerprint, RobotRunStats};

/// Version of the `corpus_manifest.json` schema.
///
/// CI fails if this changes without a matching entry in `SCHEMA.md`.
pub const CORPUS_MANIFEST_VERSION: u32 = 1;

// -------------------------------------------------------- CoverageVector

/// The behavioral summary of one scenario: a sorted, deduplicated set
/// of `"<robot>|<fingerprint key>"` entries, one per planned job.
///
/// Two scenarios with equal vectors landed every robot in the same
/// regimes — the curator treats the later one as redundant unless it
/// still contributes an unseen *entry*.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct CoverageVector(Vec<String>);

impl CoverageVector {
    /// Builds the vector from one run per planned job.
    pub fn from_runs(runs: &[RobotRunStats]) -> CoverageVector {
        let mut entries: Vec<String> = runs
            .iter()
            .map(|r| format!("{}|{}", r.robot, CoverageFingerprint::from_stats(r).key()))
            .collect();
        entries.sort();
        entries.dedup();
        CoverageVector(entries)
    }

    /// Builds a vector from pre-formatted entries (manifest reload).
    pub fn from_entries(mut entries: Vec<String>) -> CoverageVector {
        entries.sort();
        entries.dedup();
        CoverageVector(entries)
    }

    /// The sorted entries.
    pub fn entries(&self) -> &[String] {
        &self.0
    }
}

// ---------------------------------------------------------------- curate

/// One curated scenario: the (not yet shrunk) spec, its coverage, and
/// how many of its entries were new when it was admitted.
#[derive(Debug, Clone, PartialEq)]
pub struct Keeper {
    /// The kept spec.
    pub spec: ScenarioSpec,
    /// Its full coverage vector (the shrink target).
    pub coverage: CoverageVector,
    /// Entries unseen by all earlier keepers at admission time.
    pub new_entries: usize,
}

/// The curator's output: keepers in admission order plus the counts the
/// manifest records.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Curated {
    /// Admitted scenarios, in probe order.
    pub keepers: Vec<Keeper>,
    /// Specs whose probe failed (did not expand or run).
    pub invalid: usize,
    /// Specs dropped because every coverage entry was already seen.
    pub duplicate_coverage: usize,
}

/// Greedy novelty filter over an ordered probe stream: a spec is kept
/// iff its vector contains at least one entry no earlier spec produced.
/// Deterministic given the input order (which the enumeration fixes).
pub fn curate(probed: Vec<(ScenarioSpec, Option<CoverageVector>)>) -> Curated {
    let mut out = Curated::default();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (spec, cov) in probed {
        let Some(coverage) = cov else {
            out.invalid += 1;
            continue;
        };
        let new_entries = coverage
            .entries()
            .iter()
            .filter(|e| !seen.contains(*e))
            .count();
        if new_entries == 0 {
            out.duplicate_coverage += 1;
            continue;
        }
        seen.extend(coverage.entries().iter().cloned());
        out.keepers.push(Keeper {
            spec,
            coverage,
            new_entries,
        });
    }
    out
}

// ---------------------------------------------------------------- shrink

/// Minimizes `spec` while its probe stays exactly `target`.
///
/// Structural passes use the oracle's ddmin subset minimizer (groups,
/// per-group robots/prelude/axes, per-axis variants, scale adjusts);
/// value passes halve `mul` scale adjustments toward 1 and reduce
/// `steps`. All passes repeat to a fixpoint, so the function is
/// **idempotent**: shrinking a shrunk spec changes nothing. Returns the
/// minimized spec and the number of probe invocations spent.
///
/// A candidate is accepted only when its rendered JSON re-parses (which
/// re-checks the whole schema — e.g. an axis needs a variant, a group
/// needs a robot), it expands, and `probe` returns `Some(target)`.
/// Callers pass the unshrunk keeper, whose probe already matched, so
/// the loop can only preserve validity.
pub fn shrink_spec<P>(
    spec: &ScenarioSpec,
    target: &CoverageVector,
    probe: &mut P,
) -> (ScenarioSpec, u64)
where
    P: FnMut(&ScenarioSpec) -> Option<CoverageVector>,
{
    let mut probes: u64 = 0;
    let mut keeps = |candidate: &ScenarioSpec| -> bool {
        let Ok(reparsed) = ScenarioSpec::from_json(&candidate.to_json()) else {
            return false;
        };
        if reparsed.expand().is_err() {
            return false;
        }
        probes += 1;
        probe(&reparsed).as_ref() == Some(target)
    };

    let mut best = spec.clone();
    loop {
        let before = best.clone();

        // Fewer groups.
        best.groups = greedy_min_subset(&best.groups, |groups| {
            let mut c = best.clone();
            c.groups = groups.to_vec();
            keeps(&c)
        });

        for gi in 0..best.groups.len() {
            // Fewer robots: minimize the resolved list, adopting the
            // explicit-list form only when it actually got smaller (so
            // `"all"` stays `"all"` when every robot matters).
            let resolved = best.groups[gi].robots.resolve();
            let min_robots = greedy_min_subset(&resolved, |robots| {
                if robots.is_empty() {
                    return false;
                }
                let mut c = best.clone();
                c.groups[gi].robots = RobotsSpec::List(robots.to_vec());
                keeps(&c)
            });
            if min_robots.len() < resolved.len() {
                best.groups[gi].robots = RobotsSpec::List(min_robots);
            }

            // Fewer prelude variants and fewer axes.
            let prelude = best.groups[gi].prelude.clone();
            best.groups[gi].prelude = greedy_min_subset(&prelude, |p| {
                let mut c = best.clone();
                c.groups[gi].prelude = p.to_vec();
                keeps(&c)
            });
            let axes = best.groups[gi].axes.clone();
            best.groups[gi].axes = greedy_min_subset(&axes, |a| {
                let mut c = best.clone();
                c.groups[gi].axes = a.to_vec();
                keeps(&c)
            });

            // Fewer variants per surviving axis (the parse check rejects
            // an emptied axis, so each keeps at least one variant).
            for ai in 0..best.groups[gi].axes.len() {
                let variants = best.groups[gi].axes[ai].variants.clone();
                best.groups[gi].axes[ai].variants = greedy_min_subset(&variants, |vs| {
                    let mut c = best.clone();
                    c.groups[gi].axes[ai].variants = vs.to_vec();
                    keeps(&c)
                });
            }
        }

        // Fewer scale adjustments.
        let adjust = best.params.adjust.clone();
        best.params.adjust = greedy_min_subset(&adjust, |a| {
            let mut c = best.clone();
            c.params.adjust = a.to_vec();
            keeps(&c)
        });

        // Smaller scales: halve surviving multipliers toward 1.
        for i in 0..best.params.adjust.len() {
            while let AdjustOp::Mul(n) = best.params.adjust[i].op {
                if n <= 1 {
                    break;
                }
                let mut c = best.clone();
                c.params.adjust[i].op = AdjustOp::Mul(n / 2);
                if keeps(&c) {
                    best = c;
                } else {
                    break;
                }
            }
        }

        // Fewer steps.
        while let Some(n) = best.params.steps {
            if n <= 1 {
                break;
            }
            let mut c = best.clone();
            c.params.steps = Some(n - 1);
            if keeps(&c) {
                best = c;
            } else {
                break;
            }
        }

        if best == before {
            break;
        }
    }
    (best, probes)
}

// -------------------------------------------------------------- manifest

/// One corpus scenario as the manifest records it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusEntry {
    /// Scenario name (equals the spec's `name`).
    pub name: String,
    /// File name inside the corpus directory (`<name>.json`).
    pub file: String,
    /// Number of jobs the spec expands to.
    pub jobs: u64,
    /// The coverage vector's entries, sorted.
    pub coverage: Vec<String>,
}

/// The generation record written next to the corpus files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusManifest {
    /// Selection seed.
    pub seed: u64,
    /// Requested enumeration budget.
    pub budget: u64,
    /// Size of the pattern's full cartesian space.
    pub space: u64,
    /// Specs actually enumerated (`min(budget, space)`).
    pub enumerated: u64,
    /// Specs whose probe failed.
    pub invalid: u64,
    /// Specs admitted to the corpus.
    pub kept: u64,
    /// Specs dropped for contributing no unseen coverage entry.
    pub duplicate_coverage: u64,
    /// Probe invocations spent by the shrinker, summed over keepers.
    pub shrink_probes: u64,
    /// The corpus scenarios, in admission order.
    pub entries: Vec<CorpusEntry>,
}

impl CorpusManifest {
    /// Renders the manifest (compact JSON, trailing newline).
    pub fn to_json(&self) -> String {
        let num = |n: u64| JsonValue::Num(n.to_string());
        let scenarios: Vec<JsonValue> = self
            .entries
            .iter()
            .map(|e| {
                JsonValue::Obj(vec![
                    ("name".into(), JsonValue::Str(e.name.clone())),
                    ("file".into(), JsonValue::Str(e.file.clone())),
                    ("jobs".into(), num(e.jobs)),
                    (
                        "coverage".into(),
                        JsonValue::Arr(
                            e.coverage.iter().cloned().map(JsonValue::Str).collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let mut text = JsonValue::Obj(vec![
            (
                "corpus_schema_version".into(),
                num(CORPUS_MANIFEST_VERSION as u64),
            ),
            ("generator".into(), JsonValue::Str("tartan_gen".into())),
            ("seed".into(), num(self.seed)),
            ("budget".into(), num(self.budget)),
            ("space".into(), num(self.space)),
            ("enumerated".into(), num(self.enumerated)),
            ("invalid".into(), num(self.invalid)),
            ("kept".into(), num(self.kept)),
            ("duplicate_coverage".into(), num(self.duplicate_coverage)),
            ("shrink_probes".into(), num(self.shrink_probes)),
            ("scenarios".into(), JsonValue::Arr(scenarios)),
        ])
        .render();
        text.push('\n');
        text
    }

    /// Parses and validates a manifest document. Strict: unknown or
    /// missing fields, wrong types, and version mismatches all error
    /// with a single-line message naming the field.
    pub fn from_json(text: &str) -> Result<CorpusManifest, String> {
        let v = parse(text)?;
        let JsonValue::Obj(fields) = &v else {
            return Err("corpus manifest must be a JSON object".into());
        };
        let mut m = CorpusManifest {
            seed: 0,
            budget: 0,
            space: 0,
            enumerated: 0,
            invalid: 0,
            kept: 0,
            duplicate_coverage: 0,
            shrink_probes: 0,
            entries: Vec::new(),
        };
        let mut version: Option<u64> = None;
        let mut saw_scenarios = false;
        let uint = |v: &JsonValue, key: &str| -> Result<u64, String> {
            match v {
                JsonValue::Num(raw) => raw
                    .parse::<u64>()
                    .map_err(|_| format!("{key}: expected an unsigned integer, got {raw}")),
                other => Err(format!("{key}: expected a number, got {}", other.kind())),
            }
        };
        for (key, value) in fields {
            match key.as_str() {
                "corpus_schema_version" => version = Some(uint(value, key)?),
                "generator" => {
                    let JsonValue::Str(s) = value else {
                        return Err(format!("generator: expected a string, got {}", value.kind()));
                    };
                    if s != "tartan_gen" {
                        return Err(format!("generator: expected \"tartan_gen\", got {s:?}"));
                    }
                }
                "seed" => m.seed = uint(value, key)?,
                "budget" => m.budget = uint(value, key)?,
                "space" => m.space = uint(value, key)?,
                "enumerated" => m.enumerated = uint(value, key)?,
                "invalid" => m.invalid = uint(value, key)?,
                "kept" => m.kept = uint(value, key)?,
                "duplicate_coverage" => m.duplicate_coverage = uint(value, key)?,
                "shrink_probes" => m.shrink_probes = uint(value, key)?,
                "scenarios" => {
                    saw_scenarios = true;
                    let JsonValue::Arr(items) = value else {
                        return Err(format!("scenarios: expected an array, got {}", value.kind()));
                    };
                    for (i, item) in items.iter().enumerate() {
                        m.entries.push(parse_entry(item, i)?);
                    }
                }
                other => return Err(format!("{other}: unknown corpus manifest field")),
            }
        }
        match version {
            None => return Err("corpus_schema_version: required field is missing".into()),
            Some(v) if v != CORPUS_MANIFEST_VERSION as u64 => {
                return Err(format!(
                    "corpus_schema_version: unsupported version {v} (this build reads version {CORPUS_MANIFEST_VERSION})"
                ))
            }
            Some(_) => {}
        }
        if !saw_scenarios {
            return Err("scenarios: required field is missing".into());
        }
        if m.kept != m.entries.len() as u64 {
            return Err(format!(
                "kept: {} does not match the {} scenarios listed",
                m.kept,
                m.entries.len()
            ));
        }
        Ok(m)
    }
}

fn parse_entry(v: &JsonValue, i: usize) -> Result<CorpusEntry, String> {
    let JsonValue::Obj(fields) = v else {
        return Err(format!("scenarios[{i}]: expected an object, got {}", v.kind()));
    };
    let mut name = None;
    let mut file = None;
    let mut jobs = None;
    let mut coverage = None;
    for (key, value) in fields {
        match key.as_str() {
            "name" => match value {
                JsonValue::Str(s) => name = Some(s.clone()),
                other => {
                    return Err(format!(
                        "scenarios[{i}].name: expected a string, got {}",
                        other.kind()
                    ))
                }
            },
            "file" => match value {
                JsonValue::Str(s) => file = Some(s.clone()),
                other => {
                    return Err(format!(
                        "scenarios[{i}].file: expected a string, got {}",
                        other.kind()
                    ))
                }
            },
            "jobs" => match value {
                JsonValue::Num(raw) => {
                    jobs = Some(raw.parse::<u64>().map_err(|_| {
                        format!("scenarios[{i}].jobs: expected an unsigned integer, got {raw}")
                    })?)
                }
                other => {
                    return Err(format!(
                        "scenarios[{i}].jobs: expected a number, got {}",
                        other.kind()
                    ))
                }
            },
            "coverage" => match value {
                JsonValue::Arr(items) => {
                    let mut entries = Vec::with_capacity(items.len());
                    for (j, item) in items.iter().enumerate() {
                        match item {
                            JsonValue::Str(s) => entries.push(s.clone()),
                            other => {
                                return Err(format!(
                                    "scenarios[{i}].coverage[{j}]: expected a string, got {}",
                                    other.kind()
                                ))
                            }
                        }
                    }
                    coverage = Some(entries);
                }
                other => {
                    return Err(format!(
                        "scenarios[{i}].coverage: expected an array, got {}",
                        other.kind()
                    ))
                }
            },
            other => return Err(format!("scenarios[{i}].{other}: unknown field")),
        }
    }
    Ok(CorpusEntry {
        name: name.ok_or(format!("scenarios[{i}].name: required field is missing"))?,
        file: file.ok_or(format!("scenarios[{i}].file: required field is missing"))?,
        jobs: jobs.ok_or(format!("scenarios[{i}].jobs: required field is missing"))?,
        coverage: coverage
            .ok_or(format!("scenarios[{i}].coverage: required field is missing"))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::Pattern;

    /// A cheap structural stand-in for the real probe: the coverage is
    /// derived from the expanded plan (robot names × config ids), which
    /// reacts to the same spec features the shrinker edits.
    fn fake_probe(spec: &ScenarioSpec) -> Option<CoverageVector> {
        let plan = spec.expand().ok()?;
        let steps = spec.params.steps.unwrap_or(1).min(2);
        let entries = plan
            .jobs
            .iter()
            .map(|j| format!("{}|{}|t{}", j.robot.name(), j.config, steps))
            .collect();
        Some(CoverageVector::from_entries(entries))
    }

    fn specs(n: usize) -> Vec<ScenarioSpec> {
        Pattern::tartan_default().select(11, n)
    }

    #[test]
    fn curate_keeps_novel_vectors_and_drops_covered_ones() {
        let probed: Vec<_> = specs(60)
            .into_iter()
            .map(|s| {
                let cov = fake_probe(&s);
                (s, cov)
            })
            .collect();
        let total = probed.len();
        let curated = curate(probed);
        assert!(curated.invalid == 0, "grammar specs must all probe");
        assert!(!curated.keepers.is_empty());
        assert!(
            curated.keepers.len() < total,
            "some specs must be redundant at this budget"
        );
        assert_eq!(
            curated.keepers.len() + curated.duplicate_coverage,
            total
        );
        // Every keeper contributed something new.
        assert!(curated.keepers.iter().all(|k| k.new_entries > 0));
        // Re-curating only the keepers' vectors keeps all of them (each
        // was admitted for an entry no earlier keeper had).
        let again = curate(
            curated
                .keepers
                .iter()
                .map(|k| (k.spec.clone(), Some(k.coverage.clone())))
                .collect(),
        );
        assert_eq!(again.keepers.len(), curated.keepers.len());
    }

    #[test]
    fn shrink_preserves_coverage_and_is_idempotent() {
        let mut total_probes = 0;
        for spec in specs(12) {
            let target = fake_probe(&spec).unwrap();
            let mut probe = fake_probe;
            let (small, probes) = shrink_spec(&spec, &target, &mut probe);
            total_probes += probes;
            assert_eq!(
                fake_probe(&small),
                Some(target.clone()),
                "{}: shrink changed the coverage vector",
                spec.name
            );
            // The shrunk spec is still a valid scenario document.
            let reparsed = ScenarioSpec::from_json(&small.to_json()).unwrap();
            assert_eq!(reparsed, small);
            // Idempotence: a second shrink is a no-op.
            let (again, _) = shrink_spec(&small, &target, &mut probe);
            assert_eq!(again, small, "{}: shrink is not idempotent", spec.name);
        }
        assert!(total_probes > 0, "no spec in the sample was shrinkable");
    }

    #[test]
    fn shrink_halves_multipliers_the_coverage_does_not_need() {
        // fake_probe ignores scale adjusts entirely, so every multiplier
        // must shrink to nothing (the adjust list empties).
        let spec = specs(40)
            .into_iter()
            .find(|s| !s.params.adjust.is_empty())
            .expect("the default pattern emits specs with scale adjusts");
        let target = fake_probe(&spec).unwrap();
        let (small, _) = shrink_spec(&spec, &target, &mut fake_probe);
        assert!(
            small.params.adjust.is_empty(),
            "coverage-irrelevant adjusts must be deleted, got {:?}",
            small.params.adjust
        );
    }

    #[test]
    fn manifest_round_trips_and_validates() {
        let m = CorpusManifest {
            seed: 7,
            budget: 512,
            space: 48384,
            enumerated: 512,
            invalid: 0,
            kept: 2,
            duplicate_coverage: 510,
            shrink_probes: 123,
            entries: vec![
                CorpusEntry {
                    name: "gen-delibot".into(),
                    file: "gen-delibot.json".into(),
                    jobs: 1,
                    coverage: vec!["DeliBot|phases=[] l2=idle pf=off unsup npu=0".into()],
                },
                CorpusEntry {
                    name: "gen-flybot".into(),
                    file: "gen-flybot.json".into(),
                    jobs: 2,
                    coverage: vec!["FlyBot|phases=[plan] l2=all pf=q1 sup:1 npu=3".into()],
                },
            ],
        };
        let text = m.to_json();
        assert!(text.ends_with('\n'));
        assert_eq!(CorpusManifest::from_json(&text).unwrap(), m);
    }

    #[test]
    fn manifest_validation_rejects_malformed_documents() {
        let good = CorpusManifest {
            seed: 1,
            budget: 2,
            space: 3,
            enumerated: 2,
            invalid: 0,
            kept: 0,
            duplicate_coverage: 2,
            shrink_probes: 0,
            entries: Vec::new(),
        }
        .to_json();
        for (mangle, fragment) in [
            (good.replace("\"corpus_schema_version\":1", "\"corpus_schema_version\":9"),
             "unsupported version"),
            (good.replace("\"seed\":1", "\"seed\":\"one\""), "seed"),
            (good.replace("\"generator\":\"tartan_gen\"", "\"generator\":\"elf\""), "generator"),
            (good.replace("\"kept\":0", "\"kept\":5"), "kept"),
            (good.replace("\"space\":3", "\"spaces\":3"), "unknown"),
        ] {
            let err = CorpusManifest::from_json(&mangle).expect_err(&mangle);
            assert!(
                err.contains(fragment),
                "error {err:?} should mention {fragment:?}"
            );
            assert!(!err.contains('\n'));
        }
    }
}
