//! The scenario document itself and its expansion into an ordered,
//! validated campaign job list.
//!
//! A scenario is a list of *groups*. Each group names its robots, a base
//! machine/software spec (merged over the scenario-wide base), an optional
//! *prelude* of explicitly-labeled variants (reference bars such as a
//! no-FCP baseline), and an optional list of sweep *axes*. The axes expand
//! as a cartesian product with the **first axis outermost**; labels come
//! from `label_format` (with `{i}` substituted by axis *i*'s variant
//! label) or, by default, the concatenation of the variant labels.
//!
//! Within a group, `order` picks the nesting:
//!
//! * `robots_outer` (default): every variant for robot 0, then robot 1, …
//! * `axes_outer`: every robot for variant 0, then variant 1, …
//!
//! Expansion resolves and validates every machine configuration, so a
//! [`Plan`]'s jobs are guaranteed constructible.

use crate::error::ScenarioError;
use crate::id::ConfigId;
use crate::json::{parse, JsonValue};
use crate::spec::{
    MachineSpec, ParamsSpec, SoftwareSpec, SCENARIO_SCHEMA_VERSION,
};
use tartan_robots::{RobotKind, Scale, SoftwareConfig};
use tartan_sim::MachineConfig;

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_string()
    } else {
        format!("{path}.{key}")
    }
}

// ------------------------------------------------------------ VariantSpec

/// One point of a sweep: a label plus partial machine/software overrides.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct VariantSpec {
    /// Bar label (may be empty, e.g. for an unlabeled reference run).
    pub label: String,
    /// Machine overrides.
    pub machine: MachineSpec,
    /// Software overrides.
    pub software: SoftwareSpec,
}

impl VariantSpec {
    fn parse(v: &JsonValue, path: &str) -> Result<VariantSpec, ScenarioError> {
        let mut spec = VariantSpec::default();
        for (key, value) in match v {
            JsonValue::Obj(fields) => fields.as_slice(),
            other => {
                return Err(ScenarioError::new(
                    path,
                    format!("expected an object, got {}", other.kind()),
                ))
            }
        } {
            let p = join(path, key);
            match key.as_str() {
                "label" => {
                    spec.label = match value {
                        JsonValue::Str(s) => s.clone(),
                        other => {
                            return Err(ScenarioError::new(
                                p,
                                format!("expected a string, got {}", other.kind()),
                            ))
                        }
                    }
                }
                "machine" => spec.machine = MachineSpec::parse(value, &p)?,
                "software" => spec.software = SoftwareSpec::parse(value, &p)?,
                _ => {
                    return Err(ScenarioError::new(
                        p,
                        "unknown field (known fields: label, machine, software)",
                    ))
                }
            }
        }
        Ok(spec)
    }

    fn to_value(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        if !self.label.is_empty() {
            fields.push(("label".into(), JsonValue::Str(self.label.clone())));
        }
        if self.machine != MachineSpec::default() {
            fields.push(("machine".into(), self.machine.to_value()));
        }
        if self.software != SoftwareSpec::default() {
            fields.push(("software".into(), self.software.to_value()));
        }
        JsonValue::Obj(fields)
    }
}

// --------------------------------------------------------------- AxisSpec

/// One sweep dimension: an ordered list of variants.
#[derive(Debug, Clone, PartialEq)]
pub struct AxisSpec {
    /// Optional axis name, for documentation.
    pub name: Option<String>,
    /// The variants, in sweep order.
    pub variants: Vec<VariantSpec>,
}

impl AxisSpec {
    fn parse(v: &JsonValue, path: &str) -> Result<AxisSpec, ScenarioError> {
        let mut name = None;
        let mut variants = Vec::new();
        let fields = match v {
            JsonValue::Obj(fields) => fields,
            other => {
                return Err(ScenarioError::new(
                    path,
                    format!("expected an object, got {}", other.kind()),
                ))
            }
        };
        let mut saw_variants = false;
        for (key, value) in fields {
            let p = join(path, key);
            match key.as_str() {
                "name" => {
                    name = Some(match value {
                        JsonValue::Str(s) => s.clone(),
                        other => {
                            return Err(ScenarioError::new(
                                p,
                                format!("expected a string, got {}", other.kind()),
                            ))
                        }
                    })
                }
                "variants" => {
                    saw_variants = true;
                    let items = match value {
                        JsonValue::Arr(items) => items,
                        other => {
                            return Err(ScenarioError::new(
                                p,
                                format!("expected an array, got {}", other.kind()),
                            ))
                        }
                    };
                    for (i, item) in items.iter().enumerate() {
                        variants.push(VariantSpec::parse(item, &format!("{p}[{i}]"))?);
                    }
                }
                _ => {
                    return Err(ScenarioError::new(
                        p,
                        "unknown field (known fields: name, variants)",
                    ))
                }
            }
        }
        if !saw_variants || variants.is_empty() {
            return Err(ScenarioError::new(
                join(path, "variants"),
                "an axis needs at least one variant",
            ));
        }
        Ok(AxisSpec { name, variants })
    }

    fn to_value(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        if let Some(n) = &self.name {
            fields.push(("name".into(), JsonValue::Str(n.clone())));
        }
        fields.push((
            "variants".into(),
            JsonValue::Arr(self.variants.iter().map(VariantSpec::to_value).collect()),
        ));
        JsonValue::Obj(fields)
    }
}

// -------------------------------------------------------------- GroupSpec

/// Which robots a group runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RobotsSpec {
    /// All six robots, in the paper's order.
    All,
    /// An explicit ordered list.
    List(Vec<RobotKind>),
}

impl RobotsSpec {
    /// The resolved robot list.
    pub fn resolve(&self) -> Vec<RobotKind> {
        match self {
            RobotsSpec::All => RobotKind::all().to_vec(),
            RobotsSpec::List(list) => list.clone(),
        }
    }
}

/// Robot/variant nesting order within a group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SweepOrder {
    /// Every variant for one robot before moving to the next robot.
    #[default]
    RobotsOuter,
    /// Every robot for one variant before moving to the next variant.
    AxesOuter,
}

/// One job group: robots × (prelude + axes product).
#[derive(Debug, Clone, PartialEq)]
pub struct GroupSpec {
    /// Optional group name, for documentation and plan reports.
    pub name: Option<String>,
    /// Robots to run.
    pub robots: RobotsSpec,
    /// Nesting order.
    pub order: SweepOrder,
    /// Machine overrides (merged over the scenario-wide machine spec).
    pub machine: MachineSpec,
    /// Software overrides (merged over the scenario-wide software spec).
    pub software: SoftwareSpec,
    /// Explicitly-labeled variants that run before the axes product.
    pub prelude: Vec<VariantSpec>,
    /// Sweep axes; first axis outermost.
    pub axes: Vec<AxisSpec>,
    /// Label template for axes combinations: `{i}` is replaced by axis
    /// *i*'s variant label. Default: concatenation of the labels.
    pub label_format: Option<String>,
}

impl Default for GroupSpec {
    fn default() -> Self {
        GroupSpec {
            name: None,
            robots: RobotsSpec::All,
            order: SweepOrder::default(),
            machine: MachineSpec::default(),
            software: SoftwareSpec::default(),
            prelude: Vec::new(),
            axes: Vec::new(),
            label_format: None,
        }
    }
}

impl GroupSpec {
    fn parse(v: &JsonValue, path: &str) -> Result<GroupSpec, ScenarioError> {
        let mut spec = GroupSpec::default();
        let mut saw_robots = false;
        let fields = match v {
            JsonValue::Obj(fields) => fields,
            other => {
                return Err(ScenarioError::new(
                    path,
                    format!("expected an object, got {}", other.kind()),
                ))
            }
        };
        for (key, value) in fields {
            let p = join(path, key);
            match key.as_str() {
                "name" => spec.name = Some(expect_str(value, &p)?),
                "robots" => {
                    saw_robots = true;
                    spec.robots = parse_robots(value, &p)?;
                }
                "order" => {
                    spec.order = match expect_str(value, &p)?.as_str() {
                        "robots_outer" => SweepOrder::RobotsOuter,
                        "axes_outer" => SweepOrder::AxesOuter,
                        other => {
                            return Err(ScenarioError::new(
                                p,
                                format!(
                                    "unknown value {other:?} (expected one of robots_outer, axes_outer)"
                                ),
                            ))
                        }
                    }
                }
                "machine" => spec.machine = MachineSpec::parse(value, &p)?,
                "software" => spec.software = SoftwareSpec::parse(value, &p)?,
                "prelude" => {
                    let items = match value {
                        JsonValue::Arr(items) => items,
                        other => {
                            return Err(ScenarioError::new(
                                p,
                                format!("expected an array, got {}", other.kind()),
                            ))
                        }
                    };
                    for (i, item) in items.iter().enumerate() {
                        spec.prelude.push(VariantSpec::parse(item, &format!("{p}[{i}]"))?);
                    }
                }
                "axes" => {
                    let items = match value {
                        JsonValue::Arr(items) => items,
                        other => {
                            return Err(ScenarioError::new(
                                p,
                                format!("expected an array, got {}", other.kind()),
                            ))
                        }
                    };
                    for (i, item) in items.iter().enumerate() {
                        spec.axes.push(AxisSpec::parse(item, &format!("{p}[{i}]"))?);
                    }
                }
                "label_format" => spec.label_format = Some(expect_str(value, &p)?),
                _ => {
                    return Err(ScenarioError::new(
                        p,
                        "unknown field (known fields: name, robots, order, machine, software, prelude, axes, label_format)",
                    ))
                }
            }
        }
        if !saw_robots {
            return Err(ScenarioError::new(
                join(path, "robots"),
                "required field is missing (a robot list or \"all\")",
            ));
        }
        Ok(spec)
    }

    fn to_value(&self) -> JsonValue {
        let mut fields: Vec<(String, JsonValue)> = Vec::new();
        if let Some(n) = &self.name {
            fields.push(("name".into(), JsonValue::Str(n.clone())));
        }
        fields.push((
            "robots".into(),
            match &self.robots {
                RobotsSpec::All => JsonValue::Str("all".into()),
                RobotsSpec::List(list) => JsonValue::Arr(
                    list.iter()
                        .map(|k| JsonValue::Str(k.name().into()))
                        .collect(),
                ),
            },
        ));
        if self.order == SweepOrder::AxesOuter {
            fields.push(("order".into(), JsonValue::Str("axes_outer".into())));
        }
        if self.machine != MachineSpec::default() {
            fields.push(("machine".into(), self.machine.to_value()));
        }
        if self.software != SoftwareSpec::default() {
            fields.push(("software".into(), self.software.to_value()));
        }
        if !self.prelude.is_empty() {
            fields.push((
                "prelude".into(),
                JsonValue::Arr(self.prelude.iter().map(VariantSpec::to_value).collect()),
            ));
        }
        if !self.axes.is_empty() {
            fields.push((
                "axes".into(),
                JsonValue::Arr(self.axes.iter().map(AxisSpec::to_value).collect()),
            ));
        }
        if let Some(f) = &self.label_format {
            fields.push(("label_format".into(), JsonValue::Str(f.clone())));
        }
        JsonValue::Obj(fields)
    }
}

fn expect_str(v: &JsonValue, path: &str) -> Result<String, ScenarioError> {
    match v {
        JsonValue::Str(s) => Ok(s.clone()),
        other => Err(ScenarioError::new(
            path,
            format!("expected a string, got {}", other.kind()),
        )),
    }
}

fn parse_robots(v: &JsonValue, path: &str) -> Result<RobotsSpec, ScenarioError> {
    match v {
        JsonValue::Str(s) if s == "all" => Ok(RobotsSpec::All),
        JsonValue::Str(s) => Err(ScenarioError::new(
            path,
            format!("expected \"all\" or a list of robot names, got {s:?}"),
        )),
        JsonValue::Arr(items) => {
            if items.is_empty() {
                return Err(ScenarioError::new(path, "a group needs at least one robot"));
            }
            let mut list = Vec::new();
            for (i, item) in items.iter().enumerate() {
                let p = format!("{path}[{i}]");
                let name = expect_str(item, &p)?;
                let kind = RobotKind::from_name(&name).ok_or_else(|| {
                    let names: Vec<&str> = RobotKind::all().iter().map(|k| k.name()).collect();
                    ScenarioError::new(
                        p,
                        format!("unknown robot {name:?} (expected one of {})", names.join(", ")),
                    )
                })?;
                list.push(kind);
            }
            Ok(RobotsSpec::List(list))
        }
        other => Err(ScenarioError::new(
            path,
            format!("expected \"all\" or a list of robot names, got {}", other.kind()),
        )),
    }
}

// ----------------------------------------------------------- ScenarioSpec

/// A complete scenario document.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (`[A-Za-z0-9_-]+`; used for output file names).
    pub name: String,
    /// Optional human-readable title.
    pub title: Option<String>,
    /// Run parameters.
    pub params: ParamsSpec,
    /// Scenario-wide machine base spec.
    pub machine: MachineSpec,
    /// Scenario-wide software base spec.
    pub software: SoftwareSpec,
    /// The job groups, in campaign order.
    pub groups: Vec<GroupSpec>,
}

impl ScenarioSpec {
    /// Parses and structurally validates a scenario document.
    ///
    /// # Errors
    ///
    /// Single-line [`ScenarioError`]s with the offending field path:
    /// JSON syntax errors, unknown fields, wrong types, unknown keyword
    /// spellings, missing required fields, and unsupported schema
    /// versions.
    pub fn from_json(text: &str) -> Result<ScenarioSpec, ScenarioError> {
        let v = parse(text).map_err(ScenarioError::document)?;
        Self::parse_value(&v)
    }

    fn parse_value(v: &JsonValue) -> Result<ScenarioSpec, ScenarioError> {
        let fields = match v {
            JsonValue::Obj(fields) => fields,
            other => {
                return Err(ScenarioError::document(format!(
                    "a scenario must be a JSON object, got {}",
                    other.kind()
                )))
            }
        };
        let mut version: Option<u64> = None;
        let mut name: Option<String> = None;
        let mut title: Option<String> = None;
        let mut params = ParamsSpec::default();
        let mut machine = MachineSpec::default();
        let mut software = SoftwareSpec::default();
        let mut groups: Vec<GroupSpec> = Vec::new();
        let mut saw_groups = false;
        for (key, value) in fields {
            match key.as_str() {
                "schema_version" => {
                    version = Some(match value {
                        JsonValue::Num(raw) => raw.parse::<u64>().map_err(|_| {
                            ScenarioError::new(
                                "schema_version",
                                format!("expected an unsigned integer, got {raw}"),
                            )
                        })?,
                        other => {
                            return Err(ScenarioError::new(
                                "schema_version",
                                format!("expected an unsigned integer, got {}", other.kind()),
                            ))
                        }
                    })
                }
                "name" => name = Some(expect_str(value, "name")?),
                "title" => title = Some(expect_str(value, "title")?),
                "params" => params = ParamsSpec::parse(value, "params")?,
                "machine" => machine = MachineSpec::parse(value, "machine")?,
                "software" => software = SoftwareSpec::parse(value, "software")?,
                "groups" => {
                    saw_groups = true;
                    let items = match value {
                        JsonValue::Arr(items) => items,
                        other => {
                            return Err(ScenarioError::new(
                                "groups",
                                format!("expected an array, got {}", other.kind()),
                            ))
                        }
                    };
                    for (i, item) in items.iter().enumerate() {
                        groups.push(GroupSpec::parse(item, &format!("groups[{i}]"))?);
                    }
                }
                other => {
                    return Err(ScenarioError::new(
                        other,
                        "unknown field (known fields: schema_version, name, title, params, machine, software, groups)",
                    ))
                }
            }
        }
        match version {
            None => {
                return Err(ScenarioError::new(
                    "schema_version",
                    "required field is missing",
                ))
            }
            Some(v) if v != SCENARIO_SCHEMA_VERSION => {
                return Err(ScenarioError::new(
                    "schema_version",
                    format!(
                        "unsupported version {v} (this build reads version {SCENARIO_SCHEMA_VERSION})"
                    ),
                ))
            }
            Some(_) => {}
        }
        let name = name
            .ok_or_else(|| ScenarioError::new("name", "required field is missing"))?;
        if name.is_empty()
            || !name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        {
            return Err(ScenarioError::new(
                "name",
                format!("must be non-empty and use only [A-Za-z0-9_-] (got {name:?})"),
            ));
        }
        if !saw_groups || groups.is_empty() {
            return Err(ScenarioError::new(
                "groups",
                "a scenario needs at least one group",
            ));
        }
        Ok(ScenarioSpec {
            name,
            title,
            params,
            machine,
            software,
            groups,
        })
    }

    /// Renders the scenario as compact JSON. `parse(render(spec))` yields
    /// an equal spec.
    pub fn to_json(&self) -> String {
        let mut fields: Vec<(String, JsonValue)> = vec![
            (
                "schema_version".into(),
                JsonValue::Num(SCENARIO_SCHEMA_VERSION.to_string()),
            ),
            ("name".into(), JsonValue::Str(self.name.clone())),
        ];
        if let Some(t) = &self.title {
            fields.push(("title".into(), JsonValue::Str(t.clone())));
        }
        if self.params != ParamsSpec::default() {
            fields.push(("params".into(), self.params.to_value()));
        }
        if self.machine != MachineSpec::default() {
            fields.push(("machine".into(), self.machine.to_value()));
        }
        if self.software != SoftwareSpec::default() {
            fields.push(("software".into(), self.software.to_value()));
        }
        fields.push((
            "groups".into(),
            JsonValue::Arr(self.groups.iter().map(GroupSpec::to_value).collect()),
        ));
        JsonValue::Obj(fields).render()
    }

    /// Expands the sweeps into the ordered, validated job list.
    pub fn expand(&self) -> Result<Plan, ScenarioError> {
        let mut jobs: Vec<PlannedJob> = Vec::new();
        let mut groups: Vec<GroupPlan> = Vec::new();
        for (gi, group) in self.groups.iter().enumerate() {
            let gpath = format!("groups[{gi}]");
            let first = jobs.len();
            let robots = group.robots.resolve();
            let base_machine = self.machine.merged(&group.machine);
            let base_software = self.software.merged(&group.software);

            // Compose the group's variant list: prelude first, then the
            // cartesian axes product (first axis outermost).
            let mut variants: Vec<(String, MachineSpec, SoftwareSpec)> = group
                .prelude
                .iter()
                .map(|v| {
                    (
                        v.label.clone(),
                        base_machine.merged(&v.machine),
                        base_software.merged(&v.software),
                    )
                })
                .collect();
            if !group.axes.is_empty() {
                let mut combos: Vec<Vec<usize>> = vec![Vec::new()];
                for axis in &group.axes {
                    let mut next = Vec::with_capacity(combos.len() * axis.variants.len());
                    for combo in &combos {
                        for i in 0..axis.variants.len() {
                            let mut c = combo.clone();
                            c.push(i);
                            next.push(c);
                        }
                    }
                    combos = next;
                }
                for combo in combos {
                    let mut machine = base_machine.clone();
                    let mut software = base_software.clone();
                    let mut labels: Vec<&str> = Vec::with_capacity(combo.len());
                    for (axis, &vi) in group.axes.iter().zip(&combo) {
                        let variant = &axis.variants[vi];
                        machine = machine.merged(&variant.machine);
                        software = software.merged(&variant.software);
                        labels.push(&variant.label);
                    }
                    let label = match &group.label_format {
                        Some(fmt) => {
                            let mut label = fmt.clone();
                            for (i, axis_label) in labels.iter().enumerate() {
                                label = label.replace(&format!("{{{i}}}"), axis_label);
                            }
                            label
                        }
                        None => labels.concat(),
                    };
                    variants.push((label, machine, software));
                }
            }
            if variants.is_empty() {
                variants.push((String::new(), base_machine, base_software));
            }

            // Resolve each variant once, then lay the jobs out in order.
            let resolved: Vec<(String, MachineConfig, SoftwareConfig)> = variants
                .into_iter()
                .map(|(label, m, s)| {
                    let machine = m.resolve(&join(&gpath, "machine"))?;
                    let software = s.resolve(&join(&gpath, "software"))?;
                    Ok((label, machine, software))
                })
                .collect::<Result<_, ScenarioError>>()?;
            let mut push = |robot: RobotKind, (label, machine, software): &(String, MachineConfig, SoftwareConfig)| {
                jobs.push(PlannedJob {
                    robot,
                    config: ConfigId::of(machine, software),
                    machine: machine.clone(),
                    software: *software,
                    label: label.clone(),
                    group: gi,
                });
            };
            match group.order {
                SweepOrder::RobotsOuter => {
                    for &robot in &robots {
                        for variant in &resolved {
                            push(robot, variant);
                        }
                    }
                }
                SweepOrder::AxesOuter => {
                    for variant in &resolved {
                        for &robot in &robots {
                            push(robot, variant);
                        }
                    }
                }
            }
            groups.push(GroupPlan {
                name: group
                    .name
                    .clone()
                    .unwrap_or_else(|| format!("group{gi}")),
                first,
                len: jobs.len() - first,
                variants_per_robot: resolved.len(),
                robots: robots.len(),
            });
        }
        Ok(Plan {
            name: self.name.clone(),
            title: self.title.clone(),
            jobs,
            groups,
        })
    }

    /// The scenario's stand-alone run parameters (defaults: `small` scale,
    /// 2 steps, seed 42 — the same quick defaults the test harnesses use).
    pub fn base_params(&self) -> RunParams {
        RunParams {
            scale: self.params.base_scale(),
            steps: self.params.steps.unwrap_or(2) as usize,
            seed: self.params.seed.unwrap_or(42),
        }
    }
}

/// Stand-alone run parameters resolved from a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunParams {
    /// Workload scale (preset + adjustments).
    pub scale: Scale,
    /// Pipeline periods per job.
    pub steps: usize,
    /// Base RNG seed.
    pub seed: u64,
}

/// One expanded, validated campaign job.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedJob {
    /// The robot.
    pub robot: RobotKind,
    /// The validated machine configuration.
    pub machine: MachineConfig,
    /// The software configuration as specified (hardware-unavailable
    /// features are downgraded later by `SoftwareConfig::effective`, as
    /// always).
    pub software: SoftwareConfig,
    /// The bar label from the sweep expansion (may be empty).
    pub label: String,
    /// Canonical configuration identity.
    pub config: ConfigId,
    /// Index of the group this job came from.
    pub group: usize,
}

/// Where one group's jobs sit in the plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupPlan {
    /// Group name (or `group<i>`).
    pub name: String,
    /// Index of the group's first job in [`Plan::jobs`].
    pub first: usize,
    /// Number of jobs.
    pub len: usize,
    /// Variants per robot (the group's chunk width under `robots_outer`).
    pub variants_per_robot: usize,
    /// Number of robots.
    pub robots: usize,
}

/// An expanded scenario: the ordered job list plus group geometry.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Scenario name.
    pub name: String,
    /// Scenario title, if any.
    pub title: Option<String>,
    /// All jobs, in campaign order.
    pub jobs: Vec<PlannedJob>,
    /// Group layout, in order.
    pub groups: Vec<GroupPlan>,
}

impl Plan {
    /// The jobs of one group.
    pub fn group_jobs(&self, group: usize) -> &[PlannedJob] {
        let g = &self.groups[group];
        &self.jobs[g.first..g.first + g.len]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tartan_robots::NnsKind;
    use tartan_sim::PrefetcherKind;

    const NNS_DOC: &str = r#"{
        "schema_version": 1,
        "name": "nns-mini",
        "params": {"adjust": [{"field": "map_points", "mul": 4}]},
        "groups": [{
            "robots": ["MoveBot", "HomeBot"],
            "axes": [
                {"name": "engine", "variants": [
                    {"label": "B", "software": {"nns": "brute"}},
                    {"label": "V", "software": {"nns": "vln"}}
                ]},
                {"name": "anl", "variants": [
                    {"label": ""},
                    {"label": "+", "machine": {"prefetcher": "anl"}}
                ]}
            ]
        }]
    }"#;

    #[test]
    fn expansion_orders_robots_outer_first_axis_outermost() {
        let spec = ScenarioSpec::from_json(NNS_DOC).unwrap();
        let plan = spec.expand().unwrap();
        assert_eq!(plan.jobs.len(), 2 * 2 * 2);
        let labels: Vec<&str> = plan.jobs.iter().map(|j| j.label.as_str()).collect();
        assert_eq!(labels, ["B", "B+", "V", "V+", "B", "B+", "V", "V+"]);
        let robots: Vec<&str> = plan.jobs.iter().map(|j| j.robot.name()).collect();
        assert_eq!(robots[..4], ["MoveBot"; 4]);
        assert_eq!(robots[4..], ["HomeBot"; 4]);
        assert_eq!(plan.jobs[0].software.nns, NnsKind::Brute);
        assert_eq!(plan.jobs[0].machine.prefetcher, PrefetcherKind::None);
        assert_eq!(plan.jobs[1].machine.prefetcher, PrefetcherKind::Anl);
        assert_eq!(plan.jobs[2].software.nns, NnsKind::Vln);
        assert_eq!(plan.groups[0].variants_per_robot, 4);
        // The scenario-level adjust scales map_points.
        let params = spec.base_params();
        assert_eq!(params.scale.map_points, Scale::small().map_points * 4);
        assert_eq!((params.steps, params.seed), (2, 42));
    }

    #[test]
    fn axes_outer_groups_robots_per_variant() {
        let doc = r#"{
            "schema_version": 1, "name": "t",
            "groups": [{
                "robots": ["DeliBot", "FlyBot"],
                "order": "axes_outer",
                "axes": [{"variants": [
                    {"label": "a"}, {"label": "b", "machine": {"preset": "tartan"}}
                ]}]
            }]
        }"#;
        let plan = ScenarioSpec::from_json(doc).unwrap().expand().unwrap();
        let seq: Vec<(String, String)> = plan
            .jobs
            .iter()
            .map(|j| (j.robot.name().to_string(), j.label.clone()))
            .collect();
        assert_eq!(
            seq,
            [
                ("DeliBot".to_string(), "a".to_string()),
                ("FlyBot".into(), "a".into()),
                ("DeliBot".into(), "b".into()),
                ("FlyBot".into(), "b".into()),
            ]
        );
    }

    #[test]
    fn prelude_runs_before_axes_and_label_format_applies() {
        let doc = r#"{
            "schema_version": 1, "name": "fcp-mini",
            "groups": [{
                "robots": ["DeliBot"],
                "prelude": [{}],
                "label_format": "{1}-{2} {0}",
                "axes": [
                    {"variants": [{"label": "x+1", "machine": {"fcp": {"manipulation": "x+1"}}}]},
                    {"variants": [{"label": "512B", "machine": {"fcp": {"region_bytes": 512}}}]},
                    {"variants": [{"label": "2b", "machine": {"fcp": {"xor_bits": 2}}}]}
                ]
            }]
        }"#;
        let plan = ScenarioSpec::from_json(doc).unwrap().expand().unwrap();
        assert_eq!(plan.jobs.len(), 2);
        assert_eq!(plan.jobs[0].label, "");
        assert_eq!(plan.jobs[0].machine.fcp, None);
        assert_eq!(plan.jobs[1].label, "512B-2b x+1");
        let fcp = plan.jobs[1].machine.fcp.unwrap();
        assert_eq!(
            (fcp.region_bytes, fcp.xor_bits),
            (512, 2)
        );
    }

    #[test]
    fn a_group_without_sweeps_is_one_job_per_robot() {
        let doc = r#"{
            "schema_version": 1, "name": "plain",
            "machine": {"preset": "tartan"}, "software": {"preset": "approximable"},
            "groups": [{"robots": "all"}]
        }"#;
        let plan = ScenarioSpec::from_json(doc).unwrap().expand().unwrap();
        assert_eq!(plan.jobs.len(), 6);
        assert!(plan.jobs.iter().all(|j| j.config == ConfigId::Tartan));
        assert_eq!(plan.jobs[0].robot, RobotKind::DeliBot);
    }

    #[test]
    fn invalid_configs_fail_with_scenario_paths() {
        let doc = r#"{
            "schema_version": 1, "name": "bad",
            "groups": [{"robots": "all", "machine": {"l2": {"ways": 0}}}]
        }"#;
        let err = ScenarioSpec::from_json(doc).unwrap().expand().unwrap_err();
        assert_eq!(err.to_string(), "groups[0].machine.l2.ways: must be at least 1");
    }

    #[test]
    fn document_level_errors_are_single_line() {
        for (doc, path_fragment) in [
            ("{", "$"),
            (r#"{"schema_version": 1, "groups": []}"#, "name"),
            (r#"{"schema_version": 2, "name": "x", "groups": [{"robots": "all"}]}"#, "schema_version"),
            (r#"{"schema_version": 1, "name": "x", "groups": []}"#, "groups"),
            (r#"{"schema_version": 1, "name": "x"}"#, "groups"),
            (r#"{"schema_version": 1, "name": "x/y", "groups": [{"robots": "all"}]}"#, "name"),
            (r#"{"schema_version": 1, "name": "x", "groups": [{}]}"#, "groups[0].robots"),
            (r#"{"schema_version": 1, "name": "x", "groups": [{"robots": ["RoboCop"]}]}"#, "groups[0].robots[0]"),
            (r#"{"schema_version": 1, "name": "x", "groups": [{"robots": []}]}"#, "groups[0].robots"),
            (r#"{"schema_version": 1, "name": "x", "groups": [{"robots": "all", "axes": [{"variants": []}]}]}"#, "groups[0].axes[0].variants"),
            (r#"{"schema_version": 1, "name": "x", "bogus": 1, "groups": [{"robots": "all"}]}"#, "bogus"),
        ] {
            let err = ScenarioSpec::from_json(doc).expect_err(doc);
            let line = err.to_string();
            assert!(!line.contains('\n'), "multi-line error for {doc}: {line:?}");
            assert!(
                err.path.starts_with(path_fragment),
                "wrong path for {doc}: got {line}"
            );
        }
    }

    #[test]
    fn render_parse_round_trip_on_a_rich_scenario() {
        let spec = ScenarioSpec::from_json(NNS_DOC).unwrap();
        let reparsed = ScenarioSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(reparsed, spec);
        // And rendering is a fixed point.
        assert_eq!(reparsed.to_json(), spec.to_json());
    }
}
