//! Canonical configuration identity: the single place a
//! `(machine, software)` pair is turned into the label that appears in
//! stats exports, CSV rows, and benchmark baselines.
//!
//! Before this type existed, every harness and the tier-1 benchmark
//! carried its own `&str` label and they had to agree by convention.
//! [`ConfigId::of`] now derives the label from the configs themselves, and
//! [`ConfigId::as_str`] is the only rendering point.

use tartan_robots::SoftwareConfig;
use tartan_sim::MachineConfig;

/// The canonical identity of a `(machine, software)` configuration pair.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ConfigId {
    /// The legacy baseline host running legacy software.
    LegacyBaseline,
    /// The upgraded baseline of §III-A running legacy software — the
    /// reference configuration every figure normalizes to.
    Baseline,
    /// Full Tartan running fully approximable software — the paper's
    /// headline configuration.
    Tartan,
    /// Anything else, labeled `<machine>+<software>` from the preset names
    /// (or `custom` for a non-preset side).
    Custom(String),
}

impl ConfigId {
    /// Derives the canonical identity of a configuration pair.
    pub fn of(machine: &MachineConfig, software: &SoftwareConfig) -> ConfigId {
        match (machine.preset_name(), software.preset_name()) {
            (Some("legacy_baseline"), Some("legacy")) => ConfigId::LegacyBaseline,
            (Some("upgraded_baseline"), Some("legacy")) => ConfigId::Baseline,
            (Some("tartan"), Some("approximable")) => ConfigId::Tartan,
            (hw, sw) => ConfigId::Custom(format!(
                "{}+{}",
                hw.unwrap_or("custom"),
                sw.unwrap_or("custom")
            )),
        }
    }

    /// The rendered label. The three named pairs keep the short labels the
    /// exports have always used (`legacy-baseline`, `baseline`, `tartan`),
    /// so schema-stable artifacts like `BENCH_tier1.json` are unchanged.
    pub fn as_str(&self) -> &str {
        match self {
            ConfigId::LegacyBaseline => "legacy-baseline",
            ConfigId::Baseline => "baseline",
            ConfigId::Tartan => "tartan",
            ConfigId::Custom(s) => s,
        }
    }
}

impl std::fmt::Display for ConfigId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_pairs_get_short_labels() {
        assert_eq!(
            ConfigId::of(&MachineConfig::legacy_baseline(), &SoftwareConfig::legacy()),
            ConfigId::LegacyBaseline
        );
        assert_eq!(
            ConfigId::of(&MachineConfig::upgraded_baseline(), &SoftwareConfig::legacy()),
            ConfigId::Baseline
        );
        assert_eq!(
            ConfigId::of(&MachineConfig::tartan(), &SoftwareConfig::approximable()),
            ConfigId::Tartan
        );
        assert_eq!(ConfigId::Baseline.as_str(), "baseline");
        assert_eq!(ConfigId::Tartan.as_str(), "tartan");
    }

    #[test]
    fn off_diagonal_pairs_are_custom() {
        let id = ConfigId::of(&MachineConfig::tartan(), &SoftwareConfig::optimized());
        assert_eq!(id, ConfigId::Custom("tartan+optimized".into()));
        let mut hw = MachineConfig::tartan();
        hw.mlp += 1;
        let id = ConfigId::of(&hw, &SoftwareConfig::legacy());
        assert_eq!(id.as_str(), "custom+legacy");
    }
}
