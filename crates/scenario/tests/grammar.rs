//! Differential test: two checked-in manifests re-expressed as grammar
//! patterns must expand to the *identical* plans.
//!
//! `fig11_fcp.json` and `ablations.json` are the repository's most
//! sweep-heavy scenarios (a 3-axis cartesian product with a prelude;
//! two groups sweeping different machine knobs). Rebuilding them from
//! `Pattern` + typed `Edit`s and pinning spec equality, `Plan`
//! equality, and per-job cache-key *bytes* against the parsed disk
//! files proves the grammar composes through exactly the same
//! expansion semantics as hand-written documents — if either side
//! drifts (grammar application order, axis crossing, label formatting,
//! store keys), this test names the first divergent job.

use std::fs;

use tartan_scenario::{
    AxisSpec, Edit, Filling, GroupSpec, MachineSpec, Pattern, RobotsSpec, ScenarioSpec,
    VariantSpec,
};
use tartan_sim::FcpManipulation;

fn disk_spec(file: &str) -> ScenarioSpec {
    let path = format!("{}/../../scenarios/{file}", env!("CARGO_MANIFEST_DIR"));
    let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path}: {e}"));
    ScenarioSpec::from_json(&text).unwrap_or_else(|e| panic!("{file}: {e}"))
}

/// An axis whose variants each override one machine field, built from a
/// `(label, spec)` table.
fn machine_axis(name: &str, variants: &[(&str, MachineSpec)]) -> AxisSpec {
    AxisSpec {
        name: Some(name.into()),
        variants: variants
            .iter()
            .map(|(label, machine)| VariantSpec {
                label: (*label).into(),
                machine: machine.clone(),
                ..VariantSpec::default()
            })
            .collect(),
    }
}

fn fcp(build: impl FnOnce(&mut tartan_scenario::FcpSpec)) -> MachineSpec {
    let mut f = tartan_scenario::FcpSpec::default();
    build(&mut f);
    MachineSpec {
        fcp: Some(Some(f)),
        ..MachineSpec::default()
    }
}

/// Asserts the grammar-made spec and the checked-in one are the same
/// document, expand to equal plans, and key the store identically.
fn assert_differential(mut made: ScenarioSpec, file: &str) {
    let want = disk_spec(file);
    // The grammar suffixes filling labels onto the name; the manifest
    // identity is the one part re-expression restores by hand.
    made.name = want.name.clone();
    assert_eq!(made, want, "{file}: grammar spec != checked-in spec");

    let made_plan = made.expand().expect("grammar spec expands");
    let want_plan = want.expand().expect("checked-in spec expands");
    assert_eq!(
        made_plan, want_plan,
        "{file}: grammar plan != checked-in plan"
    );

    // Byte-level: every job's canonical cache key (what addresses its
    // result in the store) must match, so a grammar-generated campaign
    // would hit a manifest-generated store and vice versa.
    let params = want.base_params();
    for (i, (a, b)) in made_plan.jobs.iter().zip(&want_plan.jobs).enumerate() {
        assert_eq!(
            a.cache_key_text(&params),
            b.cache_key_text(&params),
            "{file}: job {i} cache key bytes differ"
        );
    }
}

#[test]
fn fig11_fcp_re_expressed_as_a_pattern_expands_identically() {
    let template = ScenarioSpec {
        name: "fig11".into(),
        title: Some("Fig. 11: FCP region sizes, XOR widths, and manipulation functions".into()),
        params: Default::default(),
        machine: MachineSpec::default(),
        software: Default::default(),
        groups: vec![GroupSpec {
            name: Some("fcp_sweep".into()),
            robots: RobotsSpec::All,
            prelude: vec![VariantSpec::default()],
            label_format: Some("{1}-{2} {0}".into()),
            ..GroupSpec::default()
        }],
    };
    // Each manifest axis is one single-filling sweep hole; plugging them
    // in axis order reproduces the cartesian product (first outermost).
    let pattern = Pattern::new(template)
        .plug(
            "manipulation",
            vec![Filling::new(
                "manip",
                Edit::Sweep(machine_axis(
                    "manipulation",
                    &[
                        ("x+1", fcp(|f| f.manipulation = Some(FcpManipulation::Increment))),
                        ("2x", fcp(|f| f.manipulation = Some(FcpManipulation::Double))),
                        ("x^2", fcp(|f| f.manipulation = Some(FcpManipulation::Square))),
                    ],
                )),
            )],
        )
        .plug(
            "region",
            vec![Filling::new(
                "region",
                Edit::Sweep(machine_axis(
                    "region",
                    &[
                        ("512B", fcp(|f| f.region_bytes = Some(512))),
                        ("1KB", fcp(|f| f.region_bytes = Some(1024))),
                    ],
                )),
            )],
        )
        .plug(
            "xor",
            vec![Filling::new(
                "xor",
                Edit::Sweep(machine_axis(
                    "xor_bits",
                    &[
                        ("2b", fcp(|f| f.xor_bits = Some(2))),
                        ("3b", fcp(|f| f.xor_bits = Some(3))),
                    ],
                )),
            )],
        );
    assert_eq!(pattern.space(), 1, "every hole is pinned to one filling");
    let specs = pattern.enumerate_all();
    assert_differential(specs.into_iter().next().unwrap(), "fig11_fcp.json");
}

#[test]
fn ablations_re_expressed_as_a_pattern_expands_identically() {
    let group = |name: &str, label_format: &str| GroupSpec {
        name: Some(name.into()),
        robots: RobotsSpec::List(vec![tartan_robots::RobotKind::DeliBot]),
        label_format: Some(label_format.into()),
        ..GroupSpec::default()
    };
    let template = ScenarioSpec {
        name: "abl".into(),
        title: Some(
            "Design-choice ablations: ANL region size and OVEC address-generation latency".into(),
        ),
        params: Default::default(),
        machine: MachineSpec {
            preset: Some("tartan".into()),
            ..MachineSpec::default()
        },
        software: tartan_scenario::SoftwareSpec {
            preset: Some("optimized".into()),
            ..Default::default()
        },
        groups: vec![
            group("anl_region", "ANL region {0}"),
            group("ovec_latency", "OVEC addr-gen {0}"),
        ],
    };
    let anl = |bytes: u64| MachineSpec {
        anl_region_bytes: Some(bytes),
        ..MachineSpec::default()
    };
    let ovec = |cycles: u64| MachineSpec {
        ovec_addr_gen_latency: Some(cycles),
        ..MachineSpec::default()
    };
    let pattern = Pattern::new(template)
        .plug(
            "anl",
            vec![Filling::new(
                "anl",
                Edit::SweepAt(
                    0,
                    machine_axis(
                        "region",
                        &[
                            ("512B", anl(512)),
                            ("1024B", anl(1024)),
                            ("2048B", anl(2048)),
                            ("4096B", anl(4096)),
                        ],
                    ),
                ),
            )],
        )
        .plug(
            "ovec",
            vec![Filling::new(
                "ovec",
                Edit::SweepAt(
                    1,
                    machine_axis(
                        "latency",
                        &[
                            ("1cy", ovec(1)),
                            ("5cy", ovec(5)),
                            ("10cy", ovec(10)),
                            ("20cy", ovec(20)),
                        ],
                    ),
                ),
            )],
        );
    let specs = pattern.enumerate_all();
    assert_eq!(specs.len(), 1);
    assert_differential(specs.into_iter().next().unwrap(), "ablations.json");
}
