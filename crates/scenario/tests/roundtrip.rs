//! Round-trip property test: for any scenario spec, `parse(render(spec))`
//! must be the identity, and the rendered document must be a fixed point
//! of parse∘render. Specs are generated from a seeded xorshift generator
//! so failures are reproducible; on divergence the test reports the first
//! differing line of the two specs' debug trees plus the rendered JSON.

use tartan_scenario::{
    AdjustOp, AxisSpec, CacheSpec, FaultSpec, FcpSpec, GroupSpec, MachineSpec, ParamsSpec,
    RobotsSpec, ScaleAdjust, ScenarioSpec, SoftwareSpec, SweepOrder, VariantSpec, SCALE_FIELDS,
};

use tartan_robots::{NeuralExec, NnsKind, RobotKind, VecMethod};
use tartan_sim::{FcpManipulation, NpuMode, PrefetcherKind, VectorIsa};

/// xorshift64* — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// `Some(gen(self))` with probability 1/3 — most spec fields stay
    /// omitted, like real manifests.
    fn opt<T>(&mut self, gen: impl FnOnce(&mut Rng) -> T) -> Option<T> {
        if self.below(3) == 0 {
            Some(gen(self))
        } else {
            None
        }
    }

    fn coin(&mut self) -> bool {
        self.below(2) == 0
    }

    fn pick<T: Copy>(&mut self, xs: &[T]) -> T {
        xs[self.below(xs.len() as u64) as usize]
    }

    /// A string from a pool that stresses the JSON escaper: quotes,
    /// backslashes, control characters, and non-ASCII.
    fn string(&mut self, max_len: u64) -> String {
        const POOL: [char; 14] = [
            'a', 'B', '3', '_', '-', ' ', '"', '\\', '\n', '\t', '\u{1}', 'λ', '→', '𝛑',
        ];
        let len = self.below(max_len + 1);
        (0..len).map(|_| POOL[self.below(14) as usize]).collect()
    }

    /// A scenario name: the layer only accepts `[A-Za-z0-9_-]+`.
    fn name(&mut self) -> String {
        const POOL: [char; 6] = ['a', 'Z', '7', '_', '-', 'q'];
        let len = 1 + self.below(8);
        (0..len).map(|_| POOL[self.below(6) as usize]).collect()
    }

    fn f64(&mut self) -> f64 {
        self.below(1_000_000) as f64 / 4096.0
    }
}

fn gen_cache(r: &mut Rng) -> CacheSpec {
    CacheSpec {
        size_bytes: r.opt(|r| 1 + r.below(1 << 24)),
        ways: r.opt(|r| 1 + r.below(32) as u32),
        latency: r.opt(|r| 1 + r.below(100)),
    }
}

fn gen_fcp(r: &mut Rng) -> FcpSpec {
    FcpSpec {
        region_bytes: r.opt(|r| 1 << (5 + r.below(8))),
        xor_bits: r.opt(|r| 1 + r.below(4) as u32),
        manipulation: r.opt(|r| {
            r.pick(&[
                FcpManipulation::Increment,
                FcpManipulation::Double,
                FcpManipulation::Square,
            ])
        }),
    }
}

fn gen_fault(r: &mut Rng) -> FaultSpec {
    FaultSpec {
        seed: r.opt(|r| r.next()),
        accel_error_rate: r.opt(Rng::f64),
        accel_error_magnitude: r.opt(Rng::f64),
        accel_bitflip_rate: r.opt(Rng::f64),
        accel_fail_rate: r.opt(Rng::f64),
        mem_spike_rate: r.opt(Rng::f64),
        mem_spike_cycles: r.opt(|r| r.below(10_000)),
    }
}

fn gen_machine(r: &mut Rng) -> MachineSpec {
    MachineSpec {
        preset: r.opt(|r| {
            r.pick(&["legacy_baseline", "upgraded_baseline", "tartan"])
                .to_string()
        }),
        cores: r.opt(|r| 1 + r.below(64) as usize),
        line_bytes: r.opt(|r| 1 << (4 + r.below(4))),
        l1: r.opt(gen_cache),
        l2: r.opt(gen_cache),
        l3: r.opt(gen_cache),
        dram_latency: r.opt(|r| 1 + r.below(1000)),
        dram_bytes_per_cycle: r.opt(|r| 1 + r.below(256)),
        issue_width: r.opt(|r| 1 + r.below(16)),
        mlp: r.opt(|r| 1 + r.below(64)),
        l1_ports: r.opt(|r| 1 + r.below(8)),
        vector_isa: r.opt(|r| r.pick(&[VectorIsa::Avx2, VectorIsa::Avx512])),
        ovec: r.opt(Rng::coin),
        ovec_addr_gen_latency: r.opt(|r| 1 + r.below(50)),
        prefetcher: r.opt(|r| {
            r.pick(&[
                PrefetcherKind::None,
                PrefetcherKind::NextLine,
                PrefetcherKind::Anl,
                PrefetcherKind::Bingo,
            ])
        }),
        anl_region_bytes: r.opt(|r| 1 << (6 + r.below(8))),
        fcp: r.opt(|r| r.opt(gen_fcp)),
        npu: r.opt(|r| match r.below(3) {
            0 => NpuMode::None,
            1 => NpuMode::Integrated {
                pes: 1 + r.below(16) as u32,
            },
            _ => NpuMode::Coprocessor,
        }),
        npu_mac_latency: r.opt(|r| 1 + r.below(16)),
        npu_comm_latency: r.opt(|r| 1 + r.below(500)),
        npu_coproc_comm_latency: r.opt(|r| 1 + r.below(5000)),
        write_through_regions: r.opt(Rng::coin),
        intel_lvs: r.opt(Rng::coin),
        fault_plan: r.opt(|r| r.opt(gen_fault)),
    }
}

fn gen_software(r: &mut Rng) -> SoftwareSpec {
    SoftwareSpec {
        preset: r.opt(|r| r.pick(&["legacy", "optimized", "approximable"]).to_string()),
        vec_method: r.opt(|r| {
            r.pick(&[
                VecMethod::Scalar,
                VecMethod::Gather,
                VecMethod::Ovec,
                VecMethod::Racod,
            ])
        }),
        nns: r.opt(|r| r.pick(&[NnsKind::Brute, NnsKind::KdTree, NnsKind::Flann, NnsKind::Vln])),
        neural: r.opt(|r| r.pick(&[NeuralExec::None, NeuralExec::Npu, NeuralExec::Software])),
        interpolate_raycast: r.opt(Rng::coin),
    }
}

fn gen_variant(r: &mut Rng) -> VariantSpec {
    VariantSpec {
        label: r.string(6),
        machine: gen_machine(r),
        software: gen_software(r),
    }
}

fn gen_axis(r: &mut Rng) -> AxisSpec {
    let n = 1 + r.below(3);
    AxisSpec {
        name: r.opt(|r| r.string(8)),
        variants: (0..n).map(|_| gen_variant(r)).collect(),
    }
}

fn gen_group(r: &mut Rng) -> GroupSpec {
    let robots = if r.coin() {
        RobotsSpec::All
    } else {
        let n = 1 + r.below(4);
        RobotsSpec::List((0..n).map(|_| r.pick(&RobotKind::all())).collect())
    };
    GroupSpec {
        name: r.opt(|r| r.string(8)),
        robots,
        order: if r.coin() {
            SweepOrder::RobotsOuter
        } else {
            SweepOrder::AxesOuter
        },
        machine: gen_machine(r),
        software: gen_software(r),
        prelude: {
            let n = r.below(3);
            (0..n).map(|_| gen_variant(r)).collect()
        },
        axes: {
            let n = r.below(3);
            (0..n).map(|_| gen_axis(r)).collect()
        },
        label_format: r.opt(|r| {
            let mut f = r.string(4);
            f.push_str("{0}");
            f
        }),
    }
}

fn gen_params(r: &mut Rng) -> ParamsSpec {
    ParamsSpec {
        scale: r.opt(|r| r.pick(&["small", "paper"]).to_string()),
        steps: r.opt(|r| 1 + r.below(10)),
        seed: r.opt(Rng::next),
        adjust: {
            let n = r.below(3);
            (0..n)
                .map(|_| ScaleAdjust {
                    field: r.pick(&SCALE_FIELDS).to_string(),
                    op: if r.coin() {
                        AdjustOp::Set(1 + r.below(1 << 20))
                    } else {
                        AdjustOp::Mul(1 + r.below(64))
                    },
                })
                .collect()
        },
    }
}

fn gen_spec(r: &mut Rng) -> ScenarioSpec {
    let n_groups = 1 + r.below(3);
    ScenarioSpec {
        name: r.name(),
        title: r.opt(|r| r.string(20)),
        params: gen_params(r),
        machine: gen_machine(r),
        software: gen_software(r),
        groups: (0..n_groups).map(|_| gen_group(r)).collect(),
    }
}

/// The first line at which the two pretty-debug trees diverge — the
/// actionable part of an otherwise enormous assert_eq dump.
fn first_divergence(a: &ScenarioSpec, b: &ScenarioSpec) -> String {
    let (da, db) = (format!("{a:#?}"), format!("{b:#?}"));
    for (i, (la, lb)) in da.lines().zip(db.lines()).enumerate() {
        if la != lb {
            return format!(
                "first divergence at debug line {}:\n  rendered+parsed: {la}\n  original:        {lb}",
                i + 1
            );
        }
    }
    format!(
        "debug trees share a prefix but differ in length ({} vs {} lines)",
        da.lines().count(),
        db.lines().count()
    )
}

#[test]
fn parse_render_roundtrip_holds_for_random_specs() {
    let mut rng = Rng::new(0x005e_ed7a_47a4_u64);
    for case in 0..400 {
        let spec = gen_spec(&mut rng);
        let rendered = spec.to_json();
        let reparsed = ScenarioSpec::from_json(&rendered).unwrap_or_else(|e| {
            panic!("case {case}: rendered spec does not re-parse: {e}\n--- rendered ---\n{rendered}")
        });
        assert!(
            reparsed == spec,
            "case {case}: parse(render(spec)) != spec\n{}\n--- rendered ---\n{rendered}",
            first_divergence(&reparsed, &spec)
        );
        // Render must also be a fixed point: a second render of the
        // reparsed spec reproduces the document byte for byte.
        assert_eq!(
            reparsed.to_json(),
            rendered,
            "case {case}: render is not a fixed point of parse∘render"
        );
    }
}

#[test]
fn grammar_enumerated_specs_validate_and_roundtrip() {
    // 1000 seeded points of the default grammar space: each must pass
    // both validation phases (structural parse, expansion into resolved
    // machine configs) and round-trip exactly like hand-written specs.
    let specs = tartan_scenario::Pattern::tartan_default().select(0x005e_ed7a_47a4, 1000);
    assert_eq!(specs.len(), 1000, "the default space holds 1000+ points");
    for (case, spec) in specs.iter().enumerate() {
        let rendered = spec.to_json();
        // Phase 1: the rendered document passes structural validation.
        let reparsed = ScenarioSpec::from_json(&rendered).unwrap_or_else(|e| {
            panic!(
                "case {case} ({}): rendered spec does not re-parse: {e}\n--- rendered ---\n{rendered}",
                spec.name
            )
        });
        assert!(
            &reparsed == spec,
            "case {case} ({}): parse(render(spec)) != spec\n{}\n--- rendered ---\n{rendered}",
            spec.name,
            first_divergence(&reparsed, spec)
        );
        assert_eq!(
            reparsed.to_json(),
            rendered,
            "case {case} ({}): render is not a fixed point of parse∘render",
            spec.name
        );
        // Phase 2: expansion resolves every variant into a validated
        // machine/software configuration and yields at least one job.
        let plan = spec
            .expand()
            .unwrap_or_else(|e| panic!("case {case} ({}): does not expand: {e}", spec.name));
        assert!(
            !plan.jobs.is_empty(),
            "case {case} ({}): expanded to zero jobs",
            spec.name
        );
    }
}

#[test]
fn checked_in_manifest_shapes_roundtrip() {
    // A hand-written nested document (prelude + multi-axis product +
    // label format + triple-state fcp/fault) as a fixed regression case.
    let doc = r#"{
        "schema_version": 1,
        "name": "rt",
        "title": "round-trip \"quoted\" λ",
        "params": {"scale": "paper", "steps": 3, "adjust": [{"field": "rays", "mul": 2}]},
        "machine": {"preset": "tartan", "fcp": null},
        "software": {"preset": "optimized"},
        "groups": [
            {
                "robots": ["DeliBot", "FlyBot"],
                "order": "axes_outer",
                "machine": {"fcp": {"xor_bits": 3}, "fault_plan": null},
                "prelude": [{"label": "ref"}],
                "axes": [
                    {"name": "size", "variants": [{"label": "512B", "machine": {"anl_region_bytes": 512}}]},
                    {"variants": [{"label": "x", "software": {"nns": "vln"}}]}
                ],
                "label_format": "{0} {1}"
            }
        ]
    }"#;
    let spec = ScenarioSpec::from_json(doc).expect("fixture parses");
    let rendered = spec.to_json();
    let reparsed = ScenarioSpec::from_json(&rendered).expect("render re-parses");
    assert!(reparsed == spec, "{}", first_divergence(&reparsed, &spec));
    assert_eq!(reparsed.to_json(), rendered);
}
