//! Microbenchmarks for the memory-hierarchy hot path: the per-line access
//! loop every simulated load/store takes through `MemorySystem::access`.
//!
//! Four regimes bracket the cases that dominate real runs:
//!
//! * `l1_hit` — the pure fast path: a working set resident in the L1.
//! * `l2_hit` — L1 misses that land in the private L2 (FCP-indexed on
//!   Tartan configs).
//! * `dram_miss` — the full-hierarchy miss: streaming accesses that walk
//!   L1 → L2 → L3 → DRAM and exercise fills, evictions, and writebacks.
//! * `prefetch_covered` — a sequential stream under the next-line
//!   prefetcher, so most demand accesses find a timely in-flight line.
//!
//! Host wall time per iteration is the figure of merit; simulated cycles
//! are irrelevant here. `cargo bench -p tartan-sim` runs these through the
//! in-tree criterion shim.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tartan_sim::{AccessKind, Machine, MachineConfig, MemPolicy, MemRun, MemorySystem};

/// Accesses per benchmark iteration, so per-line costs are measured over a
/// loop long enough to hide harness overhead.
const ACCESSES: u64 = 4096;

fn l1_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("memhier");
    group.sample_size(200);
    let cfg = MachineConfig::upgraded_baseline();
    let mut mem = MemorySystem::new(&cfg);
    // A tiny working set: 8 lines, touched once to warm the L1.
    for i in 0..8u64 {
        mem.access(0, 1, i * 64, 4, AccessKind::Read, MemPolicy::Normal, 0);
    }
    let mut now = 0u64;
    group.bench_function("l1_hit", |b| {
        b.iter(|| {
            let mut worst = 0;
            for i in 0..ACCESSES {
                let addr = (i % 8) * 64;
                now += 1;
                worst |= mem.access(0, 1, addr, 4, AccessKind::Read, MemPolicy::Normal, now);
            }
            black_box(worst)
        })
    });
    group.finish();
}

fn l2_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("memhier");
    group.sample_size(100);
    // Tartan config: the L2 runs FCP indexing, so this measures the
    // region/XOR index computation on every access.
    let cfg = MachineConfig::tartan();
    let mut mem = MemorySystem::new(&cfg);
    // A working set larger than the L1 but comfortably inside the L2:
    // 2048 lines striding past the L1 sets.
    let lines = 2048u64;
    let mut now = 0u64;
    for i in 0..lines {
        now += mem.access(0, 1, i * 64, 4, AccessKind::Read, MemPolicy::Normal, now);
    }
    group.bench_function("l2_hit_fcp", |b| {
        b.iter(|| {
            let mut worst = 0;
            for i in 0..ACCESSES {
                let addr = ((i * 97) % lines) * 64;
                now += 1;
                worst |= mem.access(0, 1, addr, 4, AccessKind::Read, MemPolicy::Normal, now);
            }
            black_box(worst)
        })
    });
    group.finish();
}

fn dram_miss(c: &mut Criterion) {
    let mut group = c.benchmark_group("memhier");
    group.sample_size(50);
    let cfg = MachineConfig::upgraded_baseline();
    let mut mem = MemorySystem::new(&cfg);
    let mut now = 0u64;
    let mut next_line = 0u64;
    group.bench_function("dram_miss_stream", |b| {
        b.iter(|| {
            let mut worst = 0;
            for _ in 0..ACCESSES {
                // Every access touches a never-seen line: full miss path,
                // with steady-state evictions once the hierarchy is warm.
                let addr = next_line * 64;
                next_line += 1;
                now += 1;
                worst |= mem.access(
                    0,
                    7,
                    addr,
                    4,
                    if next_line.is_multiple_of(5) {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                    MemPolicy::Normal,
                    now,
                );
            }
            black_box(worst)
        })
    });
    group.finish();
}

fn prefetch_covered(c: &mut Criterion) {
    let mut group = c.benchmark_group("memhier");
    group.sample_size(50);
    let mut cfg = MachineConfig::upgraded_baseline();
    cfg.prefetcher = tartan_sim::PrefetcherKind::NextLine;
    let mut mem = MemorySystem::new(&cfg);
    let mut now = 0u64;
    let mut next_line = 0u64;
    group.bench_function("prefetch_covered_stream", |b| {
        b.iter(|| {
            let mut worst = 0;
            for _ in 0..ACCESSES {
                let addr = next_line * 64;
                next_line += 1;
                // A compute gap gives prefetches time to land, so demand
                // accesses take the covered fast path.
                now += 400;
                worst |= mem.access(0, 7, addr, 4, AccessKind::Read, MemPolicy::Normal, now);
            }
            black_box(worst)
        })
    });
    group.finish();
}

fn batch_unit_stride(c: &mut Criterion) {
    let mut group = c.benchmark_group("memhier");
    group.sample_size(100);
    // The batched interface's best case: one unit-stride run over a small
    // working set, where nearly every element collapses onto the previous
    // line (bulk L1-hit accounting instead of one `access` call each).
    let mut m = Machine::new(MachineConfig::upgraded_baseline());
    let buf = m.buffer_from_vec(vec![0.0f32; 4096], MemPolicy::Normal);
    let run = MemRun {
        base: buf.base_addr(),
        stride: 4,
        count: ACCESSES,
        bytes: 4,
        kind: AccessKind::Read,
        policy: MemPolicy::Normal,
        lead_instr: 3,
        dependent: false,
    };
    group.bench_function("batch_unit_stride_run", |b| {
        b.iter(|| {
            m.run(|p| p.run_mem(7, &run));
            black_box(m.wall_cycles())
        })
    });
    group.finish();
}

fn batch_ovec_strided(c: &mut Criterion) {
    let mut group = c.benchmark_group("memhier");
    group.sample_size(100);
    // OVEC oriented loads with a fractional stride — the ray-walk access
    // shape — through the fused zero-materialization lane fetch.
    let mut m = Machine::new(MachineConfig::tartan());
    let buf = m.buffer_from_vec(vec![0.0f32; 256 * 256], MemPolicy::Normal);
    group.bench_function("batch_ovec_strided_run", |b| {
        b.iter(|| {
            m.run(|p| {
                let lanes = p.lanes();
                for block in 0..(ACCESSES as usize / lanes) {
                    p.oriented_load_discard(
                        7,
                        buf.base_addr(),
                        100.0 + block as f64 * lanes as f64 * 257.3,
                        257.3,
                        lanes,
                        4,
                        256 * 256,
                        MemPolicy::Normal,
                    );
                }
            });
            black_box(m.wall_cycles())
        })
    });
    group.finish();
}

fn batch_mixed_interleave(c: &mut Criterion) {
    let mut group = c.benchmark_group("memhier");
    group.sample_size(100);
    // Realistic kernel shape: short scalar bursts (pose bookkeeping)
    // interleaved with medium address runs (a ray segment), exercising the
    // batch entry/exit overhead rather than the steady state.
    let mut m = Machine::new(MachineConfig::upgraded_baseline());
    let buf = m.buffer_from_vec(vec![0.0f32; 4096], MemPolicy::Normal);
    group.bench_function("batch_mixed_interleave", |b| {
        b.iter(|| {
            m.run(|p| {
                for i in 0..(ACCESSES / 32) {
                    let base = buf.base_addr() + (i % 64) * 64;
                    p.read(7, base, 4, MemPolicy::Normal);
                    p.flop(6);
                    p.run_mem(
                        7,
                        &MemRun {
                            base,
                            stride: 4,
                            count: 30,
                            bytes: 4,
                            kind: AccessKind::Read,
                            policy: MemPolicy::Normal,
                            lead_instr: 8,
                            dependent: false,
                        },
                    );
                    p.write(7, base, 4, MemPolicy::Normal);
                }
            });
            black_box(m.wall_cycles())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    l1_hit,
    l2_hit,
    dram_miss,
    prefetch_covered,
    batch_unit_stride,
    batch_ovec_strided,
    batch_mixed_interleave
);
criterion_main!(benches);
