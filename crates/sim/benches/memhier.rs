//! Microbenchmarks for the memory-hierarchy hot path: the per-line access
//! loop every simulated load/store takes through `MemorySystem::access`.
//!
//! Four regimes bracket the cases that dominate real runs:
//!
//! * `l1_hit` — the pure fast path: a working set resident in the L1.
//! * `l2_hit` — L1 misses that land in the private L2 (FCP-indexed on
//!   Tartan configs).
//! * `dram_miss` — the full-hierarchy miss: streaming accesses that walk
//!   L1 → L2 → L3 → DRAM and exercise fills, evictions, and writebacks.
//! * `prefetch_covered` — a sequential stream under the next-line
//!   prefetcher, so most demand accesses find a timely in-flight line.
//!
//! Host wall time per iteration is the figure of merit; simulated cycles
//! are irrelevant here. `cargo bench -p tartan-sim` runs these through the
//! in-tree criterion shim.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use tartan_sim::{AccessKind, MachineConfig, MemPolicy, MemorySystem};

/// Accesses per benchmark iteration, so per-line costs are measured over a
/// loop long enough to hide harness overhead.
const ACCESSES: u64 = 4096;

fn l1_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("memhier");
    group.sample_size(200);
    let cfg = MachineConfig::upgraded_baseline();
    let mut mem = MemorySystem::new(&cfg);
    // A tiny working set: 8 lines, touched once to warm the L1.
    for i in 0..8u64 {
        mem.access(0, 1, i * 64, 4, AccessKind::Read, MemPolicy::Normal, 0);
    }
    let mut now = 0u64;
    group.bench_function("l1_hit", |b| {
        b.iter(|| {
            let mut worst = 0;
            for i in 0..ACCESSES {
                let addr = (i % 8) * 64;
                now += 1;
                worst |= mem.access(0, 1, addr, 4, AccessKind::Read, MemPolicy::Normal, now);
            }
            black_box(worst)
        })
    });
    group.finish();
}

fn l2_hit(c: &mut Criterion) {
    let mut group = c.benchmark_group("memhier");
    group.sample_size(100);
    // Tartan config: the L2 runs FCP indexing, so this measures the
    // region/XOR index computation on every access.
    let cfg = MachineConfig::tartan();
    let mut mem = MemorySystem::new(&cfg);
    // A working set larger than the L1 but comfortably inside the L2:
    // 2048 lines striding past the L1 sets.
    let lines = 2048u64;
    let mut now = 0u64;
    for i in 0..lines {
        now += mem.access(0, 1, i * 64, 4, AccessKind::Read, MemPolicy::Normal, now);
    }
    group.bench_function("l2_hit_fcp", |b| {
        b.iter(|| {
            let mut worst = 0;
            for i in 0..ACCESSES {
                let addr = ((i * 97) % lines) * 64;
                now += 1;
                worst |= mem.access(0, 1, addr, 4, AccessKind::Read, MemPolicy::Normal, now);
            }
            black_box(worst)
        })
    });
    group.finish();
}

fn dram_miss(c: &mut Criterion) {
    let mut group = c.benchmark_group("memhier");
    group.sample_size(50);
    let cfg = MachineConfig::upgraded_baseline();
    let mut mem = MemorySystem::new(&cfg);
    let mut now = 0u64;
    let mut next_line = 0u64;
    group.bench_function("dram_miss_stream", |b| {
        b.iter(|| {
            let mut worst = 0;
            for _ in 0..ACCESSES {
                // Every access touches a never-seen line: full miss path,
                // with steady-state evictions once the hierarchy is warm.
                let addr = next_line * 64;
                next_line += 1;
                now += 1;
                worst |= mem.access(
                    0,
                    7,
                    addr,
                    4,
                    if next_line.is_multiple_of(5) {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                    MemPolicy::Normal,
                    now,
                );
            }
            black_box(worst)
        })
    });
    group.finish();
}

fn prefetch_covered(c: &mut Criterion) {
    let mut group = c.benchmark_group("memhier");
    group.sample_size(50);
    let mut cfg = MachineConfig::upgraded_baseline();
    cfg.prefetcher = tartan_sim::PrefetcherKind::NextLine;
    let mut mem = MemorySystem::new(&cfg);
    let mut now = 0u64;
    let mut next_line = 0u64;
    group.bench_function("prefetch_covered_stream", |b| {
        b.iter(|| {
            let mut worst = 0;
            for _ in 0..ACCESSES {
                let addr = next_line * 64;
                next_line += 1;
                // A compute gap gives prefetches time to land, so demand
                // accesses take the covered fast path.
                now += 400;
                worst |= mem.access(0, 7, addr, 4, AccessKind::Read, MemPolicy::Normal, now);
            }
            black_box(worst)
        })
    });
    group.finish();
}

criterion_group!(benches, l1_hit, l2_hit, dram_miss, prefetch_covered);
criterion_main!(benches);
