//! Property-based tests for the simulator's core invariants.

use proptest::prelude::*;
use tartan_sim::{
    Cache, FcpConfig, FcpManipulation, Machine, MachineConfig, MemPolicy, PrefetcherKind,
};

fn arb_fcp() -> impl Strategy<Value = FcpConfig> {
    (
        prop_oneof![Just(512u64), Just(1024u64)],
        2u32..=3,
        prop_oneof![
            Just(FcpManipulation::Increment),
            Just(FcpManipulation::Double),
            Just(FcpManipulation::Square)
        ],
    )
        .prop_map(|(region_bytes, xor_bits, manipulation)| FcpConfig {
            region_bytes,
            xor_bits,
            manipulation,
        })
}

proptest! {
    // The machine-level properties below simulate full cache hierarchies;
    // a modest case count keeps the suite fast while still exploring the
    // parameter space.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A cache never holds more lines than its capacity, with or without
    /// FCP, under arbitrary access streams.
    #[test]
    fn cache_capacity_invariant(
        lines in proptest::collection::vec((0u64..4096, any::<bool>()), 1..500),
        fcp in proptest::option::of(arb_fcp()),
    ) {
        let mut c = Cache::new(16 * 1024, 8, 14, 64, fcp);
        let capacity = 16 * 1024 / 64;
        for (i, &(line, w)) in lines.iter().enumerate() {
            c.access(line, w, i as u64 * 10);
            prop_assert!(c.valid_lines() <= capacity);
        }
    }

    /// Every access after a fill hits until the line is evicted: the cache
    /// is coherent with its own `contains`.
    #[test]
    fn access_after_contains_hits(
        lines in proptest::collection::vec(0u64..512, 1..300),
    ) {
        let mut c = Cache::new(4096, 4, 4, 64, None);
        for (i, &line) in lines.iter().enumerate() {
            let resident = c.contains(line);
            let out = c.access(line, false, i as u64);
            prop_assert_eq!(out.hit, resident, "line {} at step {}", line, i);
        }
    }

    /// FCP indexing always maps a line to a stable set (deterministic) and
    /// lines of one region to at most 2^l distinct sets.
    #[test]
    fn fcp_region_spread_bounded(
        fcp in arb_fcp(),
        region in 0u64..100_000,
    ) {
        let c = Cache::new(256 * 1024, 8, 14, 64, Some(fcp));
        let lines_per_region = fcp.region_bytes / 64;
        let mut sets: Vec<u64> = (0..lines_per_region)
            .map(|o| c.index_of(region * lines_per_region + o))
            .collect();
        sets.sort_unstable();
        sets.dedup();
        prop_assert!(sets.len() as u64 <= 1 << fcp.xor_bits);
        // Deterministic:
        for o in 0..lines_per_region {
            let l = region * lines_per_region + o;
            prop_assert_eq!(c.index_of(l), c.index_of(l));
        }
    }

    /// Wall time and instruction counts are deterministic for a fixed
    /// access pattern, regardless of prefetcher choice, and monotone in the
    /// amount of work.
    #[test]
    fn machine_time_is_deterministic_and_monotone(
        n in 1usize..200,
        kind in prop_oneof![
            Just(PrefetcherKind::None),
            Just(PrefetcherKind::NextLine),
            Just(PrefetcherKind::Anl),
            Just(PrefetcherKind::Bingo)
        ],
    ) {
        let run = |count: usize| {
            let mut cfg = MachineConfig::upgraded_baseline();
            cfg.prefetcher = kind;
            let mut m = Machine::new(cfg);
            let buf = m.buffer_from_vec(vec![1.0f32; 4096], MemPolicy::Normal);
            m.run(|p| {
                let mut acc = 0.0;
                for i in 0..count {
                    acc += buf.get(p, 0x10, (i * 7) % 4096);
                    p.flop(2);
                }
                acc
            });
            (m.wall_cycles(), m.stats().instructions)
        };
        let a = run(n);
        let b = run(n);
        prop_assert_eq!(a, b, "same work must cost the same");
        let bigger = run(n + 50);
        prop_assert!(bigger.0 >= a.0);
        prop_assert!(bigger.1 > a.1);
    }

    /// Buffer element addresses never overlap across allocations.
    #[test]
    fn buffers_are_disjoint(sizes in proptest::collection::vec(1usize..1000, 1..20)) {
        let mut m = Machine::new(MachineConfig::legacy_baseline());
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for &s in &sizes {
            let b = m.buffer_from_vec(vec![0u32; s], MemPolicy::Normal);
            let start = b.base_addr();
            let end = b.addr_of(s - 1) + b.elem_bytes();
            for &(os, oe) in &ranges {
                prop_assert!(end <= os || start >= oe, "overlap");
            }
            ranges.push((start, end));
        }
    }

    /// FCP XOR indexing is a bijection per set-count (DESIGN.md §11): over
    /// the aligned window of `sets` regions, every set receives exactly
    /// `lines_per_region` lines — FCP redistributes conflicts, it never
    /// concentrates them.
    #[test]
    fn fcp_window_indexing_is_conserved(fcp in arb_fcp()) {
        let c = Cache::new(256 * 1024, 8, 14, 64, Some(fcp));
        let sets = 256 * 1024 / (64 * 8);
        let lines_per_region = fcp.region_bytes / 64;
        let mut per_set = vec![0u64; sets as usize];
        for line in 0..sets * lines_per_region {
            per_set[c.index_of(line) as usize] += 1;
        }
        for (s, &count) in per_set.iter().enumerate() {
            prop_assert_eq!(count, lines_per_region, "set {}", s);
        }
    }

    /// With enough sets, a region spreads over *exactly* `2^l` sets, not
    /// just at most: the XORed offset bits take every value in `0..2^l`
    /// and XOR-with-a-constant is injective.
    #[test]
    fn fcp_region_spread_is_exact_when_sets_suffice(
        fcp in arb_fcp(),
        region in 0u64..100_000,
    ) {
        let c = Cache::new(256 * 1024, 8, 14, 64, Some(fcp));
        let lines_per_region = fcp.region_bytes / 64;
        let mut sets: Vec<u64> = (0..lines_per_region)
            .map(|o| c.index_of(region * lines_per_region + o))
            .collect();
        sets.sort_unstable();
        sets.dedup();
        prop_assert_eq!(sets.len() as u64, 1 << fcp.xor_bits);
    }

    /// The capacity invariant survives prefetch fills racing demand fills:
    /// however demand accesses and `insert_prefetch` interleave, the cache
    /// never holds more lines than `sets × ways`, and a just-inserted
    /// prefetched line is immediately visible to `contains`.
    #[test]
    fn cache_capacity_invariant_with_prefetch_mix(
        ops in proptest::collection::vec(
            (0u64..4096, any::<bool>(), any::<bool>()),
            1..500,
        ),
        fcp in proptest::option::of(arb_fcp()),
    ) {
        let mut c = Cache::new(16 * 1024, 8, 14, 64, fcp);
        let capacity = 16 * 1024 / 64;
        for (i, &(line, w, prefetch)) in ops.iter().enumerate() {
            let now = i as u64 * 10;
            if prefetch {
                c.insert_prefetch(line, now + 40);
                prop_assert!(c.contains(line));
            } else {
                c.access(line, w, now);
            }
            prop_assert!(c.valid_lines() <= capacity);
        }
    }

    /// DRAM bandwidth accounting (DESIGN.md §11): with normal-policy
    /// traffic, DRAM bytes are line-granular and sandwiched by what the L3
    /// counters allow — at least one line per demand L3 miss, at most one
    /// extra per writeback — and L3↔L2 traffic is exactly one line per L3
    /// access (demand or prefetch probe) plus one per dirty L2 eviction.
    #[test]
    fn dram_accounting_matches_cache_counters(
        ops in proptest::collection::vec((0u64..512, any::<bool>()), 1..300),
        kind in prop_oneof![
            Just(PrefetcherKind::None),
            Just(PrefetcherKind::NextLine),
            Just(PrefetcherKind::Anl)
        ],
    ) {
        let mut cfg = MachineConfig::legacy_baseline();
        cfg.prefetcher = kind;
        // Tiny caches so short streams still spill to DRAM.
        (cfg.l1.size_bytes, cfg.l1.ways) = (1024, 2);
        (cfg.l2.size_bytes, cfg.l2.ways) = (4096, 4);
        (cfg.l3.size_bytes, cfg.l3.ways) = (8192, 4);
        let line = cfg.line_bytes;
        let mut m = Machine::new(cfg);
        m.run(|p| {
            for &(slot, w) in &ops {
                let addr = slot * line;
                if w {
                    p.write(0x10, addr, 8, MemPolicy::Normal);
                } else {
                    p.read(0x10, addr, 8, MemPolicy::Normal);
                }
            }
        });
        let s = m.stats();
        prop_assert_eq!(s.dram_bytes % line, 0);
        prop_assert!(s.dram_bytes >= line * s.l3.misses);
        prop_assert!(s.dram_bytes <= line * (s.l3.misses + s.l3.writebacks));
        prop_assert_eq!(
            s.l3_traffic_bytes,
            line * (s.l3.accesses + s.l2.writebacks)
        );
    }

    /// Prefetching never makes execution slower in wall cycles than not
    /// prefetching *for a purely sequential scan* (timeliness may limit the
    /// gain, but late prefetches still shorten the wait).
    #[test]
    fn sequential_scan_never_hurt_by_prefetch(passes in 1usize..4) {
        let time = |kind: PrefetcherKind| {
            let mut cfg = MachineConfig::upgraded_baseline();
            cfg.prefetcher = kind;
            let mut m = Machine::new(cfg);
            let buf = m.buffer_from_vec(vec![0.0f32; 64 * 1024], MemPolicy::Normal);
            m.run(|p| {
                for _ in 0..passes {
                    for i in 0..buf.len() {
                        let _ = buf.get(p, 0x20, i);
                        p.flop(1);
                    }
                }
            });
            m.wall_cycles()
        };
        let none = time(PrefetcherKind::None);
        for kind in [PrefetcherKind::NextLine, PrefetcherKind::Anl, PrefetcherKind::Bingo] {
            let t = time(kind);
            prop_assert!(
                t <= none + none / 50,
                "{:?} took {} vs {} without prefetching",
                kind, t, none
            );
        }
    }
}
