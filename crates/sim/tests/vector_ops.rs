//! Integration tests for the vector memory operations (contiguous loads,
//! gathers, and OVEC oriented loads) — the §IV mechanisms.

use tartan_sim::{Machine, MachineConfig, MemPolicy};

fn machine() -> Machine {
    Machine::new(MachineConfig::tartan())
}

#[test]
fn vload_is_cheaper_than_scalar_loop_over_same_range() {
    let mut m = machine();
    let buf = m.buffer_from_vec(vec![1.0f32; 4096], MemPolicy::Normal);
    // Warm.
    m.run(|p| {
        for i in 0..4096 {
            let _ = buf.get(p, 1, i);
        }
    });
    let w0 = m.wall_cycles();
    m.run(|p| {
        for i in 0..4096 {
            let _ = buf.get(p, 1, i);
        }
    });
    let scalar = m.wall_cycles() - w0;
    let w0 = m.wall_cycles();
    m.run(|p| {
        let mut i = 0;
        while i < 4096 {
            let _ = buf.vget(p, 1, i, 256);
            i += 256;
        }
    });
    let vector = m.wall_cycles() - w0;
    assert!(
        vector * 2 < scalar,
        "vector {vector} should be ≥2x cheaper than scalar {scalar}"
    );
}

#[test]
fn gather_charges_lane_serialization() {
    // Gather issue throughput is bounded by the L1 ports per *lane*
    // (VGATHERDPS issues one element access per lane): twice the lanes
    // costs about twice the port time on warm data.
    let mut m = machine();
    let buf = m.buffer_from_vec(vec![0.0f32; 8192], MemPolicy::Normal);
    m.run(|p| {
        for i in 0..8192 {
            let _ = buf.get(p, 1, i);
        }
    });
    let wide: Vec<u64> = (0..16).map(|l| buf.addr_of(l * 512)).collect();
    let narrow: Vec<u64> = wide[..8].to_vec();
    let time = |m: &mut Machine, addrs: &[u64]| {
        let w0 = m.wall_cycles();
        m.run(|p| {
            for _ in 0..100 {
                p.vgather(7, addrs, 4, MemPolicy::Normal);
            }
        });
        m.wall_cycles() - w0
    };
    let t16 = time(&mut m, &wide);
    let t8 = time(&mut m, &narrow);
    assert!(
        t8 < t16 && t16 <= 2 * t8 + 200,
        "8-lane {t8} vs 16-lane {t16}: port-bound scaling expected"
    );
}

#[test]
fn oriented_load_clamps_to_the_buffer() {
    let mut m = machine();
    let buf = m.buffer_from_vec(vec![0.0f32; 128], MemPolicy::Normal);
    let idx = m.run(|p| {
        // A stride that runs far past the end, and a negative start.
        let a = p.oriented_load(1, buf.base_addr(), 100.0, 50.0, 8, 4, 128, MemPolicy::Normal);
        let b = p.oriented_load(1, buf.base_addr(), -10.0, 1.0, 4, 4, 128, MemPolicy::Normal);
        (a, b)
    });
    assert!(idx.0.iter().all(|&i| (0..128).contains(&i)));
    assert_eq!(idx.0.last(), Some(&127));
    assert!(idx.1.iter().all(|&i| (0..128).contains(&i)));
    assert_eq!(idx.1[0], 0);
}

#[test]
fn oriented_load_counts_one_instruction_per_block() {
    let mut m = machine();
    let buf = m.buffer_from_vec(vec![0.0f32; 65536], MemPolicy::Normal);
    let before = m.stats().instructions;
    m.run(|p| {
        for k in 0..64 {
            let _ = p.oriented_load(
                1,
                buf.base_addr(),
                k as f64 * 16.0,
                1.0,
                16,
                4,
                65536,
                MemPolicy::Normal,
            );
        }
    });
    let instr = m.stats().instructions - before;
    // One O_MOVE per block — the §IV instruction-count collapse.
    assert_eq!(instr, 64);
}

#[test]
fn vector_compute_packs_lanes() {
    let mut m = machine(); // AVX-512: 16 lanes
    let before = m.stats().instructions;
    m.run(|p| p.vec_compute(160));
    assert_eq!(m.stats().instructions - before, 10);
    let mut m8 = Machine::new(MachineConfig::legacy_baseline()); // AVX2: 8 lanes
    let before = m8.stats().instructions;
    m8.run(|p| p.vec_compute(160));
    assert_eq!(m8.stats().instructions - before, 20);
}
