//! The workspace-wide recoverable error type.
//!
//! Library paths that a caller can sensibly recover from return
//! `Result<_, TartanError>` instead of panicking; panics remain only for
//! bugs (violated internal invariants).

use crate::accel::AccelId;

/// A recoverable failure in the simulator or a layer built on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TartanError {
    /// An accelerator invocation failed outright (injected hard fault).
    /// The outputs of the invocation must be discarded.
    AccelInvocationFailed {
        /// The accelerator that failed.
        accel: AccelId,
    },
    /// A component was constructed with an unusable configuration.
    InvalidConfig(String),
    /// A supervisor invariant did not hold (e.g., a CPU re-run regressed
    /// the best-known cost, which supervision promises cannot happen).
    Supervision(String),
    /// A search could not run on the given inputs.
    Search(String),
}

impl std::fmt::Display for TartanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TartanError::AccelInvocationFailed { accel } => {
                write!(f, "accelerator invocation failed on {accel:?}")
            }
            TartanError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TartanError::Supervision(msg) => write!(f, "supervision violation: {msg}"),
            TartanError::Search(msg) => write!(f, "search failed: {msg}"),
        }
    }
}

impl std::error::Error for TartanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = TartanError::InvalidConfig("zero PEs".into());
        assert!(e.to_string().contains("zero PEs"));
        let e = TartanError::Supervision("regressed".into());
        assert!(e.to_string().contains("regressed"));
        let e = TartanError::Search("empty graph".into());
        assert!(e.to_string().contains("empty graph"));
    }
}
