//! Deterministic, seedable fault injection.
//!
//! A [`FaultPlan`] describes *where* and *how often* the simulated hardware
//! misbehaves; the machine draws from a private splitmix64 stream seeded by
//! the plan, so a given `(plan, workload)` pair always injects the same
//! faults — a failing campaign reproduces bit-identically.
//!
//! Three fault sites are modeled:
//!
//! * **Accelerator output perturbation** — after an `invoke_accel`, all
//!   outputs are scaled by a bounded relative error (`accel_error_*`)
//!   and/or one output gets a single mantissa/sign bit flipped
//!   (`accel_bitflip_rate`). This is the misbehavior AXAR supervision
//!   (§V) is specified against.
//! * **Accelerator invocation failure** — the invocation is charged but
//!   returns no usable result (`accel_fail_rate`), exercising
//!   retry/degradation paths.
//! * **Memory latency spikes** — scalar loads/stores take
//!   `mem_spike_cycles` extra cycles (`mem_spike_rate`). Timing-only:
//!   functional state is untouched, so these are *injected* but never
//!   *detected* by output supervision.
//!
//! A plan whose rates are all zero is guaranteed to leave execution —
//! stats, cycles, and functional outputs — bit-identical to having no plan
//! at all.

/// Cumulative fault counters, reported in
/// [`MachineStats::faults`](crate::MachineStats).
///
/// Under correct supervision the counters satisfy
/// `injected >= detected >= recovered` and `unrecovered == 0`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Faults the plan injected (all sites).
    pub injected: u64,
    /// Faults a supervisor noticed (accelerator-output faults are
    /// detectable; latency spikes are not).
    pub detected: u64,
    /// Detected faults whose effect was fully repaired (retry or
    /// CPU-exact re-execution).
    pub recovered: u64,
    /// Faults known to have corrupted a consumed result (e.g., a failed
    /// invocation on an unsupervised path).
    pub unrecovered: u64,
}

impl FaultStats {
    /// Injected faults no supervisor noticed (timing-only spikes, or
    /// perturbations below the detector's threshold):
    /// `injected − detected`.
    pub fn undetected(&self) -> u64 {
        self.injected.saturating_sub(self.detected)
    }
}

/// A deterministic fault-injection schedule.
///
/// Rates are per-event probabilities in `[0, 1]`: accelerator rates apply
/// per invocation, the memory rate per scalar load/store. All zero rates
/// (see [`FaultPlan::quiet`]) make the plan a guaranteed no-op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed of the private fault RNG stream.
    pub seed: u64,
    /// Probability that an invocation's outputs get a bounded relative
    /// error applied.
    pub accel_error_rate: f64,
    /// Maximum relative error magnitude (outputs scale by `1 ± e`,
    /// `|e| <= accel_error_magnitude`).
    pub accel_error_magnitude: f64,
    /// Probability that one output of an invocation gets a single
    /// mantissa-or-sign bit flip.
    pub accel_bitflip_rate: f64,
    /// Probability that an invocation fails outright (charged, no result).
    pub accel_fail_rate: f64,
    /// Probability that a scalar memory access takes a latency spike.
    pub mem_spike_rate: f64,
    /// Extra cycles added by one latency spike.
    pub mem_spike_cycles: u64,
}

impl FaultPlan {
    /// A plan that injects nothing (all rates zero).
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            accel_error_rate: 0.0,
            accel_error_magnitude: 0.0,
            accel_bitflip_rate: 0.0,
            accel_fail_rate: 0.0,
            mem_spike_rate: 0.0,
            mem_spike_cycles: 0,
        }
    }

    /// Whether every rate is zero (the plan cannot inject anything).
    pub fn is_quiet(&self) -> bool {
        self.accel_error_rate == 0.0
            && self.accel_bitflip_rate == 0.0
            && self.accel_fail_rate == 0.0
            && self.mem_spike_rate == 0.0
    }

    /// Adds bounded-relative-error perturbation of accelerator outputs.
    pub fn with_accel_errors(mut self, rate: f64, magnitude: f64) -> Self {
        self.accel_error_rate = rate;
        self.accel_error_magnitude = magnitude;
        self
    }

    /// Adds single-bit flips on accelerator outputs.
    pub fn with_accel_bitflips(mut self, rate: f64) -> Self {
        self.accel_bitflip_rate = rate;
        self
    }

    /// Adds outright accelerator invocation failures.
    pub fn with_accel_failures(mut self, rate: f64) -> Self {
        self.accel_fail_rate = rate;
        self
    }

    /// Adds memory latency spikes.
    pub fn with_mem_spikes(mut self, rate: f64, cycles: u64) -> Self {
        self.mem_spike_rate = rate;
        self.mem_spike_cycles = cycles;
        self
    }
}

/// splitmix64 — small, fast, and good enough for Bernoulli draws; kept
/// private to the sim so the fault stream never couples to workload RNG.
#[derive(Debug, Clone)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)`.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Live injection state: the plan plus its RNG stream.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    plan: FaultPlan,
    rng: SplitMix64,
}

impl FaultState {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = SplitMix64::new(plan.seed);
        FaultState { plan, rng }
    }

    /// Bernoulli draw. Zero rates never touch the RNG, so a quiet plan is
    /// a strict no-op.
    fn roll(&mut self, rate: f64) -> bool {
        rate > 0.0 && self.rng.unit() < rate
    }

    /// Latency spike for one scalar memory access (0 = none). The caller
    /// counts a returned spike as one injected fault.
    pub(crate) fn mem_spike(&mut self) -> u64 {
        if self.roll(self.plan.mem_spike_rate) {
            self.plan.mem_spike_cycles
        } else {
            0
        }
    }

    /// Applies accelerator faults to one invocation's outputs.
    ///
    /// Returns `(injected, failed)`: the number of faults injected and
    /// whether the invocation failed outright (outputs must be discarded).
    pub(crate) fn accel_faults(&mut self, outputs: &mut [f32]) -> (u64, bool) {
        if self.roll(self.plan.accel_fail_rate) {
            return (1, true);
        }
        let mut injected = 0;
        if self.roll(self.plan.accel_error_rate) {
            // One bounded relative error over the whole result vector —
            // the NPU's systematic approximation drifting out of spec.
            let e = (self.rng.unit() * 2.0 - 1.0) * self.plan.accel_error_magnitude;
            for o in outputs.iter_mut() {
                *o *= 1.0 + e as f32;
            }
            injected += 1;
        }
        if !outputs.is_empty() && self.roll(self.plan.accel_bitflip_rate) {
            // A single-event upset in the output buffer: flip one mantissa
            // or sign bit (never the exponent, which keeps the value
            // finite — non-finite corruption is covered by large relative
            // errors upstream of the plausibility checks).
            let idx = (self.rng.next_u64() % outputs.len() as u64) as usize;
            let bit = {
                let b = self.rng.next_u64() % 24;
                if b == 23 {
                    31 // sign
                } else {
                    b as u32
                }
            };
            outputs[idx] = f32::from_bits(outputs[idx].to_bits() ^ (1 << bit));
            injected += 1;
        }
        (injected, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_plan_injects_nothing_and_never_draws() {
        let mut s = FaultState::new(FaultPlan::quiet(1));
        let before = s.rng.state;
        let mut out = vec![1.0f32, 2.0];
        for _ in 0..100 {
            assert_eq!(s.mem_spike(), 0);
            assert_eq!(s.accel_faults(&mut out), (0, false));
        }
        assert_eq!(out, vec![1.0, 2.0]);
        assert_eq!(s.rng.state, before, "quiet plans must not advance the RNG");
    }

    #[test]
    fn injection_is_deterministic_per_seed() {
        let plan = FaultPlan::quiet(7)
            .with_accel_errors(0.5, 0.25)
            .with_accel_bitflips(0.25)
            .with_accel_failures(0.1);
        let run = || {
            let mut s = FaultState::new(plan);
            let mut log = Vec::new();
            for _ in 0..200 {
                let mut out = vec![1.0f32, -3.5, 0.25];
                let (n, failed) = s.accel_faults(&mut out);
                log.push((n, failed, out));
            }
            log
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn relative_errors_are_bounded() {
        let plan = FaultPlan::quiet(3).with_accel_errors(1.0, 0.1);
        let mut s = FaultState::new(plan);
        for _ in 0..500 {
            let mut out = vec![2.0f32];
            let (n, failed) = s.accel_faults(&mut out);
            assert_eq!((n, failed), (1, false));
            assert!((out[0] - 2.0).abs() <= 0.2 + 1e-6, "out of bounds: {}", out[0]);
        }
    }

    #[test]
    fn bitflips_keep_values_finite() {
        let plan = FaultPlan::quiet(11).with_accel_bitflips(1.0);
        let mut s = FaultState::new(plan);
        for _ in 0..500 {
            let mut out = vec![1.5f32, -2.5, 1e-3];
            s.accel_faults(&mut out);
            assert!(out.iter().all(|v| v.is_finite()), "{out:?}");
        }
    }

    #[test]
    fn fail_rate_one_always_fails() {
        let plan = FaultPlan::quiet(5).with_accel_failures(1.0);
        let mut s = FaultState::new(plan);
        let mut out = vec![1.0f32];
        assert_eq!(s.accel_faults(&mut out), (1, true));
    }

    #[test]
    fn spikes_add_the_configured_cycles() {
        let plan = FaultPlan::quiet(9).with_mem_spikes(1.0, 77);
        let mut s = FaultState::new(plan);
        assert_eq!(s.mem_spike(), 77);
    }
}
