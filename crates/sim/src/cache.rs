//! A set-associative cache with true-LRU replacement, prefetched-line
//! tracking (including *timeliness*), and Tartan's FCP indexing and recency
//! manipulation (§VII).

use crate::config::FcpConfig;
use crate::stats::CacheStats;

/// Outcome of a demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the line was present (including in-flight prefetches).
    pub hit: bool,
    /// Whether this was the first demand touch of a *timely* prefetched
    /// line (a fully covered miss).
    pub covered_by_prefetch: bool,
    /// If the access caught an in-flight prefetch that had not yet arrived,
    /// the remaining cycles until the data is ready (a *late* prefetch:
    /// §VIII-C-2's "untimeliness"; counted as a miss for coverage).
    pub late_by: Option<u64>,
    /// Line evicted to make room, if the access missed and displaced a
    /// valid victim.
    pub evicted: Option<EvictedLine>,
}

/// A line displaced from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedLine {
    /// Line number (byte address / line size) of the victim.
    pub line_number: u64,
    /// Whether the victim was dirty (requires a writeback).
    pub dirty: bool,
    /// Whether the victim was a prefetched line never touched by a demand
    /// access — prefetch pollution (the waste FCP and ANL's accuracy are
    /// meant to contain).
    pub prefetched: bool,
}

/// Outcome of a prefetch insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrefetchOutcome {
    /// The line was already resident; nothing happened.
    AlreadyPresent,
    /// The line was inserted; `evicted` reports any displaced victim.
    Inserted {
        /// Displaced victim, if any.
        evicted: Option<EvictedLine>,
    },
}

/// Packed per-line status bits: one byte instead of three `bool`s keeps a
/// [`Line`] at 24 bytes, so a whole set stays inside one or two cachelines
/// of the *host* during the tag scan.
const VALID: u8 = 1 << 0;
const DIRTY: u8 = 1 << 1;
const PREFETCHED: u8 = 1 << 2;

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    line_number: u64,
    /// Cycle (thread-local time domain) at which a prefetched line's data
    /// arrives.
    ready: u64,
    /// LRU age: 0 = most recently used; larger = closer to eviction.
    age: u32,
    /// `VALID` / `DIRTY` / `PREFETCHED` bits.
    flags: u8,
}

impl Line {
    #[inline(always)]
    fn valid(&self) -> bool {
        self.flags & VALID != 0
    }
}

/// One set-associative cache level.
///
/// The cache stores no data — only tags and replacement metadata — because
/// the simulator is execution-driven: functional values live in the
/// workload's own memory. The per-access loop is the simulator's hottest
/// code: ways live in one flat preallocated array, the FCP index function
/// runs on masks/shifts precomputed at construction, and LRU aging is
/// branchless over the set.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: u64,
    ways: u32,
    latency: u64,
    fcp: Option<FcpConfig>,
    /// `sets - 1`: the conventional index mask.
    sets_mask: u64,
    /// `lines_per_region - 1` (0 without FCP).
    fcp_offset_mask: u64,
    /// `log2(lines_per_region)` — shifts replace the per-access divisions.
    fcp_region_shift: u32,
    /// `offset_bits - xor_bits`: selects the high offset bits to XOR.
    fcp_offset_shift: u32,
    lines: Vec<Line>,
    /// Public running statistics for this level.
    pub stats: CacheStats,
}

/// Age values saturate here so FCP's `x²` manipulation cannot overflow.
const AGE_MAX: u32 = 1 << 15;

impl Cache {
    /// Creates a cache level.
    ///
    /// # Panics
    ///
    /// Panics if sizes are not powers of two, if the geometry is degenerate,
    /// or if an FCP configuration is inconsistent with the line size
    /// (`region < 2^l` lines).
    pub fn new(
        size_bytes: u64,
        ways: u32,
        latency: u64,
        line_bytes: u64,
        fcp: Option<FcpConfig>,
    ) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1, "cache needs at least one way");
        let sets = size_bytes / (line_bytes * u64::from(ways));
        assert!(
            sets >= 1 && sets.is_power_of_two(),
            "set count must be a power of two"
        );
        let (fcp_offset_mask, fcp_region_shift, fcp_offset_shift) = match fcp {
            None => (0, 0, 0),
            Some(fcp) => {
                let lines_per_region = fcp.region_bytes / line_bytes;
                assert!(
                    lines_per_region.is_power_of_two() && lines_per_region >= (1 << fcp.xor_bits),
                    "FCP region must hold at least 2^l lines"
                );
                let offset_bits = lines_per_region.trailing_zeros();
                (
                    lines_per_region - 1,
                    offset_bits,
                    offset_bits - fcp.xor_bits,
                )
            }
        };
        Cache {
            sets,
            ways,
            latency,
            fcp,
            sets_mask: sets - 1,
            fcp_offset_mask,
            fcp_region_shift,
            fcp_offset_shift,
            lines: vec![Line::default(); (sets as usize) * (ways as usize)],
            stats: CacheStats::default(),
        }
    }

    /// Access latency of this level in cycles.
    pub fn latency(&self) -> u64 {
        self.latency
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Computes the set index for a line number.
    ///
    /// Without FCP this is the conventional low-order-bits index. With FCP
    /// (§VII-B) the index is *region-based*: the region number provides the
    /// index, with the high-order `l` bits of the intra-region offset XORed
    /// into its low-order `l` bits. Lines of one region therefore spread
    /// over exactly `2^l` sets — enough sets to exploit spatial locality,
    /// few enough that a runaway region cannot monopolize the cache. The
    /// low-order offset bits are excluded from the XOR so that next-line
    /// prefetch bursts land set-local rather than hashing across the whole
    /// cache.
    #[inline(always)]
    pub fn index_of(&self, line_number: u64) -> u64 {
        match self.fcp {
            None => line_number & self.sets_mask,
            Some(_) => {
                let offset = line_number & self.fcp_offset_mask;
                let region = line_number >> self.fcp_region_shift;
                (region ^ (offset >> self.fcp_offset_shift)) & self.sets_mask
            }
        }
    }

    #[inline(always)]
    fn set_slice(&mut self, index: u64) -> &mut [Line] {
        let start = (index as usize) * (self.ways as usize);
        &mut self.lines[start..start + self.ways as usize]
    }

    /// True-LRU touch: the accessed way becomes age 0, ways that were
    /// younger than it age by one. The loop is branchless: the accessed way
    /// itself contributes a zero increment (`age < old_age` is false for
    /// `age == old_age`), as do invalid and already-older ways. No clamp is
    /// needed: a way only increments when `age < old_age ≤ AGE_MAX`.
    #[inline(always)]
    fn touch(set: &mut [Line], way: usize) {
        let old_age = set[way].age;
        for line in set.iter_mut() {
            line.age += (line.valid() & (line.age < old_age)) as u32;
        }
        set[way].age = 0;
    }

    /// Tag compare across all ways, branchless: every way contributes a
    /// conditional-move instead of an early-exit branch, so the scan runs at
    /// a fixed few cycles regardless of which way (if any) matches. A line
    /// is resident in at most one way, so keeping the last match is
    /// equivalent to the first.
    #[inline(always)]
    fn find(set: &[Line], line_number: u64) -> Option<usize> {
        let mut found = usize::MAX;
        for (w, l) in set.iter().enumerate() {
            let hit = l.valid() & (l.line_number == line_number);
            found = if hit { w } else { found };
        }
        (found != usize::MAX).then_some(found)
    }

    /// First invalid way, else the oldest (smallest way index on ties) — a
    /// single pass instead of the scan-then-max two-pass.
    #[inline(always)]
    fn victim(set: &[Line]) -> usize {
        let mut victim = 0usize;
        let mut victim_age = set[0].age;
        for (w, l) in set.iter().enumerate() {
            if !l.valid() {
                return w;
            }
            if l.age > victim_age {
                victim = w;
                victim_age = l.age;
            }
        }
        victim
    }

    /// Applies FCP's recency manipulation `m(x)` to resident lines that
    /// share the filled line's region (§VII-B, steps 3–5 of Fig. 5).
    fn manipulate_region(&mut self, index: u64, filled_line: u64) {
        let Some(fcp) = self.fcp else { return };
        let region_shift = self.fcp_region_shift;
        let region = filled_line >> region_shift;
        let m = fcp.manipulation;
        for line in self.set_slice(index) {
            if line.valid()
                && line.line_number != filled_line
                && line.line_number >> region_shift == region
            {
                line.age = m.apply(line.age).min(AGE_MAX);
            }
        }
    }

    /// Performs a demand access (load or store) on a line at thread-local
    /// time `now`.
    pub fn access(&mut self, line_number: u64, is_write: bool, now: u64) -> AccessOutcome {
        self.stats.accesses += 1;
        let index = self.index_of(line_number);
        let set = self.set_slice(index);
        if let Some(way) = Self::find(set, line_number) {
            let was_prefetched = set[way].flags & PREFETCHED != 0;
            let ready = set[way].ready;
            set[way].flags = (set[way].flags & !PREFETCHED) | if is_write { DIRTY } else { 0 };
            Self::touch(set, way);
            if was_prefetched {
                self.stats.prefetches_useful += 1;
                if ready <= now {
                    // Timely prefetch: the miss is fully covered.
                    self.stats.prefetch_covered += 1;
                    return AccessOutcome {
                        hit: true,
                        covered_by_prefetch: true,
                        late_by: None,
                        evicted: None,
                    };
                }
                // Late prefetch: the line is in flight; the access waits for
                // the remainder and counts as a miss for coverage.
                self.stats.misses += 1;
                self.stats.prefetches_late += 1;
                return AccessOutcome {
                    hit: true,
                    covered_by_prefetch: false,
                    late_by: Some(ready - now),
                    evicted: None,
                };
            }
            self.stats.hits += 1;
            return AccessOutcome {
                hit: true,
                covered_by_prefetch: false,
                late_by: None,
                evicted: None,
            };
        }
        // Miss: fill.
        self.stats.misses += 1;
        let evicted = self.fill(index, line_number, is_write, false, 0);
        AccessOutcome {
            hit: false,
            covered_by_prefetch: false,
            late_by: None,
            evicted,
        }
    }

    /// Inserts a prefetched line whose data arrives at `ready`.
    pub fn insert_prefetch(&mut self, line_number: u64, ready: u64) -> PrefetchOutcome {
        let index = self.index_of(line_number);
        let set = self.set_slice(index);
        if Self::find(set, line_number).is_some() {
            return PrefetchOutcome::AlreadyPresent;
        }
        self.stats.prefetches_issued += 1;
        let evicted = self.fill(index, line_number, false, true, ready);
        PrefetchOutcome::Inserted { evicted }
    }

    fn fill(
        &mut self,
        index: u64,
        line_number: u64,
        dirty: bool,
        prefetched: bool,
        ready: u64,
    ) -> Option<EvictedLine> {
        let set = self.set_slice(index);
        let way = Self::victim(set);
        let evicted = if set[way].valid() {
            Some(EvictedLine {
                line_number: set[way].line_number,
                dirty: set[way].flags & DIRTY != 0,
                prefetched: set[way].flags & PREFETCHED != 0,
            })
        } else {
            None
        };
        set[way] = Line {
            line_number,
            ready,
            // Start "infinitely old" so the touch below ages every other
            // resident line by one, as a true LRU stack would.
            age: AGE_MAX,
            flags: VALID | if dirty { DIRTY } else { 0 } | if prefetched { PREFETCHED } else { 0 },
        };
        Self::touch(set, way);
        if let Some(ev) = evicted {
            self.stats.evictions += 1;
            if ev.dirty {
                self.stats.writebacks += 1;
            }
        }
        self.manipulate_region(index, line_number);
        evicted
    }

    /// Whether a line is currently resident (no state change).
    pub fn contains(&self, line_number: u64) -> bool {
        let index = self.index_of(line_number);
        let start = (index as usize) * (self.ways as usize);
        self.lines[start..start + self.ways as usize]
            .iter()
            .any(|l| l.valid() && l.line_number == line_number)
    }

    /// Number of currently valid lines (for invariants/testing).
    pub fn valid_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid()).count()
    }

    /// Invalidates everything, keeping statistics.
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            *line = Line::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FcpManipulation;

    fn small_cache() -> Cache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        Cache::new(512, 2, 4, 64, None)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small_cache();
        let first = c.access(10, false, 0);
        assert!(!first.hit);
        let second = c.access(10, false, 10);
        assert!(second.hit);
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = small_cache();
        // Lines 0, 4, 8 all map to set 0 (index = line & 3).
        c.access(0, false, 0);
        c.access(4, false, 0);
        c.access(0, false, 0); // 0 is now MRU, 4 is LRU
        let out = c.access(8, false, 0);
        assert_eq!(
            out.evicted,
            Some(EvictedLine {
                line_number: 4,
                dirty: false,
                prefetched: false
            })
        );
        assert!(c.contains(0));
        assert!(c.contains(8));
        assert!(!c.contains(4));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small_cache();
        c.access(0, true, 0);
        c.access(4, false, 0);
        let out = c.access(8, false, 0);
        assert_eq!(
            out.evicted,
            Some(EvictedLine {
                line_number: 0,
                dirty: true,
                prefetched: false
            })
        );
        assert_eq!(c.stats.writebacks, 1);
    }

    #[test]
    fn timely_prefetch_covers_demand() {
        let mut c = small_cache();
        assert!(matches!(
            c.insert_prefetch(12, 50),
            PrefetchOutcome::Inserted { .. }
        ));
        assert!(matches!(
            c.insert_prefetch(12, 50),
            PrefetchOutcome::AlreadyPresent
        ));
        let out = c.access(12, false, 100);
        assert!(out.hit && out.covered_by_prefetch && out.late_by.is_none());
        // Second touch is a plain hit.
        let out2 = c.access(12, false, 101);
        assert!(out2.hit && !out2.covered_by_prefetch);
        assert_eq!(c.stats.prefetch_covered, 1);
        assert_eq!(c.stats.prefetches_useful, 1);
        assert_eq!(c.stats.prefetches_issued, 1);
    }

    #[test]
    fn late_prefetch_counts_as_miss_and_waits() {
        let mut c = small_cache();
        c.insert_prefetch(12, 500);
        let out = c.access(12, false, 100);
        assert!(out.hit && !out.covered_by_prefetch);
        assert_eq!(out.late_by, Some(400));
        assert_eq!(c.stats.prefetches_late, 1);
        assert_eq!(c.stats.misses, 1);
        assert_eq!(c.stats.prefetch_covered, 0);
        // The line has arrived by the next touch: plain hit.
        let out2 = c.access(12, false, 600);
        assert!(out2.hit && out2.late_by.is_none());
    }

    #[test]
    fn unused_prefetched_victim_is_flagged() {
        let mut c = small_cache();
        // Prefetch into set 0, never touch it, then stream demand lines
        // through the same set until it is displaced.
        c.insert_prefetch(0, 10);
        c.access(4, false, 0);
        let out = c.access(8, false, 0);
        let ev = out.evicted.expect("set is full, something must go");
        assert!(ev.prefetched, "untouched prefetched victim must be flagged");
        // A demanded prefetched line loses the flag before eviction.
        let mut c2 = small_cache();
        c2.insert_prefetch(0, 10);
        c2.access(0, false, 20); // demand touch clears `prefetched`
        c2.access(4, false, 21);
        c2.access(8, false, 22);
        let ev2 = c2.access(12, false, 23).evicted.expect("victim");
        assert!(!ev2.prefetched);
    }

    #[test]
    fn capacity_is_never_exceeded() {
        let mut c = small_cache();
        for line in 0..100 {
            c.access(line, line % 3 == 0, line);
        }
        assert!(c.valid_lines() <= 8);
    }

    fn fcp_cache(l: u32, m: FcpManipulation) -> Cache {
        // 16 sets × 4 ways × 64 B = 4 KB; regions of 512 B = 8 lines.
        Cache::new(
            4096,
            4,
            4,
            64,
            Some(FcpConfig {
                region_bytes: 512,
                xor_bits: l,
                manipulation: m,
            }),
        )
    }

    #[test]
    fn fcp_spreads_region_over_2_to_l_sets() {
        for l in [1u32, 2, 3] {
            let c = fcp_cache(l, FcpManipulation::Square);
            // All 8 lines of region 5.
            let mut sets: Vec<u64> = (0..8).map(|o| c.index_of(5 * 8 + o)).collect();
            sets.sort_unstable();
            sets.dedup();
            assert_eq!(sets.len(), 1 << l, "l = {l}");
        }
    }

    #[test]
    fn fcp_indexing_separates_regions() {
        let c = fcp_cache(2, FcpManipulation::Square);
        // Offset-0 lines of 16 consecutive regions hit 16 distinct sets.
        let mut sets: Vec<u64> = (0..16).map(|r| c.index_of(r * 8)).collect();
        sets.sort_unstable();
        sets.dedup();
        assert_eq!(sets.len(), 16);
    }

    #[test]
    fn fcp_manipulation_ages_region_mates() {
        // With m(x) = x², filling lines from one region repeatedly ages
        // the region's other lines, so a *different* region's line survives
        // contention that plain LRU would lose.
        let mut c = fcp_cache(1, FcpManipulation::Square);
        // Region A = region 0 (lines 0..8); region B = region 16 (lines 128..136).
        let a0 = 0u64;
        let b0 = 128u64;
        assert_eq!(c.index_of(a0), c.index_of(b0));
        c.access(b0, false, 0); // B resident
        // Stream region-A lines mapping to the same set (offset_high = 0).
        c.access(0, false, 1);
        c.access(1, false, 2);
        c.access(2, false, 3);
        c.access(3, false, 4);
        assert!(c.contains(b0), "FCP must protect the other region's line");
    }

    #[test]
    fn plain_lru_would_evict_other_region() {
        // Control for the test above: without FCP, streaming one region
        // through a set evicts the bystander.
        let mut c = Cache::new(4096 / 16, 4, 4, 64, None); // 1 set × 4 ways
        c.access(100, false, 0);
        c.access(0, false, 1);
        c.access(1, false, 2);
        c.access(2, false, 3);
        c.access(3, false, 4);
        assert!(!c.contains(100));
    }

    #[test]
    fn flush_clears_contents_but_not_stats() {
        let mut c = small_cache();
        c.access(3, false, 0);
        c.flush();
        assert!(!c.contains(3));
        assert_eq!(c.stats.misses, 1);
    }

    #[test]
    #[should_panic(expected = "FCP region must hold")]
    fn fcp_region_smaller_than_xor_span_rejected() {
        let _ = Cache::new(
            4096,
            4,
            4,
            64,
            Some(FcpConfig {
                region_bytes: 128, // 2 lines, but l = 2 needs ≥ 4
                xor_bits: 2,
                manipulation: FcpManipulation::Square,
            }),
        );
    }
}
