//! Simulated-address-space allocation and the instrumented [`Buffer`].
//!
//! A `Buffer<T>` couples a real `Vec<T>` (the functional data) with a
//! simulated base address, so that every element access drives the timing
//! model with a realistic address stream.
//!
//! The module also hosts the per-worker *arena*: a thread-local pool of
//! `f32` backing stores. Robot environments allocate the same few large
//! grids and point clouds every run, and a bench campaign re-runs
//! environments thousands of times per worker thread; recycling the host
//! `Vec` keeps those pages hot instead of paying mmap + first-touch
//! faults on every run. Recycling is automatic — dropping any
//! `Buffer<f32>` returns its storage to the dropping thread's pool — and
//! purely a host-side optimization: [`recycled_f32`] hands back fully
//! zeroed storage, so functional results and simulated timing are
//! bit-for-bit unaffected.

use std::any::Any;
use std::cell::RefCell;

use crate::machine::{Machine, MemRun, Proc};
use crate::memory::{AccessKind, MemPolicy};

/// Backing stores smaller than this (in elements) are cheaper to
/// reallocate than to pool; they are dropped normally.
const ARENA_MIN_LEN: usize = 1024;

/// Cap on pooled vectors per thread, bounding arena memory to a handful
/// of environment-sized allocations.
const ARENA_MAX_VECS: usize = 32;

std::thread_local! {
    static F32_ARENA: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a zeroed `len`-element `f32` vector, reusing a recycled backing
/// store from this thread's arena when one is large enough. Exactly
/// equivalent to `vec![0.0; len]`.
pub fn recycled_f32(len: usize) -> Vec<f32> {
    let reused = F32_ARENA.with(|pool| {
        let mut pool = pool.borrow_mut();
        pool.iter()
            .position(|v| v.capacity() >= len)
            .map(|i| pool.swap_remove(i))
    });
    match reused {
        Some(mut v) => {
            v.clear();
            v.resize(len, 0.0);
            v
        }
        None => vec![0.0; len],
    }
}

/// Returns a backing store to the dropping thread's arena (called from
/// `Buffer`'s `Drop`). Small or surplus vectors are simply freed.
fn recycle_f32(v: Vec<f32>) {
    if v.capacity() < ARENA_MIN_LEN {
        return;
    }
    F32_ARENA.with(|pool| {
        let mut pool = pool.borrow_mut();
        if pool.len() < ARENA_MAX_VECS {
            pool.push(v);
        }
    });
}

/// An instrumented array living in the simulated address space.
///
/// # Examples
///
/// ```
/// use tartan_sim::{Machine, MachineConfig, MemPolicy};
///
/// let mut m = Machine::new(MachineConfig::upgraded_baseline());
/// let mut buf = m.buffer_from_vec(vec![0.0f32; 1024], MemPolicy::Normal);
/// m.run(|p| {
///     let x = buf.get(p, 0x10, 5);
///     buf.set(p, 0x11, 5, x + 1.0);
/// });
/// assert_eq!(buf.peek(5), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct Buffer<T: 'static> {
    base: u64,
    policy: MemPolicy,
    data: Vec<T>,
}

impl<T: 'static> Drop for Buffer<T> {
    fn drop(&mut self) {
        // `f32` backing stores feed the per-worker arena; everything else
        // drops normally. The downcast erases the generic without unsafe.
        let data: &mut dyn Any = &mut self.data;
        if let Some(v) = data.downcast_mut::<Vec<f32>>() {
            recycle_f32(std::mem::take(v));
        }
    }
}

impl Machine {
    /// Allocates a raw simulated address range (line-aligned).
    pub fn alloc_raw(&mut self, bytes: u64) -> u64 {
        let align = 64;
        let base = (self.next_addr + align - 1) & !(align - 1);
        self.next_addr = base + bytes.max(1);
        base
    }

    /// Wraps an existing vector in a simulated buffer.
    pub fn buffer_from_vec<T: 'static>(&mut self, data: Vec<T>, policy: MemPolicy) -> Buffer<T> {
        let bytes = (data.len().max(1) * std::mem::size_of::<T>()) as u64;
        let base = self.alloc_raw(bytes);
        Buffer { base, policy, data }
    }

    /// Allocates a zero-initialized buffer of `len` elements.
    pub fn alloc_buffer<T: Default + Clone + 'static>(&mut self, len: usize, policy: MemPolicy) -> Buffer<T> {
        self.buffer_from_vec(vec![T::default(); len], policy)
    }
}

impl<T: 'static> Buffer<T> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Simulated base address.
    pub fn base_addr(&self) -> u64 {
        self.base
    }

    /// Element size in bytes.
    pub fn elem_bytes(&self) -> u64 {
        std::mem::size_of::<T>() as u64
    }

    /// Simulated byte address of element `i`.
    pub fn addr_of(&self, i: usize) -> u64 {
        self.base + (i as u64) * self.elem_bytes()
    }

    /// The caching policy this buffer was allocated with.
    pub fn policy(&self) -> MemPolicy {
        self.policy
    }

    /// Untimed view of the functional data.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Untimed mutable view of the functional data (for initialization).
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T: Copy + 'static> Buffer<T> {
    /// Timed, independent (OoO-overlappable) read of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get(&self, p: &mut Proc<'_>, pc: u64, i: usize) -> T {
        p.read(pc, self.addr_of(i), self.elem_bytes(), self.policy);
        self.data[i]
    }

    /// Timed, *dependent* read: the workload cannot proceed without the
    /// value (pointer chase). Stalls for the full memory latency.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn get_dep(&self, p: &mut Proc<'_>, pc: u64, i: usize) -> T {
        p.read_dep(pc, self.addr_of(i), self.elem_bytes(), self.policy);
        self.data[i]
    }

    /// Timed write of element `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn set(&mut self, p: &mut Proc<'_>, pc: u64, i: usize, value: T) {
        p.write(pc, self.addr_of(i), self.elem_bytes(), self.policy);
        self.data[i] = value;
    }

    /// Untimed read (use when timing was already charged, e.g. after an
    /// OVEC load returned this element's index).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn peek(&self, i: usize) -> T {
        self.data[i]
    }

    /// Untimed write (initialization).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn poke(&mut self, i: usize, value: T) {
        self.data[i] = value;
    }

    /// Timed batched *scalar* read of elements `[start, start + n)` as one
    /// address run (see [`MemRun`]): charge-for-charge identical to a loop
    /// of `p.instr(lead_instr)` followed by [`Buffer::get`] per element,
    /// but executed as a single run the memory system can stream. Returns
    /// the functional slice.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn get_run(&self, p: &mut Proc<'_>, pc: u64, start: usize, n: usize, lead_instr: u64) -> &[T] {
        assert!(start + n <= self.data.len(), "run read out of bounds");
        p.run_mem(
            pc,
            &MemRun {
                base: self.addr_of(start),
                stride: self.elem_bytes() as i64,
                count: n as u64,
                bytes: self.elem_bytes(),
                kind: AccessKind::Read,
                policy: self.policy,
                lead_instr,
                dependent: false,
            },
        );
        &self.data[start..start + n]
    }

    /// Timed batched scalar write of `values` into elements starting at
    /// `start` — one address run, identical to `p.instr(lead_instr)` +
    /// [`Buffer::set`] per element.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn set_run(&mut self, p: &mut Proc<'_>, pc: u64, start: usize, values: &[T], lead_instr: u64) {
        assert!(start + values.len() <= self.data.len(), "run write out of bounds");
        p.run_mem(
            pc,
            &MemRun {
                base: self.addr_of(start),
                stride: self.elem_bytes() as i64,
                count: values.len() as u64,
                bytes: self.elem_bytes(),
                kind: AccessKind::Write,
                policy: self.policy,
                lead_instr,
                dependent: false,
            },
        );
        self.data[start..start + values.len()].copy_from_slice(values);
    }

    /// Timed contiguous vector load of elements `[start, start + n)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn vget(&self, p: &mut Proc<'_>, pc: u64, start: usize, n: usize) -> &[T] {
        assert!(start + n <= self.data.len(), "vector load out of bounds");
        if n > 0 {
            p.vload(pc, self.addr_of(start), (n as u64) * self.elem_bytes(), self.policy);
        }
        &self.data[start..start + n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    #[test]
    fn allocations_do_not_overlap() {
        let mut m = Machine::new(MachineConfig::legacy_baseline());
        let a = m.buffer_from_vec(vec![0u8; 100], MemPolicy::Normal);
        let b = m.buffer_from_vec(vec![0u8; 100], MemPolicy::Normal);
        assert!(a.base_addr() + 100 <= b.base_addr());
        assert_eq!(a.base_addr() % 64, 0);
        assert_eq!(b.base_addr() % 64, 0);
    }

    #[test]
    fn get_and_set_round_trip_with_timing() {
        let mut m = Machine::new(MachineConfig::legacy_baseline());
        let mut buf = m.buffer_from_vec(vec![1.5f32, 2.5], MemPolicy::Normal);
        let v = m.run(|p| {
            let v = buf.get(p, 1, 0);
            buf.set(p, 2, 1, v * 2.0);
            buf.get_dep(p, 3, 1)
        });
        assert_eq!(v, 3.0);
        assert!(m.wall_cycles() > 0);
        assert_eq!(m.stats().l1.accesses, 3);
    }

    #[test]
    fn element_addresses_are_contiguous() {
        let mut m = Machine::new(MachineConfig::legacy_baseline());
        let buf = m.buffer_from_vec(vec![0.0f64; 4], MemPolicy::Normal);
        assert_eq!(buf.addr_of(1) - buf.addr_of(0), 8);
        assert_eq!(buf.elem_bytes(), 8);
    }

    #[test]
    fn vget_returns_the_range() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let buf = m.buffer_from_vec((0..32).map(|i| i as f32).collect::<Vec<_>>(), MemPolicy::Normal);
        let sum: f32 = m.run(|p| buf.vget(p, 1, 8, 16).iter().sum());
        assert_eq!(sum, (8..24).sum::<i32>() as f32);
    }

    #[test]
    fn dropping_an_f32_buffer_feeds_the_arena() {
        // A deliberately odd size no other test on this thread allocates,
        // so the pointer round-trip below can only come from recycling.
        let len = 123_457;
        let mut m = Machine::new(MachineConfig::legacy_baseline());
        let buf = m.buffer_from_vec(vec![1.0f32; len], MemPolicy::Normal);
        let ptr = buf.as_slice().as_ptr();
        drop(buf);
        let v = recycled_f32(len);
        assert_eq!(v.as_ptr(), ptr, "arena must hand back the recycled store");
        assert_eq!(v.len(), len);
        assert!(v.iter().all(|&x| x == 0.0), "recycled storage must be zeroed");
    }

    #[test]
    fn small_buffers_bypass_the_arena() {
        let mut m = Machine::new(MachineConfig::legacy_baseline());
        // Well under ARENA_MIN_LEN: the drop must not pool it, so a fresh
        // request of the same size gets a new allocation (we can only
        // observe that indirectly — the recycled vector is still correct).
        drop(m.buffer_from_vec(vec![2.0f32; 8], MemPolicy::Normal));
        let v = recycled_f32(8);
        assert_eq!(v, vec![0.0f32; 8]);
    }

    #[test]
    fn peek_and_poke_are_untimed() {
        let mut m = Machine::new(MachineConfig::legacy_baseline());
        let mut buf = m.buffer_from_vec(vec![0u32; 8], MemPolicy::Normal);
        buf.poke(3, 7);
        assert_eq!(buf.peek(3), 7);
        assert_eq!(m.wall_cycles(), 0);
        assert_eq!(m.stats().l1.accesses, 0);
    }
}
