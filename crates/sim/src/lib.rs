#![warn(missing_docs)]

//! Execution-driven timing simulator for the Tartan robotic processor
//! (ISCA 2024).
//!
//! This crate plays the role ZSim plays in the paper: it models the
//! baseline Intel Core i7-10610U-class host of §III-A — four out-of-order
//! cores, a 32 KB/256 KB/8 MB cache hierarchy at 4/14/45-cycle latencies,
//! and DDR4-class memory — plus every architectural feature Tartan adds:
//!
//! * **OVEC** oriented vector loads with in-hardware address generation
//!   ([`Proc::oriented_load`], §IV),
//! * **FCP** fuzzy intra-application cache partitioning in the private L2
//!   ([`FcpConfig`], §VII),
//! * **robot-semantic prefetching** (ANL / next-line / Bingo attached to
//!   the L2, §VI-D),
//! * **engineering optimizations**: configurable line size, AVX-512,
//!   write-through producer/consumer regions (§III-A),
//! * an accelerator attachment point for the **NPU** ([`Accelerator`], §V),
//! * the optimistic **Intel ray-casting accelerator** model
//!   ([`MemPolicy::IntelLvs`], Fig. 7).
//!
//! Workloads are ordinary Rust code whose data accesses flow through
//! [`Buffer`] handles; the simulator accumulates cycles, instructions,
//! cache statistics, traffic, and per-phase breakdowns.
//!
//! # Examples
//!
//! ```
//! use tartan_sim::{Machine, MachineConfig, MemPolicy};
//!
//! let mut m = Machine::new(MachineConfig::tartan());
//! let grid = m.buffer_from_vec(vec![0.0f32; 256 * 256], MemPolicy::Normal);
//! m.run(|p| {
//!     // An oriented ray walk, one O_MOVE per 16 cells.
//!     let idx = p.oriented_load(0x42, grid.base_addr(), 100.0, 257.3, 16, 4, 256 * 256, MemPolicy::Normal);
//!     assert_eq!(idx.len(), 16);
//! });
//! assert!(m.wall_cycles() > 0);
//! ```

mod accel;
mod alloc;
mod cache;
mod config;
mod error;
mod fault;
mod machine;
mod memory;
mod stats;
mod vector;

pub use accel::{AccelId, Accelerator, InvokeCost};
pub use alloc::{recycled_f32, Buffer};
pub use cache::{AccessOutcome, Cache, EvictedLine, PrefetchOutcome};
pub use config::{
    CacheConfig, ConfigError, FcpConfig, FcpManipulation, MachineConfig, NpuMode, PrefetcherKind,
    VectorIsa,
};
pub use error::TartanError;
pub use fault::{FaultPlan, FaultStats};
pub use machine::{Machine, MemRun, Proc, PHASE_COMM, PHASE_OTHER};
pub use memory::{AccessKind, MemPolicy, MemorySystem};
pub use stats::{CacheStats, MachineStats, PhaseStats};
pub use vector::{oriented_lane_index, oriented_lane_indices};

// Telemetry surface, re-exported so workloads can attach sinks without a
// separate dependency on `tartan-telemetry`.
pub use tartan_telemetry as telemetry;
pub use tartan_telemetry::{Event, Interest, SharedSink, Sink};
