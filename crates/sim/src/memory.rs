//! The three-level cache hierarchy with per-core L1/L2, a shared L3, a DRAM
//! bandwidth/latency model, L2 prefetching, write-through regions, and the
//! optional Intel local-voxel-storage model of Fig. 7.

use std::collections::HashSet;
use std::fmt;

use tartan_prefetch::{Anl, Bingo, NextLine, NoPrefetch, PrefetchContext, Prefetcher};
use tartan_telemetry::{CacheOutcome, Event, Interest, Level, SharedSink};

use crate::cache::{Cache, EvictedLine, PrefetchOutcome};
use crate::config::{MachineConfig, PrefetcherKind};
use crate::stats::CacheStats;

/// Per-allocation caching policy (§III-A engineering optimizations and the
/// Fig. 7 accelerator model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum MemPolicy {
    /// Ordinary write-back, write-allocate cacheable memory.
    #[default]
    Normal,
    /// Producer/consumer region managed write-through (§III-A): stores do
    /// not dirty cache lines; the written bytes stream to the L3 instead of
    /// costing whole-line writebacks later.
    WriteThrough,
    /// Data served by the Intel ray-casting accelerator's local voxel
    /// storage: each line pays the memory hierarchy exactly once, then hits
    /// in the LVS at zero cost (the paper's optimistic model, §VIII-A).
    IntelLvs,
}

/// Kind of demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// The full memory system.
pub struct MemorySystem {
    line_bytes: u64,
    /// `log2(line_bytes)` — the per-access address→line math runs on
    /// shifts, not divisions.
    line_shift: u32,
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    prefetchers: Vec<Box<dyn Prefetcher + Send>>,
    dram_latency: u64,
    /// `dram_latency + line_bytes / dram_bytes_per_cycle`, precomputed:
    /// the full DRAM fill penalty charged on an L3 miss.
    dram_fill_latency: u64,
    write_through_enabled: bool,
    intel_lvs_enabled: bool,
    lvs: HashSet<u64>,
    /// Bytes transferred on the DRAM bus.
    pub dram_bytes: u64,
    /// Bytes transferred between L3 and the private caches.
    pub l3_traffic_bytes: u64,
    candidate_buf: Vec<u64>,
    sink: Option<SharedSink>,
    /// Cached interest mask of the attached sink; [`Interest::none`] when
    /// no sink is attached, so every instrumentation site reduces to one
    /// bit test.
    interest: Interest,
    /// Machine wall cycles at the start of the executing section; added to
    /// thread-local `now` to produce global event stamps.
    pub(crate) time_base: u64,
}

impl MemorySystem {
    /// Builds the hierarchy described by `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        let mut l1 = Vec::with_capacity(cfg.cores);
        let mut l2 = Vec::with_capacity(cfg.cores);
        let mut prefetchers: Vec<Box<dyn Prefetcher + Send>> = Vec::with_capacity(cfg.cores);
        for _ in 0..cfg.cores {
            l1.push(Cache::new(
                cfg.l1.size_bytes,
                cfg.l1.ways,
                cfg.l1.latency,
                cfg.line_bytes,
                None,
            ));
            l2.push(Cache::new(
                cfg.l2.size_bytes,
                cfg.l2.ways,
                cfg.l2.latency,
                cfg.line_bytes,
                cfg.fcp,
            ));
            prefetchers.push(match cfg.prefetcher {
                PrefetcherKind::None => Box::new(NoPrefetch::new()),
                PrefetcherKind::NextLine => Box::new(NextLine::new(cfg.line_bytes)),
                PrefetcherKind::Anl => {
                    Box::new(Anl::with_region_bytes(cfg.line_bytes, cfg.anl_region_bytes))
                }
                PrefetcherKind::Bingo => Box::new(Bingo::new(cfg.line_bytes)),
            });
        }
        let l3 = Cache::new(
            cfg.l3.size_bytes,
            cfg.l3.ways,
            cfg.l3.latency,
            cfg.line_bytes,
            None,
        );
        MemorySystem {
            line_bytes: cfg.line_bytes,
            line_shift: cfg.line_bytes.trailing_zeros(),
            l1,
            l2,
            l3,
            prefetchers,
            dram_latency: cfg.dram_latency,
            dram_fill_latency: cfg.dram_latency + cfg.line_bytes / cfg.dram_bytes_per_cycle,
            write_through_enabled: cfg.write_through_regions,
            intel_lvs_enabled: cfg.intel_lvs,
            lvs: HashSet::new(),
            dram_bytes: 0,
            l3_traffic_bytes: 0,
            candidate_buf: Vec::new(),
            sink: None,
            interest: Interest::none(),
            time_base: 0,
        }
    }

    /// Attaches (or detaches) a telemetry sink, caching its interest mask.
    pub(crate) fn set_telemetry(&mut self, sink: Option<SharedSink>) {
        self.interest = sink
            .as_ref()
            .map_or(Interest::none(), |s| s.lock().expect("telemetry sink poisoned").interest());
        self.sink = sink;
    }

    /// Whether the attached sink wants `i`-category events. Inlined into
    /// every instrumentation site so the telemetry-disabled case costs a
    /// single load + bit test on the hot path.
    #[inline(always)]
    pub(crate) fn wants(&self, i: Interest) -> bool {
        self.interest.contains(i)
    }

    /// Delivers one event to the attached sink. Call sites guard with
    /// [`MemorySystem::wants`] so masked categories never construct events.
    #[inline]
    pub(crate) fn emit(&self, event: &Event) {
        if let Some(sink) = &self.sink {
            sink.lock().expect("telemetry sink poisoned").record(event);
        }
    }

    fn emit_eviction(&self, cycle: u64, level: Level, ev: &EvictedLine) {
        self.emit(&Event::CacheEviction {
            cycle,
            level,
            line_addr: ev.line_number * self.line_bytes,
            dirty: ev.dirty,
            prefetched_unused: ev.prefetched,
        });
    }

    /// Cache line size in bytes.
    pub fn line_bytes(&self) -> u64 {
        self.line_bytes
    }

    /// L1 hit latency (the floor below which OoO hides load latency).
    pub fn l1_latency(&self) -> u64 {
        self.l1[0].latency()
    }

    /// Performs a demand access of `bytes` at `addr` from `core` at
    /// thread-local time `now`, returning the latency of the slowest line
    /// touched. `now` anchors prefetch-timeliness accounting.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range or `bytes` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn access(
        &mut self,
        core: usize,
        pc: u64,
        addr: u64,
        bytes: u64,
        kind: AccessKind,
        policy: MemPolicy,
        now: u64,
    ) -> u64 {
        assert!(bytes > 0, "access must cover at least one byte");
        assert!(core < self.l1.len(), "core {core} out of range");
        let first_line = addr >> self.line_shift;
        let last_line = (addr + bytes - 1) >> self.line_shift;
        // Nearly every access fits one line; skip the loop machinery there.
        if first_line == last_line {
            return self.access_line(core, pc, first_line, kind, policy, bytes, now);
        }
        let mut worst = 0;
        for line in first_line..=last_line {
            worst = worst.max(self.access_line(core, pc, line, kind, policy, bytes, now));
        }
        worst
    }

    /// Latency of one line access.
    #[allow(clippy::too_many_arguments)]
    #[inline]
    fn access_line(
        &mut self,
        core: usize,
        pc: u64,
        line: u64,
        kind: AccessKind,
        policy: MemPolicy,
        store_bytes: u64,
        now: u64,
    ) -> u64 {
        // Intel LVS: after first touch, the voxel lives in the accelerator's
        // local storage and costs nothing. The policy test runs first so
        // the common `Normal` case never touches the hash set.
        if policy == MemPolicy::IntelLvs && self.intel_lvs_enabled && self.lvs.contains(&line) {
            return 0;
        }

        let is_write = kind == AccessKind::Write;
        let write_through = is_write && policy == MemPolicy::WriteThrough && self.write_through_enabled;
        // Write-through stores never dirty the caches; their payload streams
        // to the L3 at word granularity.
        let mark_dirty = is_write && !write_through;

        // The replay trace (opt-in): every decision below is a pure function
        // of this request stream plus the configuration, which is what lets
        // the differential oracle re-derive them from golden models.
        if self.wants(Interest::TRACE) {
            self.emit(&Event::MemRequest {
                cycle: self.time_base + now,
                core: core as u32,
                pc,
                line_addr: line * self.line_bytes,
                write: is_write,
                dirty: mark_dirty,
                wt_bytes: if write_through {
                    store_bytes.min(self.line_bytes)
                } else {
                    0
                },
                now,
            });
        }

        let l1 = &mut self.l1[core];
        let mut latency = l1.latency();
        let l1_out = l1.access(line, mark_dirty, now);
        if self.wants(Interest::CACHE) {
            let cycle = self.time_base + now;
            self.emit(&Event::CacheAccess {
                cycle,
                level: Level::L1,
                line_addr: line * self.line_bytes,
                write: is_write,
                outcome: if l1_out.hit {
                    CacheOutcome::Hit
                } else {
                    CacheOutcome::Miss
                },
            });
            if let Some(ev) = &l1_out.evicted {
                self.emit_eviction(cycle, Level::L1, ev);
            }
        }
        if !l1_out.hit {
            latency += self.l2[core].latency();
            let l2_out = self.l2[core].access(line, mark_dirty, now);
            if self.wants(Interest::CACHE) {
                let cycle = self.time_base + now;
                let outcome = if l2_out.covered_by_prefetch {
                    CacheOutcome::Covered
                } else if l2_out.late_by.is_some() {
                    CacheOutcome::Late
                } else if l2_out.hit {
                    CacheOutcome::Hit
                } else {
                    CacheOutcome::Miss
                };
                self.emit(&Event::CacheAccess {
                    cycle,
                    level: Level::L2,
                    line_addr: line * self.line_bytes,
                    write: is_write,
                    outcome,
                });
                if let Some(ev) = &l2_out.evicted {
                    self.emit_eviction(cycle, Level::L2, ev);
                }
            }
            // Train the L2 prefetcher; covered (and late) prefetch hits
            // count as misses for training so ANL keeps relearning the true
            // region density.
            let ctx = PrefetchContext {
                pc,
                line_addr: line * self.line_bytes,
                hit: l2_out.hit && !l2_out.covered_by_prefetch && l2_out.late_by.is_none(),
            };
            self.candidate_buf.clear();
            let mut candidates = std::mem::take(&mut self.candidate_buf);
            self.prefetchers[core].on_access(ctx, &mut candidates);

            if let Some(remaining) = l2_out.late_by {
                // In-flight prefetch: wait for the remainder of the fill.
                latency += remaining.min(self.dram_latency + self.l3.latency());
            } else if !l2_out.hit {
                latency += self.l3.latency();
                let l3_out = self.l3.access(line, false, now);
                if self.wants(Interest::CACHE) {
                    let cycle = self.time_base + now;
                    self.emit(&Event::CacheAccess {
                        cycle,
                        level: Level::L3,
                        line_addr: line * self.line_bytes,
                        write: false,
                        outcome: if l3_out.hit {
                            CacheOutcome::Hit
                        } else {
                            CacheOutcome::Miss
                        },
                    });
                    if let Some(ev) = &l3_out.evicted {
                        self.emit_eviction(cycle, Level::L3, ev);
                    }
                }
                self.l3_traffic_bytes += self.line_bytes;
                if !l3_out.hit {
                    latency += self.dram_fill_latency;
                    self.dram_bytes += self.line_bytes;
                    if let Some(ev) = l3_out.evicted {
                        if ev.dirty {
                            self.dram_bytes += self.line_bytes;
                        }
                    }
                }
            }
            if let Some(ev) = l2_out.evicted {
                self.prefetchers[core].on_eviction(ev.line_number * self.line_bytes);
                if ev.dirty {
                    // Writeback into L3 (traffic only; L3 tag state for
                    // victims is approximated as already present).
                    self.l3_traffic_bytes += self.line_bytes;
                }
            }

            // Issue prefetch candidates into the L2; their data arrives
            // after the fill path they take (L3 or DRAM).
            for &candidate in &candidates {
                self.issue_prefetch(core, candidate, now);
            }
            self.candidate_buf = candidates;
        }

        if write_through {
            // The written words stream through to the shared cache.
            self.l3_traffic_bytes += store_bytes.min(self.line_bytes);
        }

        if self.intel_lvs_enabled && policy == MemPolicy::IntelLvs {
            self.lvs.insert(line);
        }
        latency
    }

    /// Brings `line_addr` into the L2 as a prefetched line, charging traffic
    /// but no core latency. The line's data becomes ready after the fill
    /// path it takes (L3 hit or DRAM).
    fn issue_prefetch(&mut self, core: usize, line_addr: u64, now: u64) {
        let line = line_addr >> self.line_shift;
        if self.l2[core].contains(line) {
            return;
        }
        // Probe the L3 first to learn the fill latency.
        let l3_out = self.l3.access(line, false, now);
        if self.wants(Interest::CACHE) {
            let cycle = self.time_base + now;
            self.emit(&Event::CacheAccess {
                cycle,
                level: Level::L3,
                line_addr,
                write: false,
                outcome: if l3_out.hit {
                    CacheOutcome::Hit
                } else {
                    CacheOutcome::Miss
                },
            });
            if let Some(ev) = &l3_out.evicted {
                self.emit_eviction(cycle, Level::L3, ev);
            }
        }
        self.l3_traffic_bytes += self.line_bytes;
        let mut fill_latency = self.l3.latency() + self.l2[core].latency();
        if !l3_out.hit {
            fill_latency += self.dram_fill_latency;
            self.dram_bytes += self.line_bytes;
        }
        match self.l2[core].insert_prefetch(line, now + fill_latency) {
            PrefetchOutcome::AlreadyPresent => {}
            PrefetchOutcome::Inserted { evicted } => {
                if self.wants(Interest::PREFETCH) {
                    self.emit(&Event::PrefetchIssue {
                        cycle: self.time_base + now,
                        level: Level::L2,
                        line_addr,
                    });
                }
                if let Some(ev) = evicted {
                    self.prefetchers[core].on_eviction(ev.line_number * self.line_bytes);
                    if ev.dirty {
                        self.l3_traffic_bytes += self.line_bytes;
                    }
                    if self.wants(Interest::CACHE) {
                        self.emit_eviction(self.time_base + now, Level::L2, &ev);
                    }
                }
            }
        }
    }

    /// Records `n` guaranteed L1 hits collapsed out of a batched run
    /// ([`Proc::run_mem`](crate::Proc::run_mem)'s fast path). Equivalent to
    /// `n` repeat `access` calls to the resident MRU line with CACHE/TRACE
    /// telemetry masked: each is a plain hit whose LRU touch is a no-op, so
    /// only the counters move.
    pub(crate) fn note_l1_hits(&mut self, core: usize, n: u64) {
        let stats = &mut self.l1[core].stats;
        stats.accesses += n;
        stats.hits += n;
    }

    /// Merged L1 statistics across cores.
    pub fn l1_stats(&self) -> CacheStats {
        merge(self.l1.iter().map(|c| c.stats))
    }

    /// Merged L2 statistics across cores.
    pub fn l2_stats(&self) -> CacheStats {
        merge(self.l2.iter().map(|c| c.stats))
    }

    /// Shared L3 statistics.
    pub fn l3_stats(&self) -> CacheStats {
        self.l3.stats
    }

    /// Direct access to a core's L2 (for tests and diagnostics).
    pub fn l2_cache(&self, core: usize) -> &Cache {
        &self.l2[core]
    }
}

fn merge(iter: impl Iterator<Item = CacheStats>) -> CacheStats {
    let mut out = CacheStats::default();
    for s in iter {
        out.accesses += s.accesses;
        out.hits += s.hits;
        out.misses += s.misses;
        out.prefetch_covered += s.prefetch_covered;
        out.prefetches_issued += s.prefetches_issued;
        out.prefetches_useful += s.prefetches_useful;
        out.prefetches_late += s.prefetches_late;
        out.evictions += s.evictions;
        out.writebacks += s.writebacks;
    }
    out
}

impl fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySystem")
            .field("line_bytes", &self.line_bytes)
            .field("cores", &self.l1.len())
            .field("dram_bytes", &self.dram_bytes)
            .field("l3_traffic_bytes", &self.l3_traffic_bytes)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> MachineConfig {
        MachineConfig::legacy_baseline()
    }

    #[test]
    fn cold_miss_pays_full_hierarchy() {
        let cfg = small_config();
        let mut mem = MemorySystem::new(&cfg);
        let lat = mem.access(0, 1, 0, 4, AccessKind::Read, MemPolicy::Normal, 0);
        // 4 (L1) + 14 (L2) + 45 (L3) + 200 (DRAM) + 64/16 (transfer) = 267.
        assert_eq!(lat, 4 + 14 + 45 + 200 + 4);
        let hit = mem.access(0, 1, 0, 4, AccessKind::Read, MemPolicy::Normal, lat);
        assert_eq!(hit, 4);
    }

    #[test]
    fn l3_is_shared_between_cores() {
        let cfg = small_config();
        let mut mem = MemorySystem::new(&cfg);
        mem.access(0, 1, 4096, 4, AccessKind::Read, MemPolicy::Normal, 0);
        // Core 1 misses its private L1/L2 but hits the shared L3.
        let lat = mem.access(1, 1, 4096, 4, AccessKind::Read, MemPolicy::Normal, 0);
        assert_eq!(lat, 4 + 14 + 45);
    }

    #[test]
    fn line_size_changes_dram_traffic() {
        let legacy = MachineConfig::legacy_baseline();
        let upgraded = MachineConfig::upgraded_baseline();
        let run = |cfg: &MachineConfig| {
            let mut mem = MemorySystem::new(cfg);
            // Touch one word in each of 64 distinct 64-byte chunks.
            let mut now = 0;
            for i in 0..64u64 {
                now += mem.access(0, 1, i * 64, 4, AccessKind::Read, MemPolicy::Normal, now);
            }
            mem.dram_bytes
        };
        let b64 = run(&legacy);
        let b32 = run(&upgraded);
        assert_eq!(b64, 64 * 64);
        assert_eq!(b32, 64 * 32);
        // §III-A: smaller lines cut unnecessary data movement.
        assert!(b64 as f64 / b32 as f64 > 1.5);
    }

    #[test]
    fn write_through_cuts_l3_writeback_traffic() {
        let mut cfg = small_config();
        cfg.write_through_regions = true;
        // Producer writes one word per line, lines then evicted by a scan.
        let run = |policy: MemPolicy| {
            let mut mem = MemorySystem::new(&cfg);
            let mut now = 0;
            for i in 0..512u64 {
                now += mem.access(0, 1, i * 64, 8, AccessKind::Write, policy, now);
            }
            // Evict everything with a large read sweep.
            for i in 0..32_768u64 {
                now += mem.access(0, 2, 1 << 30 | (i * 64), 4, AccessKind::Read, MemPolicy::Normal, now);
            }
            mem.l3_traffic_bytes
        };
        let wb = run(MemPolicy::Normal);
        let wt = run(MemPolicy::WriteThrough);
        assert!(
            wt < wb,
            "write-through ({wt}) must move less L3 traffic than write-back ({wb})"
        );
    }

    #[test]
    fn prefetcher_covers_sequential_misses() {
        let mut cfg = small_config();
        cfg.prefetcher = PrefetcherKind::NextLine;
        let mut mem = MemorySystem::new(&cfg);
        let mut now = 0;
        for i in 0..256u64 {
            // A compute gap between accesses gives prefetches time to land.
            now += 400 + mem.access(0, 7, i * 64, 4, AccessKind::Read, MemPolicy::Normal, now);
        }
        let l2 = mem.l2_stats();
        assert!(l2.prefetch_covered > 0, "next-line must cover a stream");
        assert!(l2.coverage() > 0.5, "coverage was {}", l2.coverage());
    }

    #[test]
    fn anl_beats_next_line_on_dense_hot_regions() {
        // The paper's semantic workload shape (§VI-D): a few *dense* hot
        // regions (e.g. well-populated LSH buckets) are rescanned after
        // sweeps through *sparse* territory evict them. ANL learns each hot
        // region's density, keeps those entries (eviction favors low
        // max(CD, LD)), and bursts the whole region on the revisit;
        // degree-1 next-line prefetches arrive one access too late.
        // Returns (hot-phase coverage, overall accuracy).
        let run = |kind: PrefetcherKind| {
            let mut cfg = small_config();
            cfg.prefetcher = kind;
            let mut mem = MemorySystem::new(&cfg);
            let mut now = 0;
            let hot_pc = 7;
            let sweep_pc = 900;
            let (mut hot_covered, mut hot_misses) = (0u64, 0u64);
            for pass in 0..8 {
                let before = mem.l2_stats();
                // Dense phase: scan 8 hot 1 KB regions, 16 lines each.
                for region in 0..8u64 {
                    for line in 0..16u64 {
                        let addr = region * 1024 + line * 64;
                        now += 40
                            + mem.access(0, hot_pc, addr, 4, AccessKind::Read, MemPolicy::Normal, now);
                    }
                }
                if pass > 0 {
                    let after = mem.l2_stats();
                    hot_covered += after.prefetch_covered - before.prefetch_covered;
                    hot_misses += after.misses - before.misses;
                }
                // Sparse phase: one line per region, striding 513 lines so
                // every L2 set is walked and the hot lines get evicted
                // (region termination for ANL).
                for j in 0..4600u64 {
                    let addr = (1 << 24) + j * 513 * 64;
                    now += 10
                        + mem.access(0, sweep_pc, addr, 4, AccessKind::Read, MemPolicy::Normal, now);
                }
            }
            let hot_cov = hot_covered as f64 / (hot_covered + hot_misses).max(1) as f64;
            (hot_cov, mem.l2_stats().accuracy())
        };
        let (anl_cov, anl_acc) = run(PrefetcherKind::Anl);
        let (nl_cov, nl_acc) = run(PrefetcherKind::NextLine);
        assert!(
            anl_cov > 0.5,
            "ANL must cover most hot-region misses, got {anl_cov:.3}"
        );
        // NL lands at ~0.5 here: each prefetch is one access too late, so
        // covered and late accesses alternate — the paper's "untimeliness".
        assert!(
            anl_cov > nl_cov + 0.25,
            "ANL hot coverage {anl_cov:.3} must clearly beat next-line {nl_cov:.3}"
        );
        assert!(
            anl_acc > nl_acc,
            "ANL accuracy {anl_acc:.3} vs NL {nl_acc:.3}: next-line wastes prefetches on the sparse sweep"
        );
    }

    #[test]
    fn intel_lvs_pays_once() {
        let mut cfg = small_config();
        cfg.intel_lvs = true;
        let mut mem = MemorySystem::new(&cfg);
        let first = mem.access(0, 1, 0, 4, AccessKind::Read, MemPolicy::IntelLvs, 0);
        assert!(first > 0);
        let second = mem.access(0, 1, 0, 4, AccessKind::Read, MemPolicy::IntelLvs, first);
        assert_eq!(second, 0);
        // Without the accelerator enabled, the policy falls back to normal.
        let mut cfg2 = small_config();
        cfg2.intel_lvs = false;
        let mut mem2 = MemorySystem::new(&cfg2);
        mem2.access(0, 1, 0, 4, AccessKind::Read, MemPolicy::IntelLvs, 0);
        let later = mem2.access(0, 1, 0, 4, AccessKind::Read, MemPolicy::IntelLvs, 300);
        assert_eq!(later, 4);
    }

    #[test]
    fn unaligned_access_touches_two_lines() {
        let cfg = small_config();
        let mut mem = MemorySystem::new(&cfg);
        mem.access(0, 1, 60, 8, AccessKind::Read, MemPolicy::Normal, 0);
        assert_eq!(mem.l1_stats().accesses, 2);
    }
}
