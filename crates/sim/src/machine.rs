//! The simulated machine and the per-thread execution handle [`Proc`].
//!
//! The simulator is *execution-driven*: workloads are ordinary Rust code
//! whose data accesses flow through [`Proc`] (usually via
//! [`Buffer`](crate::Buffer)), driving the cache hierarchy and accumulating
//! a cycle/instruction timing model.
//!
//! # Timing model
//!
//! * Instructions retire at `issue_width` per cycle when not stalled.
//! * Independent loads overlap in the out-of-order window: only
//!   `(latency − L1)/mlp` cycles stall the core. L1 hits are fully hidden.
//! * Dependent loads (pointer chases, loop-carried addresses) stall for
//!   their full latency — this is what makes k-d-tree traversal expensive
//!   (§VIII-C) and scalar ray-casting slow (§IV).
//! * Vector loads/gathers/OVEC loads issue their lane addresses limited by
//!   the number of L1 ports and complete at the slowest lane.

use std::collections::BTreeMap;

use tartan_telemetry::{Event, FaultSite, Interest, SharedSink};

use crate::accel::{AccelId, Accelerator, InvokeCost};
use crate::config::MachineConfig;
use crate::error::TartanError;
use crate::fault::{FaultPlan, FaultState, FaultStats};
use crate::memory::{AccessKind, MemPolicy, MemorySystem};
use crate::stats::{MachineStats, PhaseStats};
use crate::vector::oriented_lane_index;

/// Phase name used for cycles not attributed to any named phase.
pub const PHASE_OTHER: &str = "other";

/// Phase name that accumulates CPU↔accelerator communication time (Fig. 8).
pub const PHASE_COMM: &str = "communication";

/// The simulated machine: cores, memory system, attached accelerators, and
/// an address-space allocator.
pub struct Machine {
    cfg: MachineConfig,
    mem: MemorySystem,
    accels: Vec<Box<dyn Accelerator + Send>>,
    pub(crate) next_addr: u64,
    wall_cycles: u64,
    instructions: u64,
    phases: BTreeMap<&'static str, PhaseStats>,
    fault_state: Option<FaultState>,
    faults: FaultStats,
}

impl Machine {
    /// Creates a machine from a configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        let mem = MemorySystem::new(&cfg);
        let fault_state = cfg.fault_plan.map(FaultState::new);
        Machine {
            cfg,
            mem,
            accels: Vec::new(),
            next_addr: 0x1_0000,
            wall_cycles: 0,
            instructions: 0,
            phases: BTreeMap::new(),
            fault_state,
            faults: FaultStats::default(),
        }
    }

    /// Installs (or clears) a fault-injection plan, resetting its RNG
    /// stream. Counters are kept: a plan swap mid-run continues the same
    /// campaign totals.
    pub fn set_fault_plan(&mut self, plan: Option<FaultPlan>) {
        self.cfg.fault_plan = plan;
        self.fault_state = plan.map(FaultState::new);
    }

    /// Cumulative fault counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults
    }

    /// Attaches a telemetry sink; cycle-stamped events flow to it from the
    /// memory hierarchy, the accelerator path, the fault injector, and
    /// phase switches. The sink's [`Interest`] mask is cached here — a sink
    /// interested only in faults pays nothing for the cache firehose, and
    /// with no sink attached every instrumentation site is one bit test.
    ///
    /// Telemetry never alters timing: cycle and instruction counts are
    /// bit-identical with and without a sink attached.
    pub fn set_telemetry(&mut self, sink: SharedSink) {
        self.mem.set_telemetry(Some(sink));
    }

    /// Detaches any telemetry sink.
    pub fn clear_telemetry(&mut self) {
        self.mem.set_telemetry(None);
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Attaches an accelerator (e.g., the Tartan NPU) and returns its id.
    pub fn attach_accelerator(&mut self, accel: Box<dyn Accelerator + Send>) -> AccelId {
        self.accels.push(accel);
        AccelId(self.accels.len() - 1)
    }

    /// Runs a single-threaded section on core 0, advancing wall time by the
    /// cycles it consumes.
    pub fn run<R>(&mut self, f: impl FnOnce(&mut Proc) -> R) -> R {
        self.mem.time_base = self.wall_cycles;
        let mut proc = Proc::new(self, 0);
        let r = f(&mut proc);
        let cycles = proc.finish();
        self.wall_cycles += cycles;
        r
    }

    /// Runs a parallel stage of `threads` threads (Table I pipeline stages).
    ///
    /// Threads execute functionally in sequence but each on its own timing
    /// context; threads are assigned round-robin to the machine's cores and
    /// the stage advances wall time by the most loaded core's total.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn parallel<R>(&mut self, threads: usize, mut f: impl FnMut(usize, &mut Proc) -> R) -> Vec<R> {
        assert!(threads > 0, "a stage needs at least one thread");
        let cores = self.cfg.cores;
        let mut core_load = vec![0u64; cores];
        let mut results = Vec::with_capacity(threads);
        for tid in 0..threads {
            let core = tid % cores;
            // All threads of a stage stamp events from the stage's start.
            self.mem.time_base = self.wall_cycles;
            let mut proc = Proc::new(self, core);
            let r = f(tid, &mut proc);
            let cycles = proc.finish();
            core_load[core] += cycles;
            results.push(r);
        }
        self.wall_cycles += core_load.iter().copied().max().unwrap_or(0);
        results
    }

    /// Total wall-clock cycles so far.
    pub fn wall_cycles(&self) -> u64 {
        self.wall_cycles
    }

    /// Snapshot of all statistics.
    pub fn stats(&self) -> MachineStats {
        MachineStats {
            l1: self.mem.l1_stats(),
            l2: self.mem.l2_stats(),
            l3: self.mem.l3_stats(),
            dram_bytes: self.mem.dram_bytes,
            l3_traffic_bytes: self.mem.l3_traffic_bytes,
            instructions: self.instructions,
            wall_cycles: self.wall_cycles,
            npu_invocations: self.accels.iter().map(|a| a.invocations()).sum(),
            phases: self.phases.clone(),
            faults: self.faults,
        }
    }

    /// Direct access to the memory system (diagnostics/tests).
    pub fn memory(&self) -> &MemorySystem {
        &self.mem
    }

    fn charge_phase(&mut self, phase: &'static str, cycles: u64, instructions: u64) {
        let entry = self.phases.entry(phase).or_default();
        entry.cycles += cycles;
        entry.instructions += instructions;
        self.instructions += instructions;
    }
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("wall_cycles", &self.wall_cycles)
            .field("instructions", &self.instructions)
            .field("accelerators", &self.accels.len())
            .finish_non_exhaustive()
    }
}

/// A batched run of memory references sharing one kind, policy, and
/// per-element leading arithmetic: `count` elements of `bytes` bytes each,
/// element `i` at byte address `base + i * stride`.
///
/// Executing a run via [`Proc::run_mem`] is *defined* as equivalent to the
/// scalar loop
///
/// ```text
/// for i in 0..count {
///     proc.instr(lead_instr + 1);              // address math + the access
///     <access element i, stalling like read/read_dep/write>
/// }
/// ```
///
/// so timing, statistics, telemetry, and fault-injection draws are
/// bit-identical to issuing the elements one at a time. The batch form only
/// lets the simulator *recognize* runs of guaranteed same-line L1 hits and
/// charge them in bulk instead of re-walking the hierarchy per element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRun {
    /// Byte address of element 0.
    pub base: u64,
    /// Byte distance between consecutive elements (may be negative or zero).
    pub stride: i64,
    /// Number of elements.
    pub count: u64,
    /// Bytes accessed per element.
    pub bytes: u64,
    /// Load or store.
    pub kind: AccessKind,
    /// Caching policy of the region.
    pub policy: MemPolicy,
    /// Non-memory instructions (index/address arithmetic, compares,
    /// branches) charged alongside each element's access instruction.
    pub lead_instr: u64,
    /// Whether each element's value feeds the next instruction (dependent
    /// loads stall for their full latency, like [`Proc::read_dep`]).
    pub dependent: bool,
}

/// A thread's execution handle: charges instructions, memory accesses,
/// vector operations, and accelerator invocations against one core.
#[derive(Debug)]
pub struct Proc<'m> {
    machine: &'m mut Machine,
    core: usize,
    cycles: u64,
    instr_carry: u64,
    phase: &'static str,
    /// Cycles charged to the active phase but not yet written through to the
    /// machine's phase table (flushed on phase switch and at finish, so the
    /// hot instr/stall path never touches the `BTreeMap`).
    phase_cycles: u64,
    /// Instructions charged to the active phase but not yet written through.
    phase_instr: u64,
    /// Whether the active phase received any charge at all — zero-valued
    /// charges still create the phase's entry in the stats table, so the
    /// flush must preserve them.
    phase_touched: bool,
}

impl<'m> Proc<'m> {
    fn new(machine: &'m mut Machine, core: usize) -> Self {
        Proc {
            machine,
            core,
            cycles: 0,
            instr_carry: 0,
            phase: PHASE_OTHER,
            phase_cycles: 0,
            phase_instr: 0,
            phase_touched: false,
        }
    }

    fn finish(mut self) -> u64 {
        self.fold_issue();
        self.flush_phase();
        self.cycles
    }

    /// The core this thread runs on.
    pub fn core(&self) -> usize {
        self.core
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.machine.cfg
    }

    /// Vector lanes (f32) of the configured vector ISA.
    pub fn lanes(&self) -> usize {
        self.machine.cfg.vector_isa.lanes()
    }

    /// Cycles elapsed on this thread so far.
    pub fn elapsed(&self) -> u64 {
        self.cycles + self.instr_carry / self.machine.cfg.issue_width
    }

    /// Currently active phase label.
    pub fn phase(&self) -> &'static str {
        self.phase
    }

    /// Switches the active phase, returning the previous one.
    ///
    /// Emits kernel-level `PhaseEnd`/`PhaseBegin` events for named phases
    /// (the catch-all [`PHASE_OTHER`] is not traced — it would bracket all
    /// the glue between kernels with noise scopes).
    pub fn set_phase(&mut self, phase: &'static str) -> &'static str {
        self.fold_issue();
        self.flush_phase();
        let prev = std::mem::replace(&mut self.phase, phase);
        if prev != phase && self.wants_telemetry(Interest::PHASE) {
            let cycle = self.telemetry_cycle();
            if prev != PHASE_OTHER {
                self.emit_telemetry(&Event::PhaseEnd { cycle, name: prev });
            }
            if phase != PHASE_OTHER {
                self.emit_telemetry(&Event::PhaseBegin { cycle, name: phase });
            }
        }
        prev
    }

    /// Global cycle stamp for telemetry events: the machine wall clock at
    /// the start of this execution section plus this thread's local time.
    /// Deterministic for a fixed seed and workload.
    pub fn telemetry_cycle(&self) -> u64 {
        self.machine.mem.time_base + self.cycles
    }

    /// Whether the attached telemetry sink (if any) wants `i`-category
    /// events. Check this before constructing an event.
    pub fn wants_telemetry(&self, i: Interest) -> bool {
        self.machine.mem.wants(i)
    }

    /// Delivers one event to the attached telemetry sink. Higher layers
    /// (e.g. NPU supervision) use this to emit their own events.
    pub fn emit_telemetry(&mut self, event: &Event) {
        self.machine.mem.emit(event);
    }

    /// Runs `f` with the given phase label active.
    pub fn with_phase<R>(&mut self, phase: &'static str, f: impl FnOnce(&mut Self) -> R) -> R {
        let prev = self.set_phase(phase);
        let r = f(self);
        self.set_phase(prev);
        r
    }

    /// Converts accumulated instructions into issue cycles.
    fn fold_issue(&mut self) {
        let width = self.machine.cfg.issue_width;
        let cycles = self.instr_carry / width;
        if cycles > 0 {
            self.instr_carry %= width;
            self.cycles += cycles;
            self.phase_cycles += cycles;
            self.phase_touched = true;
        }
    }

    /// Writes the locally accumulated phase charges through to the machine.
    fn flush_phase(&mut self) {
        if self.phase_touched {
            self.machine
                .charge_phase(self.phase, self.phase_cycles, self.phase_instr);
            self.phase_cycles = 0;
            self.phase_instr = 0;
            self.phase_touched = false;
        }
    }

    /// Charges `n` dynamic instructions (ALU/FP/branch/address arithmetic).
    pub fn instr(&mut self, n: u64) {
        self.instr_carry += n;
        self.phase_instr += n;
        self.phase_touched = true;
        if self.instr_carry >= self.machine.cfg.issue_width {
            self.fold_issue();
        }
    }

    /// Charges `n` floating-point operations (alias of [`Proc::instr`]).
    pub fn flop(&mut self, n: u64) {
        self.instr(n);
    }

    /// Charges raw stall cycles.
    pub fn stall(&mut self, cycles: u64) {
        self.cycles += cycles;
        self.phase_cycles += cycles;
        self.phase_touched = true;
    }

    fn stall_to(&mut self, phase: &'static str, cycles: u64) {
        self.cycles += cycles;
        self.machine.charge_phase(phase, cycles, 0);
    }

    /// Converts a raw memory latency into the core-visible stall, modeling
    /// out-of-order overlap for independent accesses.
    fn overlap(&self, raw: u64, dependent: bool) -> u64 {
        let l1 = self.machine.mem.l1_latency();
        if dependent {
            raw
        } else if raw <= l1 {
            0
        } else {
            (raw - l1).div_ceil(self.machine.cfg.mlp)
        }
    }

    /// Draws a memory latency spike from the fault plan (0 when no plan or
    /// no spike), counting any spike as one injected fault.
    fn fault_spike(&mut self) -> u64 {
        let spike = match self.machine.fault_state.as_mut() {
            Some(fs) => fs.mem_spike(),
            None => return 0,
        };
        if spike > 0 {
            self.machine.faults.injected += 1;
            if self.wants_telemetry(Interest::FAULT) {
                self.emit_telemetry(&Event::FaultInjected {
                    cycle: self.telemetry_cycle(),
                    site: FaultSite::Memory,
                    count: 1,
                });
            }
        }
        spike
    }

    /// An independent (OoO-overlappable) load.
    pub fn read(&mut self, pc: u64, addr: u64, bytes: u64, policy: MemPolicy) {
        self.instr(1);
        let raw = self
            .machine
            .mem
            .access(self.core, pc, addr, bytes, AccessKind::Read, policy, self.cycles);
        let raw = raw + self.fault_spike();
        let stall = self.overlap(raw, false);
        self.stall(stall);
    }

    /// A dependent load: the next instruction needs its value (pointer
    /// chase / loop-carried address). Stalls for the full latency.
    pub fn read_dep(&mut self, pc: u64, addr: u64, bytes: u64, policy: MemPolicy) {
        self.instr(1);
        let raw = self
            .machine
            .mem
            .access(self.core, pc, addr, bytes, AccessKind::Read, policy, self.cycles);
        let raw = raw + self.fault_spike();
        self.stall(raw);
    }

    /// A store (buffered; stalls only on deep misses, amortized).
    pub fn write(&mut self, pc: u64, addr: u64, bytes: u64, policy: MemPolicy) {
        self.instr(1);
        let raw = self
            .machine
            .mem
            .access(self.core, pc, addr, bytes, AccessKind::Write, policy, self.cycles);
        let raw = raw + self.fault_spike();
        let stall = self.overlap(raw, false);
        self.stall(stall);
    }

    /// Executes a batched address run (see [`MemRun`] for the equivalence
    /// contract). Timing, stats, telemetry, and fault draws are identical to
    /// the element-at-a-time scalar loop; the batch form exists so runs of
    /// same-line references can be charged in bulk.
    pub fn run_mem(&mut self, pc: u64, run: &MemRun) {
        let MemRun {
            base,
            stride,
            count,
            bytes,
            kind,
            policy,
            lead_instr,
            dependent,
        } = *run;
        self.run_elements(
            pc,
            (0..count).map(|i| base.wrapping_add_signed(i as i64 * stride)),
            bytes,
            kind,
            policy,
            lead_instr,
            dependent,
        );
    }

    /// Executes a batched run over an explicit address list — the irregular
    /// (non-constant-stride) form of [`Proc::run_mem`], with the same
    /// scalar-loop equivalence contract.
    #[allow(clippy::too_many_arguments)]
    pub fn run_mem_addrs(
        &mut self,
        pc: u64,
        addrs: &[u64],
        bytes: u64,
        kind: AccessKind,
        policy: MemPolicy,
        lead_instr: u64,
        dependent: bool,
    ) {
        self.run_elements(pc, addrs.iter().copied(), bytes, kind, policy, lead_instr, dependent);
    }

    /// Shared run executor. The fast path collapses consecutive elements
    /// that land in the line the previous element just touched: such an
    /// element is a *guaranteed* plain L1 hit (the line is MRU, so the LRU
    /// touch is a no-op; its PREFETCHED bit was cleared and DIRTY marking is
    /// idempotent for a same-kind repeat), costs exactly the L1 latency, and
    /// — with telemetry's CACHE/TRACE categories masked and no fault plan —
    /// has no observable effect beyond `accesses`/`hits` counters and the
    /// issue/stall charges. Those are all additive, so a run of `n` repeats
    /// collapses into one bulk charge. Everything else (new lines,
    /// line-crossing elements, special policies, fault plans, traced runs)
    /// takes the exact scalar sequence.
    #[allow(clippy::too_many_arguments)]
    fn run_elements<I: Iterator<Item = u64>>(
        &mut self,
        pc: u64,
        addrs: I,
        bytes: u64,
        kind: AccessKind,
        policy: MemPolicy,
        lead_instr: u64,
        dependent: bool,
    ) {
        let fast = policy == MemPolicy::Normal
            && self.machine.fault_state.is_none()
            // `wants` is all-bits containment, so query each category on its
            // own: either CACHE or TRACE interest alone must disable the
            // collapse (both categories emit one event per access).
            && !self.machine.mem.wants(Interest::CACHE)
            && !self.machine.mem.wants(Interest::TRACE);
        let line = self.machine.mem.line_bytes();
        let l1_latency = self.machine.mem.l1_latency();
        let per_elem = lead_instr + 1;
        let mut last_line = u64::MAX;
        let mut repeats: u64 = 0;
        for addr in addrs {
            let first = addr / line;
            let last = (addr + bytes - 1) / line;
            if fast && first == last && first == last_line {
                repeats += 1;
                continue;
            }
            if repeats > 0 {
                self.charge_l1_repeats(repeats, per_elem, dependent, l1_latency);
                repeats = 0;
            }
            self.instr(per_elem);
            let raw = self
                .machine
                .mem
                .access(self.core, pc, addr, bytes, kind, policy, self.cycles);
            let raw = raw + self.fault_spike();
            let stall = if dependent { raw } else { self.overlap(raw, false) };
            self.stall(stall);
            last_line = last;
        }
        if repeats > 0 {
            self.charge_l1_repeats(repeats, per_elem, dependent, l1_latency);
        }
    }

    /// Bulk charge for `n` collapsed same-line L1 hits: the issue charges
    /// fold associatively (`instr(a); instr(b)` ≡ `instr(a + b)`), dependent
    /// hits stall the full L1 latency each, and independent hits stall zero
    /// cycles (`overlap(l1_latency, false) == 0`).
    fn charge_l1_repeats(&mut self, n: u64, per_elem: u64, dependent: bool, l1_latency: u64) {
        self.instr(per_elem * n);
        self.machine.mem.note_l1_hits(self.core, n);
        if dependent {
            self.stall(l1_latency * n);
        }
    }

    /// A contiguous vector load of `bytes` starting at `addr`: one vector
    /// instruction per register width, lanes overlap like independent loads.
    pub fn vload(&mut self, pc: u64, addr: u64, bytes: u64, policy: MemPolicy) {
        let reg_bytes = (self.lanes() * 4) as u64;
        self.instr(bytes.div_ceil(reg_bytes));
        let line = self.machine.mem.line_bytes();
        let first = addr / line;
        let last = (addr + bytes - 1) / line;
        let mut worst = 0;
        for l in first..=last {
            let raw =
                self.machine
                    .mem
                    .access(self.core, pc, l * line, 1, AccessKind::Read, policy, self.cycles);
            worst = worst.max(raw);
        }
        let serial = (last - first).div_ceil(self.machine.cfg.l1_ports.max(1));
        let stall = self.overlap(worst, false) + serial;
        self.stall(stall);
    }

    /// A hardware gather (`VGATHERDPS`-style): one vector instruction whose
    /// lane addresses were computed in *software* (the caller must charge
    /// those index-arithmetic instructions itself, as the paper's Gather
    /// baseline does, §VIII-A). Like any load instruction it overlaps in
    /// the OoO window; the L1 ports bound lane issue throughput.
    pub fn vgather(&mut self, pc: u64, addrs: &[u64], elem_bytes: u64, policy: MemPolicy) {
        self.instr(1);
        let worst = self.lane_fetch(pc, addrs, elem_bytes, policy);
        let serial = (addrs.len() as u64).div_ceil(self.machine.cfg.l1_ports.max(1));
        let stall = self.overlap(worst, false) + serial;
        self.stall(stall);
    }

    /// An OVEC oriented vector load (§IV): in-hardware parallel address
    /// generation (5 cycles, pipelined into the load path) followed by
    /// lane fetches. Returns the lane element indices so the caller can
    /// read its functional data.
    ///
    /// `base` is the byte address of element 0, `origin`/`orient` are in
    /// (possibly fractional) element units; lane indices clamp to
    /// `[0, max_elems)` — the grid's edge, which the walk treats as
    /// occupied anyway.
    ///
    /// # Panics
    ///
    /// Panics if the machine was configured without OVEC support, or if
    /// `max_elems` is zero.
    #[allow(clippy::too_many_arguments)]
    pub fn oriented_load(
        &mut self,
        pc: u64,
        base: u64,
        origin: f64,
        orient: f64,
        lanes: usize,
        elem_bytes: u64,
        max_elems: u64,
        policy: MemPolicy,
    ) -> Vec<i64> {
        let mut indices = Vec::with_capacity(lanes);
        self.oriented_fetch(pc, base, origin, orient, lanes, elem_bytes, max_elems, policy, Some(&mut indices));
        indices
    }

    /// [`Proc::oriented_load`] without materializing the lane indices —
    /// for callers that track the walk's functional state themselves (the
    /// vectorized ray cast discards the returned vector). Timing, stats,
    /// and telemetry are identical to `oriented_load`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Proc::oriented_load`].
    #[allow(clippy::too_many_arguments)]
    pub fn oriented_load_discard(
        &mut self,
        pc: u64,
        base: u64,
        origin: f64,
        orient: f64,
        lanes: usize,
        elem_bytes: u64,
        max_elems: u64,
        policy: MemPolicy,
    ) {
        self.oriented_fetch(pc, base, origin, orient, lanes, elem_bytes, max_elems, policy, None);
    }

    /// Shared O_MOVE engine: lane index generation, telemetry, and the
    /// line-deduplicated lane fetch fused into one pass (addresses are
    /// computed on the fly instead of materialized, mirroring the
    /// in-hardware address generator).
    #[allow(clippy::too_many_arguments)]
    fn oriented_fetch(
        &mut self,
        pc: u64,
        base: u64,
        origin: f64,
        orient: f64,
        lanes: usize,
        elem_bytes: u64,
        max_elems: u64,
        policy: MemPolicy,
        mut sink: Option<&mut Vec<i64>>,
    ) {
        assert!(
            self.machine.cfg.ovec,
            "O_MOVE executed on a machine without OVEC support"
        );
        assert!(max_elems > 0, "oriented load needs a nonempty buffer");
        self.instr(1);
        if self.wants_telemetry(Interest::OVEC) {
            self.emit_telemetry(&Event::OvecAddrGen {
                cycle: self.telemetry_cycle(),
                lanes: lanes as u32,
                base,
                origin,
                orient,
                elem_bytes,
                max_elems,
            });
        }
        // Same per-line dedup as `lane_fetch`: consecutive lanes landing in
        // one cache line cost a single probe.
        let line = self.machine.mem.line_bytes();
        let mut worst = 0;
        let mut last_line = u64::MAX;
        for lane in 0..lanes {
            let i = oriented_lane_index(origin, orient, lane).clamp(0, max_elems as i64 - 1);
            if let Some(sink) = sink.as_deref_mut() {
                sink.push(i);
            }
            let a = base + i as u64 * elem_bytes;
            let l = a / line;
            if l != last_line {
                let raw = self
                    .machine
                    .mem
                    .access(self.core, pc, a, elem_bytes, AccessKind::Read, policy, self.cycles);
                worst = worst.max(raw);
                last_line = l;
            }
        }
        let serial = (lanes as u64).div_ceil(self.machine.cfg.l1_ports.max(1));
        // The address generator adds its latency in front of the load's;
        // the whole O_MOVE overlaps in the OoO window like other loads.
        let stall = self
            .overlap(self.machine.cfg.ovec_addr_gen_latency + worst, false)
            + serial;
        self.stall(stall);
    }

    /// Issues a set of lane addresses, returning the slowest lane's raw
    /// latency. Consecutive lanes falling in one line cost a single probe.
    fn lane_fetch(&mut self, pc: u64, addrs: &[u64], elem_bytes: u64, policy: MemPolicy) -> u64 {
        let mut worst = 0;
        let line = self.machine.mem.line_bytes();
        let mut last_line = u64::MAX;
        for &a in addrs {
            let l = a / line;
            if l != last_line {
                let raw = self
                    .machine
                    .mem
                    .access(self.core, pc, a, elem_bytes, AccessKind::Read, policy, self.cycles);
                worst = worst.max(raw);
                last_line = l;
            }
        }
        worst
    }

    /// Charges `lane_ops` element-wise vector ALU operations.
    pub fn vec_compute(&mut self, lane_ops: u64) {
        let lanes = self.lanes() as u64;
        self.instr(lane_ops.div_ceil(lanes));
    }

    /// Invokes an attached accelerator. Communication cycles are attributed
    /// to the [`PHASE_COMM`] phase, compute cycles to the current phase
    /// (matching Fig. 8's breakdown).
    ///
    /// Under a fault plan, injected faults silently corrupt (or, on a hard
    /// failure, zero) the outputs — this models an *unsupervised* consumer.
    /// Supervised paths should use [`Proc::try_invoke_accel`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not identify an attached accelerator.
    pub fn invoke_accel(&mut self, id: AccelId, inputs: &[f32], outputs: &mut Vec<f32>) -> InvokeCost {
        let (cost, fault) = self.invoke_accel_inner(id, inputs, outputs);
        if fault.is_err() {
            // The caller has no way to notice: the run consumes a
            // known-bad (zeroed) result.
            self.machine.faults.unrecovered += 1;
            if self.wants_telemetry(Interest::FAULT) {
                self.emit_telemetry(&Event::FaultUnrecovered {
                    cycle: self.telemetry_cycle(),
                    count: 1,
                });
            }
        }
        cost
    }

    /// Invokes an attached accelerator, reporting injected hard failures
    /// to the caller instead of silently zeroing the outputs. Timing is
    /// charged either way (the failed round-trip still took its cycles).
    ///
    /// # Errors
    ///
    /// Returns [`TartanError::AccelInvocationFailed`] when the fault plan
    /// fails this invocation; `outputs` must then be discarded.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not identify an attached accelerator.
    pub fn try_invoke_accel(
        &mut self,
        id: AccelId,
        inputs: &[f32],
        outputs: &mut Vec<f32>,
    ) -> Result<InvokeCost, TartanError> {
        let (cost, fault) = self.invoke_accel_inner(id, inputs, outputs);
        fault.map(|()| cost)
    }

    fn invoke_accel_inner(
        &mut self,
        id: AccelId,
        inputs: &[f32],
        outputs: &mut Vec<f32>,
    ) -> (InvokeCost, Result<(), TartanError>) {
        self.instr(4); // send/launch/poll/collect on the CPU side
        let issue_cycle = self.telemetry_cycle();
        let cost = self.machine.accels[id.0].invoke(inputs, outputs);
        self.stall_to(PHASE_COMM, cost.comm_cycles);
        self.stall(cost.compute_cycles);
        if self.wants_telemetry(Interest::NPU) {
            self.emit_telemetry(&Event::NpuInvoke {
                cycle: issue_cycle,
                inputs: inputs.len() as u32,
                outputs: outputs.len() as u32,
                comm_cycles: cost.comm_cycles,
                compute_cycles: cost.compute_cycles,
            });
        }
        let (injected, failed) = match self.machine.fault_state.as_mut() {
            Some(fs) => fs.accel_faults(outputs),
            None => (0, false),
        };
        self.machine.faults.injected += injected;
        if injected > 0 && self.wants_telemetry(Interest::FAULT) {
            self.emit_telemetry(&Event::FaultInjected {
                cycle: self.telemetry_cycle(),
                site: FaultSite::Accel,
                count: injected,
            });
        }
        if failed {
            // Keep the output shape (callers may index it) but no data
            // survives a failed invocation.
            for o in outputs.iter_mut() {
                *o = 0.0;
            }
            (cost, Err(TartanError::AccelInvocationFailed { accel: id }))
        } else {
            (cost, Ok(()))
        }
    }

    /// Total faults the machine's plan has injected so far. Supervised
    /// wrappers snapshot this around an invocation to attribute faults —
    /// the software model of a hardware-level ECC/parity detector.
    pub fn faults_injected(&self) -> u64 {
        self.machine.faults.injected
    }

    /// Records `n` faults noticed by a supervisor.
    pub fn note_faults_detected(&mut self, n: u64) {
        self.machine.faults.detected += n;
        if n > 0 && self.wants_telemetry(Interest::FAULT) {
            self.emit_telemetry(&Event::FaultDetected {
                cycle: self.telemetry_cycle(),
                count: n,
            });
        }
    }

    /// Records `n` detected faults whose effects were fully repaired.
    pub fn note_faults_recovered(&mut self, n: u64) {
        self.machine.faults.recovered += n;
        if n > 0 && self.wants_telemetry(Interest::FAULT) {
            self.emit_telemetry(&Event::FaultRecovered {
                cycle: self.telemetry_cycle(),
                count: n,
            });
        }
    }

    /// Records `n` faults known to have corrupted a consumed result.
    pub fn note_faults_unrecovered(&mut self, n: u64) {
        self.machine.faults.unrecovered += n;
        if n > 0 && self.wants_telemetry(Interest::FAULT) {
            self.emit_telemetry(&Event::FaultUnrecovered {
                cycle: self.telemetry_cycle(),
                count: n,
            });
        }
    }

    /// Charges an accelerator's one-time configuration cost.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not identify an attached accelerator.
    pub fn configure_accel(&mut self, id: AccelId) {
        let cost = self.machine.accels[id.0].configure_cost();
        self.stall_to(PHASE_COMM, cost);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    #[test]
    fn instructions_issue_at_width() {
        let mut m = Machine::new(MachineConfig::legacy_baseline());
        m.run(|p| p.instr(400));
        assert_eq!(m.wall_cycles(), 100);
        assert_eq!(m.stats().instructions, 400);
    }

    #[test]
    fn dependent_loads_stall_fully() {
        let mut m = Machine::new(MachineConfig::legacy_baseline());
        let (dep, indep) = m.run(|p| {
            p.read_dep(1, 0, 4, MemPolicy::Normal);
            let dep = p.elapsed();
            p.read(1, 1 << 20, 4, MemPolicy::Normal);
            (dep, p.elapsed() - dep)
        });
        assert!(dep > 250, "cold dependent miss stalls fully: {dep}");
        assert!(
            indep < dep / 2,
            "independent miss overlaps: {indep} vs {dep}"
        );
    }

    #[test]
    fn parallel_wall_time_is_max_core_load() {
        let mut m = Machine::new(MachineConfig::legacy_baseline());
        // 4 cores, 4 threads with unequal work: wall = slowest thread.
        m.parallel(4, |tid, p| p.instr(400 * (tid as u64 + 1)));
        assert_eq!(m.wall_cycles(), 400);
    }

    #[test]
    fn oversubscribed_threads_serialize_on_cores() {
        let mut m = Machine::new(MachineConfig::legacy_baseline());
        // 8 equal threads on 4 cores: 2 per core.
        m.parallel(8, |_tid, p| p.instr(400));
        assert_eq!(m.wall_cycles(), 200);
    }

    #[test]
    fn phases_attribute_cycles() {
        let mut m = Machine::new(MachineConfig::legacy_baseline());
        m.run(|p| {
            p.with_phase("raycast", |p| p.instr(400));
            p.instr(40);
        });
        let stats = m.stats();
        assert_eq!(stats.phase_cycles("raycast"), 100);
        assert_eq!(stats.phases.get("raycast").map(|s| s.instructions), Some(400));
        assert_eq!(stats.phase_cycles(PHASE_OTHER), 10);
    }

    #[test]
    fn ovec_requires_configuration() {
        let mut m = Machine::new(MachineConfig::tartan());
        let idx = m.run(|p| p.oriented_load(1, 0x1_0000, 2.5, 1.5, 4, 4, 1 << 20, MemPolicy::Normal));
        assert_eq!(idx, vec![2, 4, 5, 7]);
    }

    #[test]
    #[should_panic(expected = "without OVEC")]
    fn ovec_panics_on_baseline() {
        let mut m = Machine::new(MachineConfig::legacy_baseline());
        m.run(|p| {
            let _ = p.oriented_load(1, 0, 0.0, 1.0, 4, 4, 1 << 20, MemPolicy::Normal);
        });
    }

    #[test]
    fn ovec_costs_less_than_scalar_dependent_walk() {
        // The core claim of §IV: an oriented pattern fetched by O_MOVE beats
        // the same cells fetched by a scalar dependent loop.
        let cells = 160usize;
        let stride = 3.2f64; // fractional, non-contiguous

        let mut scalar_m = Machine::new(MachineConfig::upgraded_baseline());
        scalar_m.run(|p| {
            for i in 0..cells {
                let idx = (i as f64 * stride).floor() as u64;
                p.instr(6); // address arithmetic + compare + branch
                p.read_dep(1, 0x1_0000 + idx * 4, 4, MemPolicy::Normal);
            }
        });

        let mut ovec_m = Machine::new(MachineConfig::tartan());
        ovec_m.run(|p| {
            let lanes = p.lanes();
            let mut i = 0usize;
            while i < cells {
                let n = lanes.min(cells - i);
                let _ = p.oriented_load(1, 0x1_0000, i as f64 * stride, stride, n, 4, 1 << 20, MemPolicy::Normal);
                p.vec_compute(n as u64); // the occupancy compare
                p.instr(2);
                i += n;
            }
        });

        let s = scalar_m.wall_cycles();
        let o = ovec_m.wall_cycles();
        assert!(o * 2 < s, "OVEC {o} should be well under half of scalar {s}");
        let si = scalar_m.stats().instructions;
        let oi = ovec_m.stats().instructions;
        assert!(
            oi * 2 < si,
            "OVEC must also shrink dynamic instructions: {oi} vs {si}"
        );
    }

    #[test]
    fn debug_formats_are_nonempty() {
        let m = Machine::new(MachineConfig::legacy_baseline());
        assert!(!format!("{m:?}").is_empty());
    }
}
