//! Machine configuration: the baseline processor of §III-A and every knob
//! Tartan adds to it, plus [`MachineConfig::validate`] — the single place
//! that decides whether a configuration is constructible.

use crate::fault::FaultPlan;

/// A rejected configuration: which field is wrong and why.
///
/// Rendered as one line, `<path>: <reason>` (e.g.
/// `l2.ways: must be at least 1`), so harnesses and the scenario layer can
/// surface it verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// Dotted path of the offending field, relative to the machine config
    /// (e.g. `fcp.xor_bits`).
    pub path: String,
    /// Why the value is unusable.
    pub reason: String,
}

impl ConfigError {
    fn new(path: &str, reason: impl Into<String>) -> Self {
        ConfigError {
            path: path.to_string(),
            reason: reason.into(),
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.path, self.reason)
    }
}

impl std::error::Error for ConfigError {}

/// Vector ISA generation, which fixes the number of 32-bit lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VectorIsa {
    /// 256-bit AVX2 (8 × f32 lanes) — the legacy baseline.
    Avx2,
    /// 512-bit AVX-512 (16 × f32 lanes) — the upgraded baseline (§III-A).
    Avx512,
}

impl VectorIsa {
    /// Number of 32-bit lanes per vector register.
    pub fn lanes(self) -> usize {
        match self {
            VectorIsa::Avx2 => 8,
            VectorIsa::Avx512 => 16,
        }
    }
}

/// Which hardware prefetcher is attached to the private L2 (§VI-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrefetcherKind {
    /// No prefetching.
    #[default]
    None,
    /// Classic next-line.
    NextLine,
    /// Tartan's Adaptive Next-Line.
    Anl,
    /// Bingo-like spatial prefetcher.
    Bingo,
}

/// The recency-manipulation function `m(x)` applied by FCP (§VII-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FcpManipulation {
    /// `m(x) = x + 1`.
    Increment,
    /// `m(x) = 2x`.
    Double,
    /// `m(x) = x²` — the paper's choice (implemented as an 8-entry LUT).
    Square,
}

impl FcpManipulation {
    /// Applies the manipulation to a recency value (saturating).
    pub fn apply(self, x: u32) -> u32 {
        match self {
            FcpManipulation::Increment => x.saturating_add(1),
            FcpManipulation::Double => x.saturating_mul(2),
            FcpManipulation::Square => x.saturating_mul(x),
        }
    }
}

/// Fuzzy intra-application Cache Partitioning configuration (§VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FcpConfig {
    /// Region size in bytes (the paper sweeps 512 B and 1 KB, picking 1 KB).
    pub region_bytes: u64,
    /// Number of region/offset bits XORed into the index (2 or 3).
    pub xor_bits: u32,
    /// The recency manipulation function.
    pub manipulation: FcpManipulation,
}

impl FcpConfig {
    /// The configuration the paper selects: 1 KB regions, `l = 2`, `m(x) = x²`.
    pub fn paper_default() -> Self {
        FcpConfig {
            region_bytes: 1024,
            xor_bits: 2,
            manipulation: FcpManipulation::Square,
        }
    }
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access latency in core clock cycles.
    pub latency: u64,
}

/// NPU attachment mode (§VIII-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NpuMode {
    /// No NPU present.
    #[default]
    None,
    /// Integrated into the CPU pipeline, with the given number of PEs.
    /// CPU↔NPU communication costs 4 cycles per transfer direction.
    Integrated {
        /// Number of processing elements (2, 4, or 8 evaluated).
        pes: u32,
    },
    /// Stand-alone co-processor (FSD-style): 104-cycle communication,
    /// optimistically zero-cycle inference.
    Coprocessor,
}

/// Full machine configuration.
///
/// The default is the paper's baseline host, an Intel Core i7-10610U-like
/// part: 4 OoO cores; 32 KB L1-D (4 cy), 256 KB L2 (14 cy), 8 MB shared L3
/// (45 cy); two DDR4-2666 channels at 45.8 GB/s.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of cores (each with private L1/L2).
    pub cores: usize,
    /// Cache line size in bytes (64 B baseline, 32 B upgraded §III-A).
    pub line_bytes: u64,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Private L2 cache.
    pub l2: CacheConfig,
    /// Shared L3 cache.
    pub l3: CacheConfig,
    /// DRAM access latency in cycles (beyond L3).
    pub dram_latency: u64,
    /// DRAM bandwidth in bytes per core cycle (both channels combined).
    pub dram_bytes_per_cycle: u64,
    /// Superscalar issue width (instructions per cycle when not stalled).
    pub issue_width: u64,
    /// Memory-level-parallelism factor: independent misses overlap by this
    /// factor in the OoO window.
    pub mlp: u64,
    /// Number of L1 ports (parallel lane-address issue limit for OVEC and
    /// gather).
    pub l1_ports: u64,
    /// Vector ISA generation.
    pub vector_isa: VectorIsa,
    /// Whether the OVEC oriented-vector-load extension is present (§IV).
    pub ovec: bool,
    /// OVEC's in-hardware address-generation latency in cycles (§VIII-A: 5).
    pub ovec_addr_gen_latency: u64,
    /// L2 prefetcher.
    pub prefetcher: PrefetcherKind,
    /// ANL region size in bytes (§VI-D default: 1 KB).
    pub anl_region_bytes: u64,
    /// FCP on the private L2, if enabled.
    pub fcp: Option<FcpConfig>,
    /// NPU attachment.
    pub npu: NpuMode,
    /// NPU MAC latency in cycles (§VIII-B: 8).
    pub npu_mac_latency: u64,
    /// CPU↔NPU communication latency in cycles for the integrated mode.
    pub npu_comm_latency: u64,
    /// CPU↔NPU communication latency for the co-processor mode (§VIII-B: 104).
    pub npu_coproc_comm_latency: u64,
    /// Whether write-through producer/consumer regions are honored (§III-A).
    pub write_through_regions: bool,
    /// Intel ray-casting accelerator model: zero-cycle trilinear
    /// interpolation plus unlimited local voxel storage (Fig. 7).
    pub intel_lvs: bool,
    /// Deterministic fault-injection schedule, if any. `None` and a
    /// quiet plan (all rates zero) are guaranteed to behave identically.
    pub fault_plan: Option<FaultPlan>,
}

impl MachineConfig {
    /// The legacy baseline: AVX2, 64 B lines, no Tartan features.
    pub fn legacy_baseline() -> Self {
        MachineConfig {
            cores: 4,
            line_bytes: 64,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 8,
                latency: 14,
            },
            l3: CacheConfig {
                size_bytes: 8 * 1024 * 1024,
                ways: 16,
                latency: 45,
            },
            dram_latency: 200,
            dram_bytes_per_cycle: 16,
            issue_width: 4,
            mlp: 4,
            l1_ports: 2,
            vector_isa: VectorIsa::Avx2,
            ovec: false,
            ovec_addr_gen_latency: 5,
            prefetcher: PrefetcherKind::None,
            anl_region_bytes: 1024,
            fcp: None,
            npu: NpuMode::None,
            npu_mac_latency: 8,
            npu_comm_latency: 4,
            npu_coproc_comm_latency: 104,
            write_through_regions: false,
            intel_lvs: false,
            fault_plan: None,
        }
    }

    /// The upgraded baseline of §III-A: AVX-512, 32 B cachelines, and
    /// write-through producer/consumer regions.
    pub fn upgraded_baseline() -> Self {
        MachineConfig {
            line_bytes: 32,
            vector_isa: VectorIsa::Avx512,
            write_through_regions: true,
            ..Self::legacy_baseline()
        }
    }

    /// Full Tartan: the upgraded baseline plus OVEC, a 4-PE integrated NPU,
    /// the ANL prefetcher, and FCP with the paper's parameters.
    pub fn tartan() -> Self {
        MachineConfig {
            ovec: true,
            prefetcher: PrefetcherKind::Anl,
            fcp: Some(FcpConfig::paper_default()),
            npu: NpuMode::Integrated { pes: 4 },
            ..Self::upgraded_baseline()
        }
    }

    /// Number of sets in a cache level given this line size.
    pub fn sets(&self, level: CacheConfig) -> u64 {
        level.size_bytes / (self.line_bytes * u64::from(level.ways))
    }

    /// Canonical preset names, in the order the paper introduces them.
    pub const PRESETS: [&'static str; 3] = ["legacy_baseline", "upgraded_baseline", "tartan"];

    /// Builds a preset by its canonical name (see [`Self::PRESETS`]).
    pub fn from_preset(name: &str) -> Option<MachineConfig> {
        match name {
            "legacy_baseline" => Some(Self::legacy_baseline()),
            "upgraded_baseline" => Some(Self::upgraded_baseline()),
            "tartan" => Some(Self::tartan()),
            _ => None,
        }
    }

    /// The canonical name of this configuration, if it equals a preset.
    pub fn preset_name(&self) -> Option<&'static str> {
        Self::PRESETS
            .into_iter()
            .find(|name| Self::from_preset(name).as_ref() == Some(self))
    }

    /// Checks every invariant the simulator's constructors rely on and
    /// returns the first violation as a precise `path: reason` error.
    ///
    /// [`Machine::new`](crate::Machine::new) historically trusted its
    /// input: degenerate geometries either tripped a bare `assert!` deep in
    /// [`Cache::new`](crate::Cache::new) or divided by zero (a zero
    /// `dram_bytes_per_cycle` or `issue_width`). This pass rejects all of
    /// them up front with an actionable message; the scenario layer calls
    /// it on every expanded job before any machine is built.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.cores == 0 {
            return Err(ConfigError::new("cores", "must be at least 1"));
        }
        if !self.line_bytes.is_power_of_two() {
            return Err(ConfigError::new(
                "line_bytes",
                format!("must be a power of two (got {})", self.line_bytes),
            ));
        }
        if self.line_bytes < 4 {
            return Err(ConfigError::new(
                "line_bytes",
                format!("must be at least 4 bytes (got {})", self.line_bytes),
            ));
        }
        for (name, level) in [("l1", self.l1), ("l2", self.l2), ("l3", self.l3)] {
            self.validate_level(name, level)?;
        }
        if self.dram_bytes_per_cycle == 0 {
            return Err(ConfigError::new(
                "dram_bytes_per_cycle",
                "must be at least 1 (the DRAM fill latency divides by it)",
            ));
        }
        if self.issue_width == 0 {
            return Err(ConfigError::new("issue_width", "must be at least 1"));
        }
        if self.mlp == 0 {
            return Err(ConfigError::new("mlp", "must be at least 1"));
        }
        if self.l1_ports == 0 {
            return Err(ConfigError::new("l1_ports", "must be at least 1"));
        }
        if !self.anl_region_bytes.is_power_of_two() || self.anl_region_bytes < self.line_bytes {
            return Err(ConfigError::new(
                "anl_region_bytes",
                format!(
                    "must be a power of two no smaller than line_bytes (got {} with {} B lines)",
                    self.anl_region_bytes, self.line_bytes
                ),
            ));
        }
        if let Some(fcp) = self.fcp {
            self.validate_fcp(fcp)?;
        }
        if let NpuMode::Integrated { pes } = self.npu {
            if pes == 0 || !pes.is_power_of_two() || pes > 64 {
                return Err(ConfigError::new(
                    "npu.pes",
                    format!("must be a power of two in 1..=64 (got {pes})"),
                ));
            }
        }
        if let Some(plan) = &self.fault_plan {
            for (path, rate) in [
                ("fault_plan.accel_error_rate", plan.accel_error_rate),
                ("fault_plan.accel_bitflip_rate", plan.accel_bitflip_rate),
                ("fault_plan.accel_fail_rate", plan.accel_fail_rate),
                ("fault_plan.mem_spike_rate", plan.mem_spike_rate),
            ] {
                if !(0.0..=1.0).contains(&rate) {
                    return Err(ConfigError::new(
                        path,
                        format!("must be a probability in [0, 1] (got {rate})"),
                    ));
                }
            }
            if !plan.accel_error_magnitude.is_finite() || plan.accel_error_magnitude < 0.0 {
                return Err(ConfigError::new(
                    "fault_plan.accel_error_magnitude",
                    format!("must be non-negative (got {})", plan.accel_error_magnitude),
                ));
            }
        }
        Ok(())
    }

    fn validate_level(&self, name: &str, level: CacheConfig) -> Result<(), ConfigError> {
        if level.ways == 0 {
            return Err(ConfigError::new(&format!("{name}.ways"), "must be at least 1"));
        }
        let line_capacity = self.line_bytes * u64::from(level.ways);
        if level.size_bytes < line_capacity {
            return Err(ConfigError::new(
                &format!("{name}.size_bytes"),
                format!(
                    "holds zero sets: {} B cannot fit {} ways of {} B lines",
                    level.size_bytes, level.ways, self.line_bytes
                ),
            ));
        }
        let sets = self.sets(level);
        if sets * line_capacity != level.size_bytes || !sets.is_power_of_two() {
            return Err(ConfigError::new(
                &format!("{name}.size_bytes"),
                format!(
                    "must yield a power-of-two set count ({} B / ({} ways x {} B lines) = {sets} sets)",
                    level.size_bytes, level.ways, self.line_bytes
                ),
            ));
        }
        Ok(())
    }

    fn validate_fcp(&self, fcp: FcpConfig) -> Result<(), ConfigError> {
        if !fcp.region_bytes.is_power_of_two() || fcp.region_bytes < self.line_bytes {
            return Err(ConfigError::new(
                "fcp.region_bytes",
                format!(
                    "must be a power of two no smaller than line_bytes (got {} with {} B lines)",
                    fcp.region_bytes, self.line_bytes
                ),
            ));
        }
        if fcp.xor_bits == 0 {
            return Err(ConfigError::new("fcp.xor_bits", "must be at least 1"));
        }
        let lines_per_region = fcp.region_bytes / self.line_bytes;
        if lines_per_region < (1 << fcp.xor_bits) {
            return Err(ConfigError::new(
                "fcp.xor_bits",
                format!(
                    "2^{} exceeds the {} lines per {} B region",
                    fcp.xor_bits, lines_per_region, fcp.region_bytes
                ),
            ));
        }
        let index_bits = self.sets(self.l2).trailing_zeros();
        if fcp.xor_bits > index_bits {
            return Err(ConfigError::new(
                "fcp.xor_bits",
                format!(
                    "{} exceeds the {} L2 set-index bits ({} sets)",
                    fcp.xor_bits,
                    index_bits,
                    self.sets(self.l2)
                ),
            ));
        }
        Ok(())
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::upgraded_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_host() {
        let c = MachineConfig::legacy_baseline();
        assert_eq!(c.cores, 4);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l3.size_bytes, 8 * 1024 * 1024);
        assert_eq!((c.l1.latency, c.l2.latency, c.l3.latency), (4, 14, 45));
    }

    #[test]
    fn upgraded_baseline_shrinks_lines_and_widens_vectors() {
        let c = MachineConfig::upgraded_baseline();
        assert_eq!(c.line_bytes, 32);
        assert_eq!(c.vector_isa.lanes(), 16);
        assert!(c.write_through_regions);
        assert!(!c.ovec);
    }

    #[test]
    fn tartan_enables_all_features() {
        let c = MachineConfig::tartan();
        assert!(c.ovec);
        assert_eq!(c.prefetcher, PrefetcherKind::Anl);
        assert_eq!(c.fcp, Some(FcpConfig::paper_default()));
        assert_eq!(c.npu, NpuMode::Integrated { pes: 4 });
    }

    #[test]
    fn set_counts_scale_with_line_size() {
        let legacy = MachineConfig::legacy_baseline();
        let upgraded = MachineConfig::upgraded_baseline();
        assert_eq!(legacy.sets(legacy.l2), 512);
        assert_eq!(upgraded.sets(upgraded.l2), 1024);
    }

    #[test]
    fn manipulation_functions_match_paper() {
        assert_eq!(FcpManipulation::Increment.apply(3), 4);
        assert_eq!(FcpManipulation::Double.apply(3), 6);
        assert_eq!(FcpManipulation::Square.apply(3), 9);
    }

    #[test]
    fn presets_round_trip_their_names() {
        for name in MachineConfig::PRESETS {
            let cfg = MachineConfig::from_preset(name).expect("preset exists");
            assert_eq!(cfg.preset_name(), Some(name));
        }
        assert!(MachineConfig::from_preset("warp-drive").is_none());
        let mut custom = MachineConfig::tartan();
        custom.mlp += 1;
        assert_eq!(custom.preset_name(), None);
    }

    #[test]
    fn all_presets_validate() {
        for name in MachineConfig::PRESETS {
            MachineConfig::from_preset(name).unwrap().validate().unwrap();
        }
    }

    /// Asserts that `validate()` rejects the config with an error whose
    /// single-line rendering names `path` and contains `fragment`.
    fn rejects(cfg: &MachineConfig, path: &str, fragment: &str) {
        let err = cfg.validate().expect_err("config must be rejected");
        assert_eq!(err.path, path, "wrong field blamed: {err}");
        let line = err.to_string();
        assert!(
            line.starts_with(&format!("{path}: ")) && line.contains(fragment),
            "unhelpful error: {line}"
        );
        assert!(!line.contains('\n'), "errors must be single-line: {line:?}");
    }

    #[test]
    fn validate_rejects_zero_set_caches() {
        let mut cfg = MachineConfig::upgraded_baseline();
        cfg.l2.size_bytes = cfg.line_bytes * u64::from(cfg.l2.ways) / 2;
        rejects(&cfg, "l2.size_bytes", "zero sets");
    }

    #[test]
    fn validate_rejects_non_power_of_two_set_counts() {
        let mut cfg = MachineConfig::upgraded_baseline();
        cfg.l3.size_bytes = 3 * 1024 * 1024;
        rejects(&cfg, "l3.size_bytes", "power-of-two set count");
    }

    #[test]
    fn validate_rejects_zero_ways() {
        let mut cfg = MachineConfig::upgraded_baseline();
        cfg.l1.ways = 0;
        rejects(&cfg, "l1.ways", "at least 1");
    }

    #[test]
    fn validate_rejects_non_power_of_two_lines() {
        let mut cfg = MachineConfig::upgraded_baseline();
        cfg.line_bytes = 48;
        rejects(&cfg, "line_bytes", "power of two");
    }

    #[test]
    fn validate_rejects_zero_dram_bandwidth() {
        let mut cfg = MachineConfig::upgraded_baseline();
        cfg.dram_bytes_per_cycle = 0;
        rejects(&cfg, "dram_bytes_per_cycle", "at least 1");
    }

    #[test]
    fn validate_rejects_zero_core_parameters() {
        for (field, apply) in [
            ("cores", (|c: &mut MachineConfig| c.cores = 0) as fn(&mut MachineConfig)),
            ("issue_width", |c| c.issue_width = 0),
            ("mlp", |c| c.mlp = 0),
            ("l1_ports", |c| c.l1_ports = 0),
        ] {
            let mut cfg = MachineConfig::upgraded_baseline();
            apply(&mut cfg);
            rejects(&cfg, field, "at least 1");
        }
    }

    #[test]
    fn validate_rejects_fcp_xor_bits_exceeding_region_lines() {
        let mut cfg = MachineConfig::tartan();
        // 1 KB regions of 32 B lines hold 32 lines = 2^5; l = 6 overflows.
        cfg.fcp = Some(FcpConfig {
            region_bytes: 1024,
            xor_bits: 6,
            manipulation: FcpManipulation::Square,
        });
        rejects(&cfg, "fcp.xor_bits", "lines per");
    }

    #[test]
    fn validate_rejects_fcp_xor_bits_exceeding_index_bits() {
        let mut cfg = MachineConfig::tartan();
        // Shrink the L2 to 4 sets (2 index bits) while keeping a region
        // large enough that the lines-per-region check passes first.
        cfg.l2.size_bytes = 4 * cfg.line_bytes * u64::from(cfg.l2.ways);
        cfg.fcp = Some(FcpConfig {
            region_bytes: 1024,
            xor_bits: 3,
            manipulation: FcpManipulation::Square,
        });
        rejects(&cfg, "fcp.xor_bits", "set-index bits");
    }

    #[test]
    fn validate_rejects_bad_fcp_regions_and_anl_regions() {
        let mut cfg = MachineConfig::tartan();
        cfg.fcp = Some(FcpConfig {
            region_bytes: 768,
            xor_bits: 2,
            manipulation: FcpManipulation::Square,
        });
        rejects(&cfg, "fcp.region_bytes", "power of two");
        let mut cfg = MachineConfig::tartan();
        cfg.anl_region_bytes = 16; // smaller than the 32 B line
        rejects(&cfg, "anl_region_bytes", "no smaller than line_bytes");
    }

    #[test]
    fn validate_rejects_bad_npu_pe_counts() {
        for pes in [0u32, 3, 128] {
            let mut cfg = MachineConfig::tartan();
            cfg.npu = NpuMode::Integrated { pes };
            rejects(&cfg, "npu.pes", "power of two in 1..=64");
        }
    }

    #[test]
    fn validate_rejects_insane_fault_plans() {
        let mut cfg = MachineConfig::upgraded_baseline();
        cfg.fault_plan = Some(FaultPlan::quiet(1).with_accel_failures(1.5));
        rejects(&cfg, "fault_plan.accel_fail_rate", "probability in [0, 1]");
        let mut cfg = MachineConfig::upgraded_baseline();
        cfg.fault_plan = Some(FaultPlan::quiet(1).with_accel_errors(0.5, -0.1));
        rejects(&cfg, "fault_plan.accel_error_magnitude", "non-negative");
    }
}
