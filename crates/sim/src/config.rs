//! Machine configuration: the baseline processor of §III-A and every knob
//! Tartan adds to it.

use crate::fault::FaultPlan;

/// Vector ISA generation, which fixes the number of 32-bit lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VectorIsa {
    /// 256-bit AVX2 (8 × f32 lanes) — the legacy baseline.
    Avx2,
    /// 512-bit AVX-512 (16 × f32 lanes) — the upgraded baseline (§III-A).
    Avx512,
}

impl VectorIsa {
    /// Number of 32-bit lanes per vector register.
    pub fn lanes(self) -> usize {
        match self {
            VectorIsa::Avx2 => 8,
            VectorIsa::Avx512 => 16,
        }
    }
}

/// Which hardware prefetcher is attached to the private L2 (§VI-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PrefetcherKind {
    /// No prefetching.
    #[default]
    None,
    /// Classic next-line.
    NextLine,
    /// Tartan's Adaptive Next-Line.
    Anl,
    /// Bingo-like spatial prefetcher.
    Bingo,
}

/// The recency-manipulation function `m(x)` applied by FCP (§VII-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FcpManipulation {
    /// `m(x) = x + 1`.
    Increment,
    /// `m(x) = 2x`.
    Double,
    /// `m(x) = x²` — the paper's choice (implemented as an 8-entry LUT).
    Square,
}

impl FcpManipulation {
    /// Applies the manipulation to a recency value (saturating).
    pub fn apply(self, x: u32) -> u32 {
        match self {
            FcpManipulation::Increment => x.saturating_add(1),
            FcpManipulation::Double => x.saturating_mul(2),
            FcpManipulation::Square => x.saturating_mul(x),
        }
    }
}

/// Fuzzy intra-application Cache Partitioning configuration (§VII).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FcpConfig {
    /// Region size in bytes (the paper sweeps 512 B and 1 KB, picking 1 KB).
    pub region_bytes: u64,
    /// Number of region/offset bits XORed into the index (2 or 3).
    pub xor_bits: u32,
    /// The recency manipulation function.
    pub manipulation: FcpManipulation,
}

impl FcpConfig {
    /// The configuration the paper selects: 1 KB regions, `l = 2`, `m(x) = x²`.
    pub fn paper_default() -> Self {
        FcpConfig {
            region_bytes: 1024,
            xor_bits: 2,
            manipulation: FcpManipulation::Square,
        }
    }
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Access latency in core clock cycles.
    pub latency: u64,
}

/// NPU attachment mode (§VIII-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NpuMode {
    /// No NPU present.
    #[default]
    None,
    /// Integrated into the CPU pipeline, with the given number of PEs.
    /// CPU↔NPU communication costs 4 cycles per transfer direction.
    Integrated {
        /// Number of processing elements (2, 4, or 8 evaluated).
        pes: u32,
    },
    /// Stand-alone co-processor (FSD-style): 104-cycle communication,
    /// optimistically zero-cycle inference.
    Coprocessor,
}

/// Full machine configuration.
///
/// The default is the paper's baseline host, an Intel Core i7-10610U-like
/// part: 4 OoO cores; 32 KB L1-D (4 cy), 256 KB L2 (14 cy), 8 MB shared L3
/// (45 cy); two DDR4-2666 channels at 45.8 GB/s.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Number of cores (each with private L1/L2).
    pub cores: usize,
    /// Cache line size in bytes (64 B baseline, 32 B upgraded §III-A).
    pub line_bytes: u64,
    /// L1 data cache.
    pub l1: CacheConfig,
    /// Private L2 cache.
    pub l2: CacheConfig,
    /// Shared L3 cache.
    pub l3: CacheConfig,
    /// DRAM access latency in cycles (beyond L3).
    pub dram_latency: u64,
    /// DRAM bandwidth in bytes per core cycle (both channels combined).
    pub dram_bytes_per_cycle: u64,
    /// Superscalar issue width (instructions per cycle when not stalled).
    pub issue_width: u64,
    /// Memory-level-parallelism factor: independent misses overlap by this
    /// factor in the OoO window.
    pub mlp: u64,
    /// Number of L1 ports (parallel lane-address issue limit for OVEC and
    /// gather).
    pub l1_ports: u64,
    /// Vector ISA generation.
    pub vector_isa: VectorIsa,
    /// Whether the OVEC oriented-vector-load extension is present (§IV).
    pub ovec: bool,
    /// OVEC's in-hardware address-generation latency in cycles (§VIII-A: 5).
    pub ovec_addr_gen_latency: u64,
    /// L2 prefetcher.
    pub prefetcher: PrefetcherKind,
    /// ANL region size in bytes (§VI-D default: 1 KB).
    pub anl_region_bytes: u64,
    /// FCP on the private L2, if enabled.
    pub fcp: Option<FcpConfig>,
    /// NPU attachment.
    pub npu: NpuMode,
    /// NPU MAC latency in cycles (§VIII-B: 8).
    pub npu_mac_latency: u64,
    /// CPU↔NPU communication latency in cycles for the integrated mode.
    pub npu_comm_latency: u64,
    /// CPU↔NPU communication latency for the co-processor mode (§VIII-B: 104).
    pub npu_coproc_comm_latency: u64,
    /// Whether write-through producer/consumer regions are honored (§III-A).
    pub write_through_regions: bool,
    /// Intel ray-casting accelerator model: zero-cycle trilinear
    /// interpolation plus unlimited local voxel storage (Fig. 7).
    pub intel_lvs: bool,
    /// Deterministic fault-injection schedule, if any. `None` and a
    /// quiet plan (all rates zero) are guaranteed to behave identically.
    pub fault_plan: Option<FaultPlan>,
}

impl MachineConfig {
    /// The legacy baseline: AVX2, 64 B lines, no Tartan features.
    pub fn legacy_baseline() -> Self {
        MachineConfig {
            cores: 4,
            line_bytes: 64,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 8,
                latency: 14,
            },
            l3: CacheConfig {
                size_bytes: 8 * 1024 * 1024,
                ways: 16,
                latency: 45,
            },
            dram_latency: 200,
            dram_bytes_per_cycle: 16,
            issue_width: 4,
            mlp: 4,
            l1_ports: 2,
            vector_isa: VectorIsa::Avx2,
            ovec: false,
            ovec_addr_gen_latency: 5,
            prefetcher: PrefetcherKind::None,
            anl_region_bytes: 1024,
            fcp: None,
            npu: NpuMode::None,
            npu_mac_latency: 8,
            npu_comm_latency: 4,
            npu_coproc_comm_latency: 104,
            write_through_regions: false,
            intel_lvs: false,
            fault_plan: None,
        }
    }

    /// The upgraded baseline of §III-A: AVX-512, 32 B cachelines, and
    /// write-through producer/consumer regions.
    pub fn upgraded_baseline() -> Self {
        MachineConfig {
            line_bytes: 32,
            vector_isa: VectorIsa::Avx512,
            write_through_regions: true,
            ..Self::legacy_baseline()
        }
    }

    /// Full Tartan: the upgraded baseline plus OVEC, a 4-PE integrated NPU,
    /// the ANL prefetcher, and FCP with the paper's parameters.
    pub fn tartan() -> Self {
        MachineConfig {
            ovec: true,
            prefetcher: PrefetcherKind::Anl,
            fcp: Some(FcpConfig::paper_default()),
            npu: NpuMode::Integrated { pes: 4 },
            ..Self::upgraded_baseline()
        }
    }

    /// Number of sets in a cache level given this line size.
    pub fn sets(&self, level: CacheConfig) -> u64 {
        level.size_bytes / (self.line_bytes * u64::from(level.ways))
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        Self::upgraded_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_host() {
        let c = MachineConfig::legacy_baseline();
        assert_eq!(c.cores, 4);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l3.size_bytes, 8 * 1024 * 1024);
        assert_eq!((c.l1.latency, c.l2.latency, c.l3.latency), (4, 14, 45));
    }

    #[test]
    fn upgraded_baseline_shrinks_lines_and_widens_vectors() {
        let c = MachineConfig::upgraded_baseline();
        assert_eq!(c.line_bytes, 32);
        assert_eq!(c.vector_isa.lanes(), 16);
        assert!(c.write_through_regions);
        assert!(!c.ovec);
    }

    #[test]
    fn tartan_enables_all_features() {
        let c = MachineConfig::tartan();
        assert!(c.ovec);
        assert_eq!(c.prefetcher, PrefetcherKind::Anl);
        assert_eq!(c.fcp, Some(FcpConfig::paper_default()));
        assert_eq!(c.npu, NpuMode::Integrated { pes: 4 });
    }

    #[test]
    fn set_counts_scale_with_line_size() {
        let legacy = MachineConfig::legacy_baseline();
        let upgraded = MachineConfig::upgraded_baseline();
        assert_eq!(legacy.sets(legacy.l2), 512);
        assert_eq!(upgraded.sets(upgraded.l2), 1024);
    }

    #[test]
    fn manipulation_functions_match_paper() {
        assert_eq!(FcpManipulation::Increment.apply(3), 4);
        assert_eq!(FcpManipulation::Double.apply(3), 6);
        assert_eq!(FcpManipulation::Square.apply(3), 9);
    }
}
