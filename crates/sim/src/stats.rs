//! Simulation statistics: per-cache-level counters, prefetch
//! coverage/accuracy, traffic, and per-phase execution breakdowns.

use std::collections::BTreeMap;
use std::fmt;

use crate::fault::FaultStats;

/// Counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand accesses (loads + stores).
    pub accesses: u64,
    /// Demand hits, excluding first-touch hits on prefetched lines.
    pub hits: u64,
    /// Demand misses (lines fetched from below on demand).
    pub misses: u64,
    /// Demand accesses that hit a line brought in by the prefetcher and not
    /// yet touched — i.e., misses *covered* by prefetching.
    pub prefetch_covered: u64,
    /// Prefetch requests issued into this level.
    pub prefetches_issued: u64,
    /// Prefetched lines later touched by a demand access.
    pub prefetches_useful: u64,
    /// Prefetched lines whose demand access arrived before the data did
    /// (late prefetches — §VIII-C-2's "untimeliness"; counted as misses).
    pub prefetches_late: u64,
    /// Lines evicted from this level.
    pub evictions: u64,
    /// Dirty lines written back to the level below.
    pub writebacks: u64,
}

impl CacheStats {
    /// Demand miss ratio (misses / accesses), 0 if no accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Prefetch coverage: fraction of would-be misses eliminated by
    /// prefetching (§VIII-C-2).
    pub fn coverage(&self) -> f64 {
        let would_be_misses = self.misses + self.prefetch_covered;
        if would_be_misses == 0 {
            0.0
        } else {
            self.prefetch_covered as f64 / would_be_misses as f64
        }
    }

    /// Prefetch accuracy: fraction of issued prefetches that were used.
    pub fn accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetches_useful as f64 / self.prefetches_issued as f64
        }
    }

    /// Total demand misses including those covered by prefetches — the
    /// "misses without a prefetcher" proxy used for normalization.
    pub fn demand_misses(&self) -> u64 {
        self.misses
    }
}

/// Cycle/instruction totals attributed to one named execution phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Cycles attributed to the phase.
    pub cycles: u64,
    /// Dynamic instructions attributed to the phase.
    pub instructions: u64,
}

/// Machine-wide statistics.
///
/// Derives `PartialEq` so whole-run snapshots can be compared directly —
/// the fault-campaign suite asserts that a zero-rate fault plan produces
/// stats bit-identical to no plan at all.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MachineStats {
    /// Per-core L1 stats, merged.
    pub l1: CacheStats,
    /// Per-core L2 stats, merged.
    pub l2: CacheStats,
    /// Shared L3 stats.
    pub l3: CacheStats,
    /// Bytes moved between memory and L3 (DRAM traffic; the UDM metric of
    /// §III-A is this figure).
    pub dram_bytes: u64,
    /// Bytes moved between L3 and the L2s (fills + writebacks + write-through
    /// stores).
    pub l3_traffic_bytes: u64,
    /// Total dynamic instructions.
    pub instructions: u64,
    /// Total wall cycles (sequential sections + max-of-threads parallel
    /// stages).
    pub wall_cycles: u64,
    /// Accelerator invocations served across all attached devices.
    pub npu_invocations: u64,
    /// Per-phase breakdown.
    pub phases: BTreeMap<&'static str, PhaseStats>,
    /// Fault-injection counters (all zero when no faults were injected).
    pub faults: FaultStats,
}

impl MachineStats {
    /// Cycles attributed to one phase (0 if the phase never ran).
    pub fn phase_cycles(&self, name: &str) -> u64 {
        self.phases.get(name).map_or(0, |p| p.cycles)
    }

    /// Fraction of attributed cycles spent in phase `name`.
    ///
    /// The denominator is the sum over all phases (thread cycles), not wall
    /// time, so that breakdown fractions of parallel stages add up to 1.
    pub fn phase_fraction(&self, name: &str) -> f64 {
        let total: u64 = self.phases.values().map(|p| p.cycles).sum();
        if total == 0 {
            0.0
        } else {
            self.phase_cycles(name) as f64 / total as f64
        }
    }
}

impl fmt::Display for MachineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "wall cycles:   {}", self.wall_cycles)?;
        writeln!(f, "instructions:  {}", self.instructions)?;
        writeln!(
            f,
            "L1:  {} acc, {:.2}% miss",
            self.l1.accesses,
            100.0 * self.l1.miss_ratio()
        )?;
        writeln!(
            f,
            "L2:  {} acc, {:.2}% miss, cov {:.0}%, acc {:.0}%",
            self.l2.accesses,
            100.0 * self.l2.miss_ratio(),
            100.0 * self.l2.coverage(),
            100.0 * self.l2.accuracy()
        )?;
        writeln!(
            f,
            "L3:  {} acc, {:.2}% miss",
            self.l3.accesses,
            100.0 * self.l3.miss_ratio()
        )?;
        writeln!(f, "DRAM bytes: {}", self.dram_bytes)?;
        writeln!(f, "L3 traffic bytes: {}", self.l3_traffic_bytes)?;
        if self.npu_invocations > 0 {
            writeln!(f, "NPU invocations: {}", self.npu_invocations)?;
        }
        for (name, p) in &self.phases {
            writeln!(f, "  phase {:<16} {:>12} cy {:>12} instr", name, p.cycles, p.instructions)?;
        }
        if self.faults != FaultStats::default() {
            writeln!(
                f,
                "faults: {} injected, {} detected, {} recovered, {} unrecovered",
                self.faults.injected,
                self.faults.detected,
                self.faults.recovered,
                self.faults.unrecovered
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_and_accuracy() {
        let s = CacheStats {
            accesses: 100,
            hits: 60,
            misses: 20,
            prefetch_covered: 20,
            prefetches_issued: 40,
            prefetches_useful: 30,
            ..CacheStats::default()
        };
        assert!((s.coverage() - 0.5).abs() < 1e-12);
        assert!((s.accuracy() - 0.75).abs() < 1e-12);
        assert!((s.miss_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = CacheStats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.accuracy(), 0.0);
    }

    #[test]
    fn phase_fraction() {
        let mut stats = MachineStats {
            wall_cycles: 100,
            ..MachineStats::default()
        };
        stats.phases.insert(
            "raycast",
            PhaseStats {
                cycles: 74,
                instructions: 10,
            },
        );
        stats.phases.insert(
            "other",
            PhaseStats {
                cycles: 26,
                instructions: 5,
            },
        );
        assert!((stats.phase_fraction("raycast") - 0.74).abs() < 1e-12);
        assert_eq!(stats.phase_fraction("absent"), 0.0);
        assert!(!format!("{stats}").is_empty());
    }
}
