//! The accelerator attachment point: Tartan's NPU (implemented in
//! `tartan-npu`) plugs into the [`crate::Machine`] through this trait.

/// Cycle cost of one accelerator invocation, split the way Fig. 8 reports
/// it: CPU↔accelerator communication vs. accelerator compute.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InvokeCost {
    /// Cycles the CPU spends communicating with the device (send inputs,
    /// collect outputs).
    pub comm_cycles: u64,
    /// Cycles the device spends computing (the CPU waits; fine-grained AXAR
    /// invocations are synchronous).
    pub compute_cycles: u64,
}

impl InvokeCost {
    /// Total cycles charged to the invoking core.
    pub fn total(&self) -> u64 {
        self.comm_cycles + self.compute_cycles
    }
}

/// A device tightly coupled to the pipeline (or attached as a co-processor).
///
/// Implementations perform the *functional* computation on `inputs`,
/// append results to `outputs`, and return the modeled timing.
pub trait Accelerator {
    /// Runs one invocation.
    fn invoke(&mut self, inputs: &[f32], outputs: &mut Vec<f32>) -> InvokeCost;

    /// One-time configuration cost in cycles (e.g., streaming MLP weights
    /// into the PE buffers).
    fn configure_cost(&self) -> u64 {
        0
    }

    /// Device name for reports.
    fn name(&self) -> &'static str;

    /// Invocations served so far (for [`crate::MachineStats`] reporting).
    fn invocations(&self) -> u64 {
        0
    }
}

/// Identifier of an attached accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccelId(pub(crate) usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invoke_cost_totals() {
        let c = InvokeCost {
            comm_cycles: 8,
            compute_cycles: 100,
        };
        assert_eq!(c.total(), 108);
    }
}
