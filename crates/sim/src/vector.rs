//! OVEC's in-hardware oriented address generator (§IV-C, Fig. 2.c).
//!
//! Given an origin element index and a (possibly fractional) per-lane
//! stride, the generator produces one integral element index per lane:
//! `idx_i = ⌊org + i · orient⌋`. In hardware this is one constant-input
//! multiply and one add per lane, all lanes in parallel, at a 5-cycle
//! latency (§VIII-A); here it is a pure function the timing model charges
//! separately.

/// Generates the lane element indices of one oriented vector load.
///
/// `origin` is the (fractional) element index of lane 0 and `orient` the
/// flattened per-step displacement in elements (e.g. `dy · N + dx` on an
/// `N × N` occupancy grid).
///
/// # Examples
///
/// ```
/// use tartan_sim::oriented_lane_indices;
///
/// // A ray stepping 1.5 elements per lane from element 10.2.
/// let lanes = oriented_lane_indices(10.2, 1.5, 4);
/// assert_eq!(lanes, vec![10, 11, 13, 14]);
/// ```
pub fn oriented_lane_indices(origin: f64, orient: f64, lanes: usize) -> Vec<i64> {
    (0..lanes).map(|i| oriented_lane_index(origin, orient, i)).collect()
}

/// The lane-`lane` element index of an oriented load — the exact arithmetic
/// of [`oriented_lane_indices`] exposed per lane, so streaming consumers can
/// walk the lanes without materializing the index vector.
///
/// # Examples
///
/// ```
/// use tartan_sim::{oriented_lane_index, oriented_lane_indices};
///
/// let all = oriented_lane_indices(10.2, 1.5, 4);
/// for (i, &idx) in all.iter().enumerate() {
///     assert_eq!(oriented_lane_index(10.2, 1.5, i), idx);
/// }
/// ```
pub fn oriented_lane_index(origin: f64, orient: f64, lane: usize) -> i64 {
    (origin + lane as f64 * orient).floor() as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integral_stride_is_arithmetic() {
        assert_eq!(oriented_lane_indices(5.0, 3.0, 4), vec![5, 8, 11, 14]);
    }

    #[test]
    fn fractional_parts_are_truncated() {
        // §IV: "the fractional parts of the resulting addresses are omitted".
        assert_eq!(oriented_lane_indices(4.6, 0.9, 3), vec![4, 5, 6]);
    }

    #[test]
    fn negative_orientation_walks_backwards() {
        assert_eq!(oriented_lane_indices(10.0, -2.5, 3), vec![10, 7, 5]);
    }

    #[test]
    fn paper_flattening_example() {
        // §IV: in a 16×16 grid, (4.6, 8.5) flattens to 4.6·16 + 8.5 = 82.1
        // and maps to env[82].
        let flattened = 4.6 * 16.0 + 8.5;
        assert_eq!(oriented_lane_indices(flattened, 0.0, 1), vec![82]);
    }

    #[test]
    fn zero_lanes_is_empty() {
        assert!(oriented_lane_indices(0.0, 1.0, 0).is_empty());
    }
}
