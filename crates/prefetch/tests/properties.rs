//! Property-based tests for the prefetcher models.

use proptest::prelude::*;
use tartan_prefetch::{Anl, Bingo, NextLine, PrefetchContext, Prefetcher};

fn arb_ctx(line_size: u64) -> impl Strategy<Value = PrefetchContext> {
    (0u64..4096, 0u64..(1 << 20), any::<bool>()).prop_map(move |(pc, line, hit)| PrefetchContext {
        pc,
        line_addr: line * line_size,
        hit,
    })
}

proptest! {
    /// Every prefetch candidate any prefetcher emits is line-aligned.
    #[test]
    fn prefetches_are_line_aligned(
        accesses in proptest::collection::vec(arb_ctx(64), 1..200),
        evict_every in 1usize..10,
    ) {
        let mut anl = Anl::new(64);
        let mut nl = NextLine::new(64);
        let mut bingo = Bingo::new(64);
        let mut out = Vec::new();
        for (i, ctx) in accesses.iter().enumerate() {
            for p in [&mut anl as &mut dyn Prefetcher, &mut nl, &mut bingo] {
                out.clear();
                p.on_access(*ctx, &mut out);
                for &addr in &out {
                    prop_assert_eq!(addr % 64, 0);
                }
                if i % evict_every == 0 {
                    p.on_eviction(ctx.line_addr);
                }
            }
        }
    }

    /// ANL never prefetches more lines than its saturated degree limit per
    /// invocation.
    #[test]
    fn anl_burst_is_bounded(
        accesses in proptest::collection::vec(arb_ctx(32), 1..500),
    ) {
        let mut anl = Anl::new(32);
        let mut out = Vec::new();
        for (i, ctx) in accesses.iter().enumerate() {
            out.clear();
            anl.on_access(*ctx, &mut out);
            prop_assert!(out.len() <= 31, "burst of {} at access {}", out.len(), i);
            if i % 7 == 0 {
                anl.on_eviction(ctx.line_addr);
            }
        }
    }

    /// ANL prefetch candidates always lie after the missed line (it is a
    /// forward next-line scheme).
    #[test]
    fn anl_prefetches_forward(
        accesses in proptest::collection::vec(arb_ctx(64), 1..300),
    ) {
        let mut anl = Anl::new(64);
        let mut out = Vec::new();
        for (i, ctx) in accesses.iter().enumerate() {
            out.clear();
            anl.on_access(*ctx, &mut out);
            for &addr in &out {
                prop_assert!(addr > ctx.line_addr);
            }
            if i % 3 == 0 {
                anl.on_eviction(ctx.line_addr);
            }
        }
    }

    /// Bingo prefetch candidates stay within the 2 KB region of the trigger.
    #[test]
    fn bingo_stays_in_region(
        accesses in proptest::collection::vec(arb_ctx(64), 1..300),
    ) {
        let mut bingo = Bingo::new(64);
        let mut out = Vec::new();
        for (i, ctx) in accesses.iter().enumerate() {
            out.clear();
            bingo.on_access(*ctx, &mut out);
            for &addr in &out {
                prop_assert_eq!(addr / 2048, ctx.line_addr / 2048);
                prop_assert_ne!(addr, ctx.line_addr, "trigger line is not re-prefetched");
            }
            if i % 5 == 0 {
                bingo.on_eviction(ctx.line_addr);
            }
        }
    }

    /// A deterministic replay: the same access/eviction sequence produces the
    /// same prefetch stream.
    #[test]
    fn prefetchers_are_deterministic(
        accesses in proptest::collection::vec(arb_ctx(64), 1..200),
    ) {
        let run = |p: &mut dyn Prefetcher| {
            let mut all = Vec::new();
            let mut out = Vec::new();
            for (i, ctx) in accesses.iter().enumerate() {
                out.clear();
                p.on_access(*ctx, &mut out);
                all.extend_from_slice(&out);
                if i % 4 == 0 {
                    p.on_eviction(ctx.line_addr);
                }
            }
            all
        };
        let mut a1 = Anl::new(64);
        let mut a2 = Anl::new(64);
        prop_assert_eq!(run(&mut a1), run(&mut a2));
        let mut b1 = Bingo::new(64);
        let mut b2 = Bingo::new(64);
        prop_assert_eq!(run(&mut b1), run(&mut b2));
    }
}
