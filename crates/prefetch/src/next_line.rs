//! The classic next-line prefetcher used as the `NL` baseline of Fig. 10.

use crate::{PrefetchContext, Prefetcher};

/// A non-adaptive next-line prefetcher.
///
/// On every demand miss it prefetches the `degree` lines that follow the
/// missed line. The paper's `NL` baseline uses degree 1 ("one prefetch per
/// invoke"), which is why it fails to be timely on dense regions.
///
/// # Examples
///
/// ```
/// use tartan_prefetch::{NextLine, Prefetcher, PrefetchContext};
///
/// let mut nl = NextLine::new(64);
/// let mut out = Vec::new();
/// nl.on_access(PrefetchContext { pc: 0, line_addr: 128, hit: false }, &mut out);
/// assert_eq!(out, vec![192]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NextLine {
    line_size: u64,
    degree: u64,
}

impl NextLine {
    /// Creates a degree-1 next-line prefetcher for the given line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is zero or not a power of two.
    pub fn new(line_size: u64) -> Self {
        Self::with_degree(line_size, 1)
    }

    /// Creates a next-line prefetcher with an explicit static degree.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is zero or not a power of two, or if `degree`
    /// is zero.
    pub fn with_degree(line_size: u64, degree: u64) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a nonzero power of two"
        );
        assert!(degree > 0, "degree must be positive");
        NextLine { line_size, degree }
    }

    /// The static prefetch degree.
    pub fn degree(&self) -> u64 {
        self.degree
    }
}

impl Prefetcher for NextLine {
    fn on_access(&mut self, ctx: PrefetchContext, out: &mut Vec<u64>) {
        if ctx.hit {
            return;
        }
        for i in 1..=self.degree {
            out.push(ctx.line_addr + i * self.line_size);
        }
    }

    fn metadata_bits(&self) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "NL"
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetches_next_line_on_miss() {
        let mut nl = NextLine::new(32);
        let mut out = Vec::new();
        nl.on_access(
            PrefetchContext {
                pc: 9,
                line_addr: 96,
                hit: false,
            },
            &mut out,
        );
        assert_eq!(out, vec![128]);
    }

    #[test]
    fn silent_on_hit() {
        let mut nl = NextLine::new(32);
        let mut out = Vec::new();
        nl.on_access(
            PrefetchContext {
                pc: 9,
                line_addr: 96,
                hit: true,
            },
            &mut out,
        );
        assert!(out.is_empty());
    }

    #[test]
    fn higher_degree_prefetches_more() {
        let mut nl = NextLine::with_degree(64, 4);
        let mut out = Vec::new();
        nl.on_access(
            PrefetchContext {
                pc: 9,
                line_addr: 0,
                hit: false,
            },
            &mut out,
        );
        assert_eq!(out, vec![64, 128, 192, 256]);
        assert_eq!(nl.degree(), 4);
    }

    #[test]
    #[should_panic(expected = "degree must be positive")]
    fn zero_degree_rejected() {
        let _ = NextLine::with_degree(64, 0);
    }
}
