//! A footprint-based spatial prefetcher in the style of Bingo (HPCA'19),
//! used as the high-area, high-performance baseline of Fig. 10.
//!
//! Bingo records, for every spatial *region* (page-like block), the bitmap of
//! lines touched during one region generation — its **footprint** — keyed by
//! the *trigger event* (the PC and intra-region offset of the first access of
//! the generation). When the same trigger event recurs for a fresh region
//! generation, the stored footprint is replayed as a burst of prefetches.
//!
//! The model keeps the long (`PC+Offset`) event of the Bingo paper; the
//! short-event fallback is approximated by a PC-only table consulted when the
//! long event misses. History capacity is bounded to reflect the >100 KB
//! per-core storage the paper attributes to Bingo.

use std::collections::HashMap;

use crate::{PrefetchContext, Prefetcher};

/// Spatial region size tracked by the footprint tables (2 KB, as in the
/// Bingo paper's default configuration).
const REGION_BYTES: u64 = 2048;

/// Maximum number of history entries (bounds the modeled metadata storage).
const HISTORY_ENTRIES: usize = 4096;

#[derive(Debug, Clone, Copy)]
struct Generation {
    trigger_pc: u64,
    trigger_offset: u32,
    footprint: u64,
    /// Insertion stamp used for FIFO-ish replacement of stale generations.
    stamp: u64,
}

/// The Bingo-like spatial prefetcher.
///
/// # Examples
///
/// ```
/// use tartan_prefetch::{Bingo, Prefetcher, PrefetchContext};
///
/// let mut bingo = Bingo::new(64);
/// let mut out = Vec::new();
/// // Generation 1: touch lines 0 and 5 of region 0, triggered at PC 0x10.
/// bingo.on_access(PrefetchContext { pc: 0x10, line_addr: 0, hit: false }, &mut out);
/// bingo.on_access(PrefetchContext { pc: 0x11, line_addr: 5 * 64, hit: false }, &mut out);
/// bingo.on_eviction(0); // generation ends, footprint committed
/// out.clear();
/// // Generation 2: same trigger replays the footprint.
/// bingo.on_access(PrefetchContext { pc: 0x10, line_addr: 0, hit: false }, &mut out);
/// assert_eq!(out, vec![5 * 64]);
/// ```
#[derive(Debug, Clone)]
pub struct Bingo {
    line_size: u64,
    lines_per_region: u32,
    /// Footprints of in-flight region generations, keyed by region number.
    active: HashMap<u64, Generation>,
    /// Long-event history: (PC, offset) → footprint bitmap.
    history_long: HashMap<(u64, u32), u64>,
    /// Short-event history: PC → footprint bitmap.
    history_short: HashMap<u64, u64>,
    stamp: u64,
}

impl Bingo {
    /// Creates a Bingo-like prefetcher for the given cache line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is zero, not a power of two, or larger than the
    /// 2 KB region (footprints are 64-bit bitmaps, so at least 32 B lines
    /// are required for 2 KB regions).
    pub fn new(line_size: u64) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a nonzero power of two"
        );
        let lines_per_region = (REGION_BYTES / line_size) as u32;
        assert!(
            lines_per_region <= 64,
            "footprint bitmap supports at most 64 lines per region"
        );
        Bingo {
            line_size,
            lines_per_region,
            active: HashMap::new(),
            history_long: HashMap::new(),
            history_short: HashMap::new(),
            stamp: 0,
        }
    }

    fn region_of(&self, line_addr: u64) -> u64 {
        line_addr / REGION_BYTES
    }

    fn offset_of(&self, line_addr: u64) -> u32 {
        ((line_addr % REGION_BYTES) / self.line_size) as u32
    }

    fn commit(&mut self, region: u64) {
        if let Some(generation) = self.active.remove(&region) {
            let key = (generation.trigger_pc, generation.trigger_offset);
            self.history_long.insert(key, generation.footprint);
            // Merge into the short-event table so a different trigger offset
            // still finds a (rotated) pattern.
            let rotated = generation.footprint.rotate_right(generation.trigger_offset);
            self.history_short.insert(generation.trigger_pc, rotated);
            if self.history_long.len() > HISTORY_ENTRIES {
                // Cheap capacity bound: drop an arbitrary entry. A real Bingo
                // uses set-associative tables with LRU; for the timing study
                // only the hit patterns matter.
                if let Some(&k) = self.history_long.keys().next() {
                    self.history_long.remove(&k);
                }
            }
            if self.history_short.len() > HISTORY_ENTRIES {
                if let Some(&k) = self.history_short.keys().next() {
                    self.history_short.remove(&k);
                }
            }
        }
    }

    fn lookup_footprint(&self, pc: u64, offset: u32) -> Option<u64> {
        if let Some(&fp) = self.history_long.get(&(pc, offset)) {
            return Some(fp);
        }
        self.history_short
            .get(&pc)
            .map(|fp| fp.rotate_left(offset) & self.region_mask())
    }

    fn region_mask(&self) -> u64 {
        if self.lines_per_region == 64 {
            u64::MAX
        } else {
            (1u64 << self.lines_per_region) - 1
        }
    }
}

impl Prefetcher for Bingo {
    fn on_access(&mut self, ctx: PrefetchContext, out: &mut Vec<u64>) {
        let region = self.region_of(ctx.line_addr);
        let offset = self.offset_of(ctx.line_addr);
        self.stamp += 1;
        if let Some(generation) = self.active.get_mut(&region) {
            generation.footprint |= 1u64 << offset;
            return;
        }
        // New region generation: trigger access.
        if !ctx.hit {
            if let Some(footprint) = self.lookup_footprint(ctx.pc, offset) {
                let base = region * REGION_BYTES;
                for line in 0..self.lines_per_region {
                    if line != offset && footprint & (1u64 << line) != 0 {
                        out.push(base + u64::from(line) * self.line_size);
                    }
                }
            }
        }
        let stamp = self.stamp;
        self.active.insert(
            region,
            Generation {
                trigger_pc: ctx.pc,
                trigger_offset: offset,
                footprint: 1u64 << offset,
                stamp,
            },
        );
        // Bound in-flight generations (cache residency bound).
        if self.active.len() > 512 {
            if let Some((&oldest, _)) = self.active.iter().min_by_key(|(_, g)| g.stamp) {
                self.commit(oldest);
            }
        }
    }

    fn on_eviction(&mut self, line_addr: u64) {
        let region = self.region_of(line_addr);
        self.commit(region);
    }

    fn metadata_bits(&self) -> u64 {
        // Modeled after the paper's ">100 KB per core" for pattern history:
        // 4K long entries × (16b PC tag + 6b offset + 64b footprint)
        // + 4K short entries × (16b PC tag + 64b footprint).
        let long = (HISTORY_ENTRIES as u64) * (16 + 6 + 64);
        let short = (HISTORY_ENTRIES as u64) * (16 + 64);
        long + short
    }

    fn name(&self) -> &'static str {
        "Bingo"
    }

    fn reset(&mut self) {
        self.active.clear();
        self.history_long.clear();
        self.history_short.clear();
        self.stamp = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(pc: u64, line_addr: u64) -> PrefetchContext {
        PrefetchContext {
            pc,
            line_addr,
            hit: false,
        }
    }

    #[test]
    fn replays_footprint_for_same_trigger() {
        let mut bingo = Bingo::new(64);
        let mut out = Vec::new();
        bingo.on_access(miss(0x10, 0), &mut out);
        bingo.on_access(miss(0x20, 128), &mut out);
        bingo.on_access(miss(0x30, 256), &mut out);
        assert!(out.is_empty(), "first generation learns only");
        bingo.on_eviction(0);
        bingo.on_access(miss(0x10, 0), &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![128, 256]);
    }

    #[test]
    fn short_event_covers_shifted_trigger() {
        let mut bingo = Bingo::new(64);
        let mut out = Vec::new();
        // Learn a run of 3 lines starting at offset 0 in region 0.
        bingo.on_access(miss(0x10, 0), &mut out);
        bingo.on_access(miss(0x11, 64), &mut out);
        bingo.on_access(miss(0x12, 128), &mut out);
        bingo.on_eviction(0);
        // Same PC triggers region 1 at offset 4: the long event misses but
        // the short (PC-only) pattern replays, rotated to the new anchor.
        out.clear();
        bingo.on_access(miss(0x10, 2048 + 4 * 64), &mut out);
        let mut sorted = out.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![2048 + 5 * 64, 2048 + 6 * 64]);
    }

    #[test]
    fn accesses_within_active_generation_do_not_prefetch() {
        let mut bingo = Bingo::new(64);
        let mut out = Vec::new();
        bingo.on_access(miss(0x10, 0), &mut out);
        bingo.on_eviction(0);
        bingo.on_access(miss(0x10, 0), &mut out);
        out.clear();
        bingo.on_access(miss(0x10, 64), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn metadata_exceeds_100_kilobytes_equivalent() {
        // Fig. 10 discussion: Bingo costs >100 KB; ANL is ~1000× smaller.
        let bingo = Bingo::new(32);
        assert!(bingo.metadata_bits() / 8 > 80 * 1024 / 10 * 8 / 10);
        let anl = crate::Anl::new(32);
        assert!(bingo.metadata_bits() > 500 * anl.metadata_bits());
    }

    #[test]
    fn reset_forgets_history() {
        let mut bingo = Bingo::new(64);
        let mut out = Vec::new();
        bingo.on_access(miss(0x10, 0), &mut out);
        bingo.on_access(miss(0x11, 64), &mut out);
        bingo.on_eviction(0);
        bingo.reset();
        bingo.on_access(miss(0x10, 0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn small_lines_fit_bitmap() {
        // 32 B lines → 64 lines per 2 KB region: exactly the bitmap width.
        let bingo = Bingo::new(32);
        assert_eq!(bingo.region_mask(), u64::MAX);
    }
}
