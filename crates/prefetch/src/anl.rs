//! Tartan's Adaptive Next-Line (ANL) prefetcher (§VI-D).
//!
//! ANL keeps a small, fully-associative table of `PC+Region` entries. Each
//! entry carries two saturating counters:
//!
//! * **CD** (*current degree*) — how many demand misses this `PC+Region`
//!   pair has produced in the current region generation,
//! * **LD** (*last degree*) — the degree learned in the previous generation,
//!   consumed once to issue a burst of next-line prefetches.
//!
//! A region *generation* ends when any line of the region is evicted from
//! the attached cache; at that point every entry tracking the region copies
//! `CD → LD` and clears `CD`. Entry replacement evicts the entry with the
//! lowest `max(CD, LD)`, preserving the dense regions responsible for most
//! useful prefetches.

use crate::{PrefetchContext, Prefetcher};

/// Number of table entries, as specified in §VIII-C.
pub const ANL_TABLE_ENTRIES: usize = 16;

/// Default ANL region size in bytes (§VI-D picks 1 KB to minimize
/// overprediction in medium-density environments).
const DEFAULT_REGION_BYTES: u64 = 1024;

/// Saturation limit for the 5-bit CD/LD counters (10 bits total per entry).
const DEGREE_MAX: u8 = 31;

/// Low-order PC bits kept in the tag (§VIII-C: 12 bits of PC).
const PC_TAG_BITS: u32 = 12;

/// Observability counters for the ANL table (telemetry, not timing: the
/// simulator never reads these on the timed path).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnlStats {
    /// Replay bursts issued (one per LD consumption with LD > 0).
    pub bursts: u64,
    /// Prefetch addresses produced across all bursts.
    pub lines_prefetched: u64,
    /// Region generations terminated by an eviction (CD → LD commits).
    pub generations: u64,
    /// Entries evicted by the `max(CD, LD)` replacement policy.
    pub entry_evictions: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    valid: bool,
    pc_tag: u16,
    region: u64,
    current_degree: u8,
    last_degree: u8,
}

/// The Adaptive Next-Line prefetcher.
///
/// # Examples
///
/// ```
/// use tartan_prefetch::{Anl, Prefetcher, PrefetchContext};
///
/// let mut anl = Anl::new(64);
/// let mut out = Vec::new();
/// let pc = 0x400;
/// // First generation: three misses in one region teach a degree of 3.
/// for i in 0..3 {
///     anl.on_access(PrefetchContext { pc, line_addr: i * 64, hit: false }, &mut out);
/// }
/// // Region termination: any line of the region is evicted.
/// anl.on_eviction(0);
/// // Next generation: the first miss replays the learned degree.
/// out.clear();
/// anl.on_access(PrefetchContext { pc, line_addr: 0, hit: false }, &mut out);
/// assert_eq!(out, vec![64, 128, 192]);
/// ```
#[derive(Debug, Clone)]
pub struct Anl {
    table: [Entry; ANL_TABLE_ENTRIES],
    line_size: u64,
    region_bytes: u64,
    stats: AnlStats,
}

impl Anl {
    /// Creates an ANL prefetcher for a cache with the given line size in
    /// bytes.
    ///
    /// # Panics
    ///
    /// Panics if `line_size` is zero or not a power of two.
    pub fn new(line_size: u64) -> Self {
        Self::with_region_bytes(line_size, DEFAULT_REGION_BYTES)
    }

    /// Creates an ANL prefetcher with an explicit region size — the §VI-D
    /// ablation knob (larger regions raise reach but also overprediction).
    ///
    /// # Panics
    ///
    /// Panics if either size is not a power of two or the region is
    /// smaller than a line.
    pub fn with_region_bytes(line_size: u64, region_bytes: u64) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a nonzero power of two"
        );
        assert!(
            region_bytes.is_power_of_two() && region_bytes >= line_size,
            "region must be a power of two of at least one line"
        );
        Anl {
            table: [Entry::default(); ANL_TABLE_ENTRIES],
            line_size,
            region_bytes,
            stats: AnlStats::default(),
        }
    }

    /// The configured region size in bytes.
    pub fn region_bytes(&self) -> u64 {
        self.region_bytes
    }

    /// Observability counters accumulated since construction (or the last
    /// [`Prefetcher::reset`]).
    pub fn stats(&self) -> AnlStats {
        self.stats
    }

    fn region_of(&self, line_addr: u64) -> u64 {
        line_addr / self.region_bytes
    }

    fn pc_tag(pc: u64) -> u16 {
        (pc & ((1 << PC_TAG_BITS) - 1)) as u16
    }

    fn lookup(&mut self, pc_tag: u16, region: u64) -> Option<usize> {
        self.table
            .iter()
            .position(|e| e.valid && e.pc_tag == pc_tag && e.region == region)
    }

    /// Index of the victim entry: an invalid entry if one exists, otherwise
    /// the entry with the lowest `max(CD, LD)` (§VI-D replacement policy).
    fn victim(&self) -> usize {
        if let Some(idx) = self.table.iter().position(|e| !e.valid) {
            return idx;
        }
        self.table
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| e.current_degree.max(e.last_degree))
            .map(|(i, _)| i)
            .expect("table is non-empty")
    }
}

impl Prefetcher for Anl {
    fn on_access(&mut self, ctx: PrefetchContext, out: &mut Vec<u64>) {
        // ANL is trained on (and triggered by) cache misses only.
        if ctx.hit {
            return;
        }
        let region = self.region_of(ctx.line_addr);
        let pc_tag = Self::pc_tag(ctx.pc);
        match self.lookup(pc_tag, region) {
            Some(idx) => {
                let entry = &mut self.table[idx];
                // (i) issue `LD` next-line prefetches, (ii) bump CD,
                // (iii) consume (reset) LD.
                for i in 1..=u64::from(entry.last_degree) {
                    out.push(ctx.line_addr + i * self.line_size);
                }
                if entry.last_degree > 0 {
                    self.stats.bursts += 1;
                    self.stats.lines_prefetched += u64::from(entry.last_degree);
                }
                entry.current_degree = (entry.current_degree + 1).min(DEGREE_MAX);
                entry.last_degree = 0;
            }
            None => {
                let idx = self.victim();
                if self.table[idx].valid {
                    self.stats.entry_evictions += 1;
                }
                self.table[idx] = Entry {
                    valid: true,
                    pc_tag,
                    region,
                    current_degree: 1,
                    last_degree: 0,
                };
            }
        }
    }

    fn on_eviction(&mut self, line_addr: u64) {
        let region = self.region_of(line_addr);
        for entry in self.table.iter_mut() {
            // Edge-triggered termination: the first eviction of a generation
            // commits CD → LD; the burst of follow-up evictions of the same
            // region (CD already 0) must not clobber the learned degree.
            if entry.valid && entry.region == region && entry.current_degree > 0 {
                entry.last_degree = entry.current_degree;
                entry.current_degree = 0;
                self.stats.generations += 1;
            }
        }
    }

    fn metadata_bits(&self) -> u64 {
        // §VIII-C: 16 entries × (12 PC bits + 38 region-address bits + 10
        // degree bits) = 960 bits = 120 B.
        (ANL_TABLE_ENTRIES as u64) * (u64::from(PC_TAG_BITS) + 38 + 10)
    }

    fn name(&self) -> &'static str {
        "ANL"
    }

    fn reset(&mut self) {
        self.table = [Entry::default(); ANL_TABLE_ENTRIES];
        self.stats = AnlStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn miss(pc: u64, line_addr: u64) -> PrefetchContext {
        PrefetchContext {
            pc,
            line_addr,
            hit: false,
        }
    }

    #[test]
    fn fresh_entry_prefetches_nothing() {
        let mut anl = Anl::new(64);
        let mut out = Vec::new();
        anl.on_access(miss(7, 4096), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn learns_degree_across_generations() {
        let mut anl = Anl::new(64);
        let mut out = Vec::new();
        for i in 0..5u64 {
            anl.on_access(miss(7, i * 64), &mut out);
        }
        assert!(out.is_empty(), "first generation must not prefetch");
        anl.on_eviction(64); // terminate region 0
        anl.on_access(miss(7, 0), &mut out);
        assert_eq!(out, vec![64, 128, 192, 256, 320]);
    }

    #[test]
    fn ld_is_consumed_once_per_generation() {
        let mut anl = Anl::new(64);
        let mut out = Vec::new();
        anl.on_access(miss(7, 0), &mut out);
        anl.on_access(miss(7, 64), &mut out);
        anl.on_eviction(0);
        anl.on_access(miss(7, 0), &mut out);
        assert_eq!(out.len(), 2);
        out.clear();
        anl.on_access(miss(7, 128), &mut out);
        assert!(out.is_empty(), "LD was reset after the replay burst");
    }

    #[test]
    fn regions_are_separated() {
        let mut anl = Anl::new(64);
        let mut out = Vec::new();
        anl.on_access(miss(7, 0), &mut out);
        anl.on_access(miss(7, 64), &mut out);
        // Different 1KB region, same PC: independent entry.
        anl.on_access(miss(7, 4096), &mut out);
        anl.on_eviction(0);
        // Region 4096/1024 = 4 was not terminated, its CD stays.
        anl.on_access(miss(7, 4096 + 64), &mut out);
        assert!(out.is_empty());
        anl.on_eviction(4096);
        anl.on_access(miss(7, 4096), &mut out);
        assert_eq!(out, vec![4096 + 64, 4096 + 128]);
    }

    #[test]
    fn pcs_are_separated() {
        let mut anl = Anl::new(64);
        let mut out = Vec::new();
        anl.on_access(miss(1, 0), &mut out);
        anl.on_access(miss(1, 64), &mut out);
        anl.on_access(miss(2, 128), &mut out);
        anl.on_eviction(0);
        anl.on_access(miss(2, 192), &mut out);
        // PC 2 learned degree 1, PC 1 learned degree 2.
        assert_eq!(out, vec![256]);
        out.clear();
        anl.on_access(miss(1, 0), &mut out);
        assert_eq!(out, vec![64, 128]);
    }

    #[test]
    fn hits_do_not_train() {
        let mut anl = Anl::new(64);
        let mut out = Vec::new();
        anl.on_access(
            PrefetchContext {
                pc: 7,
                line_addr: 0,
                hit: true,
            },
            &mut out,
        );
        anl.on_eviction(0);
        anl.on_access(miss(7, 0), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn victim_is_lowest_max_degree() {
        let mut anl = Anl::new(64);
        let mut out = Vec::new();
        // Fill all 16 entries with distinct regions; give region r a degree
        // of r+1 misses.
        for r in 0..16u64 {
            for i in 0..=r {
                anl.on_access(miss(100, r * 1024 + i * 64), &mut out);
            }
        }
        // A 17th region must evict the entry for region 0 (lowest degree).
        anl.on_access(miss(100, 16 * 1024), &mut out);
        anl.on_eviction(0);
        out.clear();
        anl.on_access(miss(100, 0), &mut out);
        // Region 0's entry was evicted, so this allocates fresh: no prefetch.
        assert!(out.is_empty());
        // Region 15 is still resident: terminate and replay its degree.
        anl.on_eviction(15 * 1024);
        out.clear();
        anl.on_access(miss(100, 15 * 1024), &mut out);
        assert_eq!(out.len(), 16);
    }

    #[test]
    fn degree_saturates_at_counter_width() {
        let mut anl = Anl::new(64);
        let mut out = Vec::new();
        // 1KB region holds 16 lines of 64B; reuse misses on the same line
        // to push CD beyond 31.
        for _ in 0..100 {
            anl.on_access(miss(7, 0), &mut out);
            out.clear();
        }
        anl.on_eviction(0);
        anl.on_access(miss(7, 0), &mut out);
        assert_eq!(out.len(), 31, "degree must saturate at 5 bits");
    }

    #[test]
    fn region_size_is_configurable() {
        let mut anl = Anl::with_region_bytes(64, 4096);
        assert_eq!(anl.region_bytes(), 4096);
        let mut out = Vec::new();
        // Lines 0 and 2048/64=32 share a 4KB region but not a 1KB one.
        anl.on_access(miss(7, 0), &mut out);
        anl.on_access(miss(7, 2048), &mut out);
        anl.on_eviction(0);
        anl.on_access(miss(7, 0), &mut out);
        assert_eq!(out.len(), 2, "4KB region learned degree 2");
    }

    #[test]
    #[should_panic(expected = "region must be")]
    fn region_smaller_than_line_rejected() {
        let _ = Anl::with_region_bytes(64, 32);
    }

    #[test]
    fn metadata_is_120_bytes() {
        let anl = Anl::new(32);
        assert_eq!(anl.metadata_bits(), 960);
        assert_eq!(anl.metadata_bits() / 8, 120);
    }

    #[test]
    fn stats_count_bursts_generations_and_evictions() {
        let mut anl = Anl::new(64);
        let mut out = Vec::new();
        for i in 0..3u64 {
            anl.on_access(miss(7, i * 64), &mut out);
        }
        assert_eq!(anl.stats(), AnlStats::default(), "training alone counts nothing");
        anl.on_eviction(0);
        anl.on_access(miss(7, 0), &mut out);
        let s = anl.stats();
        assert_eq!(s.generations, 1);
        assert_eq!(s.bursts, 1);
        assert_eq!(s.lines_prefetched, 3);
        assert_eq!(s.entry_evictions, 0);
        // 16 fresh regions on a 16-entry table force one entry eviction.
        for r in 1..=16u64 {
            anl.on_access(miss(900, r * 1024), &mut out);
        }
        assert_eq!(anl.stats().entry_evictions, 1);
        anl.reset();
        assert_eq!(anl.stats(), AnlStats::default());
    }

    #[test]
    fn reset_clears_learning() {
        let mut anl = Anl::new(64);
        let mut out = Vec::new();
        anl.on_access(miss(7, 0), &mut out);
        anl.on_access(miss(7, 64), &mut out);
        anl.on_eviction(0);
        anl.reset();
        anl.on_access(miss(7, 0), &mut out);
        assert!(out.is_empty());
    }
}
