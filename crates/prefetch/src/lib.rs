#![warn(missing_docs)]

//! Hardware data-prefetcher models for the Tartan robotic processor.
//!
//! This crate implements the three prefetchers evaluated in the Tartan paper
//! (§VI-D, Fig. 10):
//!
//! * [`NextLine`] — a classic, non-adaptive next-line prefetcher,
//! * [`Anl`] — Tartan's *Adaptive Next-Line* prefetcher, which learns a
//!   per-`PC+Region` prefetch degree from the density of accesses observed in
//!   each region generation,
//! * [`Bingo`] — a footprint-based spatial prefetcher in the style of the
//!   Bingo spatial data prefetcher, used as the high-area baseline.
//!
//! Prefetchers are driven by the cache they are attached to through the
//! [`Prefetcher`] trait: the cache reports demand accesses (with their
//! program counter and hit/miss outcome) and line evictions, and the
//! prefetcher responds with a set of line addresses to prefetch.
//!
//! # Examples
//!
//! ```
//! use tartan_prefetch::{Anl, Prefetcher, PrefetchContext};
//!
//! let mut anl = Anl::new(64);
//! let mut out = Vec::new();
//! // A demand miss at PC 0x400 to line address 0x1_0000.
//! anl.on_access(PrefetchContext { pc: 0x400, line_addr: 0x1_0000, hit: false }, &mut out);
//! // A fresh entry starts with last-degree 0, so nothing is prefetched yet.
//! assert!(out.is_empty());
//! ```

mod anl;
mod bingo;
mod next_line;

pub use anl::{Anl, AnlStats, ANL_TABLE_ENTRIES};
pub use bingo::Bingo;
pub use next_line::NextLine;

/// A single demand access observed by a cache, handed to its prefetcher.
///
/// Addresses are *line* addresses (byte address with the intra-line offset
/// bits cleared); `pc` identifies the load instruction that produced the
/// access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefetchContext {
    /// Program counter of the load instruction.
    pub pc: u64,
    /// Line-aligned byte address of the access.
    pub line_addr: u64,
    /// Whether the access hit in the cache the prefetcher is attached to.
    pub hit: bool,
}

/// A hardware prefetcher attached to one cache level.
///
/// The owning cache calls [`on_access`](Prefetcher::on_access) for every
/// demand access and [`on_eviction`](Prefetcher::on_eviction) whenever a line
/// is evicted. Prefetch candidates are appended to the `out` vector as
/// line-aligned addresses; the cache decides what to do with them (issue,
/// drop on duplicate, etc.).
pub trait Prefetcher {
    /// Observe a demand access and append prefetch candidates to `out`.
    fn on_access(&mut self, ctx: PrefetchContext, out: &mut Vec<u64>);

    /// Observe the eviction of `line_addr` from the attached cache.
    ///
    /// ANL uses this as its *region termination* signal (§VI-D); Bingo uses
    /// it to commit the footprint of a finished region generation.
    fn on_eviction(&mut self, line_addr: u64) {
        let _ = line_addr;
    }

    /// Modeled metadata storage in bits (for the paper's area comparison).
    fn metadata_bits(&self) -> u64;

    /// Short, human-readable prefetcher name (`"ANL"`, `"NL"`, `"Bingo"`).
    fn name(&self) -> &'static str;

    /// Reset all learned state, keeping the configuration.
    fn reset(&mut self);
}

/// A no-op prefetcher, used for the `No`-prefetcher baseline of Fig. 10.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoPrefetch;

impl NoPrefetch {
    /// Creates a new disabled prefetcher.
    pub fn new() -> Self {
        NoPrefetch
    }
}

impl Prefetcher for NoPrefetch {
    fn on_access(&mut self, _ctx: PrefetchContext, _out: &mut Vec<u64>) {}

    fn metadata_bits(&self) -> u64 {
        0
    }

    fn name(&self) -> &'static str {
        "No"
    }

    fn reset(&mut self) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_prefetch_is_silent() {
        let mut p = NoPrefetch::new();
        let mut out = Vec::new();
        p.on_access(
            PrefetchContext {
                pc: 1,
                line_addr: 64,
                hit: false,
            },
            &mut out,
        );
        assert!(out.is_empty());
        assert_eq!(p.metadata_bits(), 0);
        assert_eq!(p.name(), "No");
    }
}
