//! Event sinks: where cycle-stamped events go.
//!
//! A [`Sink`] receives every event the simulator emits (subject to its
//! [`Interest`] mask). Three implementations cover the common needs:
//!
//! * [`CountingSink`] — O(1) per event; tallies counts per kind plus the
//!   reconciliation sums tests use (fault counts, per-level cache tallies).
//! * [`RingBufferSink`] — keeps the last `cap` events in memory for
//!   post-mortem inspection or Chrome-trace export.
//! * [`JsonLinesSink`] — serializes each event as one JSON line into an
//!   in-memory buffer (byte-deterministic across same-seed runs).
//!
//! Sinks attach to the machine as `Arc<Mutex<dyn Sink>>` (see [`shared`]),
//! so the caller keeps a typed handle to read results after the run.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use crate::event::{CacheOutcome, Event, Interest, Level};

/// A destination for telemetry events.
///
/// `Send` is required so a sink can ride along into the worker threads the
/// parallel machine spawns.
pub trait Sink: Send {
    /// Receives one event. Called only for categories in [`Sink::interest`].
    fn record(&mut self, event: &Event);

    /// Which event categories this sink wants. The machine caches this at
    /// attach time; masked categories are never even constructed.
    fn interest(&self) -> Interest {
        Interest::all()
    }
}

/// A sink shared between the simulator and the caller.
pub type SharedSink = Arc<Mutex<dyn Sink>>;

/// Wraps a concrete sink for attachment, returning both the typed handle
/// (for reading results after the run) and the erased handle (for
/// `Machine::set_telemetry`).
///
/// ```
/// use tartan_telemetry::{shared, CountingSink};
/// let (counts, sink) = shared(CountingSink::default());
/// // machine.set_telemetry(sink);
/// # let _ = sink;
/// let total = counts.lock().unwrap().total();
/// assert_eq!(total, 0);
/// ```
pub fn shared<S: Sink + 'static>(sink: S) -> (Arc<Mutex<S>>, SharedSink) {
    let typed = Arc::new(Mutex::new(sink));
    let erased: SharedSink = typed.clone();
    (typed, erased)
}

/// Per-level demand-access tallies kept by [`CountingSink`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LevelCounts {
    /// Demand accesses observed at this level.
    pub accesses: u64,
    /// Plain hits.
    pub hits: u64,
    /// Plain misses.
    pub misses: u64,
    /// Misses covered by a timely prefetch.
    pub covered: u64,
    /// First touches of late (in-flight) prefetches.
    pub late: u64,
    /// Evictions observed at this level.
    pub evictions: u64,
    /// Evictions of dirty lines.
    pub dirty_evictions: u64,
    /// Evictions of prefetched lines that were never demanded (pollution).
    pub prefetched_unused_evictions: u64,
    /// Prefetches issued into this level.
    pub prefetches_issued: u64,
}

/// Fault-event sums kept by [`CountingSink`], for reconciling against
/// `MachineStats::faults`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Sum of `FaultInjected::count`.
    pub injected: u64,
    /// Sum of `FaultDetected::count`.
    pub detected: u64,
    /// Sum of `FaultRecovered::count`.
    pub recovered: u64,
    /// Sum of `FaultUnrecovered::count`.
    pub unrecovered: u64,
}

/// An O(1)-per-event sink that tallies counts instead of storing events.
///
/// This is the cheapest always-on observer: per-kind event counts, fault
/// count sums, per-level cache tallies, and NPU verdict/rollback splits.
#[derive(Debug, Default)]
pub struct CountingSink {
    kinds: BTreeMap<&'static str, u64>,
    l1: LevelCounts,
    l2: LevelCounts,
    l3: LevelCounts,
    faults: FaultCounts,
    /// NPU verdicts that accepted the iteration.
    pub verdicts_accepted: u64,
    /// NPU verdicts that rejected the iteration.
    pub verdicts_rejected: u64,
    /// Rollbacks that fell back to CPU-exact re-execution.
    pub cpu_fallbacks: u64,
    /// Restriction mask; defaults to everything.
    mask: Interest,
}

impl CountingSink {
    /// A counting sink listening to every category.
    pub fn new() -> CountingSink {
        CountingSink {
            mask: Interest::all(),
            ..CountingSink::default()
        }
    }

    /// A counting sink restricted to `mask`.
    pub fn with_interest(mask: Interest) -> CountingSink {
        CountingSink {
            mask,
            ..CountingSink::default()
        }
    }

    /// Events seen for `kind` (see [`Event::kind`]).
    pub fn count(&self, kind: &str) -> u64 {
        self.kinds.get(kind).copied().unwrap_or(0)
    }

    /// Total events seen.
    pub fn total(&self) -> u64 {
        self.kinds.values().sum()
    }

    /// Per-kind counts, ordered by kind label.
    pub fn kinds(&self) -> &BTreeMap<&'static str, u64> {
        &self.kinds
    }

    /// Tallies for one cache level.
    pub fn level(&self, level: Level) -> &LevelCounts {
        match level {
            Level::L1 => &self.l1,
            Level::L2 => &self.l2,
            Level::L3 => &self.l3,
        }
    }

    /// Fault count sums.
    pub fn faults(&self) -> &FaultCounts {
        &self.faults
    }

    fn level_mut(&mut self, level: Level) -> &mut LevelCounts {
        match level {
            Level::L1 => &mut self.l1,
            Level::L2 => &mut self.l2,
            Level::L3 => &mut self.l3,
        }
    }
}

impl Default for Interest {
    fn default() -> Interest {
        Interest::all()
    }
}

impl Sink for CountingSink {
    fn record(&mut self, event: &Event) {
        *self.kinds.entry(event.kind()).or_insert(0) += 1;
        match *event {
            Event::CacheAccess { level, outcome, .. } => {
                let lc = self.level_mut(level);
                lc.accesses += 1;
                match outcome {
                    CacheOutcome::Hit => lc.hits += 1,
                    CacheOutcome::Miss => lc.misses += 1,
                    CacheOutcome::Covered => lc.covered += 1,
                    CacheOutcome::Late => lc.late += 1,
                }
            }
            Event::CacheEviction {
                level,
                dirty,
                prefetched_unused,
                ..
            } => {
                let lc = self.level_mut(level);
                lc.evictions += 1;
                if dirty {
                    lc.dirty_evictions += 1;
                }
                if prefetched_unused {
                    lc.prefetched_unused_evictions += 1;
                }
            }
            Event::PrefetchIssue { level, .. } => {
                self.level_mut(level).prefetches_issued += 1;
            }
            Event::NpuVerdict { accepted, .. } => {
                if accepted {
                    self.verdicts_accepted += 1;
                } else {
                    self.verdicts_rejected += 1;
                }
            }
            Event::NpuRollback { cpu_fallback, .. } => {
                if cpu_fallback {
                    self.cpu_fallbacks += 1;
                }
            }
            Event::FaultInjected { count, .. } => self.faults.injected += count,
            Event::FaultDetected { count, .. } => self.faults.detected += count,
            Event::FaultRecovered { count, .. } => self.faults.recovered += count,
            Event::FaultUnrecovered { count, .. } => self.faults.unrecovered += count,
            Event::MemRequest { .. }
            | Event::OvecAddrGen { .. }
            | Event::NpuInvoke { .. }
            | Event::PhaseBegin { .. }
            | Event::PhaseEnd { .. } => {}
        }
    }

    fn interest(&self) -> Interest {
        self.mask
    }
}

/// Keeps the most recent `cap` events; older ones are dropped (counted).
#[derive(Debug)]
pub struct RingBufferSink {
    buf: Vec<Event>,
    head: usize,
    cap: usize,
    dropped: u64,
    mask: Interest,
}

impl RingBufferSink {
    /// A ring holding at most `cap` events (min 1), all categories.
    pub fn new(cap: usize) -> RingBufferSink {
        RingBufferSink {
            buf: Vec::new(),
            head: 0,
            cap: cap.max(1),
            dropped: 0,
            mask: Interest::all(),
        }
    }

    /// Restricts the ring to `mask` categories.
    pub fn with_interest(cap: usize, mask: Interest) -> RingBufferSink {
        RingBufferSink {
            mask,
            ..RingBufferSink::new(cap)
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<Event> {
        if self.buf.len() < self.cap {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.cap);
            out.extend_from_slice(&self.buf[self.head..]);
            out.extend_from_slice(&self.buf[..self.head]);
            out
        }
    }

    /// Events displaced by newer ones.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no event has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

impl Sink for RingBufferSink {
    fn record(&mut self, event: &Event) {
        if self.buf.len() < self.cap {
            self.buf.push(event.clone());
        } else {
            self.buf[self.head] = event.clone();
            self.head = (self.head + 1) % self.cap;
            self.dropped += 1;
        }
    }

    fn interest(&self) -> Interest {
        self.mask
    }
}

/// Serializes each event as one JSON line into an in-memory buffer.
///
/// Output is byte-deterministic: same seed, same workload → identical
/// bytes. A byte cap bounds memory; once hit, later events are counted in
/// [`JsonLinesSink::dropped`] instead of serialized (the flag makes
/// truncation visible instead of silent).
#[derive(Debug)]
pub struct JsonLinesSink {
    out: String,
    max_bytes: usize,
    dropped: u64,
    mask: Interest,
}

impl JsonLinesSink {
    /// Default byte cap (16 MiB) — ample for tier-1 runs.
    pub const DEFAULT_MAX_BYTES: usize = 16 << 20;

    /// A JSON-lines sink with the default byte cap, all categories.
    pub fn new() -> JsonLinesSink {
        JsonLinesSink::with_limit(JsonLinesSink::DEFAULT_MAX_BYTES)
    }

    /// A JSON-lines sink capped at `max_bytes` of output.
    pub fn with_limit(max_bytes: usize) -> JsonLinesSink {
        JsonLinesSink {
            out: String::new(),
            max_bytes,
            dropped: 0,
            mask: Interest::all(),
        }
    }

    /// Restricts the sink to `mask` categories.
    pub fn with_interest(mask: Interest) -> JsonLinesSink {
        JsonLinesSink {
            mask,
            ..JsonLinesSink::new()
        }
    }

    /// The JSON-lines text accumulated so far (one object per line).
    pub fn contents(&self) -> &str {
        &self.out
    }

    /// Consumes the sink, returning the accumulated text.
    pub fn into_contents(self) -> String {
        self.out
    }

    /// Events not serialized because the byte cap was reached.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serialized lines so far.
    pub fn lines(&self) -> usize {
        self.out.lines().count()
    }
}

impl Default for JsonLinesSink {
    fn default() -> JsonLinesSink {
        JsonLinesSink::new()
    }
}

impl Sink for JsonLinesSink {
    fn record(&mut self, event: &Event) {
        if self.out.len() >= self.max_bytes {
            self.dropped += 1;
            return;
        }
        event.write_json(&mut self.out);
        self.out.push('\n');
    }

    fn interest(&self) -> Interest {
        self.mask
    }
}

/// Fans one event stream out to several sinks.
///
/// Its interest is the union of the children's interests; each child still
/// only receives the categories it asked for.
#[derive(Default)]
pub struct TeeSink {
    children: Vec<SharedSink>,
}

impl TeeSink {
    /// An empty tee.
    pub fn new() -> TeeSink {
        TeeSink::default()
    }

    /// Adds a child sink.
    pub fn push(&mut self, child: SharedSink) {
        self.children.push(child);
    }
}

impl Sink for TeeSink {
    fn record(&mut self, event: &Event) {
        let cat = event.category();
        for child in &self.children {
            let mut guard = child.lock().expect("telemetry sink poisoned");
            if guard.interest().contains(cat) {
                guard.record(event);
            }
        }
    }

    fn interest(&self) -> Interest {
        let mut i = Interest::none();
        for child in &self.children {
            i |= child.lock().expect("telemetry sink poisoned").interest();
        }
        i
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::tests::sample_events;

    #[test]
    fn counting_sink_tallies_everything() {
        let mut sink = CountingSink::new();
        for e in sample_events() {
            sink.record(&e);
        }
        assert_eq!(sink.total(), 14);
        assert_eq!(sink.count("cache_access"), 1);
        assert_eq!(sink.count("nonexistent"), 0);
        assert_eq!(sink.level(Level::L2).accesses, 1);
        assert_eq!(sink.level(Level::L2).covered, 1);
        assert_eq!(sink.level(Level::L3).evictions, 1);
        assert_eq!(sink.level(Level::L3).dirty_evictions, 1);
        assert_eq!(sink.level(Level::L2).prefetches_issued, 1);
        assert_eq!(sink.faults().injected, 2);
        assert_eq!(sink.faults().detected, 2);
        assert_eq!(sink.faults().recovered, 2);
        assert_eq!(sink.faults().unrecovered, 1);
        assert_eq!(sink.verdicts_accepted, 1);
        assert_eq!(sink.cpu_fallbacks, 1);
    }

    #[test]
    fn ring_buffer_keeps_newest() {
        let mut sink = RingBufferSink::new(4);
        let all = sample_events();
        for e in &all {
            sink.record(e);
        }
        assert_eq!(sink.len(), 4);
        assert_eq!(sink.dropped(), all.len() as u64 - 4);
        let kept = sink.events();
        let expect: Vec<_> = all[all.len() - 4..].to_vec();
        assert_eq!(kept, expect);
    }

    #[test]
    fn json_lines_sink_is_valid_and_capped() {
        let mut sink = JsonLinesSink::new();
        for e in sample_events() {
            sink.record(&e);
        }
        assert_eq!(sink.lines(), 14);
        assert_eq!(sink.dropped(), 0);
        for line in sink.contents().lines() {
            crate::json::validate_json(line).unwrap();
        }

        let mut tiny = JsonLinesSink::with_limit(10);
        for e in sample_events() {
            tiny.record(&e);
        }
        assert_eq!(tiny.lines(), 1);
        assert_eq!(tiny.dropped(), 13);
    }

    #[test]
    fn tee_fans_out_respecting_interest() {
        let (counts_all, all) = shared(CountingSink::new());
        let (counts_fault, faults) = shared(CountingSink::with_interest(Interest::FAULT));
        let mut tee = TeeSink::new();
        tee.push(all);
        tee.push(faults);
        assert!(tee.interest().contains(Interest::all()));
        for e in sample_events() {
            tee.record(&e);
        }
        // The all-categories child still misses the opt-in TRACE sample.
        assert_eq!(counts_all.lock().unwrap().total(), 13);
        assert_eq!(counts_fault.lock().unwrap().total(), 4);
    }

    #[test]
    fn shared_handles_alias() {
        let (typed, erased) = shared(CountingSink::new());
        erased.lock().unwrap().record(&sample_events()[0]);
        assert_eq!(typed.lock().unwrap().total(), 1);
    }
}
