//! Campaign-level observability documents.
//!
//! Where `stats.json` describes *simulated* results (byte-deterministic
//! for a fixed seed), the documents in this module describe the *host
//! execution* of a campaign: who ran which job on which worker thread,
//! when, how long it took, what was retried, what the store served. Their
//! layout is fixed and validated, but the timing values are whatever the
//! host measured — like `BENCH_host.json`, they are intentionally not
//! byte-deterministic.
//!
//! Three document shapes share [`CAMPAIGN_SCHEMA_VERSION`]:
//!
//! * **Heartbeat lines** ([`Heartbeat`]) — one JSON object per line on
//!   stderr (`tartan_run --progress=jsonl`), cheap enough to tail.
//! * **Campaign profile** ([`CampaignProfile`]) — the post-campaign
//!   export (`<name>.campaign_profile.json`): host-time attribution per
//!   phase, one [`JobSpan`] per job, and a [`MetricsSnapshot`].
//! * **Bench history lines** ([`BenchHistoryLine`]) — one line appended
//!   to `results/BENCH_history.jsonl` per `bench_tier1` invocation, the
//!   input to `bench_compare`'s regression detection.
//!
//! [`campaign_trace_json`] additionally renders the job spans as a
//! Chrome-trace timeline with one track per worker thread, loadable in
//! Perfetto next to the per-run simulator traces.

use crate::json::{push_f64, push_str, validate_json};
use crate::metrics::MetricsSnapshot;

/// Version stamped into every campaign-observability document
/// (`campaign_profile.json`, heartbeat lines, `BENCH_history.jsonl`).
///
/// Independent of `STATS_SCHEMA_VERSION`: these documents describe host
/// execution, not simulated results. CI's schema guard requires a
/// matching `SCHEMA.md` entry when this changes.
pub const CAMPAIGN_SCHEMA_VERSION: u32 = 1;

/// One phase of a campaign's host wall-clock, as a disjoint segment:
/// the per-phase `host_nanos` of a profile sum to (approximately) the
/// campaign's `total_host_nanos`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignPhase {
    /// Phase label (`parse`, `plan`, `simulate`, `store-io`, `export`).
    pub name: String,
    /// Host nanoseconds spent in the phase.
    pub host_nanos: u64,
}

/// The host-execution record of one campaign job.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobSpan {
    /// Submission index of the job.
    pub index: usize,
    /// Robot name.
    pub robot: String,
    /// Canonical config label.
    pub config: String,
    /// Sweep label.
    pub label: String,
    /// Worker thread (0-based) that completed the job.
    pub worker: usize,
    /// Host nanoseconds from campaign start to the job's first attempt.
    pub start_nanos: u64,
    /// Host nanoseconds from campaign start to the job's completion.
    pub end_nanos: u64,
    /// Execution attempts made (≥ 1; > 1 means the job was retried).
    pub attempts: u32,
    /// Whether the watchdog flagged the job as slow.
    pub slow: bool,
    /// Whether the result was served from the result store.
    pub cached: bool,
    /// Whether the job produced a result (false = failed every attempt).
    pub ok: bool,
}

impl JobSpan {
    fn write_json(&self, buf: &mut String) {
        use std::fmt::Write;
        let _ = write!(buf, "{{\"index\":{},\"robot\":", self.index);
        push_str(buf, &self.robot);
        buf.push_str(",\"config\":");
        push_str(buf, &self.config);
        buf.push_str(",\"label\":");
        push_str(buf, &self.label);
        let _ = write!(
            buf,
            ",\"worker\":{},\"start_nanos\":{},\"end_nanos\":{},\"attempts\":{},\"slow\":{},\"cached\":{},\"ok\":{}}}",
            self.worker, self.start_nanos, self.end_nanos, self.attempts, self.slow, self.cached, self.ok
        );
    }
}

/// The `campaign_profile.json` document: host-time attribution for one
/// campaign. See the module docs for the determinism caveat.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignProfile {
    /// Tool that produced the document (e.g. `"tartan_run"`).
    pub generator: String,
    /// Scenario name the campaign ran.
    pub scenario: String,
    /// Host worker threads the campaign ran with.
    pub jobs: u64,
    /// Campaign wall-clock, start of parse to end of export.
    pub total_host_nanos: u64,
    /// Disjoint wall-clock phases; their `host_nanos` sum reconciles with
    /// `total_host_nanos` (±1%, the instrumentation gap).
    pub phases: Vec<CampaignPhase>,
    /// One span per job, submission order.
    pub spans: Vec<JobSpan>,
    /// Campaign metrics (worker lifecycle + store counters).
    pub metrics: MetricsSnapshot,
}

impl CampaignProfile {
    /// Sum of the per-phase host nanoseconds.
    pub fn phase_nanos_sum(&self) -> u64 {
        self.phases.iter().map(|p| p.host_nanos).sum()
    }

    /// Serializes the document; layout deterministic, values host-measured.
    pub fn to_json(&self) -> String {
        use std::fmt::Write;
        let mut buf = String::new();
        let _ = write!(
            buf,
            "{{\"campaign_schema_version\":{CAMPAIGN_SCHEMA_VERSION},\"generator\":"
        );
        push_str(&mut buf, &self.generator);
        buf.push_str(",\"scenario\":");
        push_str(&mut buf, &self.scenario);
        let _ = write!(
            buf,
            ",\"jobs\":{},\"total_host_nanos\":{},\"phases\":[",
            self.jobs, self.total_host_nanos
        );
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            buf.push_str("{\"name\":");
            push_str(&mut buf, &p.name);
            let _ = write!(buf, ",\"host_nanos\":{}}}", p.host_nanos);
        }
        buf.push_str("],\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            s.write_json(&mut buf);
        }
        buf.push_str("],\"metrics\":");
        self.metrics.write_json(&mut buf);
        buf.push_str("}\n");
        buf
    }
}

/// Structurally validates a `campaign_profile.json` document: well-formed
/// JSON, the current [`CAMPAIGN_SCHEMA_VERSION`], the required top-level
/// keys, and — when any span is present — the required span keys.
pub fn validate_campaign_profile_json(s: &str) -> Result<(), String> {
    validate_json(s)?;
    let expect = format!("\"campaign_schema_version\":{CAMPAIGN_SCHEMA_VERSION}");
    if !s.contains(&expect) {
        return Err(format!("missing or mismatched {expect}"));
    }
    for key in [
        "\"generator\":",
        "\"scenario\":",
        "\"jobs\":",
        "\"total_host_nanos\":",
        "\"phases\":",
        "\"spans\":",
        "\"metrics\":",
    ] {
        if !s.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    if s.contains("\"index\":") {
        for key in [
            "\"robot\":",
            "\"config\":",
            "\"worker\":",
            "\"start_nanos\":",
            "\"end_nanos\":",
            "\"attempts\":",
            "\"slow\":",
            "\"cached\":",
            "\"ok\":",
        ] {
            if !s.contains(key) {
                return Err(format!("missing span key {key}"));
            }
        }
    }
    Ok(())
}

/// Renders a campaign's job spans as a Chrome-trace JSON object with one
/// thread row per worker: each job is a complete (`"X"`) event, and jobs
/// served from the result store additionally carry a `store_hit` instant
/// at their start. Timestamps are microseconds from campaign start.
pub fn campaign_trace_json(scenario: &str, workers: usize, spans: &[JobSpan]) -> String {
    use std::fmt::Write;
    let mut buf = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |buf: &mut String| {
        if !std::mem::take(&mut first) {
            buf.push(',');
        }
    };
    sep(&mut buf);
    buf.push_str("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"args\":{\"name\":");
    push_str(&mut buf, scenario);
    buf.push_str("}}");
    for w in 0..workers.max(1) {
        sep(&mut buf);
        let _ = write!(
            buf,
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,\"tid\":{},\"args\":{{\"name\":\"worker-{w}\"}}}}",
            w + 1
        );
    }
    for s in spans {
        let tid = s.worker + 1;
        let ts = s.start_nanos / 1_000;
        let dur = (s.end_nanos.saturating_sub(s.start_nanos) / 1_000).max(1);
        sep(&mut buf);
        let _ = write!(
            buf,
            "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"dur\":{dur},\"name\":"
        );
        push_str(&mut buf, &format!("{} {}", s.robot, s.config));
        buf.push_str(",\"cat\":\"job\",\"args\":{\"index\":");
        let _ = write!(buf, "{}", s.index);
        buf.push_str(",\"label\":");
        push_str(&mut buf, &s.label);
        let _ = write!(
            buf,
            ",\"attempts\":{},\"slow\":{},\"cached\":{},\"ok\":{}}}}}",
            s.attempts, s.slow, s.cached, s.ok
        );
        if s.cached {
            sep(&mut buf);
            let _ = write!(
                buf,
                "{{\"ph\":\"i\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\"name\":\"store_hit\",\"cat\":\"store\"}}"
            );
        }
    }
    buf.push_str("]}");
    buf
}

/// One mid-campaign progress heartbeat (the `--progress` unit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Heartbeat {
    /// Jobs completed so far (including failures).
    pub done: usize,
    /// Total jobs in the campaign.
    pub total: usize,
    /// Host nanoseconds since the campaign started.
    pub elapsed_nanos: u64,
    /// Results served from the store so far.
    pub cache_hits: u64,
    /// Retry attempts made so far (attempts beyond each job's first).
    pub retries: u64,
    /// Jobs the watchdog has flagged as slow so far.
    pub slow: u64,
    /// Jobs that failed every attempt so far.
    pub failures: u64,
}

impl Heartbeat {
    /// Completed jobs per host second so far (0 while nothing finished).
    pub fn runs_per_sec(&self) -> f64 {
        if self.elapsed_nanos == 0 {
            0.0
        } else {
            self.done as f64 * 1e9 / self.elapsed_nanos as f64
        }
    }

    /// Naive remaining-time estimate: elapsed × remaining / done.
    pub fn eta_nanos(&self) -> u64 {
        if self.done == 0 {
            return 0;
        }
        let remaining = self.total.saturating_sub(self.done) as u128;
        ((self.elapsed_nanos as u128 * remaining) / self.done as u128) as u64
    }

    /// Renders the heartbeat as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write;
        let mut buf = String::new();
        let _ = write!(
            buf,
            "{{\"campaign_schema_version\":{CAMPAIGN_SCHEMA_VERSION},\"type\":\"heartbeat\",\"done\":{},\"total\":{},\"elapsed_nanos\":{},\"runs_per_sec\":",
            self.done, self.total, self.elapsed_nanos
        );
        push_f64(&mut buf, self.runs_per_sec());
        let _ = write!(
            buf,
            ",\"eta_nanos\":{},\"cache_hits\":{},\"retries\":{},\"slow\":{},\"failures\":{}}}",
            self.eta_nanos(),
            self.cache_hits,
            self.retries,
            self.slow,
            self.failures
        );
        buf
    }

    /// Renders the heartbeat as the human `--progress` line.
    pub fn render_human(&self) -> String {
        let pct = (100 * self.done).checked_div(self.total).unwrap_or(100);
        let cache_pct = (100 * self.cache_hits as usize)
            .checked_div(self.done)
            .unwrap_or(0);
        format!(
            "progress: {}/{} ({pct}%)  {:.1} runs/s  eta {:.1}s  cache {cache_pct}%  retries {}  slow {}  failed {}",
            self.done,
            self.total,
            self.runs_per_sec(),
            self.eta_nanos() as f64 / 1e9,
            self.retries,
            self.slow,
            self.failures
        )
    }
}

/// Structurally validates one heartbeat JSONL line.
pub fn validate_heartbeat_json(line: &str) -> Result<(), String> {
    validate_json(line)?;
    let expect = format!("\"campaign_schema_version\":{CAMPAIGN_SCHEMA_VERSION}");
    if !line.contains(&expect) {
        return Err(format!("missing or mismatched {expect}"));
    }
    if !line.contains("\"type\":\"heartbeat\"") {
        return Err("missing \"type\":\"heartbeat\"".into());
    }
    for key in [
        "\"done\":",
        "\"total\":",
        "\"elapsed_nanos\":",
        "\"runs_per_sec\":",
        "\"eta_nanos\":",
        "\"cache_hits\":",
        "\"retries\":",
        "\"slow\":",
        "\"failures\":",
    ] {
        if !line.contains(key) {
            return Err(format!("missing heartbeat key {key}"));
        }
    }
    Ok(())
}

/// One `results/BENCH_history.jsonl` line: a compact record of one
/// `bench_tier1` invocation, appended (never rewritten) so the file
/// accumulates a local throughput trajectory across commits.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BenchHistoryLine {
    /// Tool that produced the line (e.g. `"bench_tier1"`).
    pub generator: String,
    /// Unix seconds when the bench finished.
    pub timestamp_secs: u64,
    /// Host worker threads.
    pub jobs: u64,
    /// Runs in the campaign.
    pub runs: u64,
    /// Campaign wall-clock in host nanoseconds (cold pass).
    pub total_host_nanos: u64,
    /// Cold throughput in runs per host second.
    pub runs_per_sec: f64,
    /// Warm (store-served) throughput, when the bench ran with `--store`.
    pub warm_runs_per_sec: Option<f64>,
}

impl BenchHistoryLine {
    /// Renders the record as one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write;
        let mut buf = String::new();
        let _ = write!(
            buf,
            "{{\"campaign_schema_version\":{CAMPAIGN_SCHEMA_VERSION},\"type\":\"bench\",\"generator\":"
        );
        push_str(&mut buf, &self.generator);
        let _ = write!(
            buf,
            ",\"timestamp_secs\":{},\"jobs\":{},\"runs\":{},\"total_host_nanos\":{},\"runs_per_sec\":",
            self.timestamp_secs, self.jobs, self.runs, self.total_host_nanos
        );
        push_f64(&mut buf, self.runs_per_sec);
        buf.push_str(",\"warm_runs_per_sec\":");
        match self.warm_runs_per_sec {
            Some(v) => push_f64(&mut buf, v),
            None => buf.push_str("null"),
        }
        buf.push('}');
        buf
    }
}

/// Structurally validates one `BENCH_history.jsonl` line.
pub fn validate_bench_history_line(line: &str) -> Result<(), String> {
    validate_json(line)?;
    let expect = format!("\"campaign_schema_version\":{CAMPAIGN_SCHEMA_VERSION}");
    if !line.contains(&expect) {
        return Err(format!("missing or mismatched {expect}"));
    }
    if !line.contains("\"type\":\"bench\"") {
        return Err("missing \"type\":\"bench\"".into());
    }
    for key in [
        "\"generator\":",
        "\"timestamp_secs\":",
        "\"jobs\":",
        "\"runs\":",
        "\"total_host_nanos\":",
        "\"runs_per_sec\":",
        "\"warm_runs_per_sec\":",
    ] {
        if !line.contains(key) {
            return Err(format!("missing history key {key}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_span(index: usize, worker: usize) -> JobSpan {
        JobSpan {
            index,
            robot: "delibot".into(),
            config: "tartan".into(),
            label: format!("v{index}"),
            worker,
            start_nanos: 1_000_000 * index as u64,
            end_nanos: 1_000_000 * index as u64 + 500_000,
            attempts: 1 + (index % 2) as u32,
            slow: index == 3,
            cached: index == 1,
            ok: index != 2,
        }
    }

    fn sample_profile() -> CampaignProfile {
        let reg = crate::MetricsRegistry::new();
        reg.counter("job.done").add(4);
        reg.counter("store.hit").add(1);
        reg.gauge("campaign.total").set(4);
        CampaignProfile {
            generator: "tartan_run".into(),
            scenario: "smoke".into(),
            jobs: 2,
            total_host_nanos: 10_000_000,
            phases: vec![
                CampaignPhase {
                    name: "parse".into(),
                    host_nanos: 1_000_000,
                },
                CampaignPhase {
                    name: "simulate".into(),
                    host_nanos: 9_000_000,
                },
            ],
            spans: (0..4).map(|i| sample_span(i, i % 2)).collect(),
            metrics: reg.snapshot(),
        }
    }

    #[test]
    fn profile_round_trips_validation() {
        let json = sample_profile().to_json();
        validate_campaign_profile_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
        assert!(json.contains("\"campaign_schema_version\":1"));
        assert!(json.contains("\"phases\":[{\"name\":\"parse\""));
        assert!(json.contains("\"metrics\":{\"counters\":{\"job.done\":4"));
        assert!(json.ends_with("}\n"));
    }

    #[test]
    fn profile_phase_sum_helper() {
        assert_eq!(sample_profile().phase_nanos_sum(), 10_000_000);
    }

    #[test]
    fn profile_validator_rejects_malformed() {
        // Not JSON at all.
        assert!(validate_campaign_profile_json("{nope").is_err());
        // Wrong version.
        let json = sample_profile()
            .to_json()
            .replace("\"campaign_schema_version\":1", "\"campaign_schema_version\":99");
        assert!(validate_campaign_profile_json(&json).is_err());
        // Missing top-level key.
        let json = sample_profile().to_json().replace("\"phases\":", "\"p\":");
        assert!(validate_campaign_profile_json(&json).is_err());
        // Missing span key.
        let json = sample_profile().to_json().replace("\"worker\":", "\"w\":");
        assert!(validate_campaign_profile_json(&json).is_err());
    }

    #[test]
    fn trace_has_one_track_per_worker_and_store_instants() {
        let spans: Vec<JobSpan> = (0..4).map(|i| sample_span(i, i % 2)).collect();
        let json = campaign_trace_json("smoke", 2, &spans);
        validate_json(&json).unwrap_or_else(|e| panic!("{e}"));
        assert!(json.contains("\"name\":\"worker-0\""));
        assert!(json.contains("\"name\":\"worker-1\""));
        assert!(!json.contains("\"name\":\"worker-2\""));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 4);
        // Exactly one cached span → one store_hit instant.
        assert_eq!(json.matches("store_hit").count(), 1);
        // Zero-length spans still render a visible 1 µs slice.
        let mut z = sample_span(0, 0);
        z.end_nanos = z.start_nanos;
        assert!(campaign_trace_json("z", 1, &[z]).contains("\"dur\":1"));
    }

    #[test]
    fn heartbeat_line_round_trips_validation() {
        let hb = Heartbeat {
            done: 3,
            total: 14,
            elapsed_nanos: 1_500_000_000,
            cache_hits: 1,
            retries: 2,
            slow: 1,
            failures: 0,
        };
        let line = hb.to_json_line();
        validate_heartbeat_json(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
        assert!(!line.contains('\n'));
        assert!((hb.runs_per_sec() - 2.0).abs() < 1e-12);
        // 3 done in 1.5 s → 11 left → 5.5 s eta.
        assert_eq!(hb.eta_nanos(), 5_500_000_000);
        let human = hb.render_human();
        assert!(human.contains("3/14"), "{human}");
        assert!(human.contains("retries 2"), "{human}");
    }

    #[test]
    fn heartbeat_validator_rejects_malformed() {
        assert!(validate_heartbeat_json("").is_err());
        assert!(validate_heartbeat_json("{}").is_err());
        let line = Heartbeat::default().to_json_line();
        validate_heartbeat_json(&line).unwrap();
        assert!(validate_heartbeat_json(&line.replace("\"eta_nanos\":", "\"e\":")).is_err());
        assert!(
            validate_heartbeat_json(&line.replace("\"type\":\"heartbeat\"", "\"type\":\"x\""))
                .is_err()
        );
    }

    #[test]
    fn heartbeat_degenerate_cases() {
        let hb = Heartbeat::default();
        assert_eq!(hb.runs_per_sec(), 0.0);
        assert_eq!(hb.eta_nanos(), 0);
        assert!(hb.render_human().contains("0/0 (100%)"));
    }

    #[test]
    fn bench_history_line_round_trips_validation() {
        let mut line = BenchHistoryLine {
            generator: "bench_tier1".into(),
            timestamp_secs: 1_765_000_000,
            jobs: 2,
            runs: 12,
            total_host_nanos: 2_000_000_000,
            runs_per_sec: 6.0,
            warm_runs_per_sec: None,
        };
        let text = line.to_json_line();
        validate_bench_history_line(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert!(text.contains("\"warm_runs_per_sec\":null"));
        line.warm_runs_per_sec = Some(40.0);
        let text = line.to_json_line();
        validate_bench_history_line(&text).unwrap();
        assert!(text.contains("\"warm_runs_per_sec\":40"));
        assert!(validate_bench_history_line(&text.replace("\"runs\":", "\"r\":")).is_err());
        assert!(validate_bench_history_line("not json").is_err());
    }
}
