//! A dependency-free metrics registry: named atomic counters and gauges
//! with a deterministic snapshot-to-JSON export.
//!
//! The campaign layer (workers in `tartan-par`, the result store, the
//! `tartan_run` CLI) needs cheap shared counters that many threads bump
//! concurrently and one reporter reads — without pulling a metrics
//! dependency into an offline workspace. A [`MetricsRegistry`] hands out
//! cloneable [`Counter`]/[`Gauge`] handles backed by `Arc<AtomicU64>`:
//! updating a handle is one atomic RMW with no lock; the registry lock is
//! taken only on registration and snapshot.
//!
//! Snapshots are deterministic: names are reported in sorted order, so two
//! registries holding the same values render byte-identical JSON — the
//! same property every other export in this crate maintains.
//!
//! ```
//! let reg = tartan_telemetry::MetricsRegistry::new();
//! let hits = reg.counter("store.hit");
//! hits.add(3);
//! reg.gauge("campaign.jobs").set(14);
//! assert_eq!(reg.snapshot().counter("store.hit"), Some(3));
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::push_str;

/// A monotonically increasing metric handle. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 to the counter.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A set-to-latest metric handle. Cloning shares the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the gauge with `v`.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` is larger (a running maximum).
    pub fn max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug, Default)]
struct Cells {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
}

/// A registry of named [`Counter`]s and [`Gauge`]s.
///
/// Names are free-form; the convention in this workspace is dotted
/// lowercase paths (`"store.hit"`, `"job.retried"`). Registering the same
/// name twice returns a handle to the same cell, so call sites do not need
/// to coordinate.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    cells: Mutex<Cells>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Returns the counter named `name`, creating it at 0 if absent.
    pub fn counter(&self, name: &str) -> Counter {
        let mut cells = self.cells.lock().unwrap_or_else(|p| p.into_inner());
        cells.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge named `name`, creating it at 0 if absent.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut cells = self.cells.lock().unwrap_or_else(|p| p.into_inner());
        cells.gauges.entry(name.to_string()).or_default().clone()
    }

    /// A point-in-time copy of every metric, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let cells = self.cells.lock().unwrap_or_else(|p| p.into_inner());
        MetricsSnapshot {
            counters: cells
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: cells
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`]: `(name, value)` pairs
/// sorted by name, so rendering is deterministic for fixed values.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, u64)>,
}

impl MetricsSnapshot {
    /// Looks up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Looks up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// Renders `{"counters":{...},"gauges":{...}}` with sorted keys.
    pub fn to_json(&self) -> String {
        let mut buf = String::new();
        self.write_json(&mut buf);
        buf
    }

    pub(crate) fn write_json(&self, buf: &mut String) {
        use std::fmt::Write;
        let write_map = |buf: &mut String, pairs: &[(String, u64)]| {
            buf.push('{');
            for (i, (k, v)) in pairs.iter().enumerate() {
                if i > 0 {
                    buf.push(',');
                }
                push_str(buf, k);
                let _ = write!(buf, ":{v}");
            }
            buf.push('}');
        };
        buf.push_str("{\"counters\":");
        write_map(buf, &self.counters);
        buf.push_str(",\"gauges\":");
        write_map(buf, &self.gauges);
        buf.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_cells_and_accumulate() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("x").get(), 5);
        assert_eq!(reg.snapshot().counter("x"), Some(5));
        assert_eq!(reg.snapshot().counter("absent"), None);
    }

    #[test]
    fn gauges_set_and_track_maximum() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.set(7);
        g.max(3); // lower: ignored
        g.max(11); // higher: taken
        assert_eq!(reg.snapshot().gauge("depth"), Some(11));
    }

    #[test]
    fn snapshot_is_sorted_and_json_is_deterministic() {
        let reg = MetricsRegistry::new();
        reg.counter("zeta").add(1);
        reg.counter("alpha").add(2);
        reg.gauge("mid").set(9);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counters,
            vec![("alpha".to_string(), 2), ("zeta".to_string(), 1)]
        );
        let json = snap.to_json();
        crate::json::validate_json(&json).unwrap();
        assert_eq!(
            json,
            "{\"counters\":{\"alpha\":2,\"zeta\":1},\"gauges\":{\"mid\":9}}"
        );
        assert_eq!(json, reg.snapshot().to_json());
    }

    #[test]
    fn concurrent_updates_are_lossless() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("hot");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
    }

    #[test]
    fn empty_registry_renders_empty_maps() {
        let json = MetricsRegistry::new().snapshot().to_json();
        assert_eq!(json, "{\"counters\":{},\"gauges\":{}}");
    }
}
