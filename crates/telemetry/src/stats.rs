//! The versioned `stats.json` export schema.
//!
//! This is the machine-readable contract between the simulator, the bench
//! harness (`results/BENCH_tier1.json`), and CI. The structs here mirror
//! the simulator's counters *by value* — telemetry sits below `tartan-sim`
//! in the dependency graph, so it cannot name those types; the sim/core
//! layers convert into these mirrors.
//!
//! Versioning policy (enforced by CI against `SCHEMA.md`):
//! * Adding a field or a new optional section → bump
//!   [`STATS_SCHEMA_VERSION`], append a `SCHEMA.md` entry.
//! * Removing or renaming a field → same, and call it out as breaking.
//! * Consumers must ignore unknown fields.

use crate::json::{push_f64, push_str};

/// Version of the `stats.json` schema emitted by [`StatsExport::to_json`].
///
/// CI fails if this changes without a matching entry in `SCHEMA.md`.
///
/// v2: every document carries an always-present `"failures"` array of
/// structured per-job failure records (empty on a clean campaign).
///
/// v3: `BENCH_host.json` may carry an optional `"warm"` section (a second
/// store-served timing pass, written only when the bench ran with
/// `--store`); `stats.json` itself is unchanged beyond the version stamp.
pub const STATS_SCHEMA_VERSION: u32 = 3;

/// Mirror of one cache level's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Demand accesses.
    pub accesses: u64,
    /// Demand hits.
    pub hits: u64,
    /// Demand misses.
    pub misses: u64,
    /// Misses covered by a timely prefetch.
    pub prefetch_covered: u64,
    /// Prefetches issued into this level.
    pub prefetches_issued: u64,
    /// Prefetched lines later demanded.
    pub prefetches_useful: u64,
    /// Prefetches that arrived late.
    pub prefetches_late: u64,
    /// Evictions.
    pub evictions: u64,
    /// Dirty writebacks.
    pub writebacks: u64,
}

impl CacheCounters {
    /// Demand miss ratio, 0 when idle.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    fn write_json(&self, buf: &mut String) {
        use std::fmt::Write;
        let _ = write!(
            buf,
            "{{\"accesses\":{},\"hits\":{},\"misses\":{},\"miss_ratio\":",
            self.accesses, self.hits, self.misses
        );
        push_f64(buf, self.miss_ratio());
        let _ = write!(
            buf,
            ",\"prefetch_covered\":{},\"prefetches_issued\":{},\"prefetches_useful\":{},\"prefetches_late\":{},\"evictions\":{},\"writebacks\":{}}}",
            self.prefetch_covered,
            self.prefetches_issued,
            self.prefetches_useful,
            self.prefetches_late,
            self.evictions,
            self.writebacks
        );
    }
}

/// Mirror of the fault-injection counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// Faults injected by the plan.
    pub injected: u64,
    /// Faults caught by a supervisor.
    pub detected: u64,
    /// Detected faults fully repaired.
    pub recovered: u64,
    /// Faults that corrupted a consumed result.
    pub unrecovered: u64,
}

impl FaultCounters {
    fn write_json(&self, buf: &mut String) {
        use std::fmt::Write;
        let _ = write!(
            buf,
            "{{\"injected\":{},\"detected\":{},\"recovered\":{},\"unrecovered\":{}}}",
            self.injected, self.detected, self.recovered, self.unrecovered
        );
    }
}

/// NPU supervision counters, for robots that run a supervised NPU.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SupervisionCounters {
    /// Accelerator invocations issued.
    pub invocations: u64,
    /// Iterations rolled back by the supervisor.
    pub rollbacks: u64,
    /// Rollbacks that re-ran the function on the CPU.
    pub cpu_fallbacks: u64,
}

impl SupervisionCounters {
    fn write_json(&self, buf: &mut String) {
        use std::fmt::Write;
        let _ = write!(
            buf,
            "{{\"invocations\":{},\"rollbacks\":{},\"cpu_fallbacks\":{}}}",
            self.invocations, self.rollbacks, self.cpu_fallbacks
        );
    }
}

/// One named phase's cycle/instruction attribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseEntry {
    /// Phase label.
    pub name: String,
    /// Cycles attributed.
    pub cycles: u64,
    /// Instructions attributed.
    pub instructions: u64,
}

/// Everything `stats.json` records about one robot run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RobotRunStats {
    /// Robot name (e.g. `"flybot"`).
    pub robot: String,
    /// Software configuration label (e.g. `"tartan"`, `"legacy"`).
    pub config: String,
    /// Wall cycles for the run.
    pub wall_cycles: u64,
    /// Dynamic instructions.
    pub instructions: u64,
    /// Output quality in [0, 1].
    pub quality: f64,
    /// L1 counters (per-core, merged).
    pub l1: CacheCounters,
    /// L2 counters (per-core, merged).
    pub l2: CacheCounters,
    /// Shared L3 counters.
    pub l3: CacheCounters,
    /// DRAM traffic in bytes.
    pub dram_bytes: u64,
    /// L3↔L2 traffic in bytes.
    pub l3_traffic_bytes: u64,
    /// NPU invocations observed by the machine (0 for CPU-only robots).
    pub npu_invocations: u64,
    /// Supervision counters, when the robot runs a supervised NPU.
    pub supervision: Option<SupervisionCounters>,
    /// Fault counters (all zero without a fault plan).
    pub faults: FaultCounters,
    /// Per-phase breakdown, sorted by name.
    pub phases: Vec<PhaseEntry>,
}

impl RobotRunStats {
    /// Serializes this run as a standalone JSON object — exactly the bytes
    /// [`StatsExport::to_json`] would place in its `"runs"` array.
    ///
    /// This is the campaign store's payload unit: a cached record can be
    /// spliced verbatim into a later export with [`stats_export_json`] and
    /// the result is byte-identical to a fresh serialization, which is what
    /// makes resumed campaigns reproduce a clean run's output bit for bit.
    pub fn to_json_record(&self) -> String {
        let mut buf = String::new();
        self.write_json(&mut buf);
        buf
    }

    fn write_json(&self, buf: &mut String) {
        use std::fmt::Write;
        buf.push_str("{\"robot\":");
        push_str(buf, &self.robot);
        buf.push_str(",\"config\":");
        push_str(buf, &self.config);
        let _ = write!(
            buf,
            ",\"wall_cycles\":{},\"instructions\":{},\"quality\":",
            self.wall_cycles, self.instructions
        );
        push_f64(buf, self.quality);
        buf.push_str(",\"l1\":");
        self.l1.write_json(buf);
        buf.push_str(",\"l2\":");
        self.l2.write_json(buf);
        buf.push_str(",\"l3\":");
        self.l3.write_json(buf);
        let _ = write!(
            buf,
            ",\"dram_bytes\":{},\"l3_traffic_bytes\":{},\"npu_invocations\":{}",
            self.dram_bytes, self.l3_traffic_bytes, self.npu_invocations
        );
        buf.push_str(",\"supervision\":");
        match &self.supervision {
            Some(s) => s.write_json(buf),
            None => buf.push_str("null"),
        }
        buf.push_str(",\"faults\":");
        self.faults.write_json(buf);
        buf.push_str(",\"phases\":[");
        for (i, p) in self.phases.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            buf.push_str("{\"name\":");
            push_str(buf, &p.name);
            let _ = write!(buf, ",\"cycles\":{},\"instructions\":{}}}", p.cycles, p.instructions);
        }
        buf.push_str("]}");
    }
}

/// One job that produced no result: it panicked on every attempt the
/// campaign's retry policy allowed (schema v2 `"failures"` entry).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobFailureStats {
    /// Robot name of the failed job.
    pub robot: String,
    /// Configuration label of the failed job.
    pub config: String,
    /// Scenario job label.
    pub label: String,
    /// Scenario group name.
    pub group: String,
    /// Attempts made before giving up (≥ 1).
    pub attempts: u32,
    /// Panic message of the final attempt.
    pub message: String,
}

impl JobFailureStats {
    fn write_json(&self, buf: &mut String) {
        use std::fmt::Write;
        buf.push_str("{\"robot\":");
        push_str(buf, &self.robot);
        buf.push_str(",\"config\":");
        push_str(buf, &self.config);
        buf.push_str(",\"label\":");
        push_str(buf, &self.label);
        buf.push_str(",\"group\":");
        push_str(buf, &self.group);
        let _ = write!(buf, ",\"attempts\":{},\"message\":", self.attempts);
        push_str(buf, &self.message);
        buf.push('}');
    }
}

/// The top-level `stats.json` document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsExport {
    /// Tool that produced the document (e.g. `"bench_tier1"`).
    pub generator: String,
    /// One entry per robot run.
    pub runs: Vec<RobotRunStats>,
    /// Jobs that failed to produce a run (empty on a clean campaign).
    pub failures: Vec<JobFailureStats>,
}

impl StatsExport {
    /// Serializes the document. The schema version is stamped
    /// automatically; the output is byte-deterministic.
    pub fn to_json(&self) -> String {
        let records: Vec<String> = self.runs.iter().map(RobotRunStats::to_json_record).collect();
        stats_export_json(&self.generator, &records, &self.failures)
    }
}

/// Assembles a `stats.json` document from pre-serialized run records
/// (each the output of [`RobotRunStats::to_json_record`], spliced in
/// verbatim) plus structured failures.
///
/// [`StatsExport::to_json`] is implemented on top of this, so an export
/// built from cached record bytes is byte-identical to one re-serialized
/// from live [`RobotRunStats`] values — the invariant the campaign store's
/// `--resume` path relies on.
pub fn stats_export_json(
    generator: &str,
    run_records: &[String],
    failures: &[JobFailureStats],
) -> String {
    let mut buf = String::new();
    use std::fmt::Write;
    let _ = write!(buf, "{{\"schema_version\":{STATS_SCHEMA_VERSION},\"generator\":");
    push_str(&mut buf, generator);
    buf.push_str(",\"runs\":[");
    for (i, r) in run_records.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        buf.push_str(r);
    }
    buf.push_str("],\"failures\":[");
    for (i, f) in failures.iter().enumerate() {
        if i > 0 {
            buf.push(',');
        }
        f.write_json(&mut buf);
    }
    buf.push_str("]}\n");
    buf
}

/// Host wall-time measurement for one robot run, as recorded by the bench
/// harness into `results/BENCH_host.json`.
///
/// Unlike [`RobotRunStats`], these values depend on the machine running the
/// benchmark: `host_nanos` is real elapsed time, so the document is *not*
/// byte-deterministic across runs. Simulated results stay in
/// `BENCH_tier1.json`; this file exists to track simulator throughput.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostRunStats {
    /// Robot name (e.g. `"flybot"`).
    pub robot: String,
    /// Software configuration label (e.g. `"tartan"`, `"baseline"`).
    pub config: String,
    /// Simulated wall cycles for the run.
    pub wall_cycles: u64,
    /// Host nanoseconds this row's pass took. For a cold row that is the
    /// simulation time; for a warm row it is the store fetch + decode time.
    pub host_nanos: u64,
    /// For warm rows: host nanoseconds the *cold* pass spent actually
    /// simulating the `wall_cycles` this row repeats. Warm rows reuse the
    /// cold pass's cycle count, so dividing it by the warm `host_nanos`
    /// would fabricate an absurd throughput; this field keeps the
    /// numerator and denominator from the same pass. `None` on cold rows
    /// (and in pre-existing documents), where `host_nanos` already is the
    /// simulation time.
    pub cold_host_nanos: Option<u64>,
}

impl HostRunStats {
    /// Simulator throughput: simulated cycles per host second, always
    /// measured against the pass that produced the cycles (the cold
    /// simulation), never against a store fetch.
    pub fn sim_cycles_per_host_sec(&self) -> f64 {
        let nanos = self.cold_host_nanos.unwrap_or(self.host_nanos);
        if nanos == 0 {
            0.0
        } else {
            self.wall_cycles as f64 * 1e9 / nanos as f64
        }
    }

    fn write_json(&self, buf: &mut String) {
        use std::fmt::Write;
        buf.push_str("{\"robot\":");
        push_str(buf, &self.robot);
        buf.push_str(",\"config\":");
        push_str(buf, &self.config);
        let _ = write!(
            buf,
            ",\"wall_cycles\":{},\"host_nanos\":{}",
            self.wall_cycles, self.host_nanos
        );
        if let Some(cold) = self.cold_host_nanos {
            let _ = write!(buf, ",\"cold_host_nanos\":{cold}");
        }
        buf.push_str(",\"sim_cycles_per_host_sec\":");
        push_f64(buf, self.sim_cycles_per_host_sec());
        buf.push('}');
    }
}

/// The warm (store-served) half of a cold/warm bench split: the same run
/// matrix timed again with every result served from the result store, so
/// cache speedup is measurable instead of silently mixed into one number.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WarmBenchStats {
    /// Elapsed host nanoseconds for the warm pass.
    pub total_host_nanos: u64,
    /// One entry per run, submission order; `host_nanos` is the store
    /// fetch + decode time for that run's record.
    pub runs: Vec<HostRunStats>,
}

impl WarmBenchStats {
    /// Warm throughput in store-served runs per host second.
    pub fn runs_per_sec(&self) -> f64 {
        if self.total_host_nanos == 0 {
            0.0
        } else {
            self.runs.len() as f64 * 1e9 / self.total_host_nanos as f64
        }
    }

    fn write_json(&self, buf: &mut String) {
        use std::fmt::Write;
        let _ = write!(
            buf,
            "{{\"total_host_nanos\":{},\"runs_per_sec\":",
            self.total_host_nanos
        );
        push_f64(buf, self.runs_per_sec());
        buf.push_str(",\"runs\":[");
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            r.write_json(buf);
        }
        buf.push_str("]}");
    }
}

/// The top-level `BENCH_host.json` document: host wall-time and throughput
/// for a bench campaign.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostBenchExport {
    /// Tool that produced the document (e.g. `"bench_tier1"`).
    pub generator: String,
    /// Host worker threads the campaign ran with (`--jobs`).
    pub jobs: u64,
    /// Elapsed host nanoseconds for the whole campaign (wall clock, not the
    /// sum of per-run times — with `jobs > 1` runs overlap).
    pub total_host_nanos: u64,
    /// One entry per robot run, in campaign submission order.
    pub runs: Vec<HostRunStats>,
    /// Warm-pass timings, when the bench ran a cold/warm split (`--store`).
    pub warm: Option<WarmBenchStats>,
}

impl HostBenchExport {
    /// Campaign throughput in completed runs per host second.
    pub fn runs_per_sec(&self) -> f64 {
        if self.total_host_nanos == 0 {
            0.0
        } else {
            self.runs.len() as f64 * 1e9 / self.total_host_nanos as f64
        }
    }

    /// Serializes the document, stamping the schema version. The layout is
    /// deterministic; the timing *values* are whatever the host measured.
    pub fn to_json(&self) -> String {
        let mut buf = String::new();
        use std::fmt::Write;
        let _ = write!(buf, "{{\"schema_version\":{STATS_SCHEMA_VERSION},\"generator\":");
        push_str(&mut buf, &self.generator);
        let _ = write!(
            buf,
            ",\"jobs\":{},\"total_host_nanos\":{},\"runs_per_sec\":",
            self.jobs, self.total_host_nanos
        );
        push_f64(&mut buf, self.runs_per_sec());
        buf.push_str(",\"runs\":[");
        for (i, r) in self.runs.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            r.write_json(&mut buf);
        }
        buf.push(']');
        if let Some(warm) = &self.warm {
            buf.push_str(",\"warm\":");
            warm.write_json(&mut buf);
        }
        buf.push_str("}\n");
        buf
    }
}

/// Structurally validates a `BENCH_host.json` document: well-formed JSON,
/// the current [`STATS_SCHEMA_VERSION`], and the required top-level and
/// per-run keys. The `"warm"` section is optional (v3).
pub fn validate_host_bench_json(s: &str) -> Result<(), String> {
    crate::json::validate_json(s)?;
    let expect = format!("\"schema_version\":{STATS_SCHEMA_VERSION}");
    if !s.contains(&expect) {
        return Err(format!("missing or mismatched {expect}"));
    }
    for key in ["\"generator\":", "\"jobs\":", "\"total_host_nanos\":", "\"runs_per_sec\":", "\"runs\":"] {
        if !s.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    if s.contains("\"robot\":") {
        for key in ["\"wall_cycles\":", "\"host_nanos\":", "\"sim_cycles_per_host_sec\":"] {
            if !s.contains(key) {
                return Err(format!("missing per-run key {key}"));
            }
        }
    }
    Ok(())
}

/// Structurally validates a `stats.json` document: well-formed JSON, the
/// current [`STATS_SCHEMA_VERSION`], and the required top-level and
/// per-run keys. Used by tests and the CI schema guard.
pub fn validate_stats_json(s: &str) -> Result<(), String> {
    crate::json::validate_json(s)?;
    let expect = format!("\"schema_version\":{STATS_SCHEMA_VERSION}");
    if !s.contains(&expect) {
        return Err(format!("missing or mismatched {expect}"));
    }
    for key in ["\"generator\":", "\"runs\":", "\"failures\":"] {
        if !s.contains(key) {
            return Err(format!("missing top-level key {key}"));
        }
    }
    // Per-run keys are only required if any run is present.
    if s.contains("\"robot\":") {
        for key in [
            "\"wall_cycles\":",
            "\"instructions\":",
            "\"quality\":",
            "\"l1\":",
            "\"l2\":",
            "\"l3\":",
            "\"faults\":",
            "\"phases\":",
        ] {
            if !s.contains(key) {
                return Err(format!("missing per-run key {key}"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_export() -> StatsExport {
        StatsExport {
            generator: "unit_test".into(),
            runs: vec![RobotRunStats {
                robot: "flybot".into(),
                config: "tartan".into(),
                wall_cycles: 123_456,
                instructions: 98_765,
                quality: 0.997,
                l1: CacheCounters {
                    accesses: 1000,
                    hits: 900,
                    misses: 100,
                    ..CacheCounters::default()
                },
                l2: CacheCounters {
                    accesses: 100,
                    hits: 40,
                    misses: 30,
                    prefetch_covered: 30,
                    prefetches_issued: 50,
                    prefetches_useful: 35,
                    prefetches_late: 5,
                    evictions: 10,
                    writebacks: 4,
                },
                l3: CacheCounters::default(),
                dram_bytes: 64_000,
                l3_traffic_bytes: 128_000,
                npu_invocations: 12,
                supervision: Some(SupervisionCounters {
                    invocations: 12,
                    rollbacks: 2,
                    cpu_fallbacks: 1,
                }),
                faults: FaultCounters {
                    injected: 3,
                    detected: 3,
                    recovered: 2,
                    unrecovered: 0,
                },
                phases: vec![
                    PhaseEntry {
                        name: "heuristic".into(),
                        cycles: 80_000,
                        instructions: 60_000,
                    },
                    PhaseEntry {
                        name: "communication".into(),
                        cycles: 20_000,
                        instructions: 1_000,
                    },
                ],
            }],
            failures: Vec::new(),
        }
    }

    #[test]
    fn export_round_trips_validation() {
        let json = sample_export().to_json();
        validate_stats_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
        assert!(json.contains("\"schema_version\":3"));
        assert!(json.contains("\"robot\":\"flybot\""));
        assert!(json.contains("\"supervision\":{\"invocations\":12"));
        assert!(json.contains("\"failures\":[]"));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn null_supervision_serializes() {
        let mut e = sample_export();
        e.runs[0].supervision = None;
        let json = e.to_json();
        validate_stats_json(&json).unwrap();
        assert!(json.contains("\"supervision\":null"));
    }

    #[test]
    fn validator_rejects_wrong_version() {
        let json = sample_export()
            .to_json()
            .replace("\"schema_version\":3", "\"schema_version\":9999");
        assert!(validate_stats_json(&json).is_err());
    }

    #[test]
    fn failures_section_serializes_and_validates() {
        let mut e = sample_export();
        e.failures.push(JobFailureStats {
            robot: "DeliBot".into(),
            config: "tartan".into(),
            label: "sweep \"a\"".into(),
            group: "main".into(),
            attempts: 2,
            message: "index out of bounds: the len is 4".into(),
        });
        let json = e.to_json();
        validate_stats_json(&json).unwrap_or_else(|err| panic!("{json}: {err}"));
        assert!(json.contains("\"failures\":[{\"robot\":\"DeliBot\""));
        assert!(json.contains("\"attempts\":2"));
        assert!(json.contains("\"sweep \\\"a\\\"\""), "labels must be escaped");
    }

    #[test]
    fn validator_requires_failures_key() {
        let json = sample_export().to_json().replace("\"failures\":", "\"f\":");
        assert!(validate_stats_json(&json).is_err());
    }

    // The store splices cached record bytes into exports; this equality is
    // what makes a resumed campaign byte-identical to a clean one.
    #[test]
    fn spliced_records_equal_direct_serialization() {
        let e = sample_export();
        let records: Vec<String> =
            e.runs.iter().map(RobotRunStats::to_json_record).collect();
        assert_eq!(
            stats_export_json(&e.generator, &records, &e.failures),
            e.to_json()
        );
        // And with a failure present.
        let failures = vec![JobFailureStats {
            robot: "FlyBot".into(),
            config: "baseline".into(),
            label: "l".into(),
            group: "g".into(),
            attempts: 1,
            message: "boom".into(),
        }];
        let mut e2 = e.clone();
        e2.failures = failures.clone();
        assert_eq!(
            stats_export_json(&e2.generator, &records, &failures),
            e2.to_json()
        );
    }

    #[test]
    fn validator_rejects_missing_run_keys() {
        let json = sample_export().to_json().replace("\"quality\":", "\"q\":");
        assert!(validate_stats_json(&json).is_err());
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(sample_export().to_json(), sample_export().to_json());
    }

    fn sample_host_export() -> HostBenchExport {
        HostBenchExport {
            generator: "bench_tier1".into(),
            jobs: 4,
            total_host_nanos: 2_000_000_000,
            runs: vec![
                HostRunStats {
                    robot: "flybot".into(),
                    config: "tartan".into(),
                    wall_cycles: 1_000_000,
                    host_nanos: 500_000_000,
                    cold_host_nanos: None,
                },
                HostRunStats {
                    robot: "delibot".into(),
                    config: "baseline".into(),
                    wall_cycles: 3_000_000,
                    host_nanos: 1_500_000_000,
                    cold_host_nanos: None,
                },
            ],
            warm: None,
        }
    }

    #[test]
    fn host_export_round_trips_validation() {
        let json = sample_host_export().to_json();
        validate_host_bench_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
        assert!(json.contains("\"jobs\":4"));
        assert!(json.contains("\"runs_per_sec\":1"));
        assert!(json.ends_with("]}\n"));
    }

    #[test]
    fn host_throughput_math_is_sane() {
        let e = sample_host_export();
        assert!((e.runs_per_sec() - 1.0).abs() < 1e-12);
        assert!((e.runs[0].sim_cycles_per_host_sec() - 2_000_000.0).abs() < 1e-6);
        let idle = HostRunStats::default();
        assert_eq!(idle.sim_cycles_per_host_sec(), 0.0);
        assert_eq!(HostBenchExport::default().runs_per_sec(), 0.0);
    }

    #[test]
    fn warm_rows_measure_throughput_against_the_cold_pass() {
        // A warm row repeats the cold pass's wall_cycles but its own
        // host_nanos is just a store fetch; the throughput figure must use
        // cold_host_nanos so warm and cold rows stay comparable.
        let mut row = sample_host_export().runs[0].clone();
        row.host_nanos = 1_000; // 1 µs store fetch
        row.cold_host_nanos = Some(500_000_000);
        assert!((row.sim_cycles_per_host_sec() - 2_000_000.0).abs() < 1e-6);
        let json = {
            let mut buf = String::new();
            row.write_json(&mut buf);
            buf
        };
        assert!(json.contains("\"host_nanos\":1000,\"cold_host_nanos\":500000000"));
        // Cold rows keep the key out of the document entirely.
        let mut buf = String::new();
        sample_host_export().runs[0].write_json(&mut buf);
        assert!(!buf.contains("cold_host_nanos"));
    }

    #[test]
    fn warm_section_is_optional_and_validates() {
        let mut e = sample_host_export();
        let json = e.to_json();
        assert!(!json.contains("\"warm\":"), "warm must be absent by default");
        e.warm = Some(WarmBenchStats {
            total_host_nanos: 100_000_000,
            runs: e.runs.clone(),
        });
        let json = e.to_json();
        validate_host_bench_json(&json).unwrap_or_else(|err| panic!("{json}: {err}"));
        assert!(json.contains("\"warm\":{\"total_host_nanos\":100000000"));
        // 2 runs in 0.1 s → 20 runs/s.
        assert!((e.warm.as_ref().unwrap().runs_per_sec() - 20.0).abs() < 1e-9);
        assert_eq!(WarmBenchStats::default().runs_per_sec(), 0.0);
    }

    #[test]
    fn host_validator_rejects_missing_keys() {
        let json = sample_host_export().to_json().replace("\"jobs\":", "\"j\":");
        assert!(validate_host_bench_json(&json).is_err());
        let json = sample_host_export()
            .to_json()
            .replace("\"host_nanos\":", "\"hn\":");
        assert!(validate_host_bench_json(&json).is_err());
    }
}
