//! The structured, cycle-stamped event taxonomy.
//!
//! Every event carries a `cycle` stamp in the *global* simulated-cycle
//! domain (the machine's wall clock at the start of the emitting execution
//! section plus the emitting thread's local cycles). Stamps are therefore
//! deterministic: two runs of the same seeded workload produce the same
//! event stream, byte for byte.

use std::fmt;

use crate::json::push_str;

/// Cache hierarchy level an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// Per-core L1.
    L1,
    /// Per-core L2 (where the prefetchers live).
    L2,
    /// Shared L3.
    L3,
}

impl Level {
    /// Short label used in exports.
    pub fn name(self) -> &'static str {
        match self {
            Level::L1 => "L1",
            Level::L2 => "L2",
            Level::L3 => "L3",
        }
    }
}

/// Outcome of one demand cache access at one level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheOutcome {
    /// Plain hit on a resident line.
    Hit,
    /// Miss: the line is fetched from below.
    Miss,
    /// First touch of a *timely* prefetched line — a miss fully covered by
    /// the prefetcher (a *useful* prefetch).
    Covered,
    /// First touch of an in-flight prefetched line — a *late* prefetch;
    /// counted as a miss for coverage.
    Late,
}

impl CacheOutcome {
    /// Short label used in exports.
    pub fn name(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Covered => "covered",
            CacheOutcome::Late => "late",
        }
    }
}

/// Where a fault was injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Accelerator output perturbation / invocation failure.
    Accel,
    /// Memory latency spike (timing-only).
    Memory,
}

impl FaultSite {
    /// Short label used in exports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Accel => "accel",
            FaultSite::Memory => "memory",
        }
    }
}

/// A cycle-stamped telemetry event.
///
/// Variants map one-to-one onto the instrumentation sites in the
/// simulator: the cache hierarchy, the L2 prefetchers, OVEC address
/// generation, NPU invocation/supervision, fault injection/recovery, and
/// phase scopes.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// One demand access at one cache level.
    CacheAccess {
        /// Global cycle stamp.
        cycle: u64,
        /// Cache level.
        level: Level,
        /// Line address (bytes).
        line_addr: u64,
        /// Whether the access was a store.
        write: bool,
        /// Hit/miss/covered/late.
        outcome: CacheOutcome,
    },
    /// A line displaced from a cache level.
    CacheEviction {
        /// Global cycle stamp.
        cycle: u64,
        /// Cache level.
        level: Level,
        /// Victim line address (bytes).
        line_addr: u64,
        /// Whether the victim was dirty (costs a writeback).
        dirty: bool,
        /// Whether the victim was a prefetched line that was never touched
        /// by a demand access — prefetch pollution.
        prefetched_unused: bool,
    },
    /// A prefetch issued into a cache level.
    PrefetchIssue {
        /// Global cycle stamp.
        cycle: u64,
        /// Cache level prefetched into.
        level: Level,
        /// Prefetched line address (bytes).
        line_addr: u64,
    },
    /// One demand line request entering the cache hierarchy — the *input*
    /// of every cache/prefetch decision that follows it. This is the
    /// replay stream the differential oracle (`tartan-oracle`) feeds to
    /// its golden models; it is emitted only under [`Interest::TRACE`]
    /// because it roughly doubles the cache firehose.
    MemRequest {
        /// Global cycle stamp.
        cycle: u64,
        /// Requesting core (owns the private L1/L2 the request hits first).
        core: u32,
        /// Program counter of the requesting instruction (prefetcher
        /// training input).
        pc: u64,
        /// Line address (bytes).
        line_addr: u64,
        /// Whether the access is a store.
        write: bool,
        /// Whether the access dirties cache lines (false for reads and for
        /// write-through stores).
        dirty: bool,
        /// Bytes streamed to the L3 by a write-through store (0 otherwise).
        wt_bytes: u64,
        /// Thread-local cycle time of the access — the clock prefetch
        /// timeliness (`ready <= now`) is judged against.
        now: u64,
    },
    /// One OVEC oriented-load address generation (`O_MOVE`, §IV).
    OvecAddrGen {
        /// Global cycle stamp.
        cycle: u64,
        /// Number of lane addresses generated.
        lanes: u32,
        /// Base byte address of the oriented pattern.
        base: u64,
        /// Fractional element index of lane 0.
        origin: f64,
        /// Fractional per-lane element displacement.
        orient: f64,
        /// Element size in bytes.
        elem_bytes: u64,
        /// Lane indices clamp to `[0, max_elems)`.
        max_elems: u64,
    },
    /// One accelerator (NPU) invocation round-trip.
    NpuInvoke {
        /// Global cycle stamp (at issue).
        cycle: u64,
        /// Input vector width.
        inputs: u32,
        /// Output vector width.
        outputs: u32,
        /// CPU↔NPU communication cycles charged.
        comm_cycles: u64,
        /// Accelerator compute cycles charged.
        compute_cycles: u64,
    },
    /// An AXAR-family supervisor judged one iteration.
    NpuVerdict {
        /// Global cycle stamp.
        cycle: u64,
        /// Whether the iteration was accepted (false = rollback).
        accepted: bool,
    },
    /// Supervised recovery resorted to CPU-exact re-execution.
    NpuRollback {
        /// Global cycle stamp.
        cycle: u64,
        /// True when this rollback re-ran the function on the CPU; false
        /// when a device retry repaired it.
        cpu_fallback: bool,
    },
    /// The fault plan injected `count` faults.
    FaultInjected {
        /// Global cycle stamp.
        cycle: u64,
        /// Injection site.
        site: FaultSite,
        /// Number of faults injected at this site by this event.
        count: u64,
    },
    /// A supervisor detected `count` faults.
    FaultDetected {
        /// Global cycle stamp.
        cycle: u64,
        /// Number of faults detected.
        count: u64,
    },
    /// `count` detected faults were fully repaired.
    FaultRecovered {
        /// Global cycle stamp.
        cycle: u64,
        /// Number of faults repaired.
        count: u64,
    },
    /// `count` faults corrupted a consumed result.
    FaultUnrecovered {
        /// Global cycle stamp.
        cycle: u64,
        /// Number of unrecovered faults.
        count: u64,
    },
    /// A phase scope (robot, iteration, or kernel) opened.
    PhaseBegin {
        /// Global cycle stamp.
        cycle: u64,
        /// Scope label.
        name: &'static str,
    },
    /// A phase scope closed.
    PhaseEnd {
        /// Global cycle stamp.
        cycle: u64,
        /// Scope label.
        name: &'static str,
    },
}

impl Event {
    /// The event's global cycle stamp.
    pub fn cycle(&self) -> u64 {
        match *self {
            Event::CacheAccess { cycle, .. }
            | Event::CacheEviction { cycle, .. }
            | Event::PrefetchIssue { cycle, .. }
            | Event::MemRequest { cycle, .. }
            | Event::OvecAddrGen { cycle, .. }
            | Event::NpuInvoke { cycle, .. }
            | Event::NpuVerdict { cycle, .. }
            | Event::NpuRollback { cycle, .. }
            | Event::FaultInjected { cycle, .. }
            | Event::FaultDetected { cycle, .. }
            | Event::FaultRecovered { cycle, .. }
            | Event::FaultUnrecovered { cycle, .. }
            | Event::PhaseBegin { cycle, .. }
            | Event::PhaseEnd { cycle, .. } => cycle,
        }
    }

    /// Stable kind label, used by counting sinks and exports.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::CacheAccess { .. } => "cache_access",
            Event::CacheEviction { .. } => "cache_eviction",
            Event::PrefetchIssue { .. } => "prefetch_issue",
            Event::MemRequest { .. } => "mem_request",
            Event::OvecAddrGen { .. } => "ovec_addr_gen",
            Event::NpuInvoke { .. } => "npu_invoke",
            Event::NpuVerdict { .. } => "npu_verdict",
            Event::NpuRollback { .. } => "npu_rollback",
            Event::FaultInjected { .. } => "fault_injected",
            Event::FaultDetected { .. } => "fault_detected",
            Event::FaultRecovered { .. } => "fault_recovered",
            Event::FaultUnrecovered { .. } => "fault_unrecovered",
            Event::PhaseBegin { .. } => "phase_begin",
            Event::PhaseEnd { .. } => "phase_end",
        }
    }

    /// The interest category the event belongs to (used for sink-side
    /// filtering before the event is even constructed).
    pub fn category(&self) -> Interest {
        match self {
            Event::CacheAccess { .. } | Event::CacheEviction { .. } => Interest::CACHE,
            Event::PrefetchIssue { .. } => Interest::PREFETCH,
            Event::MemRequest { .. } => Interest::TRACE,
            Event::OvecAddrGen { .. } => Interest::OVEC,
            Event::NpuInvoke { .. } | Event::NpuVerdict { .. } | Event::NpuRollback { .. } => {
                Interest::NPU
            }
            Event::FaultInjected { .. }
            | Event::FaultDetected { .. }
            | Event::FaultRecovered { .. }
            | Event::FaultUnrecovered { .. } => Interest::FAULT,
            Event::PhaseBegin { .. } | Event::PhaseEnd { .. } => Interest::PHASE,
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    ///
    /// The format is stable and versioned with the stats schema (see
    /// `SCHEMA.md` at the repository root): every object carries `kind`
    /// and `cycle`, plus variant-specific fields.
    pub fn write_json(&self, buf: &mut String) {
        use std::fmt::Write;
        buf.push_str("{\"kind\":");
        push_str(buf, self.kind());
        let _ = write!(buf, ",\"cycle\":{}", self.cycle());
        match *self {
            Event::CacheAccess {
                level,
                line_addr,
                write,
                outcome,
                ..
            } => {
                let _ = write!(
                    buf,
                    ",\"level\":\"{}\",\"line_addr\":{},\"write\":{},\"outcome\":\"{}\"",
                    level.name(),
                    line_addr,
                    write,
                    outcome.name()
                );
            }
            Event::CacheEviction {
                level,
                line_addr,
                dirty,
                prefetched_unused,
                ..
            } => {
                let _ = write!(
                    buf,
                    ",\"level\":\"{}\",\"line_addr\":{},\"dirty\":{},\"prefetched_unused\":{}",
                    level.name(),
                    line_addr,
                    dirty,
                    prefetched_unused
                );
            }
            Event::PrefetchIssue {
                level, line_addr, ..
            } => {
                let _ = write!(
                    buf,
                    ",\"level\":\"{}\",\"line_addr\":{}",
                    level.name(),
                    line_addr
                );
            }
            Event::MemRequest {
                core,
                pc,
                line_addr,
                write,
                dirty,
                wt_bytes,
                now,
                ..
            } => {
                let _ = write!(
                    buf,
                    ",\"core\":{core},\"pc\":{pc},\"line_addr\":{line_addr},\"write\":{write},\"dirty\":{dirty},\"wt_bytes\":{wt_bytes},\"now\":{now}"
                );
            }
            Event::OvecAddrGen {
                lanes,
                base,
                origin,
                orient,
                elem_bytes,
                max_elems,
                ..
            } => {
                let _ = write!(buf, ",\"lanes\":{lanes},\"base\":{base},\"origin\":");
                crate::json::push_f64(buf, origin);
                buf.push_str(",\"orient\":");
                crate::json::push_f64(buf, orient);
                let _ = write!(buf, ",\"elem_bytes\":{elem_bytes},\"max_elems\":{max_elems}");
            }
            Event::NpuInvoke {
                inputs,
                outputs,
                comm_cycles,
                compute_cycles,
                ..
            } => {
                let _ = write!(
                    buf,
                    ",\"inputs\":{inputs},\"outputs\":{outputs},\"comm_cycles\":{comm_cycles},\"compute_cycles\":{compute_cycles}"
                );
            }
            Event::NpuVerdict { accepted, .. } => {
                let _ = write!(buf, ",\"accepted\":{accepted}");
            }
            Event::NpuRollback { cpu_fallback, .. } => {
                let _ = write!(buf, ",\"cpu_fallback\":{cpu_fallback}");
            }
            Event::FaultInjected { site, count, .. } => {
                let _ = write!(buf, ",\"site\":\"{}\",\"count\":{}", site.name(), count);
            }
            Event::FaultDetected { count, .. }
            | Event::FaultRecovered { count, .. }
            | Event::FaultUnrecovered { count, .. } => {
                let _ = write!(buf, ",\"count\":{count}");
            }
            Event::PhaseBegin { name, .. } | Event::PhaseEnd { name, .. } => {
                buf.push_str(",\"name\":");
                push_str(buf, name);
            }
        }
        buf.push('}');
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write_json(&mut s);
        f.write_str(&s)
    }
}

/// Bitmask of event categories a sink wants to receive.
///
/// The simulator caches the attached sink's interest and skips event
/// construction entirely for masked categories, so a sink interested only
/// in, say, faults pays nothing for the cache-access firehose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Interest(u32);

impl Interest {
    /// Cache accesses and evictions.
    pub const CACHE: Interest = Interest(1);
    /// Prefetch issues (useful/late show up as [`CacheOutcome`]s).
    pub const PREFETCH: Interest = Interest(1 << 1);
    /// OVEC address generations.
    pub const OVEC: Interest = Interest(1 << 2);
    /// NPU invocations, verdicts, and rollbacks.
    pub const NPU: Interest = Interest(1 << 3);
    /// Fault injection/detection/recovery.
    pub const FAULT: Interest = Interest(1 << 4);
    /// Phase scopes.
    pub const PHASE: Interest = Interest(1 << 5);
    /// Per-request replay trace ([`Event::MemRequest`]). Deliberately *not*
    /// part of [`Interest::all`]: it roughly doubles the cache firehose, so
    /// sinks must opt in with `Interest::all() | Interest::TRACE`.
    pub const TRACE: Interest = Interest(1 << 6);

    /// Every standard category (excludes the opt-in [`Interest::TRACE`]).
    pub const fn all() -> Interest {
        Interest(0x3F)
    }

    /// No category (telemetry effectively disabled).
    pub const fn none() -> Interest {
        Interest(0)
    }

    /// Whether `self` includes every category in `other`.
    pub const fn contains(self, other: Interest) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether no category is selected.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        Interest(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for Interest {
    fn bitor_assign(&mut self, rhs: Interest) {
        self.0 |= rhs.0;
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    #[test]
    fn cycle_and_kind_cover_all_variants() {
        let events = sample_events();
        for e in &events {
            assert_eq!(e.cycle(), 7, "{e:?}");
            assert!(!e.kind().is_empty());
            assert!((Interest::all() | Interest::TRACE).contains(e.category()));
        }
        // Kind labels are unique.
        let mut kinds: Vec<_> = events.iter().map(|e| e.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), events.len());
    }

    #[test]
    fn json_lines_are_valid_json() {
        for e in sample_events() {
            let mut s = String::new();
            e.write_json(&mut s);
            crate::json::validate_json(&s).unwrap_or_else(|err| panic!("{s}: {err}"));
            assert!(s.contains("\"cycle\":7"));
        }
    }

    #[test]
    fn interest_algebra() {
        let i = Interest::CACHE | Interest::FAULT;
        assert!(i.contains(Interest::CACHE));
        assert!(i.contains(Interest::FAULT));
        assert!(!i.contains(Interest::NPU));
        assert!(!i.contains(Interest::CACHE | Interest::NPU));
        assert!(Interest::none().is_empty());
        assert!(!Interest::all().is_empty());
        // The replay firehose is opt-in, never implied by all().
        assert!(!Interest::all().contains(Interest::TRACE));
        let mut j = Interest::none();
        j |= Interest::OVEC;
        assert!(j.contains(Interest::OVEC));
    }

    pub(crate) fn sample_events() -> Vec<Event> {
        vec![
            Event::CacheAccess {
                cycle: 7,
                level: Level::L2,
                line_addr: 128,
                write: false,
                outcome: CacheOutcome::Covered,
            },
            Event::CacheEviction {
                cycle: 7,
                level: Level::L3,
                line_addr: 256,
                dirty: true,
                prefetched_unused: false,
            },
            Event::PrefetchIssue {
                cycle: 7,
                level: Level::L2,
                line_addr: 192,
            },
            Event::MemRequest {
                cycle: 7,
                core: 0,
                pc: 0x4000,
                line_addr: 128,
                write: true,
                dirty: false,
                wt_bytes: 8,
                now: 42,
            },
            Event::OvecAddrGen {
                cycle: 7,
                lanes: 16,
                base: 0x1_0000,
                origin: 0.5,
                orient: 1.25,
                elem_bytes: 4,
                max_elems: 1024,
            },
            Event::NpuInvoke {
                cycle: 7,
                inputs: 6,
                outputs: 1,
                comm_cycles: 8,
                compute_cycles: 40,
            },
            Event::NpuVerdict {
                cycle: 7,
                accepted: true,
            },
            Event::NpuRollback {
                cycle: 7,
                cpu_fallback: true,
            },
            Event::FaultInjected {
                cycle: 7,
                site: FaultSite::Accel,
                count: 2,
            },
            Event::FaultDetected { cycle: 7, count: 2 },
            Event::FaultRecovered { cycle: 7, count: 2 },
            Event::FaultUnrecovered { cycle: 7, count: 1 },
            Event::PhaseBegin {
                cycle: 7,
                name: "heuristic",
            },
            Event::PhaseEnd {
                cycle: 7,
                name: "heuristic",
            },
        ]
    }
}
