//! Cycle-stamped structured telemetry for the Tartan simulator.
//!
//! The paper evaluates Tartan inside ZSim, whose value lies in detailed
//! per-structure statistics. This crate is the equivalent substrate for
//! our execution-driven model:
//!
//! * **Events** ([`Event`], [`Interest`]) — a cycle-stamped taxonomy
//!   covering cache hits/misses/evictions per level, prefetch issues,
//!   OVEC address generation, NPU invoke/verdict/rollback, and fault
//!   inject/detect/recover. Zero overhead when disabled: the machine
//!   caches the attached sink's [`Interest`] mask and never constructs
//!   events for masked categories; with no sink attached the cost is one
//!   `Option` check per site.
//! * **Sinks** ([`Sink`], [`CountingSink`], [`RingBufferSink`],
//!   [`JsonLinesSink`], [`TeeSink`]) — pluggable destinations shared as
//!   [`SharedSink`] handles via [`shared`].
//! * **Reports** ([`Report`], [`ReportBuilder`], [`Histogram`]) —
//!   hierarchical phase scopes (robot → iteration → kernel) with
//!   per-phase p50/p95/p99 latency, miss-rate, and prefetch-accuracy.
//! * **Exports** ([`chrome_trace_json`], [`StatsExport`]) — a
//!   Perfetto-loadable Chrome trace and the versioned `stats.json`
//!   schema ([`STATS_SCHEMA_VERSION`]) consumed by the bench harness
//!   and CI.
//! * **Campaign observability** ([`MetricsRegistry`],
//!   [`CampaignProfile`], [`Heartbeat`], [`BenchHistoryLine`],
//!   [`campaign_trace_json`]) — host-side visibility for multi-job
//!   campaigns: lock-free counters/gauges, per-phase host-time
//!   attribution, worker-track Chrome traces, progress heartbeats, and
//!   bench history lines (all under [`CAMPAIGN_SCHEMA_VERSION`]).
//! * **Coverage fingerprints** ([`CoverageFingerprint`]) — bucketed
//!   behavioral regimes extracted from [`RobotRunStats`], the novelty
//!   signal behind the coverage-guided scenario synthesizer.
//!
//! The crate is deliberately dependency-free so every other workspace
//! crate — including `tartan-sim` at the bottom of the stack — can link
//! it. Everything it produces is byte-deterministic for a fixed seed.

#![warn(missing_docs)]

mod campaign;
mod chrome;
mod coverage;
mod event;
mod hist;
mod json;
mod metrics;
mod report;
mod sink;
mod stats;

pub use campaign::{
    campaign_trace_json, validate_bench_history_line, validate_campaign_profile_json,
    validate_heartbeat_json, BenchHistoryLine, CampaignPhase, CampaignProfile, Heartbeat,
    JobSpan, CAMPAIGN_SCHEMA_VERSION,
};
pub use chrome::chrome_trace_json;
pub use coverage::{CoverageFingerprint, MissRegime, PrefetchBand, SupervisionVerdict};
pub use metrics::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};
pub use event::{CacheOutcome, Event, FaultSite, Interest, Level};
pub use hist::{Histogram, SAMPLE_CAP};
pub use json::{push_f64, push_str, validate_json};
pub use report::{PhaseNode, Report, ReportBuilder, ScopeCounters};
pub use sink::{
    shared, CountingSink, FaultCounts, JsonLinesSink, LevelCounts, RingBufferSink, SharedSink,
    Sink, TeeSink,
};
pub use stats::{
    stats_export_json, validate_host_bench_json, validate_stats_json, CacheCounters,
    FaultCounters, HostBenchExport, HostRunStats, JobFailureStats, PhaseEntry, RobotRunStats,
    StatsExport, SupervisionCounters, WarmBenchStats, STATS_SCHEMA_VERSION,
};
