//! Hierarchical phase-scope reports.
//!
//! The runner opens a scope per robot, a scope per iteration, and leaf
//! scopes per kernel phase; each scope carries cycle latency and a
//! [`ScopeCounters`] snapshot delta. Same-named sibling scopes (the
//! iterations of one robot, the kernel phases across iterations) merge
//! into one [`PhaseNode`] whose histogram then describes the distribution
//! over instances — that is where p50/p95/p99 come from.

use crate::hist::Histogram;
use crate::json::push_str;

/// Cache/prefetch/instruction counters attributed to one scope.
///
/// Cache counters are taken at the L2 — the level the ANL/stride
/// prefetchers live at, so miss-rate and prefetch-accuracy here measure
/// exactly what the Tartan prefetch stack is supposed to fix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScopeCounters {
    /// Demand accesses (L2).
    pub accesses: u64,
    /// Demand misses, including late-prefetch touches (L2).
    pub misses: u64,
    /// Prefetches issued (L2).
    pub prefetches_issued: u64,
    /// Prefetches that covered a demand miss in time (L2).
    pub prefetches_useful: u64,
    /// Instructions retired in the scope.
    pub instructions: u64,
}

impl ScopeCounters {
    /// Element-wise sum.
    pub fn add(&mut self, other: &ScopeCounters) {
        self.accesses += other.accesses;
        self.misses += other.misses;
        self.prefetches_issued += other.prefetches_issued;
        self.prefetches_useful += other.prefetches_useful;
        self.instructions += other.instructions;
    }

    /// Demand miss rate in [0, 1]; 0 when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Fraction of issued prefetches that proved useful, in [0, 1].
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.prefetches_useful as f64 / self.prefetches_issued as f64
        }
    }
}

/// One node in the phase tree: a named scope with aggregated instances.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseNode {
    /// Scope label (robot name, `"iteration"`, or a kernel phase).
    pub name: String,
    /// Total cycles across all merged instances.
    pub cycles: u64,
    /// How many instances merged into this node.
    pub instances: u64,
    /// Counters summed across instances.
    pub counters: ScopeCounters,
    /// Per-instance cycle latency distribution.
    pub latency: Histogram,
    /// Child scopes, in first-seen order.
    pub children: Vec<PhaseNode>,
}

impl PhaseNode {
    fn new(name: &str) -> PhaseNode {
        PhaseNode {
            name: name.to_string(),
            cycles: 0,
            instances: 0,
            counters: ScopeCounters::default(),
            latency: Histogram::new(),
            children: Vec::new(),
        }
    }

    /// Finds a direct child by name.
    pub fn child(&self, name: &str) -> Option<&PhaseNode> {
        self.children.iter().find(|c| c.name == name)
    }

    /// Merges `other` (an instance of the same scope) into `self`.
    fn absorb(&mut self, other: PhaseNode) {
        debug_assert_eq!(self.name, other.name);
        self.cycles += other.cycles;
        self.instances += other.instances;
        self.counters.add(&other.counters);
        self.latency.merge(&other.latency);
        for child in other.children {
            merge_into(&mut self.children, child);
        }
    }

    fn write_json(&self, buf: &mut String) {
        use std::fmt::Write;
        buf.push_str("{\"name\":");
        push_str(buf, &self.name);
        let _ = write!(
            buf,
            ",\"cycles\":{},\"instances\":{},\"latency\":{{\"p50\":{},\"p95\":{},\"p99\":{},\"mean\":{},\"min\":{},\"max\":{}}}",
            self.cycles,
            self.instances,
            self.latency.p50(),
            self.latency.p95(),
            self.latency.p99(),
            self.latency.mean(),
            self.latency.min(),
            self.latency.max(),
        );
        let _ = write!(
            buf,
            ",\"accesses\":{},\"misses\":{},\"miss_rate\":{:.6},\"prefetches_issued\":{},\"prefetches_useful\":{},\"prefetch_accuracy\":{:.6},\"instructions\":{}",
            self.counters.accesses,
            self.counters.misses,
            self.counters.miss_rate(),
            self.counters.prefetches_issued,
            self.counters.prefetches_useful,
            self.counters.prefetch_accuracy(),
            self.counters.instructions,
        );
        buf.push_str(",\"children\":[");
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            c.write_json(buf);
        }
        buf.push_str("]}");
    }
}

fn merge_into(siblings: &mut Vec<PhaseNode>, node: PhaseNode) {
    if let Some(existing) = siblings.iter_mut().find(|c| c.name == node.name) {
        existing.absorb(node);
    } else {
        siblings.push(node);
    }
}

/// The aggregated phase tree for one (or more) runs.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Top-level scopes (one per robot run), in first-seen order.
    pub roots: Vec<PhaseNode>,
}

impl Report {
    /// Finds a top-level scope by name.
    pub fn root(&self, name: &str) -> Option<&PhaseNode> {
        self.roots.iter().find(|r| r.name == name)
    }

    /// Serializes the report as one JSON object.
    pub fn to_json(&self) -> String {
        let mut buf = String::from("{\"roots\":[");
        for (i, r) in self.roots.iter().enumerate() {
            if i > 0 {
                buf.push(',');
            }
            r.write_json(&mut buf);
        }
        buf.push_str("]}");
        buf
    }
}

/// Builds a [`Report`] from begin/end scope calls plus leaf attachments.
///
/// Scopes nest strictly: `end` always closes the innermost open scope.
/// Closing a scope records its latency instance and merges it into its
/// parent (or the root set), combining with an existing same-named
/// sibling.
#[derive(Debug, Default)]
pub struct ReportBuilder {
    stack: Vec<(PhaseNode, u64)>, // (node under construction, begin cycle)
    roots: Vec<PhaseNode>,
}

impl ReportBuilder {
    /// An empty builder.
    pub fn new() -> ReportBuilder {
        ReportBuilder::default()
    }

    /// Opens a scope at `cycle`.
    pub fn begin(&mut self, name: &str, cycle: u64) {
        self.stack.push((PhaseNode::new(name), cycle));
    }

    /// Closes the innermost scope at `cycle`, attributing `counters` to it.
    ///
    /// Panics if no scope is open (a begin/end mismatch is a bug in the
    /// instrumentation, not a runtime condition).
    pub fn end(&mut self, cycle: u64, counters: ScopeCounters) {
        let (mut node, begin) = self.stack.pop().expect("ReportBuilder::end without begin");
        let elapsed = cycle.saturating_sub(begin);
        node.cycles += elapsed;
        node.instances += 1;
        node.latency.record(elapsed);
        node.counters.add(&counters);
        match self.stack.last_mut() {
            Some((parent, _)) => merge_into(&mut parent.children, node),
            None => merge_into(&mut self.roots, node),
        }
    }

    /// Attaches a completed leaf scope (one instance of `cycles` length)
    /// under the innermost open scope, or at top level if none is open.
    pub fn leaf(&mut self, name: &str, cycles: u64, counters: ScopeCounters) {
        let mut node = PhaseNode::new(name);
        node.cycles = cycles;
        node.instances = 1;
        node.latency.record(cycles);
        node.counters = counters;
        match self.stack.last_mut() {
            Some((parent, _)) => merge_into(&mut parent.children, node),
            None => merge_into(&mut self.roots, node),
        }
    }

    /// Nesting depth of currently-open scopes.
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Finishes the report. Panics if scopes are still open.
    pub fn build(self) -> Report {
        assert!(
            self.stack.is_empty(),
            "ReportBuilder::build with {} open scope(s)",
            self.stack.len()
        );
        Report { roots: self.roots }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(accesses: u64, misses: u64) -> ScopeCounters {
        ScopeCounters {
            accesses,
            misses,
            prefetches_issued: 10,
            prefetches_useful: 7,
            instructions: 1000,
        }
    }

    #[test]
    fn sibling_iterations_merge() {
        let mut b = ReportBuilder::new();
        b.begin("flybot", 0);
        for i in 0..5u64 {
            b.begin("iteration", i * 100);
            b.leaf("heuristic", 60, counters(100, 10));
            b.leaf("communication", 30, counters(20, 2));
            b.end(i * 100 + 90 + i, counters(120, 12));
        }
        b.end(600, counters(600, 60));
        let report = b.build();

        assert_eq!(report.roots.len(), 1);
        let root = report.root("flybot").unwrap();
        assert_eq!(root.instances, 1);
        assert_eq!(root.cycles, 600);
        let iter = root.child("iteration").unwrap();
        assert_eq!(iter.instances, 5);
        // Instance latencies were 90, 91, 92, 93, 94.
        assert_eq!(iter.latency.min(), 90);
        assert_eq!(iter.latency.max(), 94);
        assert_eq!(iter.cycles, 90 + 91 + 92 + 93 + 94);
        assert_eq!(iter.counters.accesses, 5 * 120);
        let heur = iter.child("heuristic").unwrap();
        assert_eq!(heur.instances, 5);
        assert_eq!(heur.cycles, 300);
        assert_eq!(heur.counters.misses, 50);
        assert!((heur.counters.miss_rate() - 0.1).abs() < 1e-12);
        assert!((heur.counters.prefetch_accuracy() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn report_json_is_valid() {
        let mut b = ReportBuilder::new();
        b.begin("carribot", 10);
        b.leaf("collision", 40, counters(50, 5));
        b.end(100, counters(50, 5));
        let report = b.build();
        let json = report.to_json();
        crate::json::validate_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
        assert!(json.contains("\"name\":\"carribot\""));
        assert!(json.contains("\"p95\""));
    }

    #[test]
    fn identical_builds_compare_equal() {
        let build = || {
            let mut b = ReportBuilder::new();
            b.begin("r", 0);
            for i in 0..100u64 {
                b.begin("iteration", i * 10);
                b.end(i * 10 + 7, counters(i, i / 2));
            }
            b.end(1000, counters(0, 0));
            b.build()
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "open scope")]
    fn build_with_open_scope_panics() {
        let mut b = ReportBuilder::new();
        b.begin("r", 0);
        let _ = b.build();
    }

    #[test]
    fn empty_counters_rates_are_zero() {
        let c = ScopeCounters::default();
        assert_eq!(c.miss_rate(), 0.0);
        assert_eq!(c.prefetch_accuracy(), 0.0);
    }
}
