//! A minimal JSON writer and validator.
//!
//! The workspace is offline (no serde); exports hand-roll their JSON
//! through these helpers, and tests/CI use [`validate_json`] to prove the
//! output parses. The writer is deterministic: identical inputs produce
//! byte-identical output.

/// Appends `s` as a JSON string literal (quoted, escaped).
pub fn push_str(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// Appends `v` as a JSON number. Non-finite values (which JSON cannot
/// represent) are written as `null`.
pub fn push_f64(buf: &mut String, v: f64) {
    use std::fmt::Write;
    if v.is_finite() {
        let _ = write!(buf, "{v}");
    } else {
        buf.push_str("null");
    }
}

/// Validates that `s` is one well-formed JSON value (with optional
/// surrounding whitespace). Returns the byte offset and message on error.
///
/// This is a syntax check only — small, strict on structure, permissive on
/// number grammar — used by tests and the CI schema guard, not a general
/// parser: it builds no value tree.
pub fn validate_json(s: &str) -> Result<(), String> {
    let b = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(b, &mut pos);
    value(b, &mut pos)?;
    skip_ws(b, &mut pos);
    if pos != b.len() {
        return Err(format!("trailing garbage at byte {pos}"));
    }
    Ok(())
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    match b.get(*pos) {
        None => Err(format!("unexpected end of input at byte {pos}")),
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, pos)),
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}"))
    }
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut digits = 0;
    while *pos < b.len() && (b[*pos].is_ascii_digit() || matches!(b[*pos], b'.' | b'e' | b'E' | b'+' | b'-')) {
        digits += 1;
        *pos += 1;
    }
    if digits == 0 {
        return Err(format!("malformed number at byte {start}"));
    }
    Ok(())
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 2; // skip the escaped byte (surrogate pairs parse as 2 escapes)
            }
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}"));
        }
        *pos += 1;
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    *pos += 1; // '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_round_trips_through_validation() {
        let mut s = String::new();
        push_str(&mut s, "a \"quoted\"\nline\twith \\ control \u{1}");
        validate_json(&s).unwrap();
        assert!(s.starts_with('"') && s.ends_with('"'));
        assert!(s.contains("\\u0001"));
    }

    #[test]
    fn numbers_and_nonfinite() {
        let mut s = String::new();
        push_f64(&mut s, 1.5);
        assert_eq!(s, "1.5");
        s.clear();
        push_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
        s.clear();
        push_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
    }

    #[test]
    fn validator_accepts_wellformed() {
        for ok in [
            "{}",
            "[]",
            "null",
            "-1.5e3",
            r#"{"a":[1,2,{"b":"c"}],"d":null,"e":true}"#,
            "  { \"x\" : [ 1 , 2 ] }  ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn validator_rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\"1}",
            "{\"a\":1,}",
            "\"unterminated",
            "{} trailing",
            "{'single':1}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} must be rejected");
        }
    }
}
