//! Behavioral coverage fingerprints for scenario synthesis.
//!
//! The coverage-guided scenario generator (`tartan-scenario`'s `synth`
//! module and the `tartan_gen` binary) needs a *signal*: a compact,
//! deterministic summary of "what kind of behavior did this run
//! exhibit?" so it can keep scenarios that exercise something new and
//! drop the ones that re-tread covered ground. This module extracts
//! that signal from the stats every run already produces —
//! [`RobotRunStats`] — so coverage costs nothing extra to collect.
//!
//! A [`CoverageFingerprint`] deliberately buckets aggressively. The
//! point is not to distinguish every run (wall-cycle counts would do
//! that and make everything "novel"); it is to distinguish *regimes*:
//! which phases dominated, roughly how often the L2 missed, whether
//! prefetching helped, whether the NPU ran supervised and how the
//! supervisor ruled, and the order of magnitude of NPU traffic. Two
//! runs in the same regime produce the same fingerprint, which is
//! exactly what lets the corpus curator treat one of them as redundant.

use crate::stats::RobotRunStats;

/// A demand miss-ratio regime for one cache level, bucketed on a log2
/// scale so "misses a lot" and "misses a little" separate without
/// every percentage point being its own bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MissRegime {
    /// The level saw no demand accesses at all.
    Idle,
    /// Accesses but zero misses (fully cache-resident working set).
    None,
    /// Every access missed (streaming / cold working set).
    All,
    /// `floor(log2(accesses / misses))`, capped at 7: 0 means roughly
    /// "miss ratio above 50%", 7 means "below ~1%".
    Log2(u8),
}

impl MissRegime {
    /// Buckets a (accesses, misses) pair.
    pub fn classify(accesses: u64, misses: u64) -> MissRegime {
        if accesses == 0 {
            MissRegime::Idle
        } else if misses == 0 {
            MissRegime::None
        } else if misses >= accesses {
            MissRegime::All
        } else {
            let k = (accesses / misses).ilog2().min(7) as u8;
            MissRegime::Log2(k)
        }
    }

    fn key_fragment(&self) -> String {
        match self {
            MissRegime::Idle => "idle".into(),
            MissRegime::None => "none".into(),
            MissRegime::All => "all".into(),
            MissRegime::Log2(k) => format!("log2:{k}"),
        }
    }
}

/// How prefetching fared at one level: not issued at all, or a
/// usefulness quartile (`0` = under 25% useful, `3` = 75%+).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PrefetchBand {
    /// No prefetches were issued into this level.
    Off,
    /// Usefulness quartile: `min(useful * 4 / issued, 3)`.
    Quartile(u8),
}

impl PrefetchBand {
    /// Buckets an (issued, useful) pair.
    pub fn classify(issued: u64, useful: u64) -> PrefetchBand {
        match useful.saturating_mul(4).checked_div(issued) {
            None => PrefetchBand::Off,
            Some(q) => PrefetchBand::Quartile(q.min(3) as u8),
        }
    }

    fn key_fragment(&self) -> String {
        match self {
            PrefetchBand::Off => "off".into(),
            PrefetchBand::Quartile(q) => format!("q{q}"),
        }
    }
}

/// What the NPU supervisor did, if one ran at all.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SupervisionVerdict {
    /// The run had no supervisor attached.
    Unsupervised,
    /// Bit 0: invocations observed, bit 1: rollbacks observed, bit 2:
    /// CPU fallbacks observed. `Supervised(0)` means a supervisor was
    /// attached but never fired.
    Supervised(u8),
}

impl SupervisionVerdict {
    fn key_fragment(&self) -> String {
        match self {
            SupervisionVerdict::Unsupervised => "unsup".into(),
            SupervisionVerdict::Supervised(bits) => format!("sup:{bits}"),
        }
    }
}

/// The coverage regime one robot run landed in.
///
/// Ordered and hashable so fingerprints can be sorted, deduplicated,
/// and used as set keys. The canonical text form is [`key`](Self::key),
/// which is what the corpus manifest records.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoverageFingerprint {
    /// Names of phases claiming at least 1/8 of total phase cycles,
    /// sorted. Empty when the run recorded no phase cycles.
    pub dominant_phases: Vec<String>,
    /// L2 demand miss regime.
    pub l2_miss: MissRegime,
    /// L2 prefetch usefulness band.
    pub l2_prefetch: PrefetchBand,
    /// Supervisor verdict set.
    pub supervision: SupervisionVerdict,
    /// `0` for no NPU traffic, else `1 + min(ilog2(n), 14)` — a
    /// power-of-two magnitude bucket.
    pub npu_bucket: u8,
}

impl CoverageFingerprint {
    /// Extracts the fingerprint from one run's stats.
    pub fn from_stats(stats: &RobotRunStats) -> CoverageFingerprint {
        let total: u64 = stats.phases.iter().map(|p| p.cycles).sum();
        let mut dominant_phases: Vec<String> = stats
            .phases
            .iter()
            .filter(|p| total > 0 && p.cycles >= total / 8)
            .map(|p| p.name.clone())
            .collect();
        dominant_phases.sort();
        dominant_phases.dedup();

        let supervision = match &stats.supervision {
            None => SupervisionVerdict::Unsupervised,
            Some(s) => {
                let bits = u8::from(s.invocations > 0)
                    | u8::from(s.rollbacks > 0) << 1
                    | u8::from(s.cpu_fallbacks > 0) << 2;
                SupervisionVerdict::Supervised(bits)
            }
        };

        let npu_bucket = if stats.npu_invocations == 0 {
            0
        } else {
            1 + stats.npu_invocations.ilog2().min(14) as u8
        };

        CoverageFingerprint {
            dominant_phases,
            l2_miss: MissRegime::classify(stats.l2.accesses, stats.l2.misses),
            l2_prefetch: PrefetchBand::classify(
                stats.l2.prefetches_issued,
                stats.l2.prefetches_useful,
            ),
            supervision,
            npu_bucket,
        }
    }

    /// Canonical single-line text form, e.g.
    /// `phases=[plan,sense] l2=log2:3 pf=q2 sup:1 npu=5`.
    ///
    /// Equal fingerprints render to equal keys and vice versa; the
    /// corpus manifest stores these strings verbatim.
    pub fn key(&self) -> String {
        format!(
            "phases=[{}] l2={} pf={} {} npu={}",
            self.dominant_phases.join(","),
            self.l2_miss.key_fragment(),
            self.l2_prefetch.key_fragment(),
            self.supervision.key_fragment(),
            self.npu_bucket
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::{CacheCounters, PhaseEntry, SupervisionCounters};

    fn base_stats() -> RobotRunStats {
        RobotRunStats {
            robot: "delibot".into(),
            config: "tartan".into(),
            ..Default::default()
        }
    }

    #[test]
    fn zero_access_level_is_idle_not_a_low_miss_bucket() {
        assert_eq!(MissRegime::classify(0, 0), MissRegime::Idle);
        let fp = CoverageFingerprint::from_stats(&base_stats());
        assert_eq!(fp.l2_miss, MissRegime::Idle);
        assert_eq!(fp.l2_prefetch, PrefetchBand::Off);
        assert_eq!(fp.npu_bucket, 0);
        assert!(fp.dominant_phases.is_empty());
        assert_eq!(fp.key(), "phases=[] l2=idle pf=off unsup npu=0");
    }

    #[test]
    fn all_miss_and_no_miss_get_their_own_regimes() {
        assert_eq!(MissRegime::classify(100, 100), MissRegime::All);
        // Defensive: more misses than accesses still classifies as All.
        assert_eq!(MissRegime::classify(100, 150), MissRegime::All);
        assert_eq!(MissRegime::classify(100, 0), MissRegime::None);
    }

    #[test]
    fn log2_regime_buckets_and_caps() {
        // 1000/400 = 2 -> log2 = 1.
        assert_eq!(MissRegime::classify(1000, 400), MissRegime::Log2(1));
        // 1000/999: ratio 1 -> bucket 0 ("misses more than half").
        assert_eq!(MissRegime::classify(1000, 999), MissRegime::Log2(0));
        // One miss in a million caps at 7.
        assert_eq!(MissRegime::classify(1_000_000, 1), MissRegime::Log2(7));
    }

    #[test]
    fn prefetch_bands_cover_edges() {
        assert_eq!(PrefetchBand::classify(0, 0), PrefetchBand::Off);
        assert_eq!(PrefetchBand::classify(100, 0), PrefetchBand::Quartile(0));
        assert_eq!(PrefetchBand::classify(100, 24), PrefetchBand::Quartile(0));
        assert_eq!(PrefetchBand::classify(100, 25), PrefetchBand::Quartile(1));
        assert_eq!(PrefetchBand::classify(100, 100), PrefetchBand::Quartile(3));
        // Defensive: useful > issued still lands in the top quartile.
        assert_eq!(PrefetchBand::classify(10, 40), PrefetchBand::Quartile(3));
    }

    #[test]
    fn dominant_phases_threshold_is_an_eighth_of_total() {
        let mut stats = base_stats();
        stats.phases = vec![
            PhaseEntry {
                name: "plan".into(),
                cycles: 700,
                instructions: 0,
            },
            PhaseEntry {
                name: "sense".into(),
                cycles: 200,
                instructions: 0,
            },
            PhaseEntry {
                name: "log".into(),
                cycles: 100,
                instructions: 0,
            },
        ];
        // total = 1000, threshold = 125: "log" (100) is below it.
        let fp = CoverageFingerprint::from_stats(&stats);
        assert_eq!(fp.dominant_phases, ["plan", "sense"]);
        // Sorted regardless of phase order in the stats.
        stats.phases.reverse();
        assert_eq!(
            CoverageFingerprint::from_stats(&stats).dominant_phases,
            ["plan", "sense"]
        );
    }

    #[test]
    fn supervision_verdict_distinguishes_absent_idle_and_active() {
        let mut stats = base_stats();
        assert_eq!(
            CoverageFingerprint::from_stats(&stats).supervision,
            SupervisionVerdict::Unsupervised
        );
        stats.supervision = Some(SupervisionCounters::default());
        assert_eq!(
            CoverageFingerprint::from_stats(&stats).supervision,
            SupervisionVerdict::Supervised(0)
        );
        stats.supervision = Some(SupervisionCounters {
            invocations: 10,
            rollbacks: 2,
            cpu_fallbacks: 0,
        });
        assert_eq!(
            CoverageFingerprint::from_stats(&stats).supervision,
            SupervisionVerdict::Supervised(0b011)
        );
    }

    #[test]
    fn npu_bucket_is_log_magnitude_with_zero_reserved() {
        let mut stats = base_stats();
        for (n, bucket) in [(0u64, 0u8), (1, 1), (2, 2), (3, 2), (4, 3), (1 << 20, 15)] {
            stats.npu_invocations = n;
            assert_eq!(
                CoverageFingerprint::from_stats(&stats).npu_bucket,
                bucket,
                "npu_invocations = {n}"
            );
        }
    }

    #[test]
    fn key_is_injective_over_distinct_fingerprints() {
        let mut stats = base_stats();
        stats.l2 = CacheCounters {
            accesses: 1000,
            misses: 100,
            prefetches_issued: 50,
            prefetches_useful: 40,
            ..Default::default()
        };
        stats.npu_invocations = 9;
        stats.supervision = Some(SupervisionCounters {
            invocations: 9,
            rollbacks: 0,
            cpu_fallbacks: 0,
        });
        stats.phases = vec![PhaseEntry {
            name: "plan".into(),
            cycles: 10,
            instructions: 0,
        }];
        let a = CoverageFingerprint::from_stats(&stats);
        assert_eq!(a.key(), "phases=[plan] l2=log2:3 pf=q3 sup:1 npu=4");
        let mut b = a.clone();
        b.npu_bucket = 5;
        assert_ne!(a.key(), b.key());
        assert!(a < b || b < a, "distinct fingerprints must order");
    }
}
