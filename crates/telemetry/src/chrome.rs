//! Chrome-trace (Perfetto-loadable) JSON export.
//!
//! Converts a captured event slice into the Trace Event Format's JSON
//! object form (`{"traceEvents": [...]}`), which both `chrome://tracing`
//! and [ui.perfetto.dev](https://ui.perfetto.dev) open directly.
//!
//! Mapping: phase scopes become duration events (`"B"`/`"E"`), everything
//! else becomes an instant (`"i"`) on a category-named thread row so the
//! cache firehose does not bury the NPU/fault timeline. Timestamps are
//! microseconds in the trace format; we map 1 simulated cycle → 1 µs,
//! which keeps the numbers integral and zoomable.

use crate::event::{Event, Interest};
use crate::json::push_str;

/// Process id used for all rows (a single simulated machine).
const PID: u32 = 1;

fn tid_for(category: Interest) -> u32 {
    // Stable thread rows per category: phases on top, then the rarer and
    // more interesting streams, cache traffic last.
    if category.contains(Interest::PHASE) {
        1
    } else if category.contains(Interest::NPU) {
        2
    } else if category.contains(Interest::FAULT) {
        3
    } else if category.contains(Interest::OVEC) {
        4
    } else if category.contains(Interest::PREFETCH) {
        5
    } else {
        6 // CACHE
    }
}

fn thread_name(tid: u32) -> &'static str {
    match tid {
        1 => "phases",
        2 => "npu",
        3 => "faults",
        4 => "ovec",
        5 => "prefetch",
        _ => "cache",
    }
}

/// Renders `events` as a Chrome-trace JSON object.
///
/// `process_name` labels the process row (typically the robot name).
/// Events should be in emission order; duration events rely on it.
pub fn chrome_trace_json(process_name: &str, events: &[Event]) -> String {
    let mut buf = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |buf: &mut String| {
        if !std::mem::take(&mut first) {
            buf.push(',');
        }
    };

    // Metadata: process and thread names.
    sep(&mut buf);
    buf.push_str("{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,\"args\":{\"name\":");
    push_str(&mut buf, process_name);
    buf.push_str("}}");
    for tid in 1..=6u32 {
        sep(&mut buf);
        use std::fmt::Write;
        let _ = write!(
            buf,
            "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{PID},\"tid\":{tid},\"args\":{{\"name\":"
        );
        push_str(&mut buf, thread_name(tid));
        buf.push_str("}}");
    }

    for e in events {
        use std::fmt::Write;
        sep(&mut buf);
        let ts = e.cycle(); // 1 cycle = 1 µs
        match *e {
            Event::PhaseBegin { name, .. } => {
                let _ = write!(buf, "{{\"ph\":\"B\",\"pid\":{PID},\"tid\":1,\"ts\":{ts},\"name\":");
                push_str(&mut buf, name);
                buf.push_str(",\"cat\":\"phase\"}");
            }
            Event::PhaseEnd { name, .. } => {
                let _ = write!(buf, "{{\"ph\":\"E\",\"pid\":{PID},\"tid\":1,\"ts\":{ts},\"name\":");
                push_str(&mut buf, name);
                buf.push_str(",\"cat\":\"phase\"}");
            }
            Event::NpuInvoke {
                comm_cycles,
                compute_cycles,
                ..
            } => {
                // Invocations have a natural duration: render as a complete
                // ("X") event spanning comm + compute.
                let dur = comm_cycles + compute_cycles;
                let _ = write!(
                    buf,
                    "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":2,\"ts\":{ts},\"dur\":{dur},\"name\":\"npu_invoke\",\"cat\":\"npu\",\"args\":{{\"comm_cycles\":{comm_cycles},\"compute_cycles\":{compute_cycles}}}}}"
                );
            }
            ref e => {
                let tid = tid_for(e.category());
                let _ = write!(
                    buf,
                    "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{tid},\"ts\":{ts},\"s\":\"t\",\"name\":"
                );
                push_str(&mut buf, e.kind());
                buf.push_str(",\"cat\":");
                push_str(&mut buf, thread_name(tid));
                buf.push('}');
            }
        }
    }
    buf.push_str("]}");
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::tests::sample_events;

    #[test]
    fn trace_is_valid_json_with_expected_shapes() {
        let json = chrome_trace_json("flybot", &sample_events());
        crate::json::validate_json(&json).unwrap_or_else(|e| panic!("{e}"));
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"B\""));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"flybot\""));
        // NPU invoke duration = comm + compute from the sample event.
        assert!(json.contains("\"dur\":48"));
    }

    #[test]
    fn empty_capture_still_loads() {
        let json = chrome_trace_json("empty", &[]);
        crate::json::validate_json(&json).unwrap();
        assert!(json.contains("process_name"));
    }
}
