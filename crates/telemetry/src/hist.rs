//! A small, deterministic histogram for per-phase metrics.
//!
//! Exact samples are kept up to a cap; past it, the histogram degrades to
//! log2 buckets so memory stays bounded on million-iteration runs while
//! percentiles stay within a factor-of-two of exact. All arithmetic is
//! integer or order-only, so aggregates are bit-reproducible.

/// Number of exact samples retained before degrading to buckets.
pub const SAMPLE_CAP: usize = 8192;

const BUCKETS: usize = 65; // log2(u64::MAX) + 1 for zero

/// A bounded-memory histogram of `u64` samples (e.g. per-iteration cycle
/// latencies).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    samples: Vec<u64>,
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Lower bound of a bucket (the representative value reported once the
/// histogram has degraded to buckets).
fn bucket_floor(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        1u64 << (b - 1)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            samples: Vec::new(),
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[bucket_of(v)] += 1;
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(v);
        }
    }

    /// Merges another histogram into this one.
    ///
    /// Exact samples are concatenated up to [`SAMPLE_CAP`]; excess detail
    /// survives only in the buckets.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        for (b, n) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += n;
        }
        let room = SAMPLE_CAP.saturating_sub(self.samples.len());
        self.samples
            .extend_from_slice(&other.samples[..other.samples.len().min(room)]);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest sample, or 0 if empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Integer mean (floor), or 0 if empty.
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// Nearest-rank percentile (`q` in 0..=100), or 0 if empty.
    ///
    /// Exact while the sample cap holds (the common tier-1 case); once the
    /// histogram has spilled, the answer comes from the log2 buckets and is
    /// accurate to the containing power of two.
    pub fn percentile(&self, q: u8) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // Nearest-rank: the k-th smallest with k = ceil(q/100 * n), min 1.
        let rank = ((q as u128 * self.count as u128).div_ceil(100)).max(1);
        if self.samples.len() as u64 == self.count {
            let mut sorted = self.samples.clone();
            sorted.sort_unstable();
            return sorted[(rank - 1) as usize];
        }
        let mut seen: u128 = 0;
        for (b, n) in self.buckets.iter().enumerate() {
            seen += *n as u128;
            if seen >= rank {
                return bucket_floor(b).max(self.min).min(self.max);
            }
        }
        self.max
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.percentile(50)
    }

    /// 95th percentile.
    pub fn p95(&self) -> u64 {
        self.percentile(95)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_percentiles_small() {
        let mut h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 100);
        assert_eq!(h.mean(), 50);
        assert_eq!(h.p50(), 50);
        assert_eq!(h.p95(), 95);
        assert_eq!(h.p99(), 99);
        assert_eq!(h.percentile(100), 100);
    }

    #[test]
    fn empty_is_all_zero() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn degrades_to_buckets_past_cap() {
        let mut h = Histogram::new();
        let n = (SAMPLE_CAP * 2) as u64;
        for v in 0..n {
            h.record(v);
        }
        assert_eq!(h.count(), n);
        // Bucketed percentile: within a factor of two below the exact value
        // (and clamped to observed min/max).
        let exact = n / 2;
        let got = h.p50();
        assert!(got <= exact, "p50 {got} must not exceed exact {exact}");
        assert!(got >= exact / 2, "p50 {got} too far below exact {exact}");
        assert_eq!(h.max(), n - 1);
        assert_eq!(h.min(), 0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in 1..=50u64 {
            a.record(v);
        }
        for v in 51..=100u64 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.min(), 1);
        assert_eq!(a.max(), 100);
        assert_eq!(a.p50(), 50);
    }

    #[test]
    fn single_sample_is_every_statistic() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), 42);
        assert_eq!(h.max(), 42);
        assert_eq!(h.mean(), 42);
        assert_eq!(h.sum(), 42);
        for q in [0, 1, 50, 95, 99, 100] {
            assert_eq!(h.percentile(q), 42, "q={q}");
        }
    }

    #[test]
    fn u64_max_samples_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        // The sum needs more than 64 bits the moment two max samples land.
        assert_eq!(h.sum(), 2 * u128::from(u64::MAX));
        assert_eq!(h.mean(), u64::MAX);
        assert_eq!(h.p50(), u64::MAX);
        // Past the cap, the top bucket's floor (1 << 63) would halve the
        // answer; the min/max clamp must restore the observed value.
        for _ in 0..2 * SAMPLE_CAP {
            h.record(u64::MAX);
        }
        assert!(h.count() > SAMPLE_CAP as u64);
        assert_eq!(h.p50(), u64::MAX);
        assert_eq!(h.percentile(100), u64::MAX);
    }

    #[test]
    fn zero_only_samples_stay_zero_past_cap() {
        let mut h = Histogram::new();
        for _ in 0..2 * SAMPLE_CAP {
            h.record(0);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn degraded_percentiles_land_on_bucket_floors() {
        // Two populations a bucket apart: 512 lives in the [512, 1024)
        // bucket, 1024 in [1024, 2048). Once degraded, low percentiles
        // report the lower bucket's floor and high ones the upper's.
        let mut h = Histogram::new();
        for _ in 0..SAMPLE_CAP {
            h.record(512);
        }
        for _ in 0..SAMPLE_CAP {
            h.record(1024);
        }
        assert_eq!(h.p50(), 512);
        assert_eq!(h.p99(), 1024);
        // A power-of-two boundary value is its own bucket floor, so the
        // degraded answer for a uniform population is exact.
        let mut u = Histogram::new();
        for _ in 0..2 * SAMPLE_CAP {
            u.record(4096);
        }
        assert_eq!(u.p50(), 4096);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let mut a = Histogram::new();
        for v in [3u64, 9, 27] {
            a.record(v);
        }
        let before = a.clone();
        a.merge(&Histogram::new());
        assert_eq!(a, before, "merging an empty histogram must change nothing");
        let mut e = Histogram::new();
        e.merge(&before);
        assert_eq!(e, before, "merging into an empty histogram must copy it");
        // In particular the empty side's sentinel min must not leak through.
        assert_eq!(e.min(), 3);
    }

    #[test]
    fn merge_past_cap_keeps_counts_and_degrades_gracefully() {
        let mut a = Histogram::new();
        for _ in 0..SAMPLE_CAP {
            a.record(100);
        }
        let mut b = Histogram::new();
        for _ in 0..100 {
            b.record(7);
        }
        a.merge(&b);
        assert_eq!(a.count(), (SAMPLE_CAP + 100) as u64);
        assert_eq!(a.min(), 7);
        assert_eq!(a.max(), 100);
        // The exact-sample store is full, so percentiles come from buckets:
        // still clamped into the observed range.
        let p = a.p50();
        assert!((7..=100).contains(&p), "p50 {p} escaped the sample range");
    }

    #[test]
    fn deterministic_across_identical_streams() {
        let build = || {
            let mut h = Histogram::new();
            for i in 0..10_000u64 {
                h.record(i.wrapping_mul(2654435761) % 4096);
            }
            h
        };
        assert_eq!(build(), build());
    }
}
