//! The campaign engine (DESIGN.md §18): one library entry point owning the
//! plan → key → execute → fan-out pipeline that `tartan_run`, `bench_tier1`,
//! `tartan_gen`, and the figure harnesses all used to re-implement.
//!
//! A [`CampaignSpec`] holds one or many expanded scenarios ([`Campaign`])
//! plus execution options. [`JobSet::build`] computes every planned job's
//! content address up front and **dedupes across campaigns**: jobs with
//! identical cache keys become one [`ExecUnit`] that executes once and fans
//! its result back to every requesting `(campaign, job)` slot. Because cache
//! keys cover everything that determines a run's bytes (config, machine,
//! software, scale, steps, seed, schema versions — see DESIGN.md §14) and
//! simulations are byte-deterministic, fanning out a clone is
//! indistinguishable from re-running the job.
//!
//! [`Engine::run`] wraps `tartan-par`'s panic-isolated retrying pool with
//! the store/resume/verify machinery behind a single call, streams typed
//! [`CampaignEvent`]s in a deterministic order (a prefix-release reorder
//! buffer over unit indices: unit *i*'s events are emitted once every unit
//! `<= i` has finished, so the event sequence depends only on the job set,
//! never on scheduling), and returns a [`CampaignReport`] with per-campaign
//! results, failures, spans, and the metrics snapshot.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tartan_core::{run_robot, ExperimentParams, RunOutcome};
use tartan_par as par;
use tartan_robots::Scale;
use tartan_scenario::json::{parse as parse_json, JsonValue};
use tartan_scenario::{Plan, RunParams, ScenarioError, ScenarioSpec};
use tartan_store::{sha256_hex, ResultStore, StoreCounts, StoreError};
use tartan_telemetry::{
    push_str, stats_export_json, CampaignPhase, Counter, Heartbeat, JobFailureStats, JobSpan,
    MetricsRegistry, RobotRunStats,
};

/// How `--progress` renders its stderr heartbeats.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgressMode {
    /// One human-readable line per heartbeat.
    Human,
    /// One schema-validated JSON line per heartbeat.
    Jsonl,
}

/// Minimum gap between mid-campaign heartbeats; the first and last
/// completions always emit one regardless.
const HEARTBEAT_INTERVAL_NANOS: u64 = 200_000_000;

/// One expanded scenario: the spec, its ordered job plan, and the
/// parameters its jobs run at.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The parsed scenario (name, title, and `params.adjust` live here).
    pub spec: ScenarioSpec,
    /// The expanded, ordered job list.
    pub plan: Plan,
    /// Scale/steps/seed the jobs run at.
    pub params: ExperimentParams,
}

impl Campaign {
    /// Expands a spec into a campaign running at the spec's own base
    /// parameters (scale preset + `adjust` list, steps, seed).
    ///
    /// # Errors
    ///
    /// Whatever [`ScenarioSpec::expand`] reports, with field-path context.
    pub fn from_spec(spec: ScenarioSpec) -> Result<Campaign, ScenarioError> {
        let plan = spec.expand()?;
        let params: ExperimentParams = spec.base_params().into();
        Ok(Campaign { spec, plan, params })
    }

    /// Replaces the campaign's scale with `scale`, re-applying the spec's
    /// `params.adjust` list on top — the `--scale` override semantics.
    pub fn override_scale(&mut self, mut scale: Scale) {
        self.spec.params.apply_adjusts(&mut scale);
        self.params.scale = scale;
    }

    /// The scenario's name (export file stem).
    pub fn name(&self) -> &str {
        &self.spec.name
    }
}

/// Execution options shared by every campaign in a batch.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Host worker threads; `0` means [`par::default_jobs`].
    pub jobs: usize,
    /// Attempts per job (≥ 1); panics are isolated per attempt.
    pub retries: u32,
    /// Flag jobs running longer than this (surfaced, never killed).
    pub watchdog: Option<Duration>,
    /// Content-addressed result store directory.
    pub store: Option<PathBuf>,
    /// Serve jobs from the store instead of re-simulating them.
    pub resume: bool,
    /// Re-execute a seeded sample of N cache-served jobs per campaign and
    /// byte-diff the records; mismatches are quarantined and repaired.
    pub verify: usize,
    /// Heartbeat rendering; `None` collects metrics silently.
    pub progress: Option<ProgressMode>,
    /// Keep each fresh run's full [`RunOutcome`] in its [`JobOutput`]
    /// (the figure harnesses and the bench need it; `tartan_run` doesn't).
    pub keep_outcomes: bool,
    /// Tool name prefixed to every diagnostic line (`"tartan_run"`, ...).
    pub tool: &'static str,
}

impl Default for CampaignOptions {
    fn default() -> CampaignOptions {
        CampaignOptions {
            jobs: 0,
            retries: 1,
            watchdog: None,
            store: None,
            resume: false,
            verify: 0,
            progress: None,
            keep_outcomes: false,
            tool: "tartan-campaign",
        }
    }
}

/// One or many campaigns plus the options they execute under.
#[derive(Debug, Clone)]
pub struct CampaignSpec {
    /// The campaigns, in batch order.
    pub campaigns: Vec<Campaign>,
    /// Shared execution options.
    pub options: CampaignOptions,
}

/// A `(campaign, job)` coordinate into a [`CampaignSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobRef {
    /// Index into [`CampaignSpec::campaigns`].
    pub campaign: usize,
    /// Index into that campaign's `plan.jobs`.
    pub job: usize,
}

/// One distinct cache key and every planned job that requested it. The
/// first requester (discovery order: campaign index, then job index) is
/// the unit's primary — its robot/config/label label the spans and
/// diagnostics.
#[derive(Debug, Clone)]
pub struct ExecUnit {
    /// SHA-256 content address of the job's canonical rendering.
    pub key: String,
    /// Every `(campaign, job)` slot this unit's result fans out to, in
    /// discovery order; never empty.
    pub requesters: Vec<JobRef>,
}

/// The keyed, deduplicated execution plan for a batch.
#[derive(Debug, Clone)]
pub struct JobSet {
    /// Distinct execution units, in first-occurrence order.
    pub units: Vec<ExecUnit>,
    /// `unit_of[campaign][job]` → index into [`JobSet::units`].
    pub unit_of: Vec<Vec<usize>>,
    /// Total planned jobs across all campaigns (before dedupe).
    pub total_jobs: usize,
}

impl JobSet {
    /// Computes every job's cache key and groups identical keys into
    /// execution units. Jobs from different campaigns (or duplicated
    /// within one) that share a key execute once.
    pub fn build(campaigns: &[Campaign]) -> JobSet {
        let mut by_key: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
        let mut units: Vec<ExecUnit> = Vec::new();
        let mut unit_of: Vec<Vec<usize>> = Vec::with_capacity(campaigns.len());
        let mut total_jobs = 0usize;
        for (ci, campaign) in campaigns.iter().enumerate() {
            let run_params: RunParams = campaign.params.into();
            let mut indices = Vec::with_capacity(campaign.plan.jobs.len());
            for (ji, job) in campaign.plan.jobs.iter().enumerate() {
                total_jobs += 1;
                let key = sha256_hex(job.cache_key_text(&run_params).as_bytes());
                let unit = *by_key.entry(key.clone()).or_insert_with(|| {
                    units.push(ExecUnit {
                        key,
                        requesters: Vec::new(),
                    });
                    units.len() - 1
                });
                units[unit].requesters.push(JobRef {
                    campaign: ci,
                    job: ji,
                });
                indices.push(unit);
            }
            unit_of.push(indices);
        }
        JobSet {
            units,
            unit_of,
            total_jobs,
        }
    }

    /// Number of distinct cache keys (units that actually execute).
    pub fn distinct(&self) -> usize {
        self.units.len()
    }
}

/// One completed job, whether simulated fresh, served from the store, or
/// fanned out from a deduplicated unit.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// The run's `stats.json` record, verbatim — the splice/export unit.
    pub record: String,
    /// Robot name (comes back from the payload on cache hits so a
    /// corrupted entry can never relabel a row).
    pub robot: String,
    /// End-to-end wall cycles.
    pub wall_cycles: u64,
    /// Dynamic instructions.
    pub instructions: u64,
    /// L2 demand misses.
    pub l2_demand_misses: u64,
    /// Quality as the CSV renders it (`{}` on the f64), kept as text so a
    /// cached row reproduces the fresh row byte-for-byte.
    pub quality: String,
    /// L2 demand miss ratio, for console lines (fresh runs only).
    pub l2_miss_pct: Option<f64>,
    /// Whether this result came out of the store.
    pub cached: bool,
    /// Host nanos spent producing this result: simulation time for fresh
    /// runs, store fetch + decode time for cached ones.
    pub host_nanos: u64,
    /// The full outcome, for fresh runs under
    /// [`CampaignOptions::keep_outcomes`].
    pub outcome: Option<RunOutcome>,
}

impl JobOutput {
    /// A copy without the (potentially large) [`RunOutcome`], for event
    /// streaming.
    fn light(&self) -> JobOutput {
        JobOutput {
            outcome: None,
            ..self.clone()
        }
    }
}

/// A typed per-job lifecycle event, streamed in deterministic order (see
/// the module docs). `deduped` marks fan-out beyond a unit's primary
/// requester.
#[derive(Debug)]
pub enum CampaignEvent<'a> {
    /// The job's unit has begun executing (emitted with its terminal
    /// event, in unit order).
    Started {
        /// Campaign index.
        campaign: usize,
        /// Job index within the campaign's plan.
        job: usize,
    },
    /// The job was served from the result store.
    Cached {
        /// Campaign index.
        campaign: usize,
        /// Job index within the campaign's plan.
        job: usize,
        /// The served result.
        output: &'a JobOutput,
        /// True when this slot received a fan-out copy.
        deduped: bool,
    },
    /// The job simulated fresh and completed.
    Done {
        /// Campaign index.
        campaign: usize,
        /// Job index within the campaign's plan.
        job: usize,
        /// The fresh result.
        output: &'a JobOutput,
        /// True when this slot received a fan-out copy.
        deduped: bool,
    },
    /// The job's unit failed every attempt.
    Failed {
        /// Campaign index.
        campaign: usize,
        /// Job index within the campaign's plan.
        job: usize,
        /// Attempts made before giving up.
        attempts: u32,
        /// The final panic message.
        message: &'a str,
        /// True when this slot mirrors a shared unit's failure.
        deduped: bool,
    },
}

/// Receives [`CampaignEvent`]s as units complete.
pub type EventSink<'a> = &'a (dyn Fn(&CampaignEvent<'_>) + Sync);

/// Per-campaign results, in plan order.
#[derive(Debug)]
pub struct CampaignResult {
    /// One slot per planned job; `None` means the job's unit failed.
    pub results: Vec<Option<JobOutput>>,
    /// Structured failures, in plan order.
    pub failures: Vec<JobFailureStats>,
}

impl CampaignResult {
    /// Planned jobs served from the store.
    pub fn cached_served(&self) -> usize {
        self.results
            .iter()
            .filter(|r| r.as_ref().is_some_and(|r| r.cached))
            .count()
    }
}

/// Everything [`Engine::run`] produced.
#[derive(Debug)]
pub struct CampaignReport {
    /// Per-campaign results, parallel to [`CampaignSpec::campaigns`].
    pub campaigns: Vec<CampaignResult>,
    /// Planned jobs across all campaigns (before dedupe).
    pub total_jobs: usize,
    /// Distinct cache keys executed.
    pub distinct_keys: usize,
    /// Units simulated fresh this run.
    pub simulated: u64,
    /// Units served from the store.
    pub cached_units: u64,
    /// `--verify` mismatches found (each also repaired the store entry).
    pub verify_mismatches: usize,
    /// Unit indices that needed extra attempts.
    pub retried_jobs: Vec<usize>,
    /// Extra attempts across all units.
    pub total_retries: u64,
    /// Unit indices flagged by the watchdog.
    pub slow_jobs: Vec<usize>,
    /// Worker threads the pool actually used.
    pub workers: usize,
    /// Wall-clock nanos of the execution phase.
    pub exec_host_nanos: u64,
    /// One span per unit, labeled with the primary requester's job.
    pub spans: Vec<JobSpan>,
    /// The campaign's metrics registry (gauges `campaign.total_jobs`,
    /// `campaign.distinct_jobs`, `campaign.workers`; counters `job.*`,
    /// `campaign.simulated`, `campaign.deduped`, and `store.*`).
    pub registry: MetricsRegistry,
    /// Store op counts for this run's handle, when a store was configured.
    pub store_counts: Option<StoreCounts>,
}

impl CampaignReport {
    /// Execution wall time in seconds (the figure `tartan_run` prints).
    pub fn host_secs(&self) -> f64 {
        self.exec_host_nanos as f64 / 1e9
    }

    /// True when any campaign recorded a failure.
    pub fn any_failures(&self) -> bool {
        self.campaigns.iter().any(|c| !c.failures.is_empty())
    }
}

/// Disjoint wall-clock attribution (DESIGN.md §15): each `mark` closes
/// the segment since the previous mark, so the per-phase nanos sum to
/// `total_nanos()` exactly by construction.
#[derive(Debug)]
pub struct PhaseClock {
    t0: Instant,
    last: Instant,
    phases: Vec<CampaignPhase>,
}

impl PhaseClock {
    /// Starts the clock; the campaign epoch is now.
    pub fn start() -> PhaseClock {
        let now = Instant::now();
        PhaseClock {
            t0: now,
            last: now,
            phases: Vec::new(),
        }
    }

    /// Closes the segment since the previous mark under `name`.
    pub fn mark(&mut self, name: &str) {
        let now = Instant::now();
        self.phases.push(CampaignPhase {
            name: name.to_string(),
            host_nanos: now.duration_since(self.last).as_nanos() as u64,
        });
        self.last = now;
    }

    /// The campaign epoch (span timestamps are nanos since this instant).
    pub fn epoch(&self) -> Instant {
        self.t0
    }

    /// The phases marked so far.
    pub fn phases(&self) -> &[CampaignPhase] {
        &self.phases
    }

    /// Nanos from the epoch to the last mark.
    pub fn total_nanos(&self) -> u64 {
        self.last.duration_since(self.t0).as_nanos() as u64
    }
}

/// Store payload: one summary header line (the CSV numerics), then the
/// full `stats.json` record verbatim. See `SCHEMA.md` ("store entry").
fn render_payload(result: &JobOutput, config: &str) -> String {
    let mut header = String::from("{\"robot\":");
    push_str(&mut header, &result.robot);
    header.push_str(",\"config\":");
    push_str(&mut header, config);
    header.push_str(&format!(
        ",\"wall_cycles\":{},\"instructions\":{},\"l2_demand_misses\":{},\"quality\":\"{}\"}}",
        result.wall_cycles, result.instructions, result.l2_demand_misses, result.quality
    ));
    format!("{header}\n{}", result.record)
}

/// Decodes a store payload back into a [`JobOutput`], cross-checking the
/// robot/config against the job it is about to stand in for. `None` means
/// "treat as a miss" (the caller quarantines and re-runs).
fn parse_payload(payload: &str, want_robot: &str, want_config: &str) -> Option<JobOutput> {
    let (header, record) = payload.split_once('\n')?;
    let v = parse_json(header).ok()?;
    let get_str = |key: &str| match v.get(key) {
        Some(JsonValue::Str(s)) => Some(s.clone()),
        _ => None,
    };
    let get_u64 = |key: &str| match v.get(key) {
        Some(JsonValue::Num(raw)) => raw.parse::<u64>().ok(),
        _ => None,
    };
    let robot = get_str("robot")?;
    let config = get_str("config")?;
    if robot != want_robot || config != want_config {
        return None;
    }
    Some(JobOutput {
        record: record.to_string(),
        robot,
        wall_cycles: get_u64("wall_cycles")?,
        instructions: get_u64("instructions")?,
        l2_demand_misses: get_u64("l2_demand_misses")?,
        quality: get_str("quality")?,
        l2_miss_pct: None,
        cached: true,
        host_nanos: 0,
        outcome: None,
    })
}

/// Builds a fresh [`JobOutput`] from a completed simulation.
fn fresh_output(out: RunOutcome, config: &tartan_scenario::ConfigId, keep: bool) -> JobOutput {
    let mut fresh = JobOutput {
        record: out.to_run_stats(config).to_json_record(),
        robot: out.robot.to_string(),
        wall_cycles: out.wall_cycles,
        instructions: out.instructions,
        l2_demand_misses: out.stats.l2.demand_misses(),
        quality: format!("{}", out.quality),
        l2_miss_pct: Some(100.0 * out.stats.l2.miss_ratio()),
        cached: false,
        host_nanos: 0,
        outcome: None,
    };
    if keep {
        fresh.outcome = Some(out);
    }
    fresh
}

/// Comma-separated job indices from a test-hook env var.
fn env_index_set(name: &str) -> Vec<usize> {
    std::env::var(name)
        .ok()
        .map(|v| {
            v.split(',')
                .filter(|s| !s.is_empty())
                .filter_map(|s| s.trim().parse().ok())
                .collect()
        })
        .unwrap_or_default()
}

/// xorshift64* — the deterministic sampler behind `--verify N`.
fn xorshift64star(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545F491_4F6CDD1D)
}

/// A unit's terminal state in the event reorder buffer.
enum UnitTerminal {
    Output(Box<JobOutput>),
    Failure { attempts: u32, message: String },
}

/// The prefix-release reorder buffer: units stash their terminal state as
/// they finish, and events are emitted for the longest contiguous prefix
/// of finished units — so the emitted sequence depends only on the job
/// set, not on which worker finished first.
struct EventHub<'a> {
    sink: EventSink<'a>,
    units: &'a [ExecUnit],
    state: Mutex<HubState>,
}

struct HubState {
    slots: Vec<Option<UnitTerminal>>,
    released: usize,
}

impl<'a> EventHub<'a> {
    fn new(sink: EventSink<'a>, units: &'a [ExecUnit]) -> EventHub<'a> {
        EventHub {
            sink,
            units,
            state: Mutex::new(HubState {
                slots: (0..units.len()).map(|_| None).collect(),
                released: 0,
            }),
        }
    }

    fn stash(&self, unit: usize, terminal: UnitTerminal) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        state.slots[unit] = Some(terminal);
        self.release(&mut state);
    }

    fn release(&self, state: &mut HubState) {
        while state.released < state.slots.len() {
            let i = state.released;
            let Some(terminal) = &state.slots[i] else {
                return;
            };
            for (ri, r) in self.units[i].requesters.iter().enumerate() {
                let deduped = ri > 0;
                (self.sink)(&CampaignEvent::Started {
                    campaign: r.campaign,
                    job: r.job,
                });
                match terminal {
                    UnitTerminal::Output(output) if output.cached => {
                        (self.sink)(&CampaignEvent::Cached {
                            campaign: r.campaign,
                            job: r.job,
                            output,
                            deduped,
                        });
                    }
                    UnitTerminal::Output(output) => {
                        (self.sink)(&CampaignEvent::Done {
                            campaign: r.campaign,
                            job: r.job,
                            output,
                            deduped,
                        });
                    }
                    UnitTerminal::Failure { attempts, message } => {
                        (self.sink)(&CampaignEvent::Failed {
                            campaign: r.campaign,
                            job: r.job,
                            attempts: *attempts,
                            message,
                            deduped,
                        });
                    }
                }
            }
            state.released += 1;
        }
    }
}

/// The campaign tap (DESIGN.md §15): receives `tartan-par`'s per-job
/// lifecycle events and aggregates them into named metrics, one
/// [`JobSpan`] per unit for the profile/trace exports, and rate-limited
/// stderr heartbeats. Purely additive — it never touches job results or
/// the deterministic stats/CSV outputs.
struct ProgressObserver<'a> {
    /// Campaign epoch; span timestamps are host nanos since this instant.
    epoch: Instant,
    total: usize,
    /// `None` collects metrics and spans without printing anything.
    mode: Option<ProgressMode>,
    claimed: Counter,
    started: Counter,
    retried: Counter,
    slow: Counter,
    panicked: Counter,
    done: Counter,
    failed: Counter,
    /// Results served from the store; bumped by the job closure, read
    /// here for the heartbeat's cache-hit figure.
    cached: Counter,
    spans: Mutex<Vec<JobSpan>>,
    finished: AtomicUsize,
    last_beat_nanos: AtomicU64,
    /// Event reorder buffer; failures are stashed from `on_panicked`.
    hub: Option<&'a EventHub<'a>>,
}

impl<'a> ProgressObserver<'a> {
    fn new(
        registry: &MetricsRegistry,
        epoch: Instant,
        total: usize,
        mode: Option<ProgressMode>,
        hub: Option<&'a EventHub<'a>>,
    ) -> ProgressObserver<'a> {
        ProgressObserver {
            epoch,
            total,
            mode,
            claimed: registry.counter("job.claimed"),
            started: registry.counter("job.started"),
            retried: registry.counter("job.retried"),
            slow: registry.counter("job.slow"),
            panicked: registry.counter("job.panicked"),
            done: registry.counter("job.done"),
            failed: registry.counter("job.failed"),
            cached: registry.counter("job.cached"),
            spans: Mutex::new(
                (0..total)
                    .map(|index| JobSpan {
                        index,
                        ..JobSpan::default()
                    })
                    .collect(),
            ),
            finished: AtomicUsize::new(0),
            last_beat_nanos: AtomicU64::new(0),
            hub,
        }
    }

    fn nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    fn with_span(&self, index: usize, f: impl FnOnce(&mut JobSpan)) {
        let mut spans = self.spans.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(span) = spans.get_mut(index) {
            f(span);
        }
    }

    fn into_spans(self) -> Vec<JobSpan> {
        self.spans.into_inner().unwrap_or_else(|p| p.into_inner())
    }

    fn heartbeat(&self, done: usize) {
        let Some(mode) = self.mode else { return };
        let now = self.nanos();
        let last = self.last_beat_nanos.load(Ordering::Relaxed);
        // First and final completions always beat; in between, rate-limit
        // and let the compare-exchange loser yield to the thread that won.
        let boundary = done == 1 || done == self.total;
        if !boundary && now.saturating_sub(last) < HEARTBEAT_INTERVAL_NANOS {
            return;
        }
        if self
            .last_beat_nanos
            .compare_exchange(last, now, Ordering::SeqCst, Ordering::Relaxed)
            .is_err()
            && !boundary
        {
            return;
        }
        let beat = Heartbeat {
            done,
            total: self.total,
            elapsed_nanos: now,
            cache_hits: self.cached.get(),
            retries: self.retried.get(),
            slow: self.slow.get(),
            failures: self.failed.get(),
        };
        match mode {
            ProgressMode::Jsonl => eprintln!("{}", beat.to_json_line()),
            ProgressMode::Human => eprintln!("{}", beat.render_human()),
        }
    }
}

impl par::JobObserver for ProgressObserver<'_> {
    fn on_claimed(&self, index: usize, worker: usize) {
        self.claimed.inc();
        let now = self.nanos();
        self.with_span(index, |s| {
            s.worker = worker;
            s.start_nanos = now;
        });
    }

    fn on_started(&self, _index: usize, _attempt: u32) {
        self.started.inc();
    }

    fn on_retried(&self, _index: usize, _attempt: u32, _message: &str) {
        self.retried.inc();
    }

    fn on_slow(&self, index: usize, _elapsed: Duration) {
        self.slow.inc();
        self.with_span(index, |s| s.slow = true);
    }

    fn on_panicked(&self, index: usize, attempts: u32, message: &str) {
        self.panicked.inc();
        if let Some(hub) = self.hub {
            hub.stash(
                index,
                UnitTerminal::Failure {
                    attempts,
                    message: message.to_string(),
                },
            );
        }
    }

    fn on_done(&self, index: usize, worker: usize, _host_nanos: u64, attempts: u32, ok: bool) {
        self.done.inc();
        if !ok {
            self.failed.inc();
        }
        let now = self.nanos();
        self.with_span(index, |s| {
            s.worker = worker;
            s.end_nanos = now;
            s.attempts = attempts;
            s.ok = ok;
        });
        let done = self.finished.fetch_add(1, Ordering::SeqCst) + 1;
        self.heartbeat(done);
    }
}

/// The unified campaign engine: executes a [`CampaignSpec`] behind one
/// entry point. See the module docs for the pipeline.
#[derive(Debug)]
pub struct Engine {
    /// The batch this engine executes.
    pub spec: CampaignSpec,
}

impl Engine {
    /// Wraps a spec. Nothing runs until [`Engine::run`].
    pub fn new(spec: CampaignSpec) -> Engine {
        Engine { spec }
    }

    /// Executes the batch: keys and dedupes the jobs, runs each distinct
    /// unit once under `tartan-par` (store-served when resuming, with
    /// panic isolation and retries), streams events to `sink`, verifies a
    /// sample when asked, and fans results back to every requester.
    ///
    /// `clock` must have had its pre-execution phases marked already (the
    /// binaries mark `parse`); the engine marks `plan`, `simulate`, and
    /// `store-io`, leaving `export` to the caller.
    ///
    /// # Errors
    ///
    /// Only store-open failures; everything per-job is isolated and lands
    /// in the report's `failures`.
    pub fn run(
        &self,
        clock: &mut PhaseClock,
        sink: Option<EventSink<'_>>,
    ) -> Result<CampaignReport, StoreError> {
        let opts = &self.spec.options;
        let campaigns = &self.spec.campaigns;
        let tool = opts.tool;
        let jobset = JobSet::build(campaigns);
        let units = &jobset.units;

        let store = match &opts.store {
            Some(dir) => Some(ResultStore::open(dir)?),
            None => None,
        };

        let panic_at = env_index_set("TARTAN_RUN_PANIC_AT");
        let exit_after: Option<usize> = std::env::var("TARTAN_RUN_EXIT_AFTER")
            .ok()
            .and_then(|v| v.parse().ok());
        let completed = AtomicUsize::new(0);
        clock.mark("plan");

        let jobs = if opts.jobs == 0 {
            par::default_jobs()
        } else {
            opts.jobs
        };
        // Worker count the pool will actually use — also the trace's tracks.
        let workers = jobs.max(1).min(units.len().max(1));
        let registry = MetricsRegistry::new();
        registry
            .gauge("campaign.total_jobs")
            .set(jobset.total_jobs as u64);
        registry
            .gauge("campaign.distinct_jobs")
            .set(units.len() as u64);
        registry.gauge("campaign.workers").set(workers as u64);
        let simulated_ctr = registry.counter("campaign.simulated");
        let deduped_ctr = registry.counter("campaign.deduped");

        let hub = sink.map(|s| EventHub::new(s, units));
        let observer = ProgressObserver::new(
            &registry,
            clock.epoch(),
            units.len(),
            opts.progress,
            hub.as_ref(),
        );
        let cached_ctr = observer.cached.clone();

        let exec = Instant::now();
        let policy = par::RetryPolicy {
            attempts: opts.retries,
            backoff: Duration::from_millis(10),
            watchdog: opts.watchdog,
        };
        let report = par::try_par_map_indexed_observed(jobs, units.len(), &policy, &observer, |i| {
            let unit = &units[i];
            if panic_at.contains(&i) {
                panic!("injected test panic at job {i}");
            }
            let primary = unit.requesters[0];
            let campaign = &campaigns[primary.campaign];
            let job = &campaign.plan.jobs[primary.job];
            let config = job.config.as_str();
            let fetch = Instant::now();
            let result = store
                .as_ref()
                .filter(|_| opts.resume)
                .and_then(|s| match s.get(&unit.key) {
                    Ok(Some(payload)) => {
                        let parsed = parse_payload(&payload, job.robot.name(), config);
                        if parsed.is_none() {
                            // Hash-valid but semantically wrong for this job
                            // (stale key scheme, hand-edited entry): self-heal.
                            eprintln!(
                                "{tool}: store entry {} does not describe job {i}; quarantining",
                                &unit.key[..12]
                            );
                            let _ = s.quarantine(&unit.key);
                        }
                        parsed
                    }
                    Ok(None) => None,
                    Err(e) => {
                        eprintln!("{tool}: {e}; re-running job {i}");
                        None
                    }
                })
                .map(|mut cached| {
                    cached.host_nanos = fetch.elapsed().as_nanos() as u64;
                    cached
                });
            let result = result.unwrap_or_else(|| {
                let sim = Instant::now();
                let out = run_robot(job.robot, job.machine.clone(), job.software, &campaign.params);
                let host_nanos = sim.elapsed().as_nanos() as u64;
                let mut fresh = fresh_output(out, &job.config, opts.keep_outcomes);
                fresh.host_nanos = host_nanos;
                simulated_ctr.inc();
                if let Some(s) = &store {
                    // Commit immediately — a kill after this point loses
                    // nothing this job computed.
                    if let Err(e) = s.put(&unit.key, &render_payload(&fresh, config)) {
                        eprintln!("{tool}: {e}; result kept in memory only");
                    }
                }
                fresh
            });
            if result.cached {
                cached_ctr.inc();
            }
            if let Some(hub) = &hub {
                hub.stash(i, UnitTerminal::Output(Box::new(result.light())));
            }
            let done = completed.fetch_add(1, Ordering::SeqCst) + 1;
            if exit_after.is_some_and(|n| done >= n) {
                // Simulated kill for the resume tests: completed jobs are
                // already committed to the store; everything else is lost.
                std::process::exit(3);
            }
            result
        });
        let exec_host_nanos = exec.elapsed().as_nanos() as u64;
        clock.mark("simulate");
        let retried_jobs = report.retried();
        let total_retries = report.total_retries();
        let slow_jobs = report.slow.clone();

        // Fan each unit's terminal state out to every requester, in unit
        // (= first-occurrence) order.
        let mut out: Vec<CampaignResult> = campaigns
            .iter()
            .map(|c| CampaignResult {
                results: vec![None; c.plan.jobs.len()],
                failures: Vec::new(),
            })
            .collect();
        let mut cached_units = 0u64;
        for (u, res) in report.results.into_iter().enumerate() {
            let unit = &units[u];
            deduped_ctr.add(unit.requesters.len() as u64 - 1);
            match res {
                Ok(result) => {
                    if result.cached {
                        cached_units += 1;
                    }
                    let (last, head) = unit.requesters.split_last().expect("never empty");
                    for r in head {
                        out[r.campaign].results[r.job] = Some(result.clone());
                    }
                    out[last.campaign].results[last.job] = Some(result);
                }
                Err(f) => {
                    for r in &unit.requesters {
                        let job = &campaigns[r.campaign].plan.jobs[r.job];
                        eprintln!(
                            "{tool}: job {} ({} {} {:?}) failed after {} attempt(s): {}",
                            r.job,
                            job.robot.name(),
                            job.config.as_str(),
                            job.label,
                            f.attempts,
                            f.message
                        );
                        out[r.campaign].failures.push(JobFailureStats {
                            robot: job.robot.name().to_string(),
                            config: job.config.as_str().to_string(),
                            label: job.label.clone(),
                            group: campaigns[r.campaign].plan.groups[job.group].name.clone(),
                            attempts: f.attempts,
                            message: f.message.clone(),
                        });
                    }
                }
            }
        }

        // --verify N: per campaign, re-execute a seeded sample of the
        // cache-served jobs and demand byte-identical records. A mismatch
        // means the entry lied about its content (or determinism broke) —
        // quarantine, repair, fail.
        let mut verify_mismatches = 0usize;
        if opts.verify > 0 {
            for (ci, campaign) in campaigns.iter().enumerate() {
                let mut cached_idx: Vec<usize> = out[ci]
                    .results
                    .iter()
                    .enumerate()
                    .filter(|(_, r)| r.as_ref().is_some_and(|r| r.cached))
                    .map(|(i, _)| i)
                    .collect();
                let mut rng = campaign.params.seed ^ 0x9E37_79B9_7F4A_7C15;
                let sample = opts.verify.min(cached_idx.len());
                for _ in 0..sample {
                    let pick = (xorshift64star(&mut rng) % cached_idx.len() as u64) as usize;
                    let i = cached_idx.swap_remove(pick);
                    let job = &campaign.plan.jobs[i];
                    let outcome =
                        run_robot(job.robot, job.machine.clone(), job.software, &campaign.params);
                    let fresh = fresh_output(outcome, &job.config, opts.keep_outcomes);
                    let cached = out[ci].results[i].as_ref().expect("sampled index is Some");
                    if cached.record == fresh.record {
                        println!("verified job {i}: cached record matches re-execution");
                    } else {
                        verify_mismatches += 1;
                        eprintln!(
                            "{tool}: verify mismatch on job {i} ({} {}): cached record differs from re-execution; repairing entry",
                            job.robot.name(),
                            job.config.as_str()
                        );
                        let unit = jobset.unit_of[ci][i];
                        if let Some(s) = &store {
                            let _ = s.quarantine(&units[unit].key);
                            if let Err(e) = s.put(
                                &units[unit].key,
                                &render_payload(&fresh, job.config.as_str()),
                            ) {
                                eprintln!("{tool}: {e}");
                            }
                        }
                        // The repaired result replaces every requester of
                        // the unit, not just the sampled slot.
                        for r in &units[unit].requesters {
                            out[r.campaign].results[r.job] = Some(fresh.clone());
                        }
                    }
                }
                if sample < opts.verify {
                    println!(
                        "verify: only {sample} cached result(s) available (asked for {})",
                        opts.verify
                    );
                }
            }
        }
        clock.mark("store-io");

        let store_counts = store.as_ref().map(|s| {
            let c = s.counts();
            registry.counter("store.hit").add(c.hits);
            registry.counter("store.miss").add(c.misses);
            registry.counter("store.put").add(c.puts);
            registry.counter("store.quarantine").add(c.quarantines);
            c
        });

        let simulated = simulated_ctr.get();
        let mut spans = observer.into_spans();
        for (u, span) in spans.iter_mut().enumerate() {
            let primary = units[u].requesters[0];
            let job = &campaigns[primary.campaign].plan.jobs[primary.job];
            span.robot = job.robot.name().to_string();
            span.config = job.config.as_str().to_string();
            span.label = job.label.clone();
            span.cached = out[primary.campaign].results[primary.job]
                .as_ref()
                .is_some_and(|r| r.cached);
        }

        Ok(CampaignReport {
            campaigns: out,
            total_jobs: jobset.total_jobs,
            distinct_keys: units.len(),
            simulated,
            cached_units,
            verify_mismatches,
            retried_jobs,
            total_retries,
            slow_jobs,
            workers,
            exec_host_nanos,
            spans,
            registry,
            store_counts,
        })
    }
}

/// Quotes a CSV field only when it needs it (commas, quotes, newlines).
pub fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Renders one campaign's exports: the versioned `stats.json` document
/// (records spliced verbatim, so cached and fresh runs are byte-identical)
/// and the flat CSV. The caller validates and writes them.
pub fn render_exports(
    generator: &str,
    campaign: &Campaign,
    result: &CampaignResult,
) -> (String, String) {
    let mut records: Vec<String> = Vec::with_capacity(campaign.plan.jobs.len());
    let mut csv = String::from(
        "robot,config,label,group,wall_cycles,instructions,l2_demand_misses,quality\n",
    );
    for (job, slot) in campaign.plan.jobs.iter().zip(&result.results) {
        let Some(out) = slot else { continue };
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{}\n",
            csv_field(&out.robot),
            csv_field(job.config.as_str()),
            csv_field(&job.label),
            csv_field(&campaign.plan.groups[job.group].name),
            out.wall_cycles,
            out.instructions,
            out.l2_demand_misses,
            out.quality,
        ));
        records.push(out.record.clone());
    }
    (stats_export_json(generator, &records, &result.failures), csv)
}

/// Runs every planned job of `spec` through the engine at exactly
/// `params`, returning full outcomes in plan order — the contract the
/// figure harnesses and the legacy `run_campaign` relied on. Uses
/// [`par::default_jobs`] host threads.
///
/// # Panics
///
/// On an invalid spec or any job failure: the harnesses treat both as a
/// broken build, exactly as a propagated simulation panic did before.
pub fn run_plan(spec: &ScenarioSpec, params: &ExperimentParams) -> Vec<RunOutcome> {
    let plan = spec
        .expand()
        .unwrap_or_else(|e| panic!("checked-in scenario does not expand: {e}"));
    let campaign = Campaign {
        spec: spec.clone(),
        plan,
        params: *params,
    };
    let engine = Engine::new(CampaignSpec {
        campaigns: vec![campaign],
        options: CampaignOptions {
            keep_outcomes: true,
            ..CampaignOptions::default()
        },
    });
    let report = engine
        .run(&mut PhaseClock::start(), None)
        .unwrap_or_else(|e| panic!("{e}"));
    let [result] = <[CampaignResult; 1]>::try_from(report.campaigns)
        .unwrap_or_else(|_| unreachable!("one campaign in, one result out"));
    if let Some(failure) = result.failures.first() {
        panic!("{}", failure.message);
    }
    result
        .results
        .into_iter()
        .map(|slot| {
            slot.expect("no failures")
                .outcome
                .expect("keep_outcomes was set")
        })
        .collect()
}

/// Runs every planned job of a scenario at the probe scale and returns
/// one stats record per job, in plan order.
///
/// This is the coverage signal behind `tartan_gen`: the spec expands as
/// usual (so sweep axes, presets, FCP/fault plans all take effect), but
/// the workload runs at [`Scale::probe`] — with the spec's own `adjust`
/// list applied on top, so scale-bending scenarios still probe
/// differently from unbent ones — and for the spec's `steps` (default
/// 1). Milliseconds per job instead of hundreds, which is what makes
/// enumerating and shrinking hundreds of scenarios affordable. Probing
/// runs sequentially through the engine (the synthesizer parallelizes
/// across specs, not within one).
///
/// # Errors
///
/// Whatever [`ScenarioSpec::expand`] reports: unresolvable presets or
/// invalid machine geometry, with field-path context.
///
/// # Panics
///
/// If a probe run itself dies — the legacy behavior, where a simulation
/// panic propagated straight out of the probe loop.
pub fn probe_spec(spec: &ScenarioSpec) -> Result<Vec<RobotRunStats>, ScenarioError> {
    let plan = spec.expand()?;
    let mut scale = Scale::probe();
    spec.params.apply_adjusts(&mut scale);
    let params = ExperimentParams {
        scale,
        steps: spec.params.steps.unwrap_or(1) as usize,
        seed: spec.params.seed.unwrap_or(42),
    };
    let campaign = Campaign {
        spec: spec.clone(),
        plan,
        params,
    };
    let engine = Engine::new(CampaignSpec {
        campaigns: vec![campaign],
        options: CampaignOptions {
            jobs: 1,
            keep_outcomes: true,
            ..CampaignOptions::default()
        },
    });
    let report = engine
        .run(&mut PhaseClock::start(), None)
        .unwrap_or_else(|e| panic!("{e}"));
    let result = &report.campaigns[0];
    if let Some(failure) = result.failures.first() {
        panic!("{}", failure.message);
    }
    let campaign = &engine.spec.campaigns[0];
    Ok(result
        .results
        .iter()
        .zip(&campaign.plan.jobs)
        .map(|(slot, job)| {
            slot.as_ref()
                .expect("no failures")
                .outcome
                .as_ref()
                .expect("keep_outcomes was set")
                .to_run_stats(&job.config)
        })
        .collect())
}

/// Writes `json` to `path`, mapping the error into the store layer's
/// `path: reason` diagnostic shape so binaries can `die` uniformly.
pub fn write_file(path: &Path, contents: &str) -> Result<(), StoreError> {
    fs::write(path, contents).map_err(|e| StoreError {
        path: path.to_path_buf(),
        reason: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(name: &str, robots: &str) -> ScenarioSpec {
        let text = format!(
            r#"{{"schema_version": 1, "name": "{name}", "params": {{"steps": 1}},
                "groups": [{{"robots": [{robots}],
                    "axes": [{{"variants": [
                        {{"label": "base"}},
                        {{"label": "tartan",
                         "machine": {{"preset": "tartan"}},
                         "software": {{"preset": "approximable"}}}}
                    ]}}]}}]}}"#
        );
        ScenarioSpec::from_json(&text).expect("inline scenario parses")
    }

    #[test]
    fn jobset_dedupes_identical_keys_across_campaigns() {
        let a = Campaign::from_spec(spec("a", "\"DeliBot\"")).unwrap();
        let b = Campaign::from_spec(spec("b", "\"DeliBot\", \"MoveBot\"")).unwrap();
        let set = JobSet::build(&[a, b]);
        // a: DeliBot base/tartan. b: DeliBot base/tartan + MoveBot
        // base/tartan. Overlap: both DeliBot jobs.
        assert_eq!(set.total_jobs, 6);
        assert_eq!(set.distinct(), 4);
        // a's two jobs share units with b's first two.
        assert_eq!(set.unit_of[0], &[0, 1]);
        assert_eq!(set.unit_of[1][0], 0);
        assert_eq!(set.unit_of[1][1], 1);
        let shared = &set.units[0];
        assert_eq!(shared.requesters.len(), 2);
        assert_eq!(shared.requesters[0], JobRef { campaign: 0, job: 0 });
        assert_eq!(shared.requesters[1], JobRef { campaign: 1, job: 0 });
    }

    #[test]
    fn overlapping_batch_simulates_each_distinct_key_exactly_once() {
        let a = Campaign::from_spec(spec("a", "\"DeliBot\"")).unwrap();
        let b = Campaign::from_spec(spec("b", "\"DeliBot\", \"MoveBot\"")).unwrap();
        let solo_a = run_batch(vec![a.clone()]);
        let solo_b = run_batch(vec![b.clone()]);
        let batch = Engine::new(CampaignSpec {
            campaigns: vec![a, b],
            options: CampaignOptions {
                jobs: 2,
                ..CampaignOptions::default()
            },
        });
        let events: Mutex<Vec<String>> = Mutex::new(Vec::new());
        let sink = |ev: &CampaignEvent<'_>| {
            let line = match ev {
                CampaignEvent::Started { campaign, job } => format!("start {campaign}/{job}"),
                CampaignEvent::Done {
                    campaign,
                    job,
                    deduped,
                    ..
                } => format!("done {campaign}/{job} dedup={deduped}"),
                CampaignEvent::Cached { campaign, job, .. } => format!("cached {campaign}/{job}"),
                CampaignEvent::Failed { campaign, job, .. } => format!("failed {campaign}/{job}"),
            };
            events.lock().unwrap().push(line);
        };
        let report = batch.run(&mut PhaseClock::start(), Some(&sink)).unwrap();

        // 6 planned jobs, 4 distinct keys, 4 simulations, 2 fan-outs.
        assert_eq!(report.total_jobs, 6);
        assert_eq!(report.distinct_keys, 4);
        assert_eq!(report.simulated, 4);
        let snapshot = report.registry.snapshot();
        assert_eq!(snapshot.counter("campaign.simulated"), Some(4));
        assert_eq!(snapshot.counter("campaign.deduped"), Some(2));
        assert_eq!(snapshot.counter("job.done"), Some(4));

        // Both campaigns' exports match their standalone runs byte-for-byte.
        let batch_a = render_exports("t", &batch.spec.campaigns[0], &report.campaigns[0]);
        let batch_b = render_exports("t", &batch.spec.campaigns[1], &report.campaigns[1]);
        assert_eq!(batch_a, solo_a);
        assert_eq!(batch_b, solo_b);

        // The event stream covers every planned job once, in unit order:
        // the shared DeliBot units fan out to both campaigns back-to-back.
        let events = events.into_inner().unwrap();
        let starts: Vec<&String> = events.iter().filter(|e| e.starts_with("start")).collect();
        assert_eq!(starts.len(), 6);
        assert_eq!(
            events,
            [
                "start 0/0",
                "done 0/0 dedup=false",
                "start 1/0",
                "done 1/0 dedup=true",
                "start 0/1",
                "done 0/1 dedup=false",
                "start 1/1",
                "done 1/1 dedup=true",
                "start 1/2",
                "done 1/2 dedup=false",
                "start 1/3",
                "done 1/3 dedup=false",
            ]
        );
    }

    fn run_batch(campaigns: Vec<Campaign>) -> (String, String) {
        let engine = Engine::new(CampaignSpec {
            campaigns,
            options: CampaignOptions {
                jobs: 1,
                ..CampaignOptions::default()
            },
        });
        let report = engine.run(&mut PhaseClock::start(), None).unwrap();
        render_exports("t", &engine.spec.campaigns[0], &report.campaigns[0])
    }

    #[test]
    fn probe_spec_returns_one_record_per_planned_job() {
        let s = spec("probe", "\"DeliBot\"");
        let runs = probe_spec(&s).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].robot, "DeliBot");
    }
}
