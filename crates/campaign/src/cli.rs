//! Shared command-line conventions for the campaign binaries.
//!
//! `tartan_run`, `bench_tier1`, `tartan_gen`, and `bench_compare` used to
//! re-implement the same flag loop (and drift: four copies of `--jobs`,
//! three of `--out`, two of `--store`). This module owns the one loop and
//! the two error conventions every binary follows:
//!
//! * **Usage errors** ([`usage_error`], exit [`EXIT_USAGE`] = 2): a bad
//!   or missing flag prints `tool: message` followed by the usage string.
//! * **I/O and input errors** ([`die`], exit 1; [`input_error`], exit
//!   [`EXIT_USAGE`]): single-line `tool: path: reason` diagnostics in the
//!   scenario layer's style — greppable, no backtraces, no panics.
//!
//! Each binary declares which flags it accepts via a [`FlagSet`];
//! [`parse_args`] rejects everything else with the same `unrecognized
//! flag` message, so an unsupported flag fails identically everywhere.

use std::path::{Path, PathBuf};

use tartan_par as par;
use tartan_robots::Scale;

use crate::engine::ProgressMode;

/// Exit code for command-line usage errors, per the repo's convention
/// (0 success, 1 runtime failure, 2 usage).
pub const EXIT_USAGE: i32 = 2;

/// Prints `tool: msg` plus the usage string to stderr and exits with
/// [`EXIT_USAGE`].
pub fn usage_error(tool: &str, usage: &str, msg: &str) -> ! {
    eprintln!("{tool}: {msg}\n{usage}");
    std::process::exit(EXIT_USAGE);
}

/// Single-line I/O failure in the scenario layer's `path: reason` style;
/// exits 1.
pub fn die(tool: &str, path: &Path, reason: impl std::fmt::Display) -> ! {
    eprintln!("{tool}: {}: {reason}", path.display());
    std::process::exit(1);
}

/// Single-line bad-input diagnosis (`tool: path: missing or malformed
/// what`); exits [`EXIT_USAGE`] — the input is wrong, not the run.
pub fn input_error(tool: &str, path: &str, what: &str) -> ! {
    eprintln!("{tool}: {path}: missing or malformed {what}");
    std::process::exit(EXIT_USAGE);
}

/// Which flags a binary accepts. `--jobs N` is always parsed (every
/// campaign binary fans out); everything else is opt-in so an unsupported
/// flag gets the uniform `unrecognized flag` rejection.
#[derive(Debug, Clone, Copy)]
pub struct FlagSet {
    /// `--out DIR`.
    pub out: bool,
    /// Default output directory when `--out` is absent.
    pub default_out: &'static str,
    /// `--scale small|paper`.
    pub scale: bool,
    /// `--store DIR`.
    pub store: bool,
    /// `--resume` and `--verify N` (require `--store`; the binary
    /// enforces that pairing, since only it knows its usage string).
    pub resume_verify: bool,
    /// `--retries N` (≥ 1).
    pub retries: bool,
    /// `--watchdog MS` (≥ 1).
    pub watchdog: bool,
    /// `--progress[=human|jsonl]`.
    pub progress: bool,
    /// `--batch DIR` (expand to every `*.json` inside, sorted).
    pub batch: bool,
    /// `--help` / `-h`.
    pub help: bool,
    /// Positional (non-flag) arguments accepted; 0 rejects them all.
    pub max_files: usize,
    /// Extra single-value flags the binary parses itself (e.g.
    /// `tartan_gen`'s `--seed`); returned raw in [`ParsedArgs::extras`].
    pub extras: &'static [&'static str],
}

impl FlagSet {
    /// A minimal set: `--jobs` only, no positionals.
    pub fn jobs_only() -> FlagSet {
        FlagSet {
            out: false,
            default_out: "results",
            scale: false,
            store: false,
            resume_verify: false,
            retries: false,
            watchdog: false,
            progress: false,
            batch: false,
            help: false,
            max_files: 0,
            extras: &[],
        }
    }
}

/// The parsed command line. Fields for flags a binary did not enable
/// keep their defaults.
#[derive(Debug)]
pub struct ParsedArgs {
    /// Host worker threads (`--jobs`, resolved: absent/0 → all cores).
    pub jobs: usize,
    /// Positional arguments, in order.
    pub files: Vec<String>,
    /// `--out`, or the flag set's default.
    pub out_dir: PathBuf,
    /// `--scale` override.
    pub scale: Option<Scale>,
    /// `--store DIR`.
    pub store: Option<PathBuf>,
    /// `--resume`.
    pub resume: bool,
    /// `--verify N` (0 = off).
    pub verify: usize,
    /// `--retries N` (default 1).
    pub retries: u32,
    /// `--watchdog MS`.
    pub watchdog_ms: Option<u64>,
    /// `--progress` mode.
    pub progress: Option<ProgressMode>,
    /// `--batch DIR`.
    pub batch: Option<PathBuf>,
    /// `(flag, value)` pairs for the binary's extra flags, in order.
    pub extras: Vec<(String, String)>,
    /// `--help` / `-h` was given.
    pub help: bool,
}

/// Parses `args` against `flags`.
///
/// # Errors
///
/// A single-line message (no tool prefix — the caller's [`usage_error`]
/// adds it) for a missing value, an unparsable number, an out-of-range
/// count, an unrecognized flag, or too many positional arguments.
pub fn parse_args(args: &[String], flags: &FlagSet) -> Result<ParsedArgs, String> {
    let (jobs, rest) = par::parse_jobs_flag(args)?;
    let mut p = ParsedArgs {
        jobs,
        files: Vec::new(),
        out_dir: PathBuf::from(flags.default_out),
        scale: None,
        store: None,
        resume: false,
        verify: 0,
        retries: 1,
        watchdog_ms: None,
        progress: None,
        batch: None,
        extras: Vec::new(),
        help: false,
    };
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" if flags.out => match it.next() {
                Some(d) => p.out_dir = PathBuf::from(d),
                None => return Err("--out needs a directory".to_string()),
            },
            "--scale" if flags.scale => match it.next().map(String::as_str) {
                Some("small") => p.scale = Some(Scale::small()),
                Some("paper") => p.scale = Some(Scale::paper()),
                Some(other) => return Err(format!("unknown scale {other:?} (small|paper)")),
                None => return Err("--scale needs a preset (small|paper)".to_string()),
            },
            "--store" if flags.store => match it.next() {
                Some(d) => p.store = Some(PathBuf::from(d)),
                None => return Err("--store needs a directory".to_string()),
            },
            "--resume" if flags.resume_verify => p.resume = true,
            "--verify" if flags.resume_verify => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => p.verify = n,
                _ => return Err("--verify needs a sample count".to_string()),
            },
            "--retries" if flags.retries => match it.next().map(|v| v.parse::<u32>()) {
                Some(Ok(n)) if n >= 1 => p.retries = n,
                _ => return Err("--retries needs a count of at least 1".to_string()),
            },
            "--watchdog" if flags.watchdog => match it.next().map(|v| v.parse::<u64>()) {
                Some(Ok(ms)) if ms >= 1 => p.watchdog_ms = Some(ms),
                _ => return Err("--watchdog needs a timeout in milliseconds".to_string()),
            },
            "--progress" | "--progress=human" if flags.progress => {
                p.progress = Some(ProgressMode::Human)
            }
            "--progress=jsonl" if flags.progress => p.progress = Some(ProgressMode::Jsonl),
            other if flags.progress && other.starts_with("--progress=") => {
                return Err(format!("unknown progress mode {other:?} (human|jsonl)"))
            }
            "--batch" if flags.batch => match it.next() {
                Some(d) => p.batch = Some(PathBuf::from(d)),
                None => return Err("--batch needs a directory".to_string()),
            },
            "--help" | "-h" if flags.help => p.help = true,
            other if flags.extras.contains(&other) => match it.next() {
                Some(v) => p.extras.push((other.to_string(), v.clone())),
                None => return Err(format!("flag {other} needs a value")),
            },
            other if other.starts_with("--") => {
                return Err(format!("unrecognized flag {other}"))
            }
            other => {
                if p.files.len() >= flags.max_files {
                    return Err(if flags.max_files == 0 {
                        format!("unexpected argument {other:?}")
                    } else {
                        format!(
                            "at most {} scenario file(s) expected",
                            flags.max_files
                        )
                    });
                }
                p.files.push(other.to_string());
            }
        }
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn full() -> FlagSet {
        FlagSet {
            default_out: "results",
            out: true,
            scale: true,
            store: true,
            resume_verify: true,
            retries: true,
            watchdog: true,
            progress: true,
            batch: true,
            help: false,
            max_files: usize::MAX,
            extras: &[],
        }
    }

    #[test]
    fn usage_errors_exit_with_code_2() {
        assert_eq!(EXIT_USAGE, 2);
    }

    #[test]
    fn bad_flags_are_rejected_with_single_line_messages() {
        let f = full();
        for (args, want) in [
            (vec!["--jobs"], "flag --jobs needs a value"),
            (vec!["--jobs", "lots"], "bad --jobs"),
            (vec!["--out"], "--out needs a directory"),
            (vec!["--scale", "huge"], "unknown scale \"huge\" (small|paper)"),
            (vec!["--scale"], "--scale needs a preset (small|paper)"),
            (vec!["--store"], "--store needs a directory"),
            (vec!["--verify", "many"], "--verify needs a sample count"),
            (vec!["--retries", "0"], "--retries needs a count of at least 1"),
            (vec!["--watchdog", "0"], "--watchdog needs a timeout in milliseconds"),
            (vec!["--progress=loud"], "unknown progress mode \"--progress=loud\" (human|jsonl)"),
            (vec!["--batch"], "--batch needs a directory"),
            (vec!["--frobnicate"], "unrecognized flag --frobnicate"),
        ] {
            let err = parse_args(&argv(&args), &f).expect_err(&args.join(" "));
            assert!(
                err.contains(want),
                "args {args:?}: got {err:?}, want substring {want:?}"
            );
            assert!(!err.contains('\n'), "multi-line error for {args:?}: {err:?}");
        }
    }

    #[test]
    fn disabled_flags_fail_as_unrecognized() {
        let f = FlagSet::jobs_only();
        let err = parse_args(&argv(&["--store", "d"]), &f).unwrap_err();
        assert_eq!(err, "unrecognized flag --store");
        let err = parse_args(&argv(&["stray.json"]), &f).unwrap_err();
        assert_eq!(err, "unexpected argument \"stray.json\"");
    }

    #[test]
    fn full_flag_set_round_trips() {
        let f = full();
        let p = parse_args(
            &argv(&[
                "a.json", "--jobs", "3", "--out", "o", "--scale", "paper", "--store", "s",
                "--resume", "--verify", "2", "--retries", "4", "--watchdog", "50",
                "--progress=jsonl", "b.json",
            ]),
            &f,
        )
        .unwrap();
        assert_eq!(p.jobs, 3);
        assert_eq!(p.files, ["a.json", "b.json"]);
        assert_eq!(p.out_dir, PathBuf::from("o"));
        assert!(p.scale.is_some());
        assert_eq!(p.store, Some(PathBuf::from("s")));
        assert!(p.resume);
        assert_eq!(p.verify, 2);
        assert_eq!(p.retries, 4);
        assert_eq!(p.watchdog_ms, Some(50));
        assert_eq!(p.progress, Some(ProgressMode::Jsonl));
    }

    #[test]
    fn extras_are_returned_raw_in_order() {
        let f = FlagSet {
            extras: &["--seed", "--budget"],
            ..FlagSet::jobs_only()
        };
        let p = parse_args(&argv(&["--seed", "9", "--budget", "64"]), &f).unwrap();
        assert_eq!(
            p.extras,
            [
                ("--seed".to_string(), "9".to_string()),
                ("--budget".to_string(), "64".to_string())
            ]
        );
        let err = parse_args(&argv(&["--budget"]), &f).unwrap_err();
        assert_eq!(err, "flag --budget needs a value");
    }
}
