#![warn(missing_docs)]

//! The unified Tartan campaign engine.
//!
//! Every consumer of the simulator — the `tartan_run` CLI, the tier-1
//! bench, the coverage-guided scenario synthesizer, and the paper's
//! figure harnesses — executes the same shape of work: expand scenarios
//! into job plans, fan the jobs out across host cores, and export the
//! results. This crate owns that pipeline once, as a library
//! (DESIGN.md §18):
//!
//! * **Specs** ([`CampaignSpec`], [`Campaign`], [`CampaignOptions`]) —
//!   one or many expanded scenarios plus the execution options
//!   (`--jobs`/`--retries`/`--watchdog`/store/resume/verify/progress)
//!   they run under.
//! * **Keyed job sets** ([`JobSet`], [`ExecUnit`]) — every planned job's
//!   content address is computed up front, and jobs with identical keys
//!   — within one campaign or **across campaigns** — collapse into a
//!   single execution unit whose result fans back to every requesting
//!   `(campaign, job)` slot. Overlapping sweeps simulate each distinct
//!   key exactly once.
//! * **The engine** ([`Engine`]) — wraps `tartan-par`'s panic-isolated,
//!   retrying, watchdog-observed worker pool together with the
//!   `tartan-store` resume/verify machinery behind one `run` call.
//! * **Events and reports** ([`CampaignEvent`], [`CampaignReport`]) — a
//!   typed per-job started/cached/done/failed stream delivered in a
//!   deterministic order (it depends only on the job set, never on
//!   scheduling), plus the final per-campaign results, failures, spans,
//!   and metrics.
//! * **Shared CLI conventions** ([`cli`]) — the flag loop and
//!   single-line error style the campaign binaries share.
//! * **Figure harnesses** ([`experiments`]) — every experiment from the
//!   paper, now thin clients of the engine.
//!
//! Everything the engine exports is byte-deterministic for a fixed
//! scenario set: results land in plan order regardless of the worker
//! count, cached and fresh runs render identical records, and deduped
//! fan-out copies the exact bytes the single execution produced.

pub mod cli;
pub mod engine;
pub mod experiments;

pub use engine::{
    csv_field, probe_spec, render_exports, run_plan, write_file, Campaign, CampaignEvent,
    CampaignOptions, CampaignReport, CampaignResult, CampaignSpec, Engine, EventSink, ExecUnit,
    JobOutput, JobRef, JobSet, PhaseClock, ProgressMode,
};
