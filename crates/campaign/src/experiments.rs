//! Experiment drivers: one function per figure/table of the paper's
//! evaluation (§VIII), each returning typed rows plus a text formatter.
//!
//! Every driver is **data-driven**: the job matrix (robots, machine and
//! software configurations, sweep axes, bar labels, study-specific scale
//! adjustments) lives in a checked-in manifest under `scenarios/` (see
//! [`manifests`]), parsed and expanded by `tartan-scenario`. The driver
//! only keeps the row math — normalization baselines, geometric means,
//! derived error metrics — that turns outcomes into figure rows.
//!
//! | Paper result | Driver | Manifest |
//! |---|---|---|
//! | Fig. 1 execution-time breakdown        | [`fig1_breakdown`] | `fig1_breakdown.json` |
//! | Fig. 6 oriented vectorization          | [`fig6_ovec`] | `fig6_ovec.json` |
//! | Fig. 7 ray-casting w/ interpolation    | [`fig7_interpolation`] | `fig7_interpolation.json` |
//! | Table II neural workloads              | [`table2_networks`] | `table2_networks.json` |
//! | Fig. 8 neural acceleration             | [`fig8_npu`] | `fig8_npu.json` |
//! | Table III NPU configurations           | [`table3_npu_pes`] | `table3_npu_pes.json` |
//! | Fig. 9 NNS approaches                  | [`fig9_nns`] | `fig9_nns.json` |
//! | Fig. 10 prefetchers                    | [`fig10_prefetch`] | `fig10_prefetch.json` |
//! | Fig. 11 FCP parameters                 | [`fig11_fcp`] | `fig11_fcp.json` |
//! | Fig. 12 end-to-end speedup             | [`fig12_end_to_end`] | `fig12_end_to_end.json` |
//! | §III-A engineering upgrades            | [`baseline_upgrades`] | `baseline_upgrades.json` |
//! | Ablations (ANL region, OVEC latency)   | [`ablations`] | `ablations.json` |
//! | Table I application parameters         | [`format_table1`] | — |
//! | Table IV overheads                     | [`tartan_core::overhead::table4`] | — |

use std::fmt::Write as _;

use tartan_core::runner::gmean;
use tartan_core::ExperimentParams;
use tartan_robots::RobotKind;
use tartan_scenario::{Plan, ScenarioSpec};
use tartan_sim::NpuMode;

use crate::engine::run_plan;

/// The checked-in scenario manifests (embedded at compile time from
/// `scenarios/*.json`), one per data-driven harness. CI validates every
/// file in `scenarios/`, and `tartan_run` can execute any of them — or any
/// user-written scenario — stand-alone.
pub mod manifests {
    /// Fig. 1: execution-time breakdown.
    pub const FIG1_BREAKDOWN: &str = include_str!("../../../scenarios/fig1_breakdown.json");
    /// Fig. 6: oriented vectorization.
    pub const FIG6_OVEC: &str = include_str!("../../../scenarios/fig6_ovec.json");
    /// Fig. 7: ray-casting with interpolation.
    pub const FIG7_INTERPOLATION: &str =
        include_str!("../../../scenarios/fig7_interpolation.json");
    /// Table II: neural workloads.
    pub const TABLE2_NETWORKS: &str = include_str!("../../../scenarios/table2_networks.json");
    /// Fig. 8: neural acceleration arrangements.
    pub const FIG8_NPU: &str = include_str!("../../../scenarios/fig8_npu.json");
    /// Table III: NPU sizes.
    pub const TABLE3_NPU_PES: &str = include_str!("../../../scenarios/table3_npu_pes.json");
    /// Fig. 9: NNS approaches.
    pub const FIG9_NNS: &str = include_str!("../../../scenarios/fig9_nns.json");
    /// Fig. 10: prefetchers.
    pub const FIG10_PREFETCH: &str = include_str!("../../../scenarios/fig10_prefetch.json");
    /// Fig. 11: FCP parameter sweep.
    pub const FIG11_FCP: &str = include_str!("../../../scenarios/fig11_fcp.json");
    /// Fig. 12: end-to-end speedup.
    pub const FIG12_END_TO_END: &str =
        include_str!("../../../scenarios/fig12_end_to_end.json");
    /// §III-A engineering upgrades.
    pub const BASELINE_UPGRADES: &str =
        include_str!("../../../scenarios/baseline_upgrades.json");
    /// Design-choice ablations.
    pub const ABLATIONS: &str = include_str!("../../../scenarios/ablations.json");
    /// The tier-1 bench matrix (`bench_tier1` binary).
    pub const BENCH_TIER1: &str = include_str!("../../../scenarios/bench_tier1.json");
    /// A two-job smoke campaign (`tartan_run` CI exercise).
    pub const SMOKE: &str = include_str!("../../../scenarios/smoke.json");
    /// A fourteen-job campaign (the `--progress` observability exercise).
    pub const CAMPAIGN14: &str = include_str!("../../../scenarios/campaign14.json");

    /// Every embedded manifest, with its `scenarios/` file name.
    pub const ALL: [(&str, &str); 15] = [
        ("fig1_breakdown.json", FIG1_BREAKDOWN),
        ("fig6_ovec.json", FIG6_OVEC),
        ("fig7_interpolation.json", FIG7_INTERPOLATION),
        ("table2_networks.json", TABLE2_NETWORKS),
        ("fig8_npu.json", FIG8_NPU),
        ("table3_npu_pes.json", TABLE3_NPU_PES),
        ("fig9_nns.json", FIG9_NNS),
        ("fig10_prefetch.json", FIG10_PREFETCH),
        ("fig11_fcp.json", FIG11_FCP),
        ("fig12_end_to_end.json", FIG12_END_TO_END),
        ("baseline_upgrades.json", BASELINE_UPGRADES),
        ("ablations.json", ABLATIONS),
        ("bench_tier1.json", BENCH_TIER1),
        ("smoke.json", SMOKE),
        ("campaign14.json", CAMPAIGN14),
    ];
}

/// Parses and expands a checked-in manifest. Panics on an invalid
/// document: the embedded manifests are validated by unit tests, the
/// scenario regression suite, and CI, so a failure here means the build
/// itself is inconsistent.
fn checked(manifest: &str) -> (ScenarioSpec, Plan) {
    let spec = ScenarioSpec::from_json(manifest)
        .unwrap_or_else(|e| panic!("checked-in scenario is invalid: {e}"));
    let plan = spec
        .expand()
        .unwrap_or_else(|e| panic!("checked-in scenario does not expand: {e}"));
    (spec, plan)
}

// ---------------------------------------------------------------- Fig. 1

/// One Fig. 1 bar: a robot on Baseline or Tartan, with the bottleneck
/// share of execution.
#[derive(Debug, Clone)]
pub struct Fig1Row {
    /// Robot name.
    pub robot: &'static str,
    /// `"B"` (upgraded baseline) or `"T"` (Tartan).
    pub config: String,
    /// Fraction of attributed cycles in the bottleneck operation.
    pub bottleneck_fraction: f64,
    /// Wall time normalized to the robot's baseline run.
    pub normalized_time: f64,
}

/// Fig. 1: execution-time breakdown and bottleneck analysis.
pub fn fig1_breakdown(params: &ExperimentParams) -> Vec<Fig1Row> {
    let (spec, plan) = checked(manifests::FIG1_BREAKDOWN);
    let outcomes = run_plan(&spec, params);
    let mut rows = Vec::new();
    for (pair, jobs) in outcomes.chunks_exact(2).zip(plan.jobs.chunks_exact(2)) {
        let (base, tartan) = (&pair[0], &pair[1]);
        rows.push(Fig1Row {
            robot: base.robot,
            config: jobs[0].label.clone(),
            bottleneck_fraction: base.bottleneck_fraction(),
            normalized_time: 1.0,
        });
        rows.push(Fig1Row {
            robot: tartan.robot,
            config: jobs[1].label.clone(),
            bottleneck_fraction: tartan.bottleneck_fraction(),
            normalized_time: tartan.wall_cycles as f64 / base.wall_cycles as f64,
        });
    }
    rows
}

/// Renders Fig. 1.
pub fn format_fig1(rows: &[Fig1Row]) -> String {
    let mut out = String::from("Fig. 1: Execution time breakdown (bottleneck share)\n");
    let _ = writeln!(
        out,
        "{:<10} {:>4} {:>12} {:>12}",
        "Robot", "Cfg", "Bottleneck%", "Norm. time"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>4} {:>11.1}% {:>12.3}",
            r.robot,
            r.config,
            100.0 * r.bottleneck_fraction,
            r.normalized_time
        );
    }
    out
}

// ---------------------------------------------------------------- Fig. 6

/// One Fig. 6 bar: a vectorization method on a ray-casting/collision robot.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Robot name (DeliBot: ray-casting; CarriBot: collision).
    pub robot: &'static str,
    /// `"B"`, `"O"`, `"G"`, or `"R"`.
    pub method: String,
    /// Wall time normalized to the scalar baseline.
    pub normalized_time: f64,
    /// Dynamic instructions normalized to the scalar baseline.
    pub normalized_instructions: f64,
    /// Bottleneck share of the attributed cycles.
    pub bottleneck_fraction: f64,
}

/// Fig. 6: OVEC vs Gather vs RACOD on the oriented-access robots. Tartan
/// hardware hosts all methods so OVEC is available; the bars differ only
/// in the software's fetch variant (see the manifest).
pub fn fig6_ovec(params: &ExperimentParams) -> Vec<Fig6Row> {
    let (spec, plan) = checked(manifests::FIG6_OVEC);
    let outcomes = run_plan(&spec, params);
    let width = plan.groups[0].variants_per_robot;
    let mut rows = Vec::new();
    for (per_robot, jobs) in outcomes
        .chunks_exact(width)
        .zip(plan.jobs.chunks_exact(width))
    {
        let base_time = per_robot[0].wall_cycles as f64;
        let base_instr = per_robot[0].instructions as f64;
        for (out, job) in per_robot.iter().zip(jobs) {
            rows.push(Fig6Row {
                robot: out.robot,
                method: job.label.clone(),
                normalized_time: out.wall_cycles as f64 / base_time,
                normalized_instructions: out.instructions as f64 / base_instr,
                bottleneck_fraction: out.bottleneck_fraction(),
            });
        }
    }
    rows
}

/// Renders Fig. 6.
pub fn format_fig6(rows: &[Fig6Row]) -> String {
    let mut out = String::from("Fig. 6: Oriented access patterns and vectorization methods\n");
    let _ = writeln!(
        out,
        "{:<10} {:>3} {:>11} {:>12} {:>12}",
        "Robot", "M", "Norm. time", "Norm. instr", "Bottleneck%"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>3} {:>11.3} {:>12.3} {:>11.1}%",
            r.robot,
            r.method,
            r.normalized_time,
            r.normalized_instructions,
            100.0 * r.bottleneck_fraction
        );
    }
    out
}

// ---------------------------------------------------------------- Fig. 7

/// One Fig. 7 bar: ray-casting time with interpolation enabled.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// `"B"`, `"O"`, `"I"`, or `"O+I"`.
    pub config: String,
    /// Ray-casting phase time normalized to the baseline.
    pub normalized_raycast_time: f64,
}

/// Fig. 7: ray-casting with trilinear interpolation — OVEC vs Intel's
/// accelerator vs both.
pub fn fig7_interpolation(params: &ExperimentParams) -> Vec<Fig7Row> {
    let (spec, plan) = checked(manifests::FIG7_INTERPOLATION);
    let outcomes = run_plan(&spec, params);
    let base = outcomes[0].bottleneck_cycles as f64;
    plan.jobs
        .iter()
        .zip(&outcomes)
        .map(|(job, out)| Fig7Row {
            config: job.label.clone(),
            normalized_raycast_time: out.bottleneck_cycles as f64 / base,
        })
        .collect()
}

/// Renders Fig. 7.
pub fn format_fig7(rows: &[Fig7Row]) -> String {
    let mut out = String::from("Fig. 7: Ray-casting time with interpolation\n");
    for r in rows {
        let _ = writeln!(out, "{:<5} {:>8.3}", r.config, r.normalized_raycast_time);
    }
    out
}

// -------------------------------------------------------------- Table II

/// One Table II row: an approximated function and its observed error.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// `AXAR` / `TRAP` / `Native`.
    pub kind: &'static str,
    /// Robot.
    pub robot: &'static str,
    /// Approximated function.
    pub function: &'static str,
    /// MLP topology.
    pub topology: &'static str,
    /// Observed error (%, robot-specific metric; see the field docs of
    /// each robot's `quality`).
    pub error_percent: f64,
}

/// Table II: the three neural workloads and their quality loss. Job order
/// (from the manifest): FlyBot exact, FlyBot AXAR, HomeBot TRAP, PatrolBot
/// native.
pub fn table2_networks(params: &ExperimentParams) -> Vec<Table2Row> {
    let (spec, _plan) = checked(manifests::TABLE2_NETWORKS);
    let outcomes = run_plan(&spec, params);
    let (fly_exact, fly_axar, home_trap, patrol) =
        (&outcomes[0], &outcomes[1], &outcomes[2], &outcomes[3]);
    // FlyBot exact vs AXAR: path-cost inflation (paper: 0%). HomeBot:
    // geometric-mean transform error of TRAP (paper: 6.8%). PatrolBot:
    // classification error of the PCA+MLP port (paper: 1.3%).
    let fly_err = ((fly_axar.quality / fly_exact.quality.max(1e-9)) - 1.0).max(0.0) * 100.0;
    let home_err = home_trap.quality * 100.0;
    let patrol_err = patrol.quality * 100.0;

    vec![
        Table2Row {
            kind: "AXAR",
            robot: "FlyBot",
            function: "Heuristic Cost",
            topology: "6/16/16/1",
            error_percent: fly_err,
        },
        Table2Row {
            kind: "TRAP",
            robot: "HomeBot",
            function: "T Prediction",
            topology: "192/32/32/6",
            error_percent: home_err,
        },
        Table2Row {
            kind: "Native",
            robot: "PatrolBot",
            function: "Classification",
            topology: "50/1024/512/1",
            error_percent: patrol_err,
        },
    ]
}

/// Renders Table II.
pub fn format_table2(rows: &[Table2Row]) -> String {
    let mut out = String::from("Table II: Neural network workloads\n");
    let _ = writeln!(
        out,
        "{:<7} {:<10} {:<16} {:<14} {:>7}",
        "Type", "Robot", "Function", "Topology", "Error"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<7} {:<10} {:<16} {:<14} {:>6.1}%",
            r.kind, r.robot, r.function, r.topology, r.error_percent
        );
    }
    out
}

// ---------------------------------------------------------------- Fig. 8

/// One Fig. 8 bar: a neural-execution arrangement on one robot.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Robot.
    pub robot: &'static str,
    /// `"B"` baseline, `"H"` hardware NPU, `"S"` software, `"C"`
    /// co-processor.
    pub config: String,
    /// Wall time normalized to B.
    pub normalized_time: f64,
    /// Instructions normalized to B.
    pub normalized_instructions: f64,
    /// Target-function share of attributed cycles.
    pub target_fraction: f64,
    /// Communication share of attributed cycles.
    pub comm_fraction: f64,
}

/// Fig. 8: neural acceleration of robotics — baseline vs integrated NPU vs
/// software execution vs co-processor.
pub fn fig8_npu(params: &ExperimentParams) -> Vec<Fig8Row> {
    let (spec, plan) = checked(manifests::FIG8_NPU);
    let outcomes = run_plan(&spec, params);
    let width = plan.groups[0].variants_per_robot;
    let mut rows = Vec::new();
    for (per_robot, jobs) in outcomes
        .chunks_exact(width)
        .zip(plan.jobs.chunks_exact(width))
    {
        let base_time = per_robot[0].wall_cycles as f64;
        let base_instr = per_robot[0].instructions as f64;
        for (out, job) in per_robot.iter().zip(jobs) {
            let total = out.phase_total().max(1) as f64;
            rows.push(Fig8Row {
                robot: out.robot,
                config: job.label.clone(),
                normalized_time: out.wall_cycles as f64 / base_time,
                normalized_instructions: out.instructions as f64 / base_instr,
                target_fraction: out.bottleneck_cycles as f64 / total,
                comm_fraction: out.comm_cycles as f64 / total,
            });
        }
    }
    rows
}

/// Renders Fig. 8.
pub fn format_fig8(rows: &[Fig8Row]) -> String {
    let mut out = String::from("Fig. 8: Neural acceleration arrangements\n");
    let _ = writeln!(
        out,
        "{:<10} {:>3} {:>11} {:>12} {:>9} {:>7}",
        "Robot", "C", "Norm. time", "Norm. instr", "Target%", "Comm%"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>3} {:>11.3} {:>12.3} {:>8.1}% {:>6.1}%",
            r.robot,
            r.config,
            r.normalized_time,
            r.normalized_instructions,
            100.0 * r.target_fraction,
            100.0 * r.comm_fraction
        );
    }
    out
}

// -------------------------------------------------------------- Table III

/// One Table III row: an NPU size.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Processing elements.
    pub pes: u32,
    /// SRAM in KB.
    pub memory_kb: f64,
    /// Geometric-mean speedup over the no-NPU baseline across the three
    /// neural robots.
    pub gmean_speedup: f64,
    /// Area in µm².
    pub area_um2: f64,
}

/// Table III: NPU configurations (2/4/8 PEs). The manifest's first group
/// runs the three no-NPU baselines; the second sweeps the PE counts with
/// robots innermost, so each sweep chunk lines up with the baselines. The
/// PE count of each row is read back from the planned job's machine
/// config — the single source of truth.
pub fn table3_npu_pes(params: &ExperimentParams) -> Vec<Table3Row> {
    let (spec, plan) = checked(manifests::TABLE3_NPU_PES);
    let outcomes = run_plan(&spec, params);
    let robots = plan.groups[0].len;
    let (baselines, sweep) = outcomes.split_at(robots);
    let sweep_jobs = plan.group_jobs(1);
    let mut rows = Vec::new();
    for (jobs, per_pe) in sweep_jobs
        .chunks_exact(robots)
        .zip(sweep.chunks_exact(robots))
    {
        let pes = match jobs[0].machine.npu {
            NpuMode::Integrated { pes } => pes,
            _ => panic!("Table III sweep jobs must use an integrated NPU"),
        };
        let speedups = baselines
            .iter()
            .zip(per_pe)
            .map(|(base, out)| base.wall_cycles as f64 / out.wall_cycles as f64);
        let model = tartan_npu::NpuAreaModel::new(pes);
        rows.push(Table3Row {
            pes,
            memory_kb: model.sram_kilobytes(),
            gmean_speedup: gmean(speedups),
            area_um2: model.area_um2(),
        });
    }
    rows
}

/// Renders Table III.
pub fn format_table3(rows: &[Table3Row]) -> String {
    let mut out = String::from("Table III: NPU configurations\n");
    let _ = writeln!(
        out,
        "{:>4} {:>10} {:>14} {:>12}",
        "PEs", "Mem [KB]", "GMean speedup", "Area [um^2]"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:>4} {:>10.1} {:>13.2}x {:>12.0}",
            r.pes, r.memory_kb, r.gmean_speedup, r.area_um2
        );
    }
    out
}

// ---------------------------------------------------------------- Fig. 9

/// One Fig. 9 bar: an NNS approach (with or without ANL).
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Robot (MoveBot or HomeBot).
    pub robot: &'static str,
    /// `"B"`, `"B+"`, `"V"`, `"V+"`, `"F"`, `"F+"`, `"K"`, `"K+"`.
    pub config: String,
    /// Wall time normalized to brute force without ANL.
    pub normalized_time: f64,
    /// L2 demand misses normalized to brute force without ANL.
    pub normalized_l2_misses: f64,
}

/// Fig. 9: NNS with different approaches; `+` adds the ANL prefetcher.
///
/// The NNS study stresses the memory system with a larger cloud than the
/// end-to-end runs (the paper tunes each study's inputs, §VIII-C); the
/// sizing lives in the manifest's `params.adjust` and is applied on top of
/// the caller's scale.
pub fn fig9_nns(params: &ExperimentParams) -> Vec<Fig9Row> {
    let (spec, plan) = checked(manifests::FIG9_NNS);
    let mut params = *params;
    spec.params.apply_adjusts(&mut params.scale);
    let outcomes = run_plan(&spec, &params);
    let per_robot = plan.groups[0].variants_per_robot;
    let mut rows = Vec::new();
    for (chunk, jobs) in outcomes
        .chunks_exact(per_robot)
        .zip(plan.jobs.chunks_exact(per_robot))
    {
        // The first job per robot is brute force without ANL — the bar
        // everything else is normalized to.
        let base_time = chunk[0].wall_cycles as f64;
        let base_misses = (chunk[0].stats.l2.demand_misses() as f64).max(1.0);
        for (out, job) in chunk.iter().zip(jobs) {
            rows.push(Fig9Row {
                robot: out.robot,
                config: job.label.clone(),
                normalized_time: out.wall_cycles as f64 / base_time,
                normalized_l2_misses: out.stats.l2.demand_misses() as f64 / base_misses,
            });
        }
    }
    rows
}

/// Renders Fig. 9.
pub fn format_fig9(rows: &[Fig9Row]) -> String {
    let mut out = String::from("Fig. 9: NNS with different approaches (+ = ANL)\n");
    let _ = writeln!(
        out,
        "{:<10} {:>4} {:>11} {:>14}",
        "Robot", "Cfg", "Norm. time", "Norm. L2 miss"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>4} {:>11.3} {:>14.3}",
            r.robot, r.config, r.normalized_time, r.normalized_l2_misses
        );
    }
    out
}

// ---------------------------------------------------------------- Fig. 10

/// One Fig. 10 bar: a prefetcher on one robot.
#[derive(Debug, Clone)]
pub struct Fig10Row {
    /// Robot name or `"GMean"`.
    pub robot: &'static str,
    /// `"No"`, `"ANL"`, `"NL"`, `"Bi"`.
    pub prefetcher: String,
    /// Wall time normalized to no prefetching.
    pub normalized_time: f64,
    /// L2 miss coverage.
    pub coverage: f64,
    /// Prefetch accuracy.
    pub accuracy: f64,
}

/// Fig. 10: prefetching approaches across all six robots.
///
/// ANL is a *bucket-revisit* prefetcher (§VI-D), so this study runs the
/// Tartan-tuned software (VLN's contiguous buckets) over clouds sized past
/// the private L2 — the regime whose sparse/dense heterogeneity ANL was
/// designed for. Both the software tier and the cloud sizing live in the
/// manifest.
pub fn fig10_prefetch(params: &ExperimentParams) -> Vec<Fig10Row> {
    let (spec, plan) = checked(manifests::FIG10_PREFETCH);
    let mut params = *params;
    spec.params.apply_adjusts(&mut params.scale);
    let outcomes = run_plan(&spec, &params);
    let width = plan.groups[0].variants_per_robot;
    let mut rows = Vec::new();
    let mut per_pf_ratios: Vec<Vec<f64>> = vec![Vec::new(); width];
    for (chunk, jobs) in outcomes
        .chunks_exact(width)
        .zip(plan.jobs.chunks_exact(width))
    {
        let base_time = chunk[0].wall_cycles as f64;
        for (i, (out, job)) in chunk.iter().zip(jobs).enumerate() {
            let ratio = out.wall_cycles as f64 / base_time;
            per_pf_ratios[i].push(ratio);
            rows.push(Fig10Row {
                robot: out.robot,
                prefetcher: job.label.clone(),
                normalized_time: ratio,
                coverage: out.stats.l2.coverage(),
                accuracy: out.stats.l2.accuracy(),
            });
        }
    }
    for (job, ratios) in plan.jobs[..width].iter().zip(&per_pf_ratios) {
        rows.push(Fig10Row {
            robot: "GMean",
            prefetcher: job.label.clone(),
            normalized_time: gmean(ratios.iter().copied()),
            coverage: 0.0,
            accuracy: 0.0,
        });
    }
    rows
}

/// Renders Fig. 10.
pub fn format_fig10(rows: &[Fig10Row]) -> String {
    let mut out = String::from("Fig. 10: Prefetching approaches\n");
    let _ = writeln!(
        out,
        "{:<10} {:>5} {:>11} {:>9} {:>9}",
        "Robot", "PF", "Norm. time", "Coverage", "Accuracy"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>5} {:>11.3} {:>8.1}% {:>8.1}%",
            r.robot,
            r.prefetcher,
            r.normalized_time,
            100.0 * r.coverage,
            100.0 * r.accuracy
        );
    }
    out
}

// ---------------------------------------------------------------- Fig. 11

/// One Fig. 11 bar: an FCP parameterization on one robot.
#[derive(Debug, Clone)]
pub struct Fig11Row {
    /// Robot.
    pub robot: &'static str,
    /// Configuration label, e.g. `"1KB-2b x^2"`.
    pub config: String,
    /// Wall time normalized to no FCP.
    pub normalized_time: f64,
    /// L2 misses normalized to no FCP.
    pub normalized_l2_misses: f64,
}

/// Fig. 11: FCP with different region sizes, XOR widths, and manipulation
/// functions. Per robot: one no-FCP baseline (the manifest's prelude),
/// then the 3 × 2 × 2 parameter sweep.
pub fn fig11_fcp(params: &ExperimentParams) -> Vec<Fig11Row> {
    let (spec, plan) = checked(manifests::FIG11_FCP);
    let outcomes = run_plan(&spec, params);
    let per_robot = plan.groups[0].variants_per_robot;
    let mut rows = Vec::new();
    for (chunk, jobs) in outcomes
        .chunks_exact(per_robot)
        .zip(plan.jobs.chunks_exact(per_robot))
    {
        let base = &chunk[0];
        let base_time = base.wall_cycles as f64;
        let base_misses = base.stats.l2.demand_misses().max(1) as f64;
        for (out, job) in chunk.iter().zip(jobs).skip(1) {
            rows.push(Fig11Row {
                robot: out.robot,
                config: job.label.clone(),
                normalized_time: out.wall_cycles as f64 / base_time,
                normalized_l2_misses: out.stats.l2.demand_misses() as f64 / base_misses,
            });
        }
    }
    rows
}

/// Renders Fig. 11.
pub fn format_fig11(rows: &[Fig11Row]) -> String {
    let mut out = String::from("Fig. 11: FCP parameter sweep\n");
    let _ = writeln!(
        out,
        "{:<10} {:<12} {:>11} {:>14}",
        "Robot", "Config", "Norm. time", "Norm. L2 miss"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:<12} {:>11.3} {:>14.3}",
            r.robot, r.config, r.normalized_time, r.normalized_l2_misses
        );
    }
    out
}

// ---------------------------------------------------------------- Fig. 12

/// One Fig. 12 bar: a robot's end-to-end speedup on Tartan for one
/// software tier.
#[derive(Debug, Clone)]
pub struct Fig12Row {
    /// Robot name or `"GMean"`.
    pub robot: &'static str,
    /// `"legacy"`, `"optimized"`, or `"approximable"`.
    pub software: String,
    /// Speedup of Tartan over the upgraded baseline running legacy
    /// software.
    pub speedup: f64,
}

/// Fig. 12: end-to-end Tartan speedup for the three software tiers
/// (paper: 1.2× legacy, 1.61× optimized, 2.11× approximable). Per robot:
/// the upgraded-baseline reference (prelude), then Tartan per tier.
pub fn fig12_end_to_end(params: &ExperimentParams) -> Vec<Fig12Row> {
    let (spec, plan) = checked(manifests::FIG12_END_TO_END);
    let outcomes = run_plan(&spec, params);
    let per_robot = plan.groups[0].variants_per_robot;
    let tiers = per_robot - 1;
    let mut rows = Vec::new();
    let mut per_tier: Vec<Vec<f64>> = vec![Vec::new(); tiers];
    for (chunk, jobs) in outcomes
        .chunks_exact(per_robot)
        .zip(plan.jobs.chunks_exact(per_robot))
    {
        let base = &chunk[0];
        for (i, (out, job)) in chunk[1..].iter().zip(&jobs[1..]).enumerate() {
            let speedup = base.wall_cycles as f64 / out.wall_cycles as f64;
            per_tier[i].push(speedup);
            rows.push(Fig12Row {
                robot: out.robot,
                software: job.label.clone(),
                speedup,
            });
        }
    }
    for (job, speedups) in plan.jobs[1..per_robot].iter().zip(&per_tier) {
        rows.push(Fig12Row {
            robot: "GMean",
            software: job.label.clone(),
            speedup: gmean(speedups.iter().copied()),
        });
    }
    rows
}

/// Renders Fig. 12.
pub fn format_fig12(rows: &[Fig12Row]) -> String {
    let mut out = String::from("Fig. 12: End-to-end Tartan speedup\n");
    let _ = writeln!(out, "{:<10} {:<14} {:>8}", "Robot", "Software", "Speedup");
    for r in rows {
        let _ = writeln!(out, "{:<10} {:<14} {:>7.2}x", r.robot, r.software, r.speedup);
    }
    out
}

// ------------------------------------------------- §III-A upgrades

/// Results of the engineering-upgrade study (§III-A).
#[derive(Debug, Clone)]
pub struct UpgradeRow {
    /// Robot.
    pub robot: &'static str,
    /// DRAM traffic (UDM) with 64 B lines / with 32 B lines.
    pub udm_reduction: f64,
    /// L3 traffic without / with write-through regions.
    pub l3_traffic_reduction: f64,
    /// Wall-time ratio legacy-baseline / upgraded-baseline.
    pub speedup: f64,
}

/// §III-A: 32 B cachelines cut unnecessary data movement; write-through
/// producer/consumer regions cut L3 traffic.
pub fn baseline_upgrades(params: &ExperimentParams) -> Vec<UpgradeRow> {
    let (spec, _plan) = checked(manifests::BASELINE_UPGRADES);
    let outcomes = run_plan(&spec, params);
    let mut rows = Vec::new();
    for pair in outcomes.chunks_exact(2) {
        let (legacy, upgraded) = (&pair[0], &pair[1]);
        rows.push(UpgradeRow {
            robot: legacy.robot,
            udm_reduction: legacy.stats.dram_bytes as f64 / upgraded.stats.dram_bytes.max(1) as f64,
            l3_traffic_reduction: legacy.stats.l3_traffic_bytes as f64
                / upgraded.stats.l3_traffic_bytes.max(1) as f64,
            speedup: legacy.wall_cycles as f64 / upgraded.wall_cycles as f64,
        });
    }
    rows
}

/// Renders the upgrade study.
pub fn format_upgrades(rows: &[UpgradeRow]) -> String {
    let mut out = String::from("Engineering upgrades (Sec. III-A)\n");
    let _ = writeln!(
        out,
        "{:<10} {:>8} {:>11} {:>8}",
        "Robot", "UDM red.", "L3-traffic", "Speedup"
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{:<10} {:>7.2}x {:>10.2}x {:>7.2}x",
            r.robot, r.udm_reduction, r.l3_traffic_reduction, r.speedup
        );
    }
    out
}

// ------------------------------------------------------------- Ablations

/// One ablation row: a single design knob swept around Tartan's default.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// The knob and its value, e.g. `"ANL region 4096B"`.
    pub config: String,
    /// Wall time normalized to Tartan's default configuration.
    pub normalized_time: f64,
    /// Prefetch accuracy (for the ANL sweep; 0 otherwise).
    pub accuracy: f64,
}

/// Design-choice ablations the paper discusses but does not plot:
/// ANL's region size (§VI-D argues 1 KB minimizes overprediction) and
/// OVEC's address-generation latency (§VIII-A estimates 5 cycles). Both
/// sweeps run DeliBot on Tartan with the optimized software tier; the
/// second variant of each group is Tartan's default and the normalization
/// baseline.
pub fn ablations(params: &ExperimentParams) -> Vec<AblationRow> {
    let (spec, plan) = checked(manifests::ABLATIONS);
    let outcomes = run_plan(&spec, params);
    let mut rows = Vec::new();
    for (gi, group) in plan.groups.iter().enumerate() {
        let chunk = &outcomes[group.first..group.first + group.len];
        let jobs = plan.group_jobs(gi);
        let base_time = chunk[1].wall_cycles as f64; // the default setting
        let is_anl = gi == 0;
        for (out, job) in chunk.iter().zip(jobs) {
            rows.push(AblationRow {
                config: job.label.clone(),
                normalized_time: out.wall_cycles as f64 / base_time,
                accuracy: if is_anl { out.stats.l2.accuracy() } else { 0.0 },
            });
        }
    }
    rows
}

/// Renders the ablation study.
pub fn format_ablations(rows: &[AblationRow]) -> String {
    let mut out = String::from("Ablations (design-choice sensitivity)\n");
    for r in rows {
        let _ = writeln!(
            out,
            "{:<22} {:>8.3} (accuracy {:>5.1}%)",
            r.config,
            r.normalized_time,
            100.0 * r.accuracy
        );
    }
    out
}

// --------------------------------------------------------------- Table I

/// Renders Table I (application parameters).
pub fn format_table1() -> String {
    let mut out = String::from("Table I: Application parameters\n");
    let _ = writeln!(
        out,
        "{:<10} {:<14} {:<26} {:<14}",
        "Robot", "Resembling", "Major Algorithms", "Pipeline"
    );
    for kind in RobotKind::all() {
        let _ = writeln!(
            out,
            "{:<10} {:<14} {:<26} {:<14}",
            kind.name(),
            kind.resembling(),
            kind.algorithms(),
            kind.pipeline_threads()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tartan_core::run_robot;
    use tartan_robots::SoftwareConfig;
    use tartan_sim::MachineConfig;

    #[test]
    fn every_checked_in_manifest_parses_and_expands() {
        for (file, manifest) in manifests::ALL {
            let spec = ScenarioSpec::from_json(manifest)
                .unwrap_or_else(|e| panic!("{file}: {e}"));
            let plan = spec.expand().unwrap_or_else(|e| panic!("{file}: {e}"));
            assert!(!plan.jobs.is_empty(), "{file}: empty plan");
        }
    }

    #[test]
    fn fig6_shapes_hold_at_quick_scale() {
        let rows = fig6_ovec(&ExperimentParams::quick());
        assert_eq!(rows.len(), 8);
        let get = |robot: &str, m: &str| {
            rows.iter()
                .find(|r| r.robot == robot && r.method == m)
                .expect("present")
                .clone()
        };
        for robot in ["DeliBot", "CarriBot"] {
            let b = get(robot, "B");
            let o = get(robot, "O");
            let g = get(robot, "G");
            let r = get(robot, "R");
            assert!(o.normalized_time < b.normalized_time, "{robot}: OVEC wins");
            // RACOD always beats the scalar baseline; OVEC may exceed it
            // outright (see EXPERIMENTS.md, Fig. 6).
            assert!(r.normalized_time < b.normalized_time, "{robot}: RACOD wins");
            assert!(
                g.normalized_instructions > 1.0,
                "{robot}: gather raises instructions"
            );
            assert!(
                o.normalized_instructions < 0.75,
                "{robot}: OVEC cuts instructions, got {}",
                o.normalized_instructions
            );
        }
        assert!(!format_fig6(&rows).is_empty());
    }

    #[test]
    fn table1_lists_all_robots() {
        let t = format_table1();
        for name in ["DeliBot", "PatrolBot", "MoveBot", "HomeBot", "FlyBot", "CarriBot"] {
            assert!(t.contains(name));
        }
    }

    #[test]
    fn fig12_single_robot_sanity() {
        // Full Fig. 12 runs in the integration suite; here just check the
        // driver plumbing with one robot by calling run_robot directly.
        let params = ExperimentParams::quick();
        let base = run_robot(
            RobotKind::DeliBot,
            MachineConfig::upgraded_baseline(),
            SoftwareConfig::legacy(),
            &params,
        );
        let tartan = run_robot(
            RobotKind::DeliBot,
            MachineConfig::tartan(),
            SoftwareConfig::approximable(),
            &params,
        );
        assert!(
            tartan.wall_cycles < base.wall_cycles,
            "Tartan must beat the baseline: {} vs {}",
            tartan.wall_cycles,
            base.wall_cycles
        );
    }
}
