//! HomeBot — a vacuum robot (Roomba i7+-like): point-based fusion for 3-D
//! reconstruction whose transform (T) prediction takes 56% of baseline time
//! (§III-B), plus a behavior tree for decisions. Pipeline threads:
//! 8 → 1 → 1 (Table I). TRAP: the NPU's 192/32/32/6 MLP replaces the whole
//! ICP loop (§VIII-B).

use tartan_kernels::bt::{BehaviorTree, BtSpec, BtStatus};
use tartan_kernels::icp::{
    estimate_from_matches, icp_estimate, match_range, residual_sample, supervised_estimate,
    trap_inputs, Transform,
};
use tartan_nn::{Loss, Mlp, Topology, Trainer};
use tartan_nns::{BruteForce, KdTree, LshConfig, LshNns, NnsEngine, PointSet};
use tartan_npu::{IcpSupervisor, IterationVerdict, SupervisedNpu, Supervisor};
use tartan_sim::telemetry::SupervisionCounters;
use tartan_sim::{Buffer, Event, Interest, Machine, MemPolicy, Proc};

use crate::{NeuralExec, NnsKind, Robot, Scale, SoftwareConfig};

/// The vacuum robot.
pub struct HomeBot {
    software: SoftwareConfig,
    depth_image: Buffer<f32>,
    map_points: Vec<Vec<f32>>,
    map_cap: usize,
    source_points: usize,
    tree: BehaviorTree,
    npu: Option<SupervisedNpu>,
    icp_sup: IcpSupervisor,
    trap_mlp: Option<Mlp>,
    seed: u64,
    frame: u64,
    rot_err_sum: f64,
    trans_err_sum: f64,
    frames_scored: u64,
    battery: f32,
}

impl HomeBot {
    /// Builds the robot and (for TRAP) trains the transform predictor.
    pub fn new(machine: &mut Machine, software: SoftwareConfig, scale: Scale, seed: u64) -> Self {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let map_points: Vec<Vec<f32>> = (0..scale.map_points)
            .map(|_| {
                (0..3)
                    .map(|_| rng.random_range(-2.0f32..2.0))
                    .collect::<Vec<f32>>()
            })
            .collect();

        // --- offline TRAP training: predict T from raw correspondences ---
        let (npu, trap_mlp) = if software.neural != NeuralExec::None {
            let topo = Topology::new(&[192, 32, 32, 6]); // Table II
            let mut mlp = Mlp::new(&topo, seed ^ 0x99);
            let mut xs = Vec::new();
            let mut ys = Vec::new();
            let map_set = PointSet::new(machine, &map_points);
            for i in 0..200u64 {
                let truth = random_transform(seed * 31 + i);
                let source = observed_source(&map_points, &truth, scale.source_points, seed + i);
                xs.push(trap_inputs(&map_set, &source));
                ys.push(vec![
                    truth.rot[0] * 10.0,
                    truth.rot[1] * 10.0,
                    truth.rot[2] * 10.0,
                    truth.trans[0],
                    truth.trans[1],
                    truth.trans[2],
                ]);
            }
            Trainer::new(Loss::Mse)
                .learning_rate(0.02)
                .epochs(scale.train_epochs)
                .fit(&mut mlp, &xs, &ys);
            let npu = if software.neural == NeuralExec::Npu {
                // Supervised attachment: faulted predictions are retried or
                // re-run on the CPU before they reach the fusion pipeline.
                Some(
                    SupervisedNpu::attach(machine, mlp.clone())
                        .expect("NPU mode implies an NPU configuration"),
                )
            } else {
                None
            };
            (npu, Some(mlp))
        } else {
            (None, None)
        };

        let tree = BehaviorTree::build(
            machine,
            &BtSpec::Selector(vec![
                BtSpec::Sequence(vec![BtSpec::Leaf(0), BtSpec::Leaf(1)]), // battery → dock
                BtSpec::Sequence(vec![BtSpec::Leaf(2), BtSpec::Leaf(3)]), // dirt → clean
                BtSpec::Leaf(4),                                         // explore
            ]),
        );

        let mut depth = tartan_sim::recycled_f32(scale.depth_side * scale.depth_side);
        depth.fill(1.0);
        let depth_image = machine.buffer_from_vec(depth, MemPolicy::Normal);
        HomeBot {
            software,
            depth_image,
            map_points,
            map_cap: scale.map_points * 2,
            source_points: scale.source_points,
            tree,
            npu,
            // Trained TRAP leaves a modest alignment residual (sensor
            // noise plus its ~7% transform error, well under 0.5
            // mean-squared distance); a grossly wrong prediction — NaN or
            // a transform far outside the motion envelope — leaves a much
            // larger one and rolls back to exact CPU ICP. Device-fault
            // exactness is already guaranteed upstream by SupervisedNpu;
            // this guards TRAP's *algorithmic* plausibility.
            icp_sup: IcpSupervisor::new(0.5),
            trap_mlp,
            seed,
            frame: 0,
            rot_err_sum: 0.0,
            trans_err_sum: 0.0,
            frames_scored: 0,
            battery: 1.0,
        }
    }

    /// Geometric-mean transform error so far (Table II's metric).
    pub fn transform_error(&self) -> f64 {
        if self.frames_scored == 0 {
            return 0.0;
        }
        let r = self.rot_err_sum / self.frames_scored as f64;
        let t = self.trans_err_sum / self.frames_scored as f64;
        (r * t).sqrt()
    }

    /// The TRAP residual supervisor (check/rollback statistics).
    pub fn icp_supervisor(&self) -> &IcpSupervisor {
        &self.icp_sup
    }
}

/// Stamps the TRAP supervisor's accept/rollback decision into the
/// telemetry stream (a no-op unless an NPU-interested sink is attached).
fn emit_verdict(p: &mut Proc<'_>, verdict: IterationVerdict) {
    if p.wants_telemetry(Interest::NPU) {
        p.emit_telemetry(&Event::NpuVerdict {
            cycle: p.telemetry_cycle(),
            accepted: matches!(verdict, IterationVerdict::Accept),
        });
    }
}

fn random_transform(seed: u64) -> Transform {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    Transform {
        rot: [
            rng.random_range(-0.04f32..0.04),
            rng.random_range(-0.04f32..0.04),
            rng.random_range(-0.04f32..0.04),
        ],
        trans: [
            rng.random_range(-0.2f32..0.2),
            rng.random_range(-0.2f32..0.2),
            rng.random_range(-0.2f32..0.2),
        ],
    }
}

/// The depth camera's view: a subsample of the map observed under the
/// inverse of the true motion, with sensor noise.
fn observed_source(map: &[Vec<f32>], truth: &Transform, n: usize, seed: u64) -> Vec<[f32; 3]> {
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
    let inv = Transform {
        rot: [-truth.rot[0], -truth.rot[1], -truth.rot[2]],
        trans: [-truth.trans[0], -truth.trans[1], -truth.trans[2]],
    };
    (0..n)
        .map(|_| {
            let i = rng.random_range(0..map.len());
            let m = [map[i][0], map[i][1], map[i][2]];
            let mut s = inv.apply(&m);
            for v in s.iter_mut() {
                *v += rng.random_range(-0.005f32..0.005);
            }
            s
        })
        .collect()
}

impl Robot for HomeBot {
    fn name(&self) -> &'static str {
        "HomeBot"
    }

    fn bottleneck_phases(&self) -> &'static [&'static str] {
        &["tprediction", "nns"]
    }

    fn step(&mut self, machine: &mut Machine) {
        self.frame += 1;
        // Depth-map preprocessing (bilateral filter + back-projection):
        // the non-bottleneck share of point-based fusion, run on the
        // 8-thread perception stage.
        let depth = &self.depth_image;
        let px = depth.len();
        machine.parallel(8, |tid, p| {
            let per = px.div_ceil(8);
            let lo = tid * per;
            let hi = ((tid + 1) * per).min(px);
            if hi > lo {
                // Address run with a one-element shift: each element's
                // lead absorbs the previous element's filter flops, so the
                // cumulative instruction count before every access — and
                // hence all timing — matches the original
                // `get(i); flop(14)` loop exactly.
                let _ = depth.get(p, 0x8_1000, lo);
                let _ = depth.get_run(p, 0x8_1000, lo + 1, hi - lo - 1, 14);
                p.flop(14); // filter taps + back-projection
            }
        });
        let truth = random_transform(self.seed * 31 + 1000 + self.frame);
        let source = observed_source(
            &self.map_points,
            &truth,
            self.source_points,
            self.seed + 1000 + self.frame,
        );

        // Upload the current global map and build the frame's NNS engine
        // (untimed setup; queries are what §VIII-C measures).
        let map_set = PointSet::new(machine, &self.map_points);
        let engine: Box<dyn NnsEngine> = match self.software.nns {
            NnsKind::Brute => Box::new(BruteForce::new()),
            NnsKind::KdTree => Box::new(KdTree::build(machine, &map_set)),
            NnsKind::Flann => Box::new(LshNns::build(machine, &map_set, LshConfig::flann(0.8))),
            NnsKind::Vln => Box::new(LshNns::build(machine, &map_set, LshConfig::vln(0.8))),
        };

        let estimate = match self.software.neural {
            NeuralExec::Npu => {
                // TRAP: one NPU invocation replaces matching + solving. The
                // supervisor samples the alignment residual of the predicted
                // transform (a handful of NNS queries, §V-F style) and rolls
                // back to exact CPU ICP when the prediction is implausible.
                let npu = self.npu.as_mut().expect("NPU mode implies a device");
                let sup = &mut self.icp_sup;
                let inputs = trap_inputs(&map_set, &source);
                machine.run(|p| {
                    p.with_phase("tprediction", |p| {
                        let mut t = supervised_estimate(p, npu, &inputs);
                        t.rot[0] /= 10.0;
                        t.rot[1] /= 10.0;
                        t.rot[2] /= 10.0;
                        let residual =
                            residual_sample(p, &map_set, engine.as_ref(), &source, &t, 16);
                        let verdict = sup.check(f64::from(residual));
                        emit_verdict(p, verdict);
                        match verdict {
                            IterationVerdict::Accept => t,
                            IterationVerdict::Rollback => {
                                let exact =
                                    icp_estimate(p, &map_set, engine.as_ref(), &source, 2);
                                let r = residual_sample(
                                    p, &map_set, engine.as_ref(), &source, &exact, 16,
                                );
                                let _ = sup.record_recovery(f64::from(r));
                                exact
                            }
                        }
                    })
                })
            }
            NeuralExec::Software => {
                let mlp = self.trap_mlp.as_ref().expect("trained at setup");
                let sup = &mut self.icp_sup;
                let inputs = trap_inputs(&map_set, &source);
                machine.run(|p| {
                    p.with_phase("tprediction", |p| {
                        // Software neural execution: per-MAC loads+arith.
                        let macs = mlp.topology().mac_count() as u64;
                        p.flop(2 * macs);
                        p.instr(2 * macs);
                        let out = mlp.forward(&inputs);
                        let t = Transform {
                            rot: [out[0] / 10.0, out[1] / 10.0, out[2] / 10.0],
                            trans: [out[3], out[4], out[5]],
                        };
                        // TRAP's plausibility check is algorithm-level: the
                        // prediction needs supervising no matter where the
                        // MLP executes, so the software path pays the same
                        // residual sampling as the NPU path.
                        let residual =
                            residual_sample(p, &map_set, engine.as_ref(), &source, &t, 16);
                        let verdict = sup.check(f64::from(residual));
                        emit_verdict(p, verdict);
                        match verdict {
                            IterationVerdict::Accept => t,
                            IterationVerdict::Rollback => {
                                let exact =
                                    icp_estimate(p, &map_set, engine.as_ref(), &source, 2);
                                let r = residual_sample(
                                    p, &map_set, engine.as_ref(), &source, &exact, 16,
                                );
                                let _ = sup.record_recovery(f64::from(r));
                                exact
                            }
                        }
                    })
                })
            }
            NeuralExec::None => {
                // Perception: 8 threads match source slices; then one thread
                // solves the normal equations (two ICP iterations).
                let mut t = Transform::default();
                for _iter in 0..2 {
                    let per = source.len().div_ceil(8);
                    let chunks = machine.parallel(8, |tid, p| {
                        p.with_phase("tprediction", |p| {
                            match_range(
                                p,
                                &map_set,
                                engine.as_ref(),
                                &source,
                                &t,
                                tid * per,
                                (tid + 1) * per,
                            )
                        })
                    });
                    let matches: Vec<_> = chunks.into_iter().flatten().collect();
                    let delta = machine.run(|p| {
                        p.with_phase("tprediction", |p| {
                            estimate_from_matches(p, &map_set, &matches)
                        })
                    });
                    let Some(delta) = delta else { break };
                    for a in 0..3 {
                        t.rot[a] += delta.rot[a];
                        t.trans[a] += delta.trans[a];
                    }
                }
                t
            }
        };

        // Score the estimate against ground truth (Table II metric).
        self.rot_err_sum += f64::from(estimate.rot_error(&truth));
        self.trans_err_sum += f64::from(estimate.trans_error(&truth));
        self.frames_scored += 1;

        // Fusion: merge the aligned source into the global map (bounded).
        for s in source.iter().take(16) {
            let aligned = estimate.apply(s);
            if self.map_points.len() < self.map_cap {
                self.map_points.push(aligned.to_vec());
            }
        }

        // Decision stage: behavior-tree tick (1 thread).
        self.battery = (self.battery - 0.01).max(0.0);
        let battery = self.battery;
        let tree = &self.tree;
        machine.run(|p| {
            tree.tick(p, &mut |pp, id| {
                pp.flop(3);
                match id {
                    0 => {
                        if battery < 0.2 {
                            BtStatus::Success
                        } else {
                            BtStatus::Failure
                        }
                    }
                    2 => BtStatus::Failure,
                    _ => BtStatus::Success,
                }
            });
        });
    }

    fn quality(&self) -> f64 {
        self.transform_error()
    }

    fn supervision(&self) -> Option<SupervisionCounters> {
        self.npu.as_ref().map(|npu| npu.counters())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tartan_sim::MachineConfig;

    #[test]
    fn exact_icp_recovers_motion() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let mut bot = HomeBot::new(&mut m, SoftwareConfig::legacy(), Scale::small(), 9);
        bot.run(&mut m, 3);
        assert!(
            bot.transform_error() < 0.05,
            "transform error {}",
            bot.transform_error()
        );
    }

    #[test]
    fn tprediction_dominates_baseline() {
        let mut m = Machine::new(MachineConfig::upgraded_baseline());
        let mut bot = HomeBot::new(&mut m, SoftwareConfig::legacy(), Scale::small(), 9);
        bot.run(&mut m, 3);
        let stats = m.stats();
        let frac = stats.phase_fraction("tprediction") + stats.phase_fraction("nns");
        assert!(frac > 0.4, "T-prediction fraction {frac}"); // paper: 56%
    }

    #[test]
    fn trap_is_faster_with_modest_error() {
        let run = |sw: SoftwareConfig| {
            let mut m = Machine::new(MachineConfig::tartan());
            let sw = sw.effective(m.config());
            let mut bot = HomeBot::new(&mut m, sw, Scale::small(), 9);
            bot.run(&mut m, 4);
            (m.wall_cycles(), bot.transform_error())
        };
        let (t_exact, err_exact) = run(SoftwareConfig::optimized());
        let (t_trap, err_trap) = run(SoftwareConfig::approximable());
        assert!(t_trap < t_exact, "TRAP {t_trap} vs exact {t_exact}");
        // Table II: 6.8% error is acceptable; exact ICP is near-zero.
        assert!(err_trap < 0.4, "TRAP error {err_trap}");
        assert!(err_exact < err_trap, "exact {err_exact} vs TRAP {err_trap}");
    }
}
